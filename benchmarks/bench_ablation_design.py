"""Design-choice ablations the paper discusses in prose.

* Section 6.1: "wider 256-element DVR units would achieve the higher
  performance of the Oracle, at the expense of a larger VRAT and more
  physical vector registers" -- we sweep the vectorization degree
  (64 / 128 / 256 scalar-equivalent lanes, scaling the vector register
  file along with it).
* The MSHR file is the structural ceiling on everyone's MLP; sweeping it
  shows DVR's gain is not an artifact of one MSHR size.
"""

from dataclasses import replace

from repro.config import SimConfig
from repro.harness.report import format_table, hmean
from repro.harness.runner import run_workload
from repro.workloads import make_workload

from conftest import bench_scale

_WORKLOADS = (("bfs", "KR"), ("bfs", "UR"), ("nas-cg", None))


def _run(config, technique, kernel, graph):
    workload = (make_workload(kernel, graph=graph) if graph
                else make_workload(kernel))
    return run_workload(workload, config, technique=technique)


def test_dvr_lane_width_sweep(benchmark):
    scale = bench_scale()
    base_cfg = SimConfig(max_instructions=scale.max_instructions)

    def run_sweep():
        rows = []
        for lanes in (64, 128, 256):
            speedups = []
            for kernel, graph in _WORKLOADS:
                base = _run(base_cfg, "ooo", kernel, graph)
                config = replace(
                    base_cfg,
                    dvr=replace(base_cfg.dvr, max_lanes=lanes,
                                vector_copies=max(8, lanes // 8)),
                    core=replace(base_cfg.core,
                                 phys_vec_regs=max(128, lanes)),
                )
                dvr = _run(config, "dvr", kernel, graph)
                speedups.append(dvr.speedup_over(base))
            rows.append([lanes] + speedups + [hmean(speedups)])
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    labels = [f"{k}_{g}" if g else k for k, g in _WORKLOADS]
    print()
    print(format_table(["lanes"] + labels + ["H-mean"], rows,
                       title="DVR vectorization-degree ablation"))
    by_lanes = {row[0]: row[-1] for row in rows}
    # More look-ahead never hurts the mean materially; 128 -> 256 helps
    # the simple kernels the paper calls out (NAS-CG).
    assert by_lanes[128] >= by_lanes[64] * 0.9
    assert by_lanes[256] >= by_lanes[128] * 0.9


def test_mshr_sensitivity(benchmark):
    scale = bench_scale()
    base_cfg = SimConfig(max_instructions=scale.max_instructions)

    def run_sweep():
        rows = []
        for mshrs in (12, 24, 48):
            config = replace(
                base_cfg, memsys=replace(base_cfg.memsys, l1d_mshrs=mshrs))
            base = _run(config, "ooo", "bfs", "KR")
            dvr = _run(config, "dvr", "bfs", "KR")
            rows.append([mshrs, base.ipc, dvr.ipc,
                         dvr.speedup_over(base), dvr.mlp])
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["MSHRs", "OoO IPC", "DVR IPC", "DVR speedup", "DVR MLP"], rows,
        title="MSHR-count sensitivity (bfs_KR)"))
    gains = {row[0]: row[3] for row in rows}
    assert all(gain > 1.2 for gain in gains.values()), \
        "DVR must help at every MSHR size on branchy BFS"
