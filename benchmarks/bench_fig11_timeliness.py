"""Figure 11: where the main thread finds DVR-prefetched lines.

Paper shape: most lines are already in the L1-D; a consistent 10-20%
arrive late ('Off-chip': still in flight or fetched incorrectly).
"""

from repro.harness.experiments import fig11_timeliness

from conftest import run_and_print, bench_scale


def test_fig11_timeliness(benchmark):
    result = run_and_print(benchmark, fig11_timeliness, bench_scale())
    covered = [row for row in result.rows if sum(row[1:]) > 0]
    assert covered, "DVR produced no used prefetches anywhere"
    for row in covered:
        label, l1, l2, l3, offchip = row
        on_chip = l1 + l2 + l3
        assert on_chip > 40.0, f"{label}: prefetches mostly too late"
