"""Figure 10: DRAM accesses normalized to the baseline, split between the
main thread and runahead, for VR and DVR.

Paper shape: DVR covers most main-thread misses without over-fetching;
VR lacks loop-length analysis and can over-fetch substantially.
"""

from repro.harness.experiments import fig10_accuracy

from conftest import run_and_print, bench_scale


def test_fig10_accuracy(benchmark):
    result = run_and_print(benchmark, fig10_accuracy, bench_scale())
    for label, vr_main, vr_ra, dvr_main, dvr_ra in result.rows:
        total_dvr = dvr_main + dvr_ra
        assert total_dvr < 3.0, f"{label}: DVR should not blow up traffic"
    # DVR shifts traffic from the main thread to runahead on GAP rows.
    gap = [row for row in result.rows if row[0].startswith("bfs")]
    assert any(row[3] < 0.9 for row in gap)
