"""Figure 12: DVR performance as the ROB grows.

Paper shape: unlike VR (Fig 2), DVR's gain over the same-size baseline
*holds or grows* with ROB size (1.9x at 128 entries to 2.5x at 512).
"""

from repro.harness.experiments import fig12_dvr_rob

from conftest import run_and_print, bench_scale


def test_fig12_dvr_rob(benchmark):
    result = run_and_print(benchmark, fig12_dvr_rob, bench_scale(),
                           rob_sizes=(128, 350, 512))
    gains = {row[0]: row[3] for row in result.rows}  # DVR/OoO per size
    assert gains[512] > 1.0, "DVR keeps helping at huge ROBs"
    assert gains[512] >= 0.8 * gains[128], \
        "DVR's relative gain must not collapse with ROB size"
