"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables/figures and prints
the same rows/series the paper reports.  By default a trimmed workload
set keeps the whole directory under ~10 minutes; set ``REPRO_SCALE=paper``
for the full benchmark-input matrix (all five graphs, all eight hpc-db
kernels, longer ROIs).
"""

import os

import pytest

from repro.harness.experiments import ExperimentScale


def bench_scale():
    if os.environ.get("REPRO_SCALE") in ("full", "paper"):
        return ExperimentScale.full()
    return ExperimentScale(
        gap_graphs=("KR", "UR"),
        hpcdb=("camel", "hj8", "kangaroo", "nas-is", "randomaccess"),
        max_instructions=10_000,
    )


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


def run_and_print(benchmark, experiment, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark and print
    its rendered table (simulations are deterministic, so one round is
    the measurement)."""
    result_box = {}

    def _run():
        result_box["result"] = experiment(*args, **kwargs)
        return result_box["result"]

    benchmark.pedantic(_run, rounds=1, iterations=1)
    result = result_box["result"]
    print()
    print(result.render())
    return result
