"""Figure 2: OoO & VR performance and full-ROB stall time vs ROB size.

Paper shape: VR's speedup over the same-size OoO core shrinks as the ROB
grows, and the fraction of time stalled on a full ROB collapses.
"""

from repro.harness.experiments import fig2_rob_sweep

from conftest import run_and_print, bench_scale


def test_fig2_rob_sweep(benchmark):
    result = run_and_print(benchmark, fig2_rob_sweep, bench_scale(),
                           rob_sizes=(128, 224, 350, 512))
    stalls = {row[0]: row[3] for row in result.rows}
    # Full-ROB stall time decreases with ROB size (paper: 51% -> 5%).
    assert stalls[128] >= stalls[512]
    # The baseline improves with more ROB entries.
    speedups = {row[0]: row[1] for row in result.rows}
    assert speedups[512] >= speedups[128]
