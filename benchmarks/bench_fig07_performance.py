"""Figure 7: speedups of PRE, IMP, VR, DVR and the Oracle over the
baseline OoO core, per benchmark-input.

Paper shape: DVR 2.4x harmonic mean (up to 6.4x), VR ~1.2x, PRE ~1x,
Oracle on top.
"""

from repro.harness.experiments import fig7_performance

from conftest import run_and_print, bench_scale


def test_fig7_performance(benchmark):
    result = run_and_print(benchmark, fig7_performance, bench_scale())
    hmean_row = result.rows[-1]
    assert hmean_row[0] == "H-mean"
    headers = result.headers
    means = dict(zip(headers[1:], hmean_row[1:]))
    assert means["dvr"] > 1.2, "DVR must clearly beat the baseline"
    assert means["dvr"] > means["vr"], "DVR must beat VR (paper: 2x)"
    assert means["oracle"] >= means["dvr"], "Oracle bounds DVR"
    assert 0.9 < means["pre"] < 1.5, "PRE is near-baseline on a big ROB"
