"""Table 1: the baseline out-of-order core configuration."""

from repro.config import CoreConfig, DvrConfig
from repro.core.hw_cost import total_bytes
from repro.harness.experiments import table1_config

from conftest import run_and_print


def test_table1_configuration(benchmark):
    result = run_and_print(benchmark, table1_config)
    rows = dict((k, v) for k, v in result.rows)
    assert rows["ROB size"] == "350"


def test_dvr_hardware_overhead(benchmark):
    """Section 4.4: DVR's structures cost exactly 1139 bytes."""
    total = benchmark(total_bytes, DvrConfig(), CoreConfig())
    print(f"\nDVR hardware overhead: {total} bytes (paper: 1139)")
    assert total == 1139
