"""Figure 9: memory-level parallelism (average MSHRs used per cycle).

Paper shape: the OoO baseline averages <4 on the branchy GAP workloads;
DVR raises the average above 10 by keeping vectorized gathers in flight.
"""

from repro.harness.experiments import fig9_mlp

from conftest import run_and_print, bench_scale


def test_fig9_mlp(benchmark):
    result = run_and_print(benchmark, fig9_mlp, bench_scale())
    mean_row = result.rows[-1]
    means = dict(zip(result.headers[1:], mean_row[1:]))
    assert means["DVR"] > means["OoO"], "DVR must raise MLP"
    gap_rows = [row for row in result.rows[:-1]
                if row[0].startswith(("bfs", "bc", "sssp"))]
    assert any(row[1] < 8 for row in gap_rows), \
        "branchy GAP baselines have low raw MLP"
