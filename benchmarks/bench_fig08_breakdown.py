"""Figure 8: DVR performance breakdown -- VR, +Offload, +Discovery Mode,
+Nested Runahead Mode (= full DVR).

Paper shape: offloading to a decoupled subthread is the single biggest
step (VR 1.2x -> ~1.5x); the full technique is best overall.
"""

from repro.harness.experiments import fig8_breakdown

from conftest import run_and_print, bench_scale


def test_fig8_breakdown(benchmark):
    result = run_and_print(benchmark, fig8_breakdown, bench_scale())
    hmean_row = result.rows[-1]
    means = dict(zip(result.headers[1:], hmean_row[1:]))
    assert means["dvr-offload"] > means["vr"], \
        "decoupling from full-ROB stalls must help (Key Insight #1/#2)"
    assert means["dvr"] >= 0.95 * max(means.values()), \
        "full DVR is (near-)uniformly best"
