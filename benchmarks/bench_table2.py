"""Table 2: graph inputs and their measured LLC MPKI over the GAP suite."""

from repro.harness.experiments import table2_graphs

from conftest import run_and_print, bench_scale


def test_table2_graph_inputs(benchmark):
    result = run_and_print(benchmark, table2_graphs, bench_scale())
    # Every input row carries nodes, edges, and a positive MPKI.
    for name, nodes, edges, mpki in result.rows:
        assert nodes > 0 and edges > 0
        assert mpki > 0, f"{name} produced no LLC misses"
