"""Timing-discipline tests for the Vector Issue Register model: vector
copies consume issue slots over multiple cycles, loads respect memory
ports and MSHRs, and the subthread only ever uses slots the main thread
left over."""

import random

import pytest

from repro.config import DvrConfig, SimConfig
from repro.core.subthread import SubthreadStats, VectorSubthread
from repro.isa import Assembler, GuestMemory
from repro.memsys import MemoryHierarchy
from repro.uarch.dynins import FU_ALU, FU_MEM
from repro.uarch.scheduler import IssuePorts


def vector_alu_program(mem, n=4096):
    """Striding load followed by a long all-vector ALU tail."""
    base = mem.alloc_array(list(range(n)), "data")
    a = Assembler("alu-tail")
    a.li("r1", base)
    a.li("r2", 0)
    a.label("loop")
    a.loadx("r3", "r1", "r2")   # pc 2: striding load (dest r3 vectorized)
    a.addi("r4", "r3", 1)       # vector
    a.addi("r5", "r4", 1)       # vector
    a.addi("r6", "r5", 1)       # vector
    a.addi("r2", "r2", 1)
    a.jmp("loop")
    regs = [0] * 32
    regs[1] = base
    return a.build(), regs, base


def make_subthread(program, mem, dvr_config=None):
    config = SimConfig()
    dvr_config = dvr_config or config.dvr
    hierarchy = MemoryHierarchy(config.memsys, config.stride_pf,
                                config.imp, mem)
    subthread = VectorSubthread(program, mem, hierarchy, config.core,
                                dvr_config, source="dvr",
                                stats=SubthreadStats())
    return subthread, hierarchy, IssuePorts(config.core)


class TestVirIssueCost:
    def test_vector_alu_takes_multiple_cycles(self):
        """128 lanes = 16 copies; with 4 ALU slots/cycle (and width 5)
        each vector ALU op needs >= 4 cycles to issue."""
        mem = GuestMemory(16 * 1024 * 1024)
        program, regs, base = vector_alu_program(mem)
        subthread, hierarchy, ports = make_subthread(program, mem)
        subthread.spawn(2, 8, base, regs, 128, flr_pc=-1,
                        terminate_at_stride=True)
        # Run until the gather has completed and count cycles spent on
        # the first vector ALU op (pc 3).
        now = 0
        while subthread.pc != 3 or subthread._phase != "exec_issue":
            now += 1
            ports.new_cycle()
            subthread.step(now, ports)
            hierarchy.tick(now)
            assert now < 100_000
        start = now
        while subthread.pc == 3:
            now += 1
            ports.new_cycle()
            subthread.step(now, ports)
        assert now - start >= 3  # 16 copies / 4 ALU slots per cycle

    def test_fewer_lanes_cost_fewer_slots(self):
        mem = GuestMemory(16 * 1024 * 1024)
        program, regs, base = vector_alu_program(mem)
        subthread, _, _ = make_subthread(program, mem)
        subthread.spawn(2, 8, base, regs, 8, flr_pc=-1,
                        terminate_at_stride=True)
        assert subthread._vector_cost() == 1
        subthread.active = list(range(128))
        assert subthread._vector_cost() == 16
        subthread.active = list(range(9))
        assert subthread._vector_cost() == 2

    def test_gather_respects_mem_ports(self):
        """Per cycle, one mem-port slot covers 8 lane loads; with 2 mem
        ports at most 16 lane loads issue per cycle."""
        mem = GuestMemory(64 * 1024 * 1024)
        program, regs, base = vector_alu_program(mem, n=65536)
        subthread, hierarchy, ports = make_subthread(program, mem)
        subthread.spawn(2, 8, base, regs, 128, flr_pc=-1,
                        terminate_at_stride=True)
        issued_before = subthread.stats.lane_loads_issued
        ports.new_cycle()
        subthread.step(1, ports)
        issued = subthread.stats.lane_loads_issued - issued_before
        assert issued <= 2 * 8

    def test_main_thread_priority(self):
        """The subthread gets only leftover slots: if the main thread
        claims all width, the subthread issues nothing that cycle."""
        mem = GuestMemory(16 * 1024 * 1024)
        program, regs, base = vector_alu_program(mem)
        subthread, _, ports = make_subthread(program, mem)
        subthread.spawn(2, 8, base, regs, 128, flr_pc=-1,
                        terminate_at_stride=True)
        ports.new_cycle()
        while ports.spare_slots:
            ports.claim(FU_MEM if ports.can_issue(FU_MEM) else FU_ALU)
        before = subthread.stats.lane_loads_issued
        subthread.step(1, ports)
        assert subthread.stats.lane_loads_issued == before


class TestMshrInteraction:
    def test_gather_stalls_on_full_mshrs_and_recovers(self):
        mem = GuestMemory(64 * 1024 * 1024)
        program, regs, base = vector_alu_program(mem, n=65536)
        subthread, hierarchy, ports = make_subthread(program, mem)
        # Fill the MSHR file with unrelated misses.
        for k in range(24):
            hierarchy.demand_load(32 * 1024 * 1024 + k * 64, 1, 0, 0)
        subthread.spawn(2, 8, base, regs, 64, flr_pc=-1,
                        terminate_at_stride=True)
        ports.new_cycle()
        subthread.step(1, ports)
        assert subthread.stats.lane_loads_issued == 0  # blocked
        # After the fills return, issue proceeds.
        hierarchy.tick(1_000)
        ports.new_cycle()
        subthread.step(1_000, ports)
        assert subthread.stats.lane_loads_issued > 0


class TestStorePath:
    def test_demand_store_write_allocates(self):
        config = SimConfig()
        mem = GuestMemory(16 * 1024 * 1024)
        hierarchy = MemoryHierarchy(config.memsys, config.stride_pf,
                                    config.imp, mem)
        hierarchy.demand_store(0x20000, now=0)
        assert hierarchy.l1d.contains(0x20000 >> 6)
        assert hierarchy.stats.demand_stores == 1

    def test_demand_store_hit_is_fast(self):
        config = SimConfig()
        mem = GuestMemory(16 * 1024 * 1024)
        hierarchy = MemoryHierarchy(config.memsys, config.stride_pf,
                                    config.imp, mem)
        hierarchy.demand_store(0x20000, now=0)
        complete = hierarchy.demand_store(0x20000, now=500)
        assert complete == 500 + config.memsys.l1d.latency

    def test_store_survives_full_mshrs(self):
        config = SimConfig()
        mem = GuestMemory(64 * 1024 * 1024)
        hierarchy = MemoryHierarchy(config.memsys, config.stride_pf,
                                    config.imp, mem)
        for k in range(24):
            hierarchy.demand_load(0x100000 + k * 64, 1, 0, 0)
        complete = hierarchy.demand_store(0x900000, now=0)
        assert complete >= 0  # store buffered, no deadlock
