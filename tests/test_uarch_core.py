"""Tests for the out-of-order core timing model."""

import pytest

from repro.config import SimConfig
from repro.isa import Assembler, GuestMemory
from repro.memsys import MemoryHierarchy
from repro.uarch import OoOCore, SimulationLimitError
from repro.uarch.dynins import FU_ALU, FU_DIV, FU_MEM, FU_MUL, fu_class
from repro.isa.instructions import Op
from repro.uarch.scheduler import IssuePorts


def run_program(assembler, config=None, max_instructions=None,
                memory=None, perfect_memory=False):
    config = config or SimConfig(max_instructions=100_000)
    mem = memory or GuestMemory(16 * 1024 * 1024)
    hierarchy = MemoryHierarchy(config.memsys, config.stride_pf, config.imp,
                                mem)
    core = OoOCore(assembler.build(), mem, config, hierarchy,
                   perfect_memory=perfect_memory)
    stats = core.run(max_instructions=max_instructions)
    return core, stats


class TestFuClasses:
    def test_classification(self):
        assert fu_class(Op.ADD) == FU_ALU
        assert fu_class(Op.MUL) == FU_MUL
        assert fu_class(Op.HASH) == FU_MUL
        assert fu_class(Op.DIV) == FU_DIV
        assert fu_class(Op.LOADX) == FU_MEM
        assert fu_class(Op.BNZ) == FU_ALU


class TestIssuePorts:
    def test_width_limit(self):
        ports = IssuePorts(SimConfig().core)
        ports.new_cycle()
        issued = 0
        while ports.can_issue(FU_ALU):
            ports.claim(FU_ALU)
            issued += 1
        assert issued == 4  # 4 ALUs < width 5

    def test_width_shared_across_classes(self):
        ports = IssuePorts(SimConfig().core)
        ports.new_cycle()
        for _ in range(4):
            ports.claim(FU_ALU)
        ports.claim(FU_MEM)
        assert ports.spare_slots == 0
        assert not ports.can_issue(FU_MEM)  # width exhausted

    def test_new_cycle_resets(self):
        ports = IssuePorts(SimConfig().core)
        ports.new_cycle()
        ports.claim(FU_DIV)
        assert not ports.can_issue(FU_DIV)
        ports.new_cycle()
        assert ports.can_issue(FU_DIV)


class TestBasicExecution:
    def test_straightline_completes(self):
        a = Assembler()
        for k in range(20):
            a.li(f"r{k % 8 + 1}", k)
        a.halt()
        _, stats = run_program(a)
        assert stats.halted
        assert stats.committed == 21

    def test_architectural_state_matches_functional(self):
        a = Assembler()
        a.li("r1", 10)
        a.li("r2", 32)
        a.add("r3", "r1", "r2")
        a.muli("r4", "r3", 2)
        a.halt()
        core, _ = run_program(a)
        assert core.regs[3] == 42
        assert core.regs[4] == 84

    def test_ipc_bounded_by_width(self):
        a = Assembler()
        a.li("r1", 0)
        a.label("loop")
        for _ in range(10):
            a.addi("r2", "r2", 1)  # independent-ish filler
        a.addi("r1", "r1", 1)
        a.cmplti("r3", "r1", 400)
        a.bnz("r3", "loop")
        a.halt()
        _, stats = run_program(a)
        assert stats.ipc <= SimConfig().core.width

    def test_dependent_chain_limits_ipc(self):
        """A pure dependent ALU chain cannot exceed IPC 1."""
        a = Assembler()
        a.li("r1", 1)
        a.label("loop")
        for _ in range(10):
            a.addi("r1", "r1", 1)
        a.cmplti("r2", "r1", 3000)
        a.bnz("r2", "loop")
        a.halt()
        _, stats = run_program(a)
        assert stats.ipc < 1.35  # chain + small parallel overhead

    def test_independent_ops_reach_high_ipc(self):
        a = Assembler()
        a.li("r1", 0)
        a.label("loop")
        a.addi("r2", "r2", 1)
        a.addi("r3", "r3", 1)
        a.addi("r4", "r4", 1)
        a.addi("r1", "r1", 1)
        a.cmplti("r5", "r1", 500)
        a.bnz("r5", "loop")
        a.halt()
        _, stats = run_program(a)
        assert stats.ipc > 2.0

    def test_div_latency_visible(self):
        a = Assembler()
        a.li("r1", 1 << 40)
        a.li("r2", 3)
        prev = "r1"
        for k in range(50):
            a.div("r1", prev, "r2")
        a.halt()
        _, stats = run_program(a)
        # 50 dependent 18-cycle divides dominate.
        assert stats.cycles > 50 * 18

    def test_max_instructions_cap(self):
        a = Assembler()
        a.label("spin")
        a.addi("r1", "r1", 1)
        a.jmp("spin")
        _, stats = run_program(a, max_instructions=1000)
        assert 1000 <= stats.committed <= 1005
        assert not stats.halted


class TestMemoryTiming:
    def _load_loop(self, n=64, dependent=False):
        a = Assembler()
        mem = GuestMemory(16 * 1024 * 1024)
        import random
        rnd = random.Random(11)
        permutation = list(range(4096))
        rnd.shuffle(permutation)  # pointer chase visits distinct slots
        base = mem.alloc_array(permutation, "data")
        a.li("r1", base)
        a.li("r2", 0)
        a.label("loop")
        if dependent:
            a.loadx("r3", "r1", "r3", scale=8)
            a.andi("r3", "r3", 4095)
        else:
            a.loadx("r3", "r1", "r2")
        a.addi("r2", "r2", 1)
        a.cmplti("r4", "r2", n)
        a.bnz("r4", "loop")
        a.halt()
        return a, mem

    def test_cold_misses_cost_dram_latency(self):
        a, mem = self._load_loop(n=8)
        config = SimConfig()
        config.stride_pf.enabled = False
        _, stats = run_program(a, config=config, memory=mem)
        # 8 sequential words = 1 cold line: at least one DRAM trip.
        assert stats.cycles > 240

    def test_perfect_memory_removes_miss_cost(self):
        config = SimConfig()
        config.stride_pf.enabled = False
        a_cold, m_cold = self._load_loop(n=256, dependent=True)
        _, cold = run_program(a_cold, config=config, memory=m_cold)
        a_perf, m_perf = self._load_loop(n=256, dependent=True)
        _, perfect = run_program(a_perf, config=config, memory=m_perf,
                                 perfect_memory=True)
        assert perfect.cycles < cold.cycles / 3

    def test_dependent_pointer_chase_serializes(self):
        a, mem = self._load_loop(n=64, dependent=True)
        config = SimConfig()
        config.stride_pf.enabled = False
        _, stats = run_program(a, config=config, memory=mem)
        # Each iteration serializes on the loaded value; misses cannot
        # overlap, so cycles per iteration is large.
        assert stats.cycles / 64 > 25


class TestBranchHandling:
    def test_predictable_loop_is_cheap(self):
        a = Assembler()
        a.li("r1", 0)
        a.label("loop")
        a.addi("r1", "r1", 1)
        a.cmplti("r2", "r1", 1000)
        a.bnz("r2", "loop")
        a.halt()
        _, stats = run_program(a)
        assert stats.branch_mispredicts < 20

    def test_data_dependent_branch_mispredicts(self):
        a = Assembler()
        mem = GuestMemory(16 * 1024 * 1024)
        import random
        rnd = random.Random(3)
        base = mem.alloc_array([rnd.randrange(2) for _ in range(2048)], "bits")
        a.li("r1", base)
        a.li("r2", 0)
        a.label("loop")
        a.loadx("r3", "r1", "r2")
        a.bez("r3", "skip")
        a.addi("r4", "r4", 1)
        a.label("skip")
        a.addi("r2", "r2", 1)
        a.cmplti("r5", "r2", 2000)
        a.bnz("r5", "loop")
        a.halt()
        _, stats = run_program(a, memory=mem)
        assert stats.branch_mispredicts > 400  # ~50% of 2000 random branches

    def test_mispredict_penalty_slows_execution(self):
        def bits_program(values):
            a = Assembler()
            mem = GuestMemory(16 * 1024 * 1024)
            base = mem.alloc_array(values, "bits")
            a.li("r1", base)
            a.li("r2", 0)
            a.label("loop")
            a.loadx("r3", "r1", "r2")
            a.bez("r3", "skip")
            a.addi("r4", "r4", 1)
            a.label("skip")
            a.addi("r2", "r2", 1)
            a.cmplti("r5", "r2", 1500)
            a.bnz("r5", "loop")
            a.halt()
            return a, mem

        import random
        rnd = random.Random(5)
        a1, m1 = bits_program([1] * 2048)
        a2, m2 = bits_program([rnd.randrange(2) for _ in range(2048)])
        _, predictable = run_program(a1, memory=m1)
        _, unpredictable = run_program(a2, memory=m2)
        assert unpredictable.cycles > predictable.cycles * 1.5


class TestRobStalls:
    def test_rob_fills_under_long_miss_stream(self):
        """Independent misses with predictable branches fill the ROB."""
        a = Assembler()
        mem = GuestMemory(64 * 1024 * 1024)
        import random
        rnd = random.Random(9)
        n = 4096
        idx = mem.alloc_array([rnd.randrange(1 << 19) for _ in range(n)], "i")
        table = mem.alloc(1 << 19, "table")
        a.li("r1", idx)
        a.li("r2", table)
        a.li("r3", 0)
        a.label("loop")
        a.loadx("r4", "r1", "r3")
        a.loadx("r5", "r2", "r4")
        a.add("r6", "r6", "r5")
        a.addi("r3", "r3", 1)
        a.cmplti("r7", "r3", n)
        a.bnz("r7", "loop")
        a.halt()
        config = SimConfig(max_instructions=12_000)
        _, stats = run_program(a, config=config, memory=mem,
                               max_instructions=12_000)
        assert stats.rob_full_cycles > 0
        assert stats.rob_full_mem_cycles > 0

    def test_safety_limit_raises(self):
        """A (hypothetical) deadlock trips the cycle guard instead of
        hanging forever."""
        a = Assembler()
        a.label("spin")
        a.jmp("spin")
        a.halt()
        config = SimConfig(max_instructions=10)
        mem = GuestMemory(1 << 20)
        hierarchy = MemoryHierarchy(config.memsys, config.stride_pf,
                                    config.imp, mem)
        core = OoOCore(a.build(), mem, config, hierarchy)
        # JMP-only spin never commits 10 "real" instructions? It does
        # commit jmps, so instead verify the guard by a tiny budget and
        # an impossible limit.
        core._program_done = True  # nothing will ever dispatch
        with pytest.raises(SimulationLimitError):
            core.run(max_instructions=10)


class TestCommitOrder:
    def test_stores_visible_after_halt(self):
        a = Assembler()
        mem = GuestMemory(1 << 20)
        out = mem.alloc_array([0, 0, 0], "out")
        a.li("r1", out)
        a.li("r2", 7)
        a.store("r2", "r1", 0)
        a.store("r2", "r1", 8)
        a.halt()
        _, stats = run_program(a, memory=mem)
        assert mem.read_array(out, 3) == [7, 7, 0]
        assert stats.halted
