"""Additional property-based tests on component invariants."""

from hypothesis import given, settings, strategies as st

from repro.config import MemSysConfig
from repro.memsys.dram import Dram
from repro.workloads.graphs import GraphSpec, build_csr, rmat_edges

import numpy as np


class TestDramProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10_000),
                    min_size=1, max_size=100))
    def test_fills_monotone_in_arrival_order(self, arrivals):
        """Requests issued in time order complete in time order (FIFO
        channel), and never faster than the minimum latency."""
        dram = Dram(MemSysConfig())
        arrivals = sorted(arrivals)
        last_fill = -1
        for now in arrivals:
            fill = dram.request(now)
            assert fill >= now + dram.latency
            assert fill >= last_fill
            last_fill = fill

    @given(st.integers(min_value=1, max_value=200))
    def test_burst_throughput_is_line_interval(self, burst):
        dram = Dram(MemSysConfig())
        first = dram.request(0)
        last = first
        for _ in range(burst - 1):
            last = dram.request(0)
        assert last - first == (burst - 1) * dram.line_interval


class TestGraphProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=7, max_value=10),
           st.integers(min_value=2, max_value=16),
           st.integers(min_value=0, max_value=1000))
    def test_csr_always_well_formed(self, log2_nodes, degree, seed):
        spec = GraphSpec(f"p{log2_nodes}_{degree}_{seed}", "rmat",
                         log2_nodes, degree)
        offsets, neighbors = build_csr(spec, seed=seed)
        assert offsets[0] == 0
        assert offsets[-1] == len(neighbors) == spec.num_edges
        assert np.all(np.diff(offsets) >= 0)
        if len(neighbors):
            assert 0 <= neighbors.min() and neighbors.max() < spec.num_nodes

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=100))
    def test_rmat_skew_increases_with_a(self, seed):
        """Higher RMAT `a` concentrates edges on fewer sources."""
        rng1 = np.random.default_rng(seed)
        rng2 = np.random.default_rng(seed)
        mild_src, _ = rmat_edges(10, 8192, rng1, 0.40, 0.20, 0.20)
        harsh_src, _ = rmat_edges(10, 8192, rng2, 0.70, 0.10, 0.10)
        mild_max = np.bincount(mild_src, minlength=1024).max()
        harsh_max = np.bincount(harsh_src, minlength=1024).max()
        assert harsh_max >= mild_max
