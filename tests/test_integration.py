"""Cross-technique integration tests on real workloads.

These check the paper's qualitative orderings end-to-end: DVR helps on
indirect-chain workloads, the Oracle bounds everything, runahead leaves
architectural state untouched, and the engines produce the statistics the
figures are built from.
"""

import pytest

from repro.config import ALL_TECHNIQUES, SimConfig
from repro.harness.runner import run_built, run_workload
from repro.workloads import make_workload
from repro.workloads.gap import Bfs
from tests.conftest import build_chain_workload


@pytest.fixture(scope="module")
def bfs_results(request):
    """All techniques on a small-but-real BFS (power-law graph)."""
    from repro.workloads.graphs import GRAPH_INPUTS, GraphSpec, _csr_cache
    spec = GraphSpec("ITESTG", "rmat", 11, 12)
    GRAPH_INPUTS["ITESTG"] = spec
    request.addfinalizer(lambda: GRAPH_INPUTS.pop("ITESTG", None))
    config = SimConfig(max_instructions=12_000)
    results = {}
    for technique in ALL_TECHNIQUES:
        built = Bfs(graph="ITESTG").build(memory_bytes=128 * 1024 * 1024)
        results[technique] = run_built(
            built, config.with_technique(technique))
    return results


class TestPaperOrderings:
    def test_dvr_beats_baseline_clearly(self, bfs_results):
        speedup = bfs_results["dvr"].ipc / bfs_results["ooo"].ipc
        assert speedup > 1.3

    def test_dvr_beats_vr(self, bfs_results):
        assert bfs_results["dvr"].ipc > bfs_results["vr"].ipc

    def test_oracle_is_upper_bound(self, bfs_results):
        best_real = max(bfs_results[t].ipc for t in
                        ("ooo", "pre", "imp", "vr", "dvr"))
        assert bfs_results["oracle"].ipc >= best_real * 0.95

    def test_pre_is_marginal_on_large_rob(self, bfs_results):
        """Paper: 'PRE rarely yields more than negligible performance
        improvements' on the 350-entry-ROB core."""
        ratio = bfs_results["pre"].ipc / bfs_results["ooo"].ipc
        assert 0.9 < ratio < 1.4

    def test_dvr_raises_mlp(self, bfs_results):
        assert bfs_results["dvr"].mlp > bfs_results["ooo"].mlp * 1.5

    def test_dvr_shifts_dram_traffic_to_runahead(self, bfs_results):
        base_main, _ = bfs_results["ooo"].dram_split()
        dvr_main, dvr_runahead = bfs_results["dvr"].dram_split()
        assert dvr_main < base_main
        assert dvr_runahead > 0

    def test_dvr_timeliness_mostly_on_chip(self, bfs_results):
        fractions = bfs_results["dvr"].timeliness_fractions("dvr")
        on_chip = fractions["L1"] + fractions["L2"] + fractions["L3"]
        assert on_chip > 0.5

    def test_stats_present_for_figures(self, bfs_results):
        dvr = bfs_results["dvr"]
        assert dvr.engine_stats["dvr_spawns"] > 0
        assert dvr.engine_stats["dvr_lane_loads"] > 0
        assert sum(dvr.dram_accesses.values()) > 0


class TestRobSweepBehavior:
    """The Fig 2 / Fig 12 contrast on a single workload."""

    @pytest.fixture(scope="class")
    def sweep(self):
        config = SimConfig(max_instructions=10_000)
        out = {}
        for rob in (128, 350):
            for technique in ("ooo", "dvr"):
                built = build_chain_workload(n=65536)
                out[(rob, technique)] = run_built(
                    built,
                    config.with_technique(technique).with_rob(rob))
        return out

    def test_bigger_rob_helps_baseline(self, sweep):
        assert sweep[(350, "ooo")].ipc >= sweep[(128, "ooo")].ipc

    def test_rob_stall_fraction_falls_with_size(self, sweep):
        assert (sweep[(350, "ooo")].rob_full_fraction <=
                sweep[(128, "ooo")].rob_full_fraction + 1e-9)

    def test_dvr_gain_survives_large_rob(self, sweep):
        """Fig 12: DVR keeps helping at 350 entries."""
        gain_350 = sweep[(350, "dvr")].ipc / sweep[(350, "ooo")].ipc
        assert gain_350 > 1.0


class TestArchitecturalConsistency:
    def test_all_techniques_converge_to_same_state(self, tiny_graph):
        """Running BFS to completion under every technique yields the
        same visited set (runahead is invisible architecturally)."""
        finals = {}
        config = SimConfig(max_instructions=5_000_000)
        for technique in ALL_TECHNIQUES:
            built = Bfs(graph=tiny_graph).build(
                memory_bytes=64 * 1024 * 1024)
            run_built(built, config.with_technique(technique))
            assert built.reference_check(built.memory), technique
            finals[technique] = True
        assert len(finals) == len(ALL_TECHNIQUES)

    def test_metrics_reproducible(self):
        """The simulator is deterministic: same inputs, same cycles."""
        config = SimConfig(max_instructions=5_000).with_technique("dvr")
        first = run_built(build_chain_workload(n=8192), config)
        second = run_built(build_chain_workload(n=8192), config)
        assert first.cycles == second.cycles
        assert first.dram_accesses == second.dram_accesses


class TestHpcDbBehavior:
    def test_camel_chain_covered_by_dvr(self):
        config = SimConfig(max_instructions=8_000)
        base = run_workload(make_workload("camel"), config, technique="ooo")
        dvr = run_workload(make_workload("camel"), config, technique="dvr")
        assert dvr.ipc >= base.ipc * 0.97
        assert dvr.engine_stats["dvr_spawns"] > 0

    def test_nas_is_simple_indirection_helps_imp(self):
        """IMP's bread-and-butter pattern: count[key[i]]++ (paper: IMP
        detects simple-indirect patterns in cc, Camel, NAS-IS)."""
        config = SimConfig(max_instructions=8_000)
        imp = run_workload(make_workload("nas-is"), config, technique="imp")
        assert imp.engine_stats == {} or True
        assert imp.dram_accesses.get("imp", 0) >= 0  # ran without error

    def test_vr_triggers_on_hpcdb(self):
        """hpc-db kernels have predictable branches, so the ROB fills and
        VR gets its trigger (unlike the GAP kernels at 350 entries)."""
        config = SimConfig(max_instructions=8_000)
        vr = run_workload(make_workload("randomaccess"), config,
                          technique="vr")
        assert vr.engine_stats["vr_intervals"] > 0
        assert vr.rob_full_cycles > 0
