"""Public-API contract: everything the README shows must keep working."""

import pytest

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_readme_quickstart_surface(self):
        """The exact objects the README's quickstart uses."""
        config = repro.SimConfig(max_instructions=1_000)
        workload = repro.make_workload("nas-is", num_keys=2000,
                                       log2_buckets=12)
        metrics = repro.run_workload(workload, config, technique="dvr")
        assert metrics.ipc > 0
        assert isinstance(metrics.engine_stats, dict)
        assert isinstance(metrics.timeliness_fractions("dvr"), dict)
        assert isinstance(metrics.cpi_stack, dict)

    def test_technique_constants_consistent(self):
        assert repro.TECH_DVR in repro.ALL_TECHNIQUES
        assert repro.TECH_ORACLE in repro.ALL_TECHNIQUES
        assert repro.TECH_DVR_OFFLOAD in repro.DVR_BREAKDOWN

    def test_benchmark_matrix_export(self):
        pairs = repro.benchmark_matrix(small=True)
        assert all(hasattr(factory, "build") for _, factory in pairs)

    def test_paper_config_export(self):
        config = repro.paper_config(technique="vr")
        assert config.technique == "vr"
        assert dict(repro.table1_rows(config))["ROB size"] == "350"

    def test_hmean_export(self):
        assert repro.hmean([2.0, 2.0]) == pytest.approx(2.0)
