"""Tests for the figure/table experiment definitions at micro scale.

These run real (tiny) simulations through every experiment function and
check the result structures are well-formed and the trends the benches
assert on are computable.  The heavyweight, paper-scale runs live under
``benchmarks/``.
"""

import pytest

from repro.harness.experiments import (ALL_EXPERIMENTS, ExperimentScale,
                                       fig2_rob_sweep, fig7_performance,
                                       fig8_breakdown, fig9_mlp,
                                       fig10_accuracy, fig11_timeliness,
                                       fig12_dvr_rob, table1_config,
                                       table2_graphs)


@pytest.fixture(scope="module")
def micro_scale(request):
    """One tiny GAP input + two small hpc-db kernels, 3k-instr ROIs."""
    from repro.workloads.graphs import GRAPH_INPUTS, GraphSpec
    name = "XPG"
    GRAPH_INPUTS[name] = GraphSpec(name, "rmat", 10, 10)
    request.addfinalizer(lambda: GRAPH_INPUTS.pop(name, None))
    return ExperimentScale(gap_graphs=(name,),
                           hpcdb=("kangaroo", "nas-is"),
                           max_instructions=3_000)


class TestStructure:
    def test_registry_covers_every_artifact(self):
        assert set(ALL_EXPERIMENTS) == {
            "table1", "table2", "fig2", "fig7", "fig8", "fig9", "fig10",
            "fig11", "fig12"}

    def test_table1_static(self):
        result = table1_config()
        assert len(result.rows) >= 10
        assert result.render()


class TestFigureRuns:
    def test_fig7(self, micro_scale):
        result = fig7_performance(micro_scale)
        # 5 GAP kernels x 1 graph + 2 hpc-db + H-mean row.
        assert len(result.rows) == 5 + 2 + 1
        assert result.rows[-1][0] == "H-mean"
        for row in result.rows:
            for value in row[1:]:
                assert value > 0
        assert "dvr" in result.headers

    def test_fig8(self, micro_scale):
        result = fig8_breakdown(micro_scale)
        assert result.headers[1:] == ["vr", "dvr-offload", "dvr-discovery",
                                      "dvr"]
        assert all(value > 0 for value in result.rows[-1][1:])

    def test_fig9(self, micro_scale):
        result = fig9_mlp(micro_scale)
        means = dict(zip(result.headers[1:], result.rows[-1][1:]))
        assert 0 < means["OoO"] <= 24
        assert 0 < means["DVR"] <= 24

    def test_fig10(self, micro_scale):
        result = fig10_accuracy(micro_scale)
        for row in result.rows:
            assert all(value >= 0 for value in row[1:])

    def test_fig11(self, micro_scale):
        result = fig11_timeliness(micro_scale)
        for row in result.rows:
            total = sum(row[1:])
            assert total == pytest.approx(100.0, abs=1e-6) or total == 0.0

    def test_fig2_micro(self, micro_scale):
        result = fig2_rob_sweep(micro_scale, rob_sizes=(128, 350))
        sizes = [row[0] for row in result.rows]
        assert sizes == [128, 350]
        stall = {row[0]: row[3] for row in result.rows}
        assert 0 <= stall[350] <= 100

    def test_fig12_micro(self, micro_scale):
        result = fig12_dvr_rob(micro_scale, rob_sizes=(128, 350))
        for row in result.rows:
            assert row[2] > 0  # DVR speedup positive

    def test_fig12_scaled_backend(self, micro_scale):
        result = fig12_dvr_rob(micro_scale, rob_sizes=(350,),
                               scale_backend=True)
        assert result.rows[0][2] > 0

    def test_table2(self, micro_scale):
        result = table2_graphs(micro_scale)
        names = [row[0] for row in result.rows]
        # All registered inputs appear, including the paper's five.
        for expected in ("KR", "UR"):
            assert expected in names
