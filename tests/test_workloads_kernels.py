"""End-to-end functional correctness of all 13 workload kernels.

Each kernel is run *functionally* to completion on a small instance and
checked against its independent pure-Python reference -- validating the
guest assembly, the assembler, and the ISA semantics together.
"""

import pytest

from repro.isa.machine import run_functional
from repro.workloads import (ALL_WORKLOADS, GAP_WORKLOADS, HPCDB_WORKLOADS,
                             benchmark_matrix, make_workload)

SMALL_PARAMS = {
    "camel": dict(num_keys=600, log2_table=12),
    "hj2": dict(num_keys=600, log2_table=12),
    "hj8": dict(num_keys=300, log2_table=12),
    "kangaroo": dict(num_keys=600, log2_table=12),
    "nas-cg": dict(num_rows=150, nnz_per_row=8, log2_x=12),
    "nas-is": dict(num_keys=1500, log2_buckets=12),
    "randomaccess": dict(num_updates=1500, log2_table=12),
}


def build_small(name, tiny_graph):
    if name in GAP_WORKLOADS:
        workload = make_workload(name, graph=tiny_graph)
    elif name in SMALL_PARAMS:
        workload = make_workload(name, **SMALL_PARAMS[name])
    else:
        workload = make_workload(name)  # graph500 uses its KR default
    return workload.build(memory_bytes=64 * 1024 * 1024)


@pytest.mark.parametrize("name", sorted(GAP_WORKLOADS))
def test_gap_kernel_matches_reference(name, tiny_graph):
    built = build_small(name, tiny_graph)
    _, count = run_functional(built.program, built.memory,
                              max_instructions=20_000_000)
    assert count < 20_000_000, "kernel did not terminate"
    assert built.reference_check(built.memory)


@pytest.mark.parametrize("name", sorted(SMALL_PARAMS))
def test_hpcdb_kernel_matches_reference(name, tiny_graph):
    built = build_small(name, tiny_graph)
    _, count = run_functional(built.program, built.memory,
                              max_instructions=20_000_000)
    assert count < 20_000_000
    assert built.reference_check(built.memory)


def test_graph500_is_bfs_on_kron(tiny_graph):
    built = build_small("graph500", tiny_graph)
    assert built.name == "graph500"
    _, count = run_functional(built.program, built.memory,
                              max_instructions=20_000_000)
    assert built.reference_check(built.memory)


class TestWorkloadShapes:
    """Structural properties the techniques depend on."""

    def test_gap_kernels_have_two_striding_loads(self, tiny_graph):
        """Every GAP kernel must expose an outer and an inner striding
        load (Algorithm 1's lines 4 and 8)."""
        for name in ("bfs", "sssp", "bc"):
            built = build_small(name, tiny_graph)
            loads = [ins for ins in built.program if ins.is_load]
            assert len(loads) >= 4

    def test_hpcdb_single_loop_kernels(self):
        for name in ("camel", "nas-is", "randomaccess"):
            built = build_small(name, None)
            branches = [ins for ins in built.program if ins.is_cond_branch]
            assert branches, f"{name} has no loop branch"

    def test_metadata_present(self, tiny_graph):
        for name in sorted(ALL_WORKLOADS):
            built = build_small(name, tiny_graph)
            assert built.metadata

    def test_benchmark_matrix_covers_paper(self):
        pairs = benchmark_matrix()
        labels = [label for label, _ in pairs]
        assert len(labels) == 5 * 5 + 8  # 25 GAP combos + 8 hpc-db
        assert "bfs_KR" in labels and "sssp_UR" in labels
        assert "camel" in labels and "randomaccess" in labels

    def test_benchmark_matrix_small(self):
        pairs = benchmark_matrix(small=True)
        assert len(pairs) == 5 + 8

    def test_make_workload_unknown_raises(self):
        with pytest.raises(KeyError):
            make_workload("nope")

    def test_builds_are_independent(self, tiny_graph):
        """Two builds of the same workload never share guest memory."""
        workload = make_workload("bfs", graph=tiny_graph)
        a = workload.build(memory_bytes=64 * 1024 * 1024)
        b = workload.build(memory_bytes=64 * 1024 * 1024)
        assert a.memory is not b.memory
        run_functional(a.program, a.memory, max_instructions=1_000_000)
        assert b.reference_check is not None
