"""Detailed unit tests for the PRE future-walker semantics."""

import pytest

from repro.config import SimConfig
from repro.isa import Assembler, GuestMemory
from repro.memsys import MemoryHierarchy
from repro.runahead.pre import PreEngine, _INVALID
from repro.workloads.base import BuiltWorkload


def make_pre(program, mem, config=None):
    config = config or SimConfig()
    hierarchy = MemoryHierarchy(config.memsys, config.stride_pf, config.imp,
                                mem)
    engine = PreEngine(config, program, mem, hierarchy)
    return engine, hierarchy


def walker_program():
    mem = GuestMemory(16 * 1024 * 1024)
    base_a = mem.alloc_array(list(range(1024)), "A")
    base_b = mem.alloc_array(list(range(1024)), "B")
    a = Assembler("walk")
    a.li("r1", base_a)
    a.li("r2", base_b)
    a.li("r3", 0)
    a.label("loop")
    a.loadx("r4", "r1", "r3")   # A[i]
    a.loadx("r5", "r2", "r4")   # B[A[i]] -- depends on the first load
    a.add("r6", "r6", "r5")
    a.addi("r3", "r3", 1)
    a.cmplti("r7", "r3", 1024)
    a.bnz("r7", "loop")
    a.halt()
    return a.build(), mem, base_a, base_b


class TestWalkerSemantics:
    def _armed_engine(self):
        program, mem, base_a, base_b = walker_program()
        engine, hierarchy = make_pre(program, mem)
        engine.active = True
        engine._exit_cycle = 1 << 30
        engine._budget = 10_000
        engine._regs = [0] * 32
        engine._regs[1] = base_a
        engine._regs[2] = base_b
        engine._regs[3] = 0
        engine._pc = 3  # the loop label
        return engine, hierarchy, base_a, base_b

    def test_miss_marks_destination_invalid(self):
        engine, hierarchy, base_a, _ = self._armed_engine()
        engine._walk_one(now=0)  # cold A[0] load: miss
        assert engine._regs[4] is _INVALID

    def test_dependent_load_blocked_by_invalid(self):
        engine, hierarchy, _, _ = self._armed_engine()
        engine._walk_one(0)   # A load -> INV
        engine._walk_one(0)   # B load: address INV -> no prefetch
        assert engine._regs[5] is _INVALID
        assert engine.prefetches <= 1  # only the A-level prefetch

    def test_hit_supplies_value(self):
        engine, hierarchy, base_a, _ = self._armed_engine()
        result = hierarchy.demand_load(base_a, 0, 0, 0)
        hierarchy.tick(result.complete_cycle + 1)
        engine._walk_one(now=result.complete_cycle + 1)
        assert engine._regs[4] == 0  # A[0] == 0, read from the warm line

    def test_invalid_branch_uses_btfn(self):
        """Unknown branch condition: backward-taken / forward-not-taken."""
        engine, _, _, _ = self._armed_engine()
        engine._regs[7] = _INVALID
        engine._pc = 8  # the backward bnz
        engine._walk_one(0)
        assert engine._pc == 3  # backward branch predicted taken

    def test_alu_propagates_invalid(self):
        engine, _, _, _ = self._armed_engine()
        engine._regs[6] = 0
        engine._regs[5] = _INVALID
        engine._pc = 5  # add r6, r6, r5
        engine._walk_one(0)
        assert engine._regs[6] is _INVALID

    def test_halt_stops_walk(self):
        engine, _, _, _ = self._armed_engine()
        engine._pc = 9  # halt
        assert not engine._walk_one(0)

    def test_store_skipped(self):
        mem = GuestMemory(1 << 20)
        out = mem.alloc_array([0], "out")
        a = Assembler()
        a.li("r1", out)
        a.li("r2", 42)
        a.store("r2", "r1", 0)
        a.halt()
        program = a.build()
        engine, _ = make_pre(program, mem)
        engine.active = True
        engine._exit_cycle = 1 << 30
        engine._budget = 100
        engine._regs = [0] * 32
        engine._regs[1] = out
        engine._regs[2] = 42
        engine._pc = 2
        engine._walk_one(0)
        assert mem.read_word(out) == 0  # runahead never writes memory


class TestInterval:
    def test_interval_ends_when_head_returns(self):
        program, mem, base_a, _ = walker_program()
        engine, hierarchy = make_pre(program, mem)
        engine.active = True
        engine._exit_cycle = 100
        engine._budget = 1_000
        engine._regs = [0] * 32
        engine._regs[1] = base_a
        engine._pc = 3

        class Ports:
            width = 5
        engine.tick(now=99, ports=Ports())
        assert engine.active
        engine.tick(now=100, ports=Ports())
        assert not engine.active

    def test_budget_bounds_walk(self):
        program, mem, base_a, base_b = walker_program()
        config = SimConfig()
        config.runahead.pre_max_instructions = 7
        engine, hierarchy = make_pre(program, mem, config)
        engine.active = True
        engine._exit_cycle = 1 << 30
        engine._budget = config.runahead.pre_max_instructions
        engine._regs = [0] * 32
        engine._regs[1] = base_a
        engine._regs[2] = base_b
        engine._pc = 3

        class Ports:
            width = 5
        for now in range(10):
            engine.tick(now, Ports())
        assert engine.instructions_walked <= 7
        assert not engine.active
