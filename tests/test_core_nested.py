"""Tests for Nested Discovery Mode on a genuine two-level loop nest."""

import random

import pytest

from repro.config import SimConfig
from repro.harness.runner import run_built
from repro.isa import Assembler, GuestMemory
from repro.workloads.base import BuiltWorkload
from repro.workloads.gap import Bfs


def nested_workload(num_outer=2048, inner_len=4, seed=5, branchy=False,
                    memory_bytes=64 * 1024 * 1024):
    """An outer loop whose inner loop has only ``inner_len`` iterations:

        for i: s = starts[i]; e = s + inner_len
               for j in [s, e): v = data[idx[j]]
                                if branchy and v odd: sum += v

    Short inner loops force Discovery Mode's bound below the NDM
    threshold, so full DVR must use Nested Discovery Mode.  ``branchy``
    adds a data-dependent branch (like BFS's visited check) whose
    mispredictions keep the out-of-order window -- and hence baseline
    MLP -- small, which is the regime NDM is for.
    """
    rnd = random.Random(seed)
    mem = GuestMemory(memory_bytes)
    total = num_outer * inner_len
    # Outer iteration i owns a *random* chunk of the index space (like a
    # BFS worklist visiting adjacency lists out of order).  If chunks were
    # contiguous, blind 128-lane over-fetch past the loop bound would be
    # accidentally correct (the paper's cc/pr observation) and NDM would
    # have nothing to add.
    chunk_order = list(range(num_outer))
    rnd.shuffle(chunk_order)
    starts = mem.alloc_array([chunk * inner_len for chunk in chunk_order],
                             "starts")
    idx = mem.alloc_array([rnd.randrange(1 << 16) for _ in range(total)],
                          "idx")
    data = mem.alloc_array([rnd.randrange(1 << 20) for _ in range(1 << 16)],
                           "data")

    a = Assembler("nested")
    for name, reg in [("rSt", 1), ("rIdx", 2), ("rDat", 3), ("rI", 4),
                      ("rN", 5), ("rS", 6), ("rE", 7), ("rJ", 8),
                      ("rT", 9), ("rV", 10), ("rSum", 11), ("rC", 12)]:
        a.alias(name, reg)
    a.li("rSt", starts)
    a.li("rIdx", idx)
    a.li("rDat", data)
    a.li("rI", 0)
    a.li("rN", num_outer)
    a.label("outer")
    a.loadx("rS", "rSt", "rI")     # outer striding load
    a.addi("rI", "rI", 1)
    a.addi("rE", "rS", inner_len)
    a.mov("rJ", "rS")
    a.label("inner")
    a.loadx("rT", "rIdx", "rJ")    # inner striding load
    a.addi("rJ", "rJ", 1)
    a.loadx("rV", "rDat", "rT")    # dependent indirect load (FLR)
    if branchy:
        a.andi("rC", "rV", 1)
        a.bez("rC", "skip")
        a.add("rSum", "rSum", "rV")
        a.label("skip")
    else:
        a.add("rSum", "rSum", "rV")
    a.cmplt("rC", "rJ", "rE")
    a.bnz("rC", "inner")           # bottom-tested backward branch
    a.cmplt("rC", "rI", "rN")
    a.bnz("rC", "outer")
    a.halt()
    return BuiltWorkload("nested", a.build(), mem,
                         metadata={"inner_len": inner_len})


def run_dvr(built, max_instructions=8000, nested_enabled=True):
    technique = "dvr" if nested_enabled else "dvr-discovery"
    config = SimConfig(max_instructions=max_instructions,
                       technique=technique).with_technique(technique)
    return run_built(built, config)


class TestNestedTrigger:
    def test_short_inner_loop_enters_ndm(self):
        metrics = run_dvr(nested_workload())
        assert metrics.engine_stats["dvr_ndm_entries"] > 0

    def test_long_inner_loop_mostly_avoids_ndm(self):
        """With 256-iteration inner loops, most spawns see >= 64 remaining
        iterations and vectorize directly; NDM may still fire near a
        loop's tail (remaining legitimately drops below the threshold)."""
        metrics = run_dvr(nested_workload(num_outer=64, inner_len=256))
        stats = metrics.engine_stats
        assert stats["dvr_spawns"] > 0
        assert stats["dvr_ndm_entries"] <= stats["dvr_spawns"] / 2

    def test_nested_disabled_by_ablation(self):
        metrics = run_dvr(nested_workload(), nested_enabled=False)
        assert metrics.engine_stats["dvr_ndm_entries"] == 0


class TestNestedExpansion:
    def test_expansion_reaches_many_inner_lanes(self):
        """16 outer lanes x 4-iteration inner loops = 64 inner lanes."""
        metrics = run_dvr(nested_workload(inner_len=4))
        stats = metrics.engine_stats
        spawns = max(1, stats["dvr_ndm_entries"] - stats["dvr_ndm_fallbacks"])
        lanes_per_entry = stats["dvr_ndm_inner_lanes"] / spawns
        assert lanes_per_entry >= 32  # far beyond one inner loop (4)

    def test_nested_beats_bound_limited_dvr(self):
        """Full DVR (with NDM) must out-prefetch discovery-only DVR on
        short inner loops -- the whole point of Section 4.3.  The branchy
        variant keeps the baseline window (and its MLP) small, which is
        the regime where coverage differences show up as performance."""
        with_ndm = run_dvr(nested_workload(branchy=True))
        without = run_dvr(nested_workload(branchy=True),
                          nested_enabled=False)
        assert with_ndm.ipc > without.ipc * 1.05

    def test_inner_lane_cap_respected(self):
        metrics = run_dvr(nested_workload(inner_len=32))
        stats = metrics.engine_stats
        entries = stats["dvr_ndm_entries"] - stats["dvr_ndm_fallbacks"]
        if entries > 0:
            assert stats["dvr_ndm_inner_lanes"] / entries <= 128


class TestNestedFallback:
    def test_fallback_when_no_outer_stride(self):
        """A short loop with no enclosing striding load must fall back to
        loop-bound vectorization within the 200-instruction NDM budget."""
        rnd = random.Random(7)
        mem = GuestMemory(64 * 1024 * 1024)
        n = 4096
        idx = mem.alloc_array([rnd.randrange(1 << 14) for _ in range(n)],
                              "idx")
        data = mem.alloc(1 << 14, "data")
        a = Assembler("flat")
        for name, reg in [("rIdx", 1), ("rDat", 2), ("rJ", 3), ("rE", 4),
                          ("rT", 5), ("rV", 6), ("rSum", 7), ("rC", 8),
                          ("rN", 9)]:
            a.alias(name, reg)
        a.li("rIdx", idx)
        a.li("rDat", data)
        a.li("rJ", 0)
        a.li("rN", n)
        a.label("chunk")
        a.addi("rE", "rJ", 6)          # tiny "inner" bound, no outer stride
        a.label("inner")
        a.loadx("rT", "rIdx", "rJ")
        a.addi("rJ", "rJ", 1)
        a.loadx("rV", "rDat", "rT")
        a.add("rSum", "rSum", "rV")
        a.cmplt("rC", "rJ", "rE")
        a.bnz("rC", "inner")
        a.cmplt("rC", "rJ", "rN")
        a.bnz("rC", "chunk")
        a.halt()
        built = BuiltWorkload("flat", a.build(), mem)
        metrics = run_dvr(built)
        stats = metrics.engine_stats
        assert stats["dvr_ndm_entries"] > 0
        assert stats["dvr_ndm_fallbacks"] > 0

    def test_bfs_uniform_graph_uses_ndm(self, tiny_uniform_graph):
        """Uniform-degree graphs have short adjacency lists -- the
        motivating case for NDM (paper Section 6.1, UR input)."""
        built = Bfs(graph=tiny_uniform_graph).build(
            memory_bytes=64 * 1024 * 1024)
        metrics = run_dvr(built)
        assert metrics.engine_stats["dvr_ndm_entries"] > 0
