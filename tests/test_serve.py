"""Tests for ``repro.serve``: the always-on sweep daemon.

Covers the fair-share queue, the shared content-addressed store (and
the local-cache/shared-store stack), the generation lock that makes
cache pruning safe against concurrent writers, and the full loopback
path: a daemon plus in-process workers serving two concurrent clients
with overlapping sweeps -- overlapping specs run once, both clients see
metrics bit-identical to the serial backend, the store survives a
daemon restart, and one client disconnecting mid-sweep leaves the other
(and the fleet) undisturbed.  The TLS class runs the same loopback over
``ssl`` with CA verification on the worker side and fingerprint pinning
on the client side.
"""

from __future__ import annotations

import json
import subprocess
import threading
import time

import pytest

from repro.config import SimConfig, TECH_DVR, TECH_OOO
from repro.cluster import (ProtocolError, TLSConfig, Worker,
                           certificate_fingerprint, query_status)
from repro.harness.runner import run_spec
from repro.jobs import (Executor, JobSpec, NullCache, ResultCache,
                        RunLedger, generation_lock)
from repro.serve import (CacheStack, FairShareQueue, ServeClient,
                         ServeDaemon, ServeExecutor, ServeJob,
                         ServeRejected, SharedStore)


def _spec(workload="nas-is", technique=TECH_OOO, seed=12345,
          max_instructions=1_500, **params):
    config = SimConfig(max_instructions=max_instructions
                       ).with_technique(technique)
    return JobSpec(workload=workload, params=params, config=config,
                   seed=seed)


def _sweep_specs(count=6):
    """Distinct cheap specs (unique seeds) for multi-job sweeps."""
    return [_spec(workload=w, technique=t, seed=s)
            for s, (w, t) in enumerate(
                [("nas-is", TECH_OOO), ("kangaroo", TECH_OOO),
                 ("randomaccess", TECH_OOO), ("nas-is", TECH_DVR),
                 ("camel", TECH_OOO), ("hj2", TECH_OOO),
                 ("kangaroo", TECH_DVR), ("randomaccess", TECH_DVR)],
                start=1)][:count]


def _canon(metrics):
    return json.dumps(metrics.to_dict(), sort_keys=True)


# ---------------------------------------------------------------------------
# Fair-share queue
# ---------------------------------------------------------------------------
class TestFairShareQueue:
    def _job(self, seed, session):
        return ServeJob(_spec(seed=seed), session)

    def test_round_robin_across_sessions(self):
        queue = FairShareQueue()
        for seed, session in [(1, "a"), (2, "a"), (3, "b"), (4, "b"),
                              (5, "c")]:
            queue.add(self._job(seed, session))
        order = [queue.next_job(now=0.0).session_id for _ in range(5)]
        # One lease per session per rotation, not a-a-b-b-c.
        assert order == ["a", "b", "c", "a", "b"]
        assert queue.next_job(now=0.0) is None
        assert len(queue) == 0

    def test_backoff_gated_jobs_are_skipped_not_blocking(self):
        queue = FairShareQueue()
        gated = self._job(1, "a")
        gated.not_before = 100.0
        queue.add(gated)
        queue.add(self._job(2, "a"))
        job = queue.next_job(now=0.0)
        assert job is not None and job.spec.seed == 2
        assert queue.next_job(now=0.0) is None      # only the gated one left
        assert queue.next_job(now=100.0) is gated   # gate expired

    def test_front_requeue_preserves_priority(self):
        queue = FairShareQueue()
        queue.add(self._job(1, "a"))
        first = queue.next_job(now=0.0)
        queue.add(self._job(2, "a"))
        queue.add(first, front=True)                # lease failed: retry first
        assert queue.next_job(now=0.0) is first

    def test_drop_session_returns_jobs_keeps_others(self):
        queue = FairShareQueue()
        mine = [self._job(1, "a"), self._job(2, "a")]
        other = self._job(3, "b")
        for job in mine + [other]:
            queue.add(job)
        dropped = queue.drop_session("a")
        assert dropped == mine
        assert queue.sessions() == ["b"]
        assert queue.next_job(now=0.0) is other

    def test_drain_empties_everything(self):
        queue = FairShareQueue()
        jobs = [self._job(1, "a"), self._job(2, "b")]
        for job in jobs:
            queue.add(job)
        assert set(j.key for j in queue.drain()) == set(j.key for j in jobs)
        assert len(queue) == 0
        assert queue.next_job(now=0.0) is None


# ---------------------------------------------------------------------------
# Shared store + cache stack
# ---------------------------------------------------------------------------
class TestSharedStore:
    def test_round_trip_and_restart(self, tmp_path):
        store = SharedStore(str(tmp_path / "store"))
        spec = _spec()
        assert store.get(spec) is None
        metrics = run_spec(spec)
        store.put(spec, metrics)
        assert _canon(store.get(spec)) == _canon(metrics)
        # A fresh instance on the same root (a restarted daemon, another
        # coordinator) serves the same entry.
        again = SharedStore(str(tmp_path / "store"))
        assert _canon(again.get(spec)) == _canon(metrics)
        assert again.hits == 1

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        store = SharedStore(str(tmp_path / "store"))
        spec = _spec()
        store.put(spec, run_spec(spec))
        path = store._path(spec.key)
        with open(path, "w") as handle:
            handle.write("{not json")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert store.get(spec) is None
        assert store.corrupt == 1

    def test_checksum_mismatch_rejected(self, tmp_path):
        store = SharedStore(str(tmp_path / "store"))
        spec = _spec()
        store.put(spec, run_spec(spec))
        path = store._path(spec.key)
        with open(path) as handle:
            payload = json.load(handle)
        payload["metrics"]["cycles"] = 1          # tampered result
        with open(path, "w") as handle:
            json.dump(payload, handle)
        with pytest.warns(RuntimeWarning, match="checksum"):
            assert store.get(spec) is None

    def test_stats_and_stale_generation_prune(self, tmp_path):
        store = SharedStore(str(tmp_path / "store"))
        spec = _spec()
        store.put(spec, run_spec(spec))
        stale = SharedStore(str(tmp_path / "store"), salt="deadbeef")
        stale.put(spec, run_spec(spec))
        stats = store.stats()
        assert stats["generations"][store.salt]["entries"] == 1
        assert stats["generations"]["deadbeef"]["entries"] == 1
        assert store.prune() == 1                 # drops only the stale salt
        assert store.get(spec) is not None

    def test_cache_stack_backfills_upper_layer(self, tmp_path):
        local = ResultCache(str(tmp_path / "local"))
        shared = SharedStore(str(tmp_path / "store"))
        stack = CacheStack(local, shared)
        spec = _spec()
        metrics = run_spec(spec)
        shared.put(spec, metrics)                 # another machine's sweep
        assert local.get(spec) is None
        assert _canon(stack.get(spec)) == _canon(metrics)
        # The hit was backfilled: now the local layer answers directly.
        assert _canon(local.get(spec)) == _canon(metrics)

    def test_cache_stack_put_writes_all_layers(self, tmp_path):
        local = ResultCache(str(tmp_path / "local"))
        shared = SharedStore(str(tmp_path / "store"))
        stack = CacheStack(local, shared)
        spec = _spec()
        metrics = run_spec(spec)
        stack.put(spec, metrics)
        assert local.get(spec) is not None
        assert shared.get(spec) is not None


# ---------------------------------------------------------------------------
# Generation lock (ResultCache.prune vs concurrent writer)
# ---------------------------------------------------------------------------
class TestGenerationLock:
    def test_shared_holders_do_not_exclude_each_other(self, tmp_path):
        root = str(tmp_path)
        with generation_lock(root):
            entered = threading.Event()

            def other_writer():
                with generation_lock(root):
                    entered.set()

            thread = threading.Thread(target=other_writer)
            thread.start()
            thread.join(timeout=5)
            assert entered.is_set()

    def test_exclusive_waits_for_writer(self, tmp_path):
        """The satellite race: prune must not run mid-publication."""
        root = str(tmp_path)
        release = threading.Event()
        writing = threading.Event()
        pruned_at = []

        def writer():
            with generation_lock(root):            # shared, like put()
                writing.set()
                release.wait(timeout=10)

        def pruner():
            with generation_lock(root, exclusive=True):
                pruned_at.append(time.monotonic())

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        assert writing.wait(timeout=5)
        pruner_thread = threading.Thread(target=pruner)
        pruner_thread.start()
        time.sleep(0.2)
        assert not pruned_at                       # blocked behind the writer
        released_at = time.monotonic()
        release.set()
        writer_thread.join(timeout=5)
        pruner_thread.join(timeout=5)
        assert pruned_at and pruned_at[0] >= released_at

    def test_prune_does_not_lose_concurrent_put(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = _spec()
        metrics = run_spec(spec)
        stop = threading.Event()

        def keep_writing():
            while not stop.is_set():
                cache.put(spec, metrics)

        thread = threading.Thread(target=keep_writing)
        thread.start()
        try:
            for _ in range(10):
                cache.prune()
                cache.prune_to_bytes(10**9)
        finally:
            stop.set()
            thread.join(timeout=10)
        assert _canon(cache.get(spec)) == _canon(metrics)

    def test_clear_keeps_the_lock_file_working(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = _spec()
        cache.put(spec, run_spec(spec))
        assert cache.clear() == 1
        cache.put(spec, run_spec(spec))           # lock + dir still usable
        assert cache.get(spec) is not None


# ---------------------------------------------------------------------------
# Loopback daemon helpers
# ---------------------------------------------------------------------------
def _daemon(tmp_path, *, store=True, tls=None, workers=2, worker_tls=None,
            **kwargs):
    """A started daemon plus ``workers`` in-process thread workers."""
    shared = SharedStore(str(tmp_path / "store")) if store else None
    ledger = RunLedger(str(tmp_path / "daemon-runs.jsonl"))
    daemon = ServeDaemon(store=shared, ledger=ledger, tls=tls,
                         retry_base=0.05, retry_cap=0.2, job_timeout=120,
                         quiet=True, **kwargs)
    daemon.start()
    threads = []
    for index in range(workers):
        worker = Worker(f"127.0.0.1:{daemon.coordinator.port}",
                        worker_id=f"tw{index}", run_job=run_spec,
                        tls=worker_tls)
        thread = threading.Thread(target=worker.serve, daemon=True)
        thread.start()
        threads.append(thread)
    if workers:
        daemon.coordinator.wait_for_workers(workers, timeout=60)
    return daemon


def _run_client(daemon, specs, *, tls=None, collect_meta=False, **kwargs):
    """One ServeClient session: submit ``specs``, gather all results."""
    client = ServeClient(f"127.0.0.1:{daemon.coordinator.port}", tls=tls,
                         **kwargs)
    results = {}
    meta = {}

    def on_result(spec, metrics, *, worker, retries, wall_s, from_store):
        results[spec.key] = metrics
        meta[spec.key] = {"worker": worker, "from_store": from_store,
                          "retries": retries}

    try:
        failed = client.run(specs, on_result)
    finally:
        client.close()
    assert failed == {}
    ordered = [results[spec.key] for spec in specs]
    return (ordered, meta) if collect_meta else ordered


# ---------------------------------------------------------------------------
# End-to-end over plaintext loopback
# ---------------------------------------------------------------------------
class TestServeLoopback:
    def test_two_concurrent_clients_overlap_runs_once(self, tmp_path):
        """Satellite: overlapping specs run once, both clients get
        bit-identical Metrics, and a later client is served from the
        shared store."""
        specs = _sweep_specs(6)
        serial = {spec.key: metrics for spec, metrics in
                  zip(specs, Executor(jobs=1, cache=NullCache()).run(specs))}
        daemon = _daemon(tmp_path)
        try:
            specs_a, specs_b = specs[:4], specs[2:]     # 2-spec overlap
            outputs = {}
            errors = []

            def submit(name, client_specs):
                try:
                    outputs[name] = _run_client(daemon, client_specs)
                except BaseException as error:
                    errors.append((name, error))

            threads = [threading.Thread(target=submit, args=("a", specs_a)),
                       threading.Thread(target=submit, args=("b", specs_b))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300)
            assert not errors
            for name, client_specs in (("a", specs_a), ("b", specs_b)):
                for spec, metrics in zip(client_specs, outputs[name]):
                    assert _canon(metrics) == _canon(serial[spec.key])
            # Every unique spec executed exactly once, fleet-wide --
            # overlap was deduplicated (shared in flight or via store).
            assert daemon._stats["jobs_done"] == len(specs)

            # A third client re-submitting the union never reaches a
            # worker: the shared store answers everything.
            done_before = daemon._stats["jobs_done"]
            replay, meta = _run_client(daemon, specs, collect_meta=True)
            for spec, metrics in zip(specs, replay):
                assert _canon(metrics) == _canon(serial[spec.key])
            assert all(info["from_store"] for info in meta.values())
            assert all(info["worker"] == "store" for info in meta.values())
            assert daemon._stats["jobs_done"] == done_before
        finally:
            daemon.close()

    def test_store_survives_daemon_restart(self, tmp_path):
        specs = _sweep_specs(3)
        daemon = _daemon(tmp_path)
        try:
            first = _run_client(daemon, specs)
        finally:
            daemon.close()
        # Second daemon on the same store root: no workers at all, yet
        # the whole sweep settles from the store.
        daemon = _daemon(tmp_path, workers=0)
        try:
            replay, meta = _run_client(daemon, specs, collect_meta=True)
            for before, after in zip(first, replay):
                assert _canon(before) == _canon(after)
            assert all(info["from_store"] for info in meta.values())
        finally:
            daemon.close()

    def test_client_disconnect_mid_sweep_spares_the_other(self, tmp_path):
        """Acceptance: a vanishing client must not kill the fleet or the
        other session's sweep."""
        specs = _sweep_specs(6)
        serial = {spec.key: metrics for spec, metrics in
                  zip(specs, Executor(jobs=1, cache=NullCache()).run(specs))}
        daemon = _daemon(tmp_path, session_timeout=2.0)
        try:
            address = f"127.0.0.1:{daemon.coordinator.port}"
            doomed = ServeClient(address)
            doomed.connect()
            from repro.cluster.protocol import SUBMIT
            doomed._connection.send(
                SUBMIT, specs=[spec.to_dict() for spec in specs])
            time.sleep(0.3)                # let the sweep start dispatching
            doomed._stop_beat.set()
            doomed._connection.sock.close()     # abrupt: no GOODBYE

            survivor = _run_client(daemon, specs)
            for spec, metrics in zip(specs, survivor):
                assert _canon(metrics) == _canon(serial[spec.key])
            # Fleet intact, daemon answering, dead session reaped.
            info = query_status(address)
            assert info["daemon"]["fleet"] == 2
            assert daemon.registry.get(doomed.session_id) is None
        finally:
            daemon.close()

    def test_serve_executor_matches_serial_and_ledgers_hits(self, tmp_path):
        specs = _sweep_specs(4)
        serial = Executor(jobs=1, cache=NullCache()).run(specs)
        daemon = _daemon(tmp_path)
        try:
            address = f"127.0.0.1:{daemon.coordinator.port}"

            def executor(subdir):
                client = ServeClient(address)
                return client, ServeExecutor(
                    client, cache=ResultCache(str(tmp_path / subdir)),
                    ledger=RunLedger(str(tmp_path / subdir / "runs.jsonl")))

            client, first = executor("client-a")
            try:
                results = first.run(specs)
            finally:
                client.close()
            for expected, actual in zip(serial, results):
                assert _canon(actual) == _canon(expected)
            records = RunLedger.read(str(tmp_path / "client-a/runs.jsonl"))
            assert [r["cache"] for r in records] == ["miss"] * len(specs)

            # A second machine (fresh local cache): the daemon serves it
            # from the store and the executor ledgers *hits*, so the
            # cost model never learns zero-second rates.
            client, second = executor("client-b")
            try:
                results = second.run(specs)
            finally:
                client.close()
            for expected, actual in zip(serial, results):
                assert _canon(actual) == _canon(expected)
            records = RunLedger.read(str(tmp_path / "client-b/runs.jsonl"))
            assert [r["cache"] for r in records] == ["hit"] * len(specs)
            assert {str(r["worker"]) for r in records} == {"store"}
        finally:
            daemon.close()

    def test_stale_salt_client_rejected(self, tmp_path):
        daemon = _daemon(tmp_path, workers=0)
        try:
            client = ServeClient(f"127.0.0.1:{daemon.coordinator.port}",
                                 salt="stale-tree")
            with pytest.raises(ServeRejected, match="salt"):
                client.connect()
        finally:
            daemon.close()

    def test_status_reports_daemon_sessions_and_fleet(self, tmp_path):
        daemon = _daemon(tmp_path, workers=1)
        try:
            address = f"127.0.0.1:{daemon.coordinator.port}"
            client = ServeClient(address, client_id="status-probe")
            client.connect()
            try:
                deadline = time.monotonic() + 5
                while time.monotonic() < deadline:
                    info = query_status(address)
                    if info["daemon"]["sessions"]:
                        break
                    time.sleep(0.05)
                extra = info["daemon"]
                assert extra["uptime_s"] >= 0
                assert extra["fleet"] == 1
                assert extra["queued_jobs"] == 0
                (session,) = extra["sessions"]
                assert session["client"] == "status-probe"
                assert session["active_sweeps"] == 0
            finally:
                client.close()
        finally:
            daemon.close()


# ---------------------------------------------------------------------------
# TLS
# ---------------------------------------------------------------------------
@pytest.fixture(scope="session")
def tls_cert(tmp_path_factory):
    """Self-signed server certificate + key via the openssl CLI."""
    cert_dir = tmp_path_factory.mktemp("tls")
    cert, key = str(cert_dir / "serve.crt"), str(cert_dir / "serve.key")
    subprocess.run(
        ["openssl", "req", "-x509", "-newkey", "rsa:2048", "-nodes",
         "-keyout", key, "-out", cert, "-days", "2",
         "-subj", "/CN=repro-serve-test"],
        check=True, capture_output=True)
    return cert, key


class TestServeTLS:
    def test_tls_loopback_sweep_bit_identical(self, tmp_path, tls_cert):
        """Acceptance: TLS daemon, CA-verified workers, a fingerprint-
        pinned client -- results bit-identical to the serial backend."""
        cert, key = tls_cert
        specs = _sweep_specs(3)
        serial = Executor(jobs=1, cache=NullCache()).run(specs)
        daemon = _daemon(
            tmp_path, tls=TLSConfig.server(cert, key),
            worker_tls=TLSConfig.client(cafile=cert))
        try:
            pin = certificate_fingerprint(cert)
            results, meta = _run_client(
                daemon, specs, tls=TLSConfig.client(fingerprint=pin),
                collect_meta=True)
            for expected, actual in zip(serial, results):
                assert _canon(actual) == _canon(expected)
            assert not any(info["from_store"] for info in meta.values())
            info = query_status(f"127.0.0.1:{daemon.coordinator.port}",
                                tls=TLSConfig.client(cafile=cert))
            assert info["daemon"]["tls"] is True
        finally:
            daemon.close()

    def test_wrong_fingerprint_rejected(self, tmp_path, tls_cert):
        cert, key = tls_cert
        daemon = _daemon(tmp_path, tls=TLSConfig.server(cert, key),
                         workers=0)
        try:
            bogus = "sha256:" + "0" * 64
            client = ServeClient(f"127.0.0.1:{daemon.coordinator.port}",
                                 tls=TLSConfig.client(fingerprint=bogus))
            with pytest.raises(OSError):
                client.connect()
        finally:
            daemon.close()

    def test_plaintext_client_cannot_join_tls_daemon(self, tmp_path,
                                                     tls_cert):
        cert, key = tls_cert
        daemon = _daemon(tmp_path, tls=TLSConfig.server(cert, key),
                         workers=0)
        try:
            client = ServeClient(f"127.0.0.1:{daemon.coordinator.port}",
                                 tls=False, server_timeout=3.0)
            with pytest.raises((OSError, ProtocolError)):
                client.connect()
        finally:
            daemon.close()
