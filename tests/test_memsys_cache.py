"""Tests for the set-associative cache."""

import pytest
from hypothesis import given, strategies as st

from repro.config import CacheConfig
from repro.memsys.cache import Cache, CacheLine, SRC_DEMAND, SRC_DVR


def make_cache(size=4096, assoc=4, latency=2):
    return Cache(CacheConfig(size, assoc, latency), "test")


def line(source=SRC_DEMAND, ready_at=0, origin="L1"):
    return CacheLine(source, ready_at, origin)


class TestBasics:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert cache.lookup(100) is None
        cache.install(100, line())
        assert cache.lookup(100) is not None
        assert cache.hits == 1 and cache.misses == 1

    def test_contains_has_no_side_effects(self):
        cache = make_cache()
        cache.install(5, line())
        hits, misses = cache.hits, cache.misses
        assert cache.contains(5)
        assert not cache.contains(6)
        assert (cache.hits, cache.misses) == (hits, misses)

    def test_peek_returns_metadata(self):
        cache = make_cache()
        metadata = line(source=SRC_DVR)
        cache.install(5, metadata)
        assert cache.peek(5) is metadata
        assert cache.peek(6) is None

    def test_invalidate(self):
        cache = make_cache()
        cache.install(5, line())
        cache.invalidate(5)
        assert not cache.contains(5)

    def test_num_sets_power_of_two_required(self):
        with pytest.raises(ValueError):
            Cache(CacheConfig(3 * 64, 1, 1), "bad")


class TestLru:
    def test_evicts_least_recently_used(self):
        cache = make_cache(size=4 * 64, assoc=4)  # one set
        for addr in range(4):
            cache.install(addr, line())
        cache.lookup(0)  # refresh 0
        evicted = cache.install(99, line())
        assert evicted is not None
        assert evicted[0] == 1  # 1 is now the oldest

    def test_install_refill_keeps_existing_line(self):
        cache = make_cache()
        original = line(source=SRC_DVR, ready_at=100)
        cache.install(7, original)
        cache.install(7, line(source=SRC_DEMAND, ready_at=50))
        kept = cache.peek(7)
        assert kept is original
        assert kept.ready_at == 50  # earlier fill wins

    def test_set_isolation(self):
        cache = make_cache(size=8 * 64, assoc=4)  # two sets
        # Same set = even line addrs; fill set 0 beyond capacity.
        for k in range(5):
            cache.install(k * 2, line())
        assert cache.contains(1) is False
        # Set 1 untouched by set-0 evictions.
        cache.install(1, line())
        assert cache.contains(1)

    def test_full_set_evicts_exactly_one(self):
        cache = make_cache(size=4 * 64, assoc=4)
        for addr in range(4):
            cache.install(addr, line())
        evicted = cache.install(4, line())
        assert evicted is not None
        present = sum(1 for addr in range(5) if cache.contains(addr))
        assert present == 4


class TestSharedLineObjects:
    def test_used_bit_shared_across_levels(self):
        l1 = make_cache()
        l2 = make_cache(size=8192)
        shared = line(source=SRC_DVR)
        l1.install(3, shared)
        l2.install(3, shared)
        l1.peek(3).used = True
        assert l2.peek(3).used


@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                max_size=200))
def test_property_occupancy_never_exceeds_capacity(addresses):
    cache = make_cache(size=4 * 64 * 2, assoc=4)  # 2 sets x 4 ways
    for addr in addresses:
        if cache.lookup(addr) is None:
            cache.install(addr, line())
    for set_index in range(cache.num_sets):
        assert len(cache._sets[set_index]) <= cache.assoc


@given(st.lists(st.integers(min_value=0, max_value=31), min_size=1,
                max_size=100))
def test_property_most_recent_install_always_resident(addresses):
    cache = make_cache(size=4 * 64 * 2, assoc=4)
    for addr in addresses:
        cache.install(addr, line())
        assert cache.contains(addr)
