"""Concretizer edge cases: expansion, dedup, exclusions, cycles, hashes.

Nothing in this file runs a simulation -- concretization only builds
the DAG, so every case here is cheap.
"""

import os

import pytest

from repro.harness.experiments import ExperimentScale
from repro.specs import SpecError, apply_knob, concretize
from repro.specs.concretize import CONCRETIZER_VERSION

SPECS_DIR = os.path.join(os.path.dirname(__file__), "..", "specs")


@pytest.fixture
def tiny_scale():
    return ExperimentScale(gap_graphs=(), hpcdb=("kangaroo", "nas-is"),
                           max_instructions=2_000)


def grid_doc(name="t", knobs=None, exclude=None, techniques=("ooo", "dvr"),
             analyses=None):
    matrix = {"name": "grid", "workloads": "scale",
              "techniques": list(techniques)}
    if knobs:
        matrix["knobs"] = knobs
    if exclude:
        matrix["exclude"] = exclude
    return {"spec": {"name": name},
            "matrix": matrix,
            "analysis": analyses if analyses is not None else {
                "table": {"fn": "speedup_table", "needs": ["grid"],
                          "args": {"columns": ["dvr"]}}}}


class TestExpansion:
    def test_counts_workloads_x_techniques_x_knobs(self, tiny_scale):
        dag = concretize(
            grid_doc(knobs={"core.rob_size": [128, 256, 512]}), tiny_scale)
        # 2 workloads x 2 techniques x 3 knob values, no shared points.
        assert dag.leaf_count == 12
        assert len(dag.sim_nodes) == 12
        assert dag.stats()["deduplicated"] == 0
        assert dag.node_count() == 13

    def test_group_axes_preserve_declared_order(self, tiny_scale):
        dag = concretize(
            grid_doc(knobs={"core.rob_size": [512, 128],
                            "memsys.l1d_mshrs": [8, 4]}), tiny_scale)
        grid = dag.groups["grid"]
        assert list(grid.axes) == ["core.rob_size", "memsys.l1d_mshrs"]
        assert grid.axes["core.rob_size"] == [512, 128]
        assert grid.labels == ("kangaroo", "nas-is")

    def test_exclusion_removes_matching_leaves(self, tiny_scale):
        dag = concretize(
            grid_doc(knobs={"core.rob_size": [128, 256]},
                     exclude=[{"technique": "dvr",
                               "core.rob_size": 128}]), tiny_scale)
        assert dag.leaf_count == 2 * 2 * 2 - 2
        grid = dag.groups["grid"]
        assert not any(leaf.technique == "dvr"
                       and leaf.knobs["core.rob_size"] == 128
                       for leaf in grid.leaves)
        assert grid.has_point({"core.rob_size": 128})
        assert grid.has_point({"core.rob_size": 256})

    def test_exclusion_eliminating_all_leaves_rejected(self, tiny_scale):
        doc = grid_doc(exclude=[{"technique": "ooo"}, {"technique": "dvr"}])
        with pytest.raises(SpecError,
                           match="zero leaves.*eliminate all 4"):
            concretize(doc, tiny_scale)

    def test_empty_benchmark_set_rejected(self):
        empty = ExperimentScale(gap_graphs=(), hpcdb=())
        with pytest.raises(SpecError, match="zero workloads"):
            concretize(grid_doc(), empty)

    def test_defaults_apply_to_every_leaf(self, tiny_scale):
        doc = grid_doc()
        doc["defaults"] = {"knobs": {"memsys.l1d_mshrs": 4}}
        dag = concretize(doc, tiny_scale)
        assert all(node.job.config.memsys.l1d_mshrs == 4
                   for node in dag.sim_nodes.values())

    def test_group_knobs_override_defaults(self, tiny_scale):
        doc = grid_doc(knobs={"memsys.l1d_mshrs": [8]})
        doc["defaults"] = {"knobs": {"memsys.l1d_mshrs": 4}}
        dag = concretize(doc, tiny_scale)
        assert all(node.job.config.memsys.l1d_mshrs == 8
                   for node in dag.sim_nodes.values())


class TestDedup:
    def test_identical_leaves_across_groups_share_one_node(self, tiny_scale):
        doc = {
            "spec": {"name": "dedup"},
            "matrix": [
                {"name": "a", "workloads": "scale", "techniques": ["ooo"]},
                {"name": "b", "workloads": "scale",
                 "techniques": ["ooo", "dvr"]},
            ],
            "analysis": {"table": {"fn": "speedup_table", "needs": ["b"],
                                   "args": {"columns": ["dvr"]}}},
        }
        dag = concretize(doc, tiny_scale)
        # Group a's 2 ooo leaves are the same sims as b's 2 ooo leaves.
        assert dag.leaf_count == 2 + 4
        assert len(dag.sim_nodes) == 4
        assert dag.stats()["deduplicated"] == 2

    def test_fig2_sweep_shares_baseline_points(self, tiny_scale):
        dag = concretize(os.path.join(SPECS_DIR, "fig2.toml"), tiny_scale)
        # base: 2 ooo @ default ROB 350; sweep: 2 x 2 x 5 including
        # ooo @ 350, which concretizes to the same JobSpecs as base.
        assert dag.leaf_count == 2 + 20
        assert dag.stats()["deduplicated"] == 2
        assert len(dag.sim_nodes) == 20

    def test_mere_spec_shape(self):
        scale = ExperimentScale(max_instructions=2_000)
        dag = concretize(os.path.join(SPECS_DIR, "mere_rob.toml"), scale)
        grid = dag.groups["grid"]
        # 5 GAP kernels x 2 graphs x 3 techniques x (3x2 - 1) combos.
        assert dag.leaf_count == 10 * 3 * 5
        assert not grid.has_point({"core.rob_size": 16,
                                   "memsys.l1d_mshrs": 8})
        assert len(dag.analyses) == 2


class TestCycles:
    def test_needs_cycle_rejected(self, tiny_scale):
        doc = grid_doc(analyses={
            "a": {"fn": "speedup_table", "needs": ["grid", "b"],
                  "args": {"columns": ["dvr"]}},
            "b": {"fn": "speedup_table", "needs": ["grid", "a"],
                  "args": {"columns": ["dvr"]}},
        })
        with pytest.raises(SpecError, match="cycle.*a -> b -> a|"
                                            "cycle.*b -> a -> b"):
            concretize(doc, tiny_scale)

    def test_self_cycle_rejected(self, tiny_scale):
        doc = grid_doc(analyses={
            "a": {"fn": "speedup_table", "needs": ["a"],
                  "args": {"columns": ["dvr"]}}})
        with pytest.raises(SpecError, match="cycle.*a -> a"):
            concretize(doc, tiny_scale)

    def test_chained_analyses_get_topological_levels(self, tiny_scale):
        doc = grid_doc(analyses={
            # Declared out of order on purpose: b needs a.
            "b": {"fn": "speedup_table", "needs": ["a"],
                  "args": {"columns": ["dvr"]}},
            "a": {"fn": "speedup_table", "needs": ["grid"],
                  "args": {"columns": ["dvr"]}},
        })
        dag = concretize(doc, tiny_scale)
        assert [node.name for node in dag.analyses] == ["a", "b"]
        levels = dag.levels()
        assert len(levels) == 3
        assert levels[1] == ["analysis:a"]
        assert levels[2] == ["analysis:b"]


class TestHashes:
    def test_same_spec_same_hashes(self, tiny_scale):
        doc = grid_doc(knobs={"core.rob_size": [128, 256]})
        first = concretize(doc, tiny_scale)
        second = concretize(doc, tiny_scale)
        assert first.dag_hash == second.dag_hash
        assert first.analyses[0].hash == second.analyses[0].hash
        assert sorted(first.sim_nodes) == sorted(second.sim_nodes)

    def test_knob_edit_rekeys_only_affected_subgraph(self, tiny_scale):
        def doc(mshrs):
            return {
                "spec": {"name": "local"},
                "matrix": [
                    {"name": "a", "workloads": "scale",
                     "techniques": ["ooo", "dvr"],
                     "knobs": {"memsys.l1d_mshrs": [mshrs]}},
                    {"name": "b", "workloads": "scale",
                     "techniques": ["ooo", "vr"]},
                ],
                "analysis": {
                    "ta": {"fn": "speedup_table", "needs": ["a"],
                           "args": {"columns": ["dvr"]}},
                    "tb": {"fn": "speedup_table", "needs": ["b"],
                           "args": {"columns": ["vr"]}},
                },
            }
        before = concretize(doc(8), tiny_scale)
        after = concretize(doc(4), tiny_scale)
        node = {d.name: d.hash for d in before.analyses}
        edited = {d.name: d.hash for d in after.analyses}
        assert node["ta"] != edited["ta"]       # downstream of the edit
        assert node["tb"] == edited["tb"]       # untouched subgraph
        assert before.dag_hash != after.dag_hash

    def test_scale_change_rekeys_sims(self, tiny_scale):
        other = ExperimentScale(gap_graphs=(), hpcdb=("kangaroo", "nas-is"),
                                max_instructions=3_000)
        first = concretize(grid_doc(), tiny_scale)
        second = concretize(grid_doc(), other)
        assert first.dag_hash != second.dag_hash

    def test_stats_shape(self, tiny_scale):
        stats = concretize(grid_doc(), tiny_scale).stats()
        assert stats["concretizer_version"] == CONCRETIZER_VERSION
        assert stats["nodes"] == stats["sim_nodes"] + stats["analysis_nodes"]
        assert stats["levels"] == 2
        assert stats["spec"] == "t" and stats["dag_hash"]


class TestApplyKnob:
    def test_nested_replace(self):
        from repro.config import SimConfig
        config = apply_knob(SimConfig(), "core.rob_size", 128)
        assert config.core.rob_size == 128
        assert SimConfig().core.rob_size == 350   # original untouched

    def test_unknown_field_raises(self):
        from repro.config import SimConfig
        with pytest.raises(SpecError, match="no field 'robb'"):
            apply_knob(SimConfig(), "core.robb", 1)
