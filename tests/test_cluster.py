"""Tests for the ``repro.cluster`` distributed executor backend.

Covers the wire protocol framing, the ledger-learned cost model and
longest-first scheduler, coordinator/worker handshake policy (code-salt
rejection), and the full loopback path: a coordinator plus real worker
subprocesses (spawned exactly as ``repro cluster worker --connect``
users would) producing bit-identical metrics to the local backend --
including when a worker is SIGKILLed mid-sweep, when a job keeps
crashing, and when every worker disappears.
"""

from __future__ import annotations

import json
import signal
import socket
import threading
import time

import pytest

from repro.config import SimConfig, TECH_DVR, TECH_OOO
from repro.cluster import (AuthenticationError, ClusterExecutor, Coordinator,
                           CostModel, ProtocolError, Worker, cost_model_for,
                           longest_first, parse_address, query_status)
from repro.cluster import protocol
from repro.jobs import (Executor, JobSpec, NullCache, NullLedger,
                        ResultCache, RunLedger)


def _spec(workload="nas-is", technique=TECH_OOO, seed=12345,
          max_instructions=1_500, **params):
    config = SimConfig(max_instructions=max_instructions
                       ).with_technique(technique)
    return JobSpec(workload=workload, params=params, config=config,
                   seed=seed)


def _sweep_specs(count=6):
    """Distinct cheap specs (unique seeds) for multi-job sweeps."""
    return [_spec(workload=w, technique=t, seed=s)
            for s, (w, t) in enumerate(
                [("nas-is", TECH_OOO), ("kangaroo", TECH_OOO),
                 ("randomaccess", TECH_OOO), ("nas-is", TECH_DVR),
                 ("camel", TECH_OOO), ("hj2", TECH_OOO),
                 ("kangaroo", TECH_DVR), ("randomaccess", TECH_DVR)],
                start=1)][:count]


# ---------------------------------------------------------------------------
# Protocol framing
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_frame_round_trip(self):
        left, right = socket.socketpair()
        try:
            message = {"type": "job", "spec": {"deep": [1, 2, {"x": "y"}]}}
            protocol.send_message(left, message)
            assert protocol.recv_message(right) == message
        finally:
            left.close()
            right.close()

    def test_clean_eof_returns_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert protocol.recv_message(right) is None
        finally:
            right.close()

    def test_truncated_frame_raises(self):
        left, right = socket.socketpair()
        try:
            frame = protocol.encode({"type": "result"})
            left.sendall(frame[:-3])        # header + partial payload
            left.close()
            with pytest.raises(ProtocolError):
                protocol.recv_message(right)
        finally:
            right.close()

    def test_oversized_frame_rejected(self):
        left, right = socket.socketpair()
        try:
            header = protocol._HEADER.pack(protocol.MAX_MESSAGE_BYTES + 1)
            left.sendall(header)
            with pytest.raises(ProtocolError):
                protocol.recv_message(right)
        finally:
            left.close()
            right.close()

    def test_parse_address(self):
        assert parse_address("10.0.0.5:7077") == ("10.0.0.5", 7077)
        assert parse_address(":7077") == ("127.0.0.1", 7077)
        assert parse_address(("h", "5")) == ("h", 5)
        with pytest.raises(ValueError):
            parse_address("no-port")


# ---------------------------------------------------------------------------
# Cost model + scheduler
# ---------------------------------------------------------------------------
def _ledger_record(workload, technique, wall_s, max_instructions,
                   graph=None, cache="miss", status="ok"):
    return {"workload": workload, "technique": technique, "wall_s": wall_s,
            "max_instructions": max_instructions, "cache": cache,
            "status": status, "params": {"graph": graph} if graph else {}}


class TestCostModel:
    def test_empty_model_predicts_default(self):
        model = CostModel()
        assert len(model) == 0
        assert model.predict(_spec()) == CostModel.DEFAULT_COST

    def test_exact_key_beats_fallbacks(self):
        model = CostModel.from_records([
            _ledger_record("nas-is", "ooo", 2.0, 1_000),
            _ledger_record("camel", "ooo", 50.0, 1_000),
        ])
        # nas-is/ooo at 1500 instructions: rate 0.002 s/instr * 1500.
        assert model.predict(_spec()) == pytest.approx(3.0)

    def test_technique_fallback_scales_with_instructions(self):
        model = CostModel.from_records(
            [_ledger_record("nas-is", "dvr", 4.0, 1_000)])
        prediction = model.predict(
            _spec(workload="camel", technique=TECH_DVR,
                  max_instructions=2_000))
        assert prediction == pytest.approx(8.0)

    def test_cache_hits_and_failures_ignored(self):
        model = CostModel.from_records([
            _ledger_record("nas-is", "ooo", 0.001, 1_000, cache="hit"),
            _ledger_record("nas-is", "ooo", 9.0, 1_000, status="failed"),
        ])
        assert len(model) == 0

    def test_from_ledger_file(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "runs.jsonl"))
        spec = _spec()
        from repro.harness.runner import run_spec
        metrics = run_spec(spec)
        ledger.record(spec, cache="miss", wall_s=1.25, worker=1,
                      metrics=metrics)
        model = CostModel.from_ledger(ledger.path)
        assert len(model) == 1
        assert model.predict(spec) == pytest.approx(1.25)


class TestScheduler:
    def test_longest_first_orders_by_predicted_cost(self):
        model = CostModel.from_records([
            _ledger_record("nas-is", "ooo", 1.0, 1_000),
            _ledger_record("camel", "ooo", 10.0, 1_000),
        ])
        fast, slow = _spec(workload="nas-is"), _spec(workload="camel")
        assert longest_first([fast, slow], model) == [slow, fast]

    def test_no_model_keeps_enumeration_order(self):
        specs = [_spec(seed=s) for s in range(4)]
        assert longest_first(specs, None) == specs
        assert longest_first(specs, CostModel()) == specs

    def test_tie_break_is_stable(self):
        model = CostModel.from_records(
            [_ledger_record("nas-is", "ooo", 1.0, 1_000)])
        specs = [_spec(seed=s) for s in range(5)]   # all same predicted cost
        assert longest_first(specs, model) == specs

    def test_cost_model_for_null_ledger(self):
        assert cost_model_for(NullLedger()) is None

    def test_pool_executor_reorders_submissions(self, tmp_path):
        """The local pool backend consults the ledger-learned model too."""
        ledger = RunLedger(str(tmp_path / "runs.jsonl"))
        model = CostModel.from_records([
            _ledger_record("nas-is", "ooo", 1.0, 1_000),
            _ledger_record("camel", "ooo", 10.0, 1_000),
        ])
        executor = Executor(jobs=2, cache=NullCache(), ledger=ledger,
                            cost_model=model)
        fast, slow = _spec(workload="nas-is"), _spec(workload="camel")
        assert executor._schedule([fast, slow]) == [slow, fast]
        # And results still align with the *input* order.
        results = executor.run([fast, slow])
        assert [m.workload for m in results] == ["nas-is", "camel"]


# ---------------------------------------------------------------------------
# Loopback cluster helpers
# ---------------------------------------------------------------------------
@pytest.fixture
def coordinator():
    coordinator = Coordinator(job_timeout=120, heartbeat_timeout=15.0,
                              retry_base=0.05, retry_cap=0.2,
                              worker_grace=30.0)
    coordinator.start()
    yield coordinator
    coordinator.close()


def _cluster_executor(coordinator, tmp_path, progress=None):
    return ClusterExecutor(
        coordinator, cache=ResultCache(str(tmp_path)),
        ledger=RunLedger(str(tmp_path / "runs.jsonl")), progress=progress)


def _thread_worker(coordinator, **kwargs):
    """An in-process worker serving the coordinator from a daemon thread."""
    worker = Worker(f"127.0.0.1:{coordinator.port}", **kwargs)
    thread = threading.Thread(target=worker.serve, daemon=True)
    thread.start()
    return worker, thread


# ---------------------------------------------------------------------------
# End-to-end: subprocess workers on 127.0.0.1 (the CI loopback suite)
# ---------------------------------------------------------------------------
class TestLoopbackSweep:
    def test_two_subprocess_workers_match_serial(self, coordinator,
                                                 tmp_path):
        specs = _sweep_specs(6)
        serial = Executor(jobs=1, cache=NullCache()).run(specs)

        coordinator.spawn_local_workers(2)
        coordinator.wait_for_workers(2, timeout=60)
        clustered = _cluster_executor(coordinator, tmp_path).run(specs)

        for expected, actual in zip(serial, clustered):
            assert json.dumps(actual.to_dict(), sort_keys=True) == \
                json.dumps(expected.to_dict(), sort_keys=True)
        records = RunLedger.read(str(tmp_path / "runs.jsonl"))
        assert len(records) == len(specs)
        workers = {str(r["worker"]) for r in records}
        assert "parent" not in workers          # everything ran remotely
        assert all(r["retries"] == 0 for r in records)
        # Second run: everything is served from the coordinator's cache.
        rerun = _cluster_executor(coordinator, tmp_path).run(specs)
        records = RunLedger.read(str(tmp_path / "runs.jsonl"))
        assert [r["cache"] for r in records[len(specs):]] == \
            ["hit"] * len(specs)
        for expected, actual in zip(serial, rerun):
            assert actual.cycles == expected.cycles

    def test_sigkill_worker_mid_sweep_reassigns_leases(self, coordinator,
                                                       tmp_path):
        """Acceptance: kill one of two workers; the sweep still completes
        with bit-identical metrics."""
        specs = _sweep_specs(8)
        serial = Executor(jobs=1, cache=NullCache()).run(specs)

        processes = coordinator.spawn_local_workers(2)
        coordinator.wait_for_workers(2, timeout=60)

        class KillOnFirstResult:
            """Progress hook that SIGKILLs a worker at the first result."""

            def __init__(self, victim):
                self.victim = victim
                self.killed = False

            def update(self, done, total, spec, cached):
                if not self.killed:
                    self.killed = True
                    self.victim.send_signal(signal.SIGKILL)

            def finish(self, total, cached, wall_s):
                pass

        progress = KillOnFirstResult(processes[0])
        clustered = _cluster_executor(coordinator, tmp_path,
                                      progress=progress).run(specs)

        assert progress.killed
        assert processes[0].wait(timeout=30) is not None
        for expected, actual in zip(serial, clustered):
            assert json.dumps(actual.to_dict(), sort_keys=True) == \
                json.dumps(expected.to_dict(), sort_keys=True)
        records = RunLedger.read(str(tmp_path / "runs.jsonl"))
        assert len(records) == len(specs)
        assert all("ipc" in r for r in records)


# ---------------------------------------------------------------------------
# Fault tolerance with in-process workers (fast, deterministic injection)
# ---------------------------------------------------------------------------
class TestFaultTolerance:
    def test_stale_salt_worker_rejected(self, coordinator):
        worker = Worker(f"127.0.0.1:{coordinator.port}", salt="stale-tree")
        assert worker.serve() == 2              # WorkerRejected exit code
        assert coordinator.live_workers() == []

    def test_job_exception_requeues_with_retry_accounting(self, coordinator,
                                                          tmp_path):
        from repro.harness.runner import run_spec
        failures = {"left": 1}

        def flaky(spec):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise RuntimeError("injected job crash")
            return run_spec(spec)

        _thread_worker(coordinator, run_job=flaky, worker_id="flaky-w")
        coordinator.wait_for_workers(1, timeout=10)
        executor = _cluster_executor(coordinator, tmp_path)
        results = executor.run([_spec()])
        assert results[0].cycles > 0
        records = RunLedger.read(str(tmp_path / "runs.jsonl"))
        assert records[-1]["status"] == "retried"
        assert records[-1]["retries"] == 1
        assert records[-1]["worker"] == "flaky-w"

    def test_lease_timeout_moves_job_to_healthy_worker(self, tmp_path):
        from repro.harness.runner import run_spec
        coordinator = Coordinator(job_timeout=1.0, heartbeat_timeout=30.0,
                                  retry_base=0.05, retry_cap=0.1,
                                  worker_grace=30.0)
        coordinator.start()
        try:
            def stuck(spec):
                time.sleep(60)
                return run_spec(spec)

            # The stuck worker joins first, so it gets the first lease.
            _thread_worker(coordinator, run_job=stuck, worker_id="stuck-w")
            coordinator.wait_for_workers(1, timeout=10)
            _thread_worker(coordinator, run_job=run_spec,
                           worker_id="healthy-w")
            coordinator.wait_for_workers(2, timeout=10)

            executor = _cluster_executor(coordinator, tmp_path)
            results = executor.run([_spec()])
            assert results[0].cycles > 0
            record = RunLedger.read(str(tmp_path / "runs.jsonl"))[-1]
            assert record["worker"] == "healthy-w"
            assert record["retries"] >= 1
        finally:
            coordinator.close()

    def test_no_workers_falls_back_to_parent(self, tmp_path):
        coordinator = Coordinator(worker_grace=0.2, retry_base=0.01)
        coordinator.start()
        try:
            executor = _cluster_executor(coordinator, tmp_path)
            results = executor.run([_spec()])
            assert results[0].cycles > 0
            record = RunLedger.read(str(tmp_path / "runs.jsonl"))[-1]
            assert record["worker"] == "parent"
            assert record["status"] == "retried"
        finally:
            coordinator.close()

    def test_drain_and_rejoin(self, coordinator, tmp_path):
        """A worker that leaves after every job (max_jobs=1) rejoins and
        the sweep still finishes."""
        from repro.harness.runner import run_spec
        stop = threading.Event()

        def rejoin_loop():
            while not stop.is_set():
                worker = Worker(f"127.0.0.1:{coordinator.port}",
                                worker_id="revolving-w", max_jobs=1,
                                run_job=run_spec)
                if worker.serve() != 0:       # coordinator gone
                    return

        thread = threading.Thread(target=rejoin_loop, daemon=True)
        thread.start()
        try:
            specs = [_spec(seed=s) for s in (21, 22, 23)]
            results = _cluster_executor(coordinator, tmp_path).run(specs)
            assert all(m.cycles > 0 for m in results)
            records = RunLedger.read(str(tmp_path / "runs.jsonl"))
            assert len(records) == 3
            assert {r["worker"] for r in records} == {"revolving-w"}
        finally:
            stop.set()


# ---------------------------------------------------------------------------
# Shared-secret handshake authentication
# ---------------------------------------------------------------------------
class TestAuth:
    SECRET = "s3cret-handshake"

    @pytest.fixture
    def secured(self):
        coordinator = Coordinator(job_timeout=120, retry_base=0.05,
                                  retry_cap=0.2, worker_grace=30.0,
                                  secret=self.SECRET)
        coordinator.start()
        yield coordinator
        coordinator.close()

    def test_mac_helpers_are_constant_time_hmac(self):
        mac = protocol.compute_mac(self.SECRET, "nonce-1")
        assert protocol.verify_mac(self.SECRET, "nonce-1", mac)
        assert not protocol.verify_mac(self.SECRET, "nonce-2", mac)
        assert not protocol.verify_mac("other", "nonce-1", mac)
        assert not protocol.verify_mac(self.SECRET, "nonce-1", None)

    def test_authenticated_worker_joins_and_serves(self, secured, tmp_path):
        from repro.harness.runner import run_spec
        _thread_worker(secured, run_job=run_spec, worker_id="auth-w",
                       secret=self.SECRET)
        secured.wait_for_workers(1, timeout=10)
        results = _cluster_executor(secured, tmp_path).run([_spec()])
        assert results[0].cycles > 0
        record = RunLedger.read(str(tmp_path / "runs.jsonl"))[-1]
        assert record["worker"] == "auth-w"

    def test_worker_without_secret_rejected_before_hello(self, secured):
        worker = Worker(f"127.0.0.1:{secured.port}", secret=None,
                        reconnect=0, quiet=True)
        assert worker.serve() == 2
        assert secured.live_workers() == []

    def test_worker_with_wrong_secret_rejected(self, secured):
        worker = Worker(f"127.0.0.1:{secured.port}", secret="not-it",
                        reconnect=0, quiet=True)
        assert worker.serve() == 2
        assert secured.live_workers() == []

    def test_status_query_requires_the_secret(self, secured):
        address = f"127.0.0.1:{secured.port}"
        with pytest.raises(AuthenticationError):
            query_status(address, secret="wrong-secret")
        info = query_status(address, secret=self.SECRET)
        assert info["workers"] == []

    def test_cli_status_wrong_secret_exits_nonzero(self, secured, capsys):
        from repro.__main__ import main
        code = main(["cluster", "status",
                     "--connect", f"127.0.0.1:{secured.port}",
                     "--secret", "wrong-secret"])
        assert code == 1
        assert "cluster status:" in capsys.readouterr().err

    def test_secretless_worker_against_secretless_coordinator(self,
                                                              monkeypatch):
        """Explicit secret=None disables auth on both ends regardless of
        the environment (the env fallback is only for unset secrets)."""
        monkeypatch.delenv("REPRO_CLUSTER_SECRET", raising=False)
        coordinator = Coordinator(worker_grace=5.0, secret=None)
        coordinator.start()
        try:
            from repro.harness.runner import run_spec
            _thread_worker(coordinator, run_job=run_spec,
                           worker_id="open-w", secret=None)
            coordinator.wait_for_workers(1, timeout=10)
        finally:
            coordinator.close()


# ---------------------------------------------------------------------------
# Resume + failure-report degradation
# ---------------------------------------------------------------------------
class _AbortAfter:
    """Progress hook simulating a SIGKILL'd parent mid-sweep."""

    def __init__(self, results):
        self.results = results

    def update(self, done, total, spec, cached):
        if done >= self.results:
            raise KeyboardInterrupt

    def finish(self, total, cached, wall_s):
        pass


class TestResume:
    def test_interrupted_sweep_resumes_dispatching_only_remainder(
            self, coordinator, tmp_path):
        from repro.harness.runner import run_spec
        _thread_worker(coordinator, run_job=run_spec, worker_id="resume-w")
        coordinator.wait_for_workers(1, timeout=10)
        specs = _sweep_specs(6)
        serial = Executor(jobs=1, cache=NullCache()).run(specs)
        path = str(tmp_path / "runs.jsonl")

        # Sweep dies (parent killed) after three results are recorded.
        with pytest.raises(KeyboardInterrupt):
            ClusterExecutor(coordinator, cache=ResultCache(str(tmp_path)),
                            ledger=RunLedger(path),
                            progress=_AbortAfter(3)).run(specs)
        interrupted = RunLedger.read(path)
        assert len(interrupted) == 3

        # --resume: completed specs replay from the ledger + cache;
        # only the remainder is dispatched to workers.
        resumed = ClusterExecutor(
            coordinator, cache=ResultCache(str(tmp_path)),
            ledger=RunLedger(path),
            resume_index=RunLedger.completed_index(path)).run(specs)
        for expected, actual in zip(serial, resumed):
            assert json.dumps(actual.to_dict(), sort_keys=True) == \
                json.dumps(expected.to_dict(), sort_keys=True)
        completed_keys = {record["key"] for record in interrupted}
        replay = RunLedger.read(path)[3:]
        assert len(replay) == 6
        by_key = {record["key"]: record for record in replay}
        for key, record in by_key.items():
            if key in completed_keys:
                assert record["cache"] == "resume"
                assert record["worker"] == "parent"
            else:
                assert record["cache"] == "miss"
                assert record["worker"] == "resume-w"

    def test_resume_with_missing_cache_bytes_redispatches(self, tmp_path):
        specs = [_spec(seed=71), _spec(seed=72)]
        path = str(tmp_path / "runs.jsonl")
        Executor(jobs=1, cache=ResultCache(str(tmp_path)),
                 ledger=RunLedger(path)).run(specs)
        index = RunLedger.completed_index(path)
        assert set(index) == {spec.key for spec in specs}
        # The cache is wiped (pruned/host change): resume must degrade
        # to re-dispatch with a warning, not crash or serve nothing.
        fresh_cache = ResultCache(str(tmp_path / "elsewhere"))
        with pytest.warns(RuntimeWarning, match="missing from the result "
                                                "cache"):
            results = Executor(jobs=1, cache=fresh_cache,
                               ledger=RunLedger(path),
                               resume_index=index).run(specs)
        assert all(metrics.cycles > 0 for metrics in results)


class TestFailureReport:
    def test_exhausted_sweep_returns_partial_results(self, tmp_path):
        coordinator = Coordinator(worker_grace=0.2, retry_base=0.01)
        coordinator.start()
        try:
            path = str(tmp_path / "runs.jsonl")
            executor = ClusterExecutor(coordinator, cache=NullCache(),
                                       ledger=RunLedger(path),
                                       on_failure="report")
            good, bad = _spec(seed=81), _spec(workload="no-such-workload")
            results = executor.run([good, bad])
            assert results[0].cycles > 0        # partial results survive
            assert results[1] is None
            report = executor.failure_report
            assert not report.ok and len(report) == 1
            failure = report.failures[0]
            assert failure["key"] == bad.key
            assert failure["stage"] == "cluster"
            assert failure["attempts"] >= 1
            assert "exhausted" in report.render()
        finally:
            coordinator.close()

    def test_on_failure_raise_remains_the_default_contract(self, tmp_path):
        coordinator = Coordinator(worker_grace=0.2, retry_base=0.01)
        coordinator.start()
        try:
            from repro.jobs import JobError
            executor = ClusterExecutor(coordinator, cache=NullCache(),
                                       ledger=NullLedger())
            with pytest.raises(JobError):
                executor.run([_spec(workload="no-such-workload")])
        finally:
            coordinator.close()


# ---------------------------------------------------------------------------
# Status introspection
# ---------------------------------------------------------------------------
class TestStatus:
    def test_query_status_reports_workers(self, coordinator):
        from repro.harness.runner import run_spec
        _thread_worker(coordinator, run_job=run_spec, worker_id="status-w")
        coordinator.wait_for_workers(1, timeout=10)
        info = query_status(f"127.0.0.1:{coordinator.port}")
        assert info["address"].endswith(str(coordinator.port))
        assert [w["name"] for w in info["workers"]] == ["status-w"]
        assert info["workers"][0]["state"] == "idle"
        assert info["jobs"]["total"] == 0

    def test_status_counts_jobs_after_sweep(self, coordinator, tmp_path):
        from repro.harness.runner import run_spec
        _thread_worker(coordinator, run_job=run_spec, worker_id="count-w")
        coordinator.wait_for_workers(1, timeout=10)
        _cluster_executor(coordinator, tmp_path).run(
            [_spec(seed=31), _spec(seed=32)])
        info = query_status(f"127.0.0.1:{coordinator.port}")
        assert info["jobs"]["done"] == 2
        assert info["jobs"]["failed"] == 0
