"""Unit and property tests for the guest instruction definitions."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.instructions import (Instruction, Op, OP_NAMES, hash64,
                                    to_signed64)


class TestOpcodes:
    def test_all_opcodes_named(self):
        for value in range(Op.COUNT):
            assert value in OP_NAMES

    def test_opcode_values_unique(self):
        values = [v for k, v in vars(Op).items()
                  if not k.startswith("_") and k != "COUNT"]
        assert len(values) == len(set(values))

    def test_count_covers_all(self):
        values = [v for k, v in vars(Op).items()
                  if not k.startswith("_") and k != "COUNT"]
        assert max(values) == Op.COUNT - 1


class TestInstructionClassification:
    def test_load_flags(self):
        ins = Instruction(Op.LOADX, rd=1, rs1=2, rs2=3, imm=8)
        assert ins.is_load and not ins.is_store and not ins.is_branch

    def test_store_has_no_dest(self):
        ins = Instruction(Op.STOREX, rs1=1, rs2=2, rs3=3, imm=8)
        assert ins.is_store and not ins.writes_reg

    def test_conditional_branch_flags(self):
        bnz = Instruction(Op.BNZ, rs1=1, target=5)
        jmp = Instruction(Op.JMP, target=5)
        assert bnz.is_branch and bnz.is_cond_branch
        assert jmp.is_branch and not jmp.is_cond_branch

    def test_compare_flags(self):
        for op in (Op.CMPLT, Op.CMPLE, Op.CMPEQ, Op.CMPNE, Op.CMPLTI,
                   Op.CMPEQI):
            assert Instruction(op, rd=1, rs1=2, rs2=3).is_compare

    def test_srcs_collects_registers_in_order(self):
        ins = Instruction(Op.STOREX, rs1=4, rs2=5, rs3=6, imm=8)
        assert ins.srcs == (4, 5, 6)

    def test_srcs_skips_unused(self):
        ins = Instruction(Op.ADDI, rd=1, rs1=2, imm=3)
        assert ins.srcs == (2,)

    def test_repr_mentions_name_and_pc(self):
        ins = Instruction(Op.ADD, rd=1, rs1=2, rs2=3, pc=7)
        assert "add" in repr(ins) and "7" in repr(ins)


class TestToSigned64:
    def test_identity_in_range(self):
        assert to_signed64(42) == 42
        assert to_signed64(-42) == -42

    def test_wraps_overflow(self):
        assert to_signed64(1 << 63) == -(1 << 63)
        assert to_signed64((1 << 64) - 1) == -1
        assert to_signed64(1 << 64) == 0

    @given(st.integers())
    def test_always_in_signed_range(self, value):
        result = to_signed64(value)
        assert -(1 << 63) <= result < (1 << 63)

    @given(st.integers())
    def test_idempotent(self, value):
        assert to_signed64(to_signed64(value)) == to_signed64(value)

    @given(st.integers(), st.integers())
    def test_congruent_mod_2_64(self, a, b):
        if (a - b) % (1 << 64) == 0:
            assert to_signed64(a) == to_signed64(b)


class TestHash64:
    def test_deterministic(self):
        assert hash64(12345) == hash64(12345)

    def test_spreads_consecutive_inputs(self):
        outputs = {hash64(i) & 0xFFFF for i in range(256)}
        # A decent mixer maps 256 consecutive ints to ~256 distinct
        # 16-bit suffixes.
        assert len(outputs) > 240

    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_output_in_signed_range(self, value):
        result = hash64(value)
        assert -(1 << 63) <= result < (1 << 63)

    @given(st.integers())
    def test_accepts_unwrapped_input(self, value):
        assert hash64(value) == hash64(to_signed64(value))

    def test_avalanche(self):
        """Flipping one input bit should flip ~half the output bits."""
        base = hash64(0x123456789)
        flipped = hash64(0x123456789 ^ 1)
        differing = bin((base ^ flipped) & ((1 << 64) - 1)).count("1")
        assert 16 <= differing <= 48
