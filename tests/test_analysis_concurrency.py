"""Concurrency analysis: static race/lock-order rules + thread sanitizer.

The static half is exercised on seeded synthetic racy classes -- an
unguarded mutation, a write outside its inferred guard, an AB/BA lock
cycle -- plus the clean shapes the pass must NOT flag (flag attributes,
thread-safe containers, ``__init__`` pre-sharing writes, ``@guarded_by``
bodies).  The runtime half gets a live lock-order inversion on a real
second thread, ``@guarded_by`` enforcement, and the bit-identical
metrics guarantee: a serve-daemon sweep with ``--sanitize-threads``
instrumentation on must equal the same sweep with it off.
"""

from __future__ import annotations

import json
import textwrap
import threading

import pytest

from repro.analysis import lint_file
from repro.analysis import threadsan
from repro.analysis.threadsan import (ThreadSanitizerError, guarded_by,
                                      make_lock, make_rlock)
from repro.cluster import Worker
from repro.config import SimConfig, TECH_OOO
from repro.harness.runner import run_spec
from repro.jobs import JobSpec, RunLedger
from repro.serve import ServeClient, ServeDaemon, SharedStore


def lint_source(source, relpath="serve/fixture.py", rules=None):
    return lint_file("/fixture.py", relpath=relpath, rules=rules,
                     source=textwrap.dedent(source))


def rules_of(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# Static pass: the three rules fire on synthetic racy classes
# ---------------------------------------------------------------------------
class TestRaceNoGuard:
    def test_unguarded_mutation_across_threads(self):
        findings = lint_source("""
            import threading

            class Tally:
                def __init__(self):
                    self.items = []
                def start(self):
                    threading.Thread(target=self._worker,
                                     daemon=True).start()
                def _worker(self):
                    self.items.append(1)
                def totals(self):
                    return list(self.items)
        """)
        assert rules_of(findings) == ["race-no-guard"]
        assert "self.items" in findings[0].message

    def test_handler_assignment_counts_as_thread_entry(self):
        findings = lint_source("""
            class Handler:
                def __init__(self, owner):
                    self.owner = owner
                    self.owner.on_event = self._on_event
                    self.seen = []
                def _on_event(self, event):
                    self.seen.append(event)
                def drain(self):
                    return list(self.seen)
        """)
        assert rules_of(findings) == ["race-no-guard"]

    def test_augmented_assignment_is_a_mutation(self):
        findings = lint_source("""
            import threading

            class Meter:
                def __init__(self):
                    self.total = 0
                def start(self):
                    threading.Thread(target=self._count).start()
                def _count(self):
                    self.total += 1
                def read(self):
                    return self.total
        """)
        assert rules_of(findings) == ["race-no-guard"]

    def test_constant_flag_rebinds_are_exempt(self):
        findings = lint_source("""
            import threading

            class Stoppable:
                def __init__(self):
                    self._closing = False
                def start(self):
                    threading.Thread(target=self._loop).start()
                def _loop(self):
                    while not self._closing:
                        pass
                def close(self):
                    self._closing = True
        """)
        assert findings == []

    def test_thread_safe_containers_are_exempt(self):
        findings = lint_source("""
            import queue
            import threading

            class Pump:
                def __init__(self):
                    self.events = queue.Queue()
                    self.stop = threading.Event()
                def start(self):
                    threading.Thread(target=self._loop).start()
                def _loop(self):
                    self.events.put(1)
                def drain(self):
                    self.stop.set()
                    return self.events.get()
        """)
        assert findings == []

    def test_package_thread_safe_classes_are_exempt(self):
        # SessionRegistry is declared @thread_safe in repro.serve; the
        # cached package scan must exempt attributes holding one.
        findings = lint_source("""
            import threading

            class Daemon:
                def __init__(self):
                    self.registry = SessionRegistry()
                def start(self):
                    threading.Thread(target=self._loop).start()
                def _loop(self):
                    self.registry.remove("s1")
                def status(self):
                    return len(self.registry)
        """)
        assert findings == []

    def test_init_only_writes_are_pre_sharing(self):
        findings = lint_source("""
            import threading

            class Table:
                def __init__(self):
                    self.rows = []
                    self.rows.append("header")
                def start(self):
                    threading.Thread(target=self._loop).start()
                def _loop(self):
                    return list(self.rows)
                def read(self):
                    return list(self.rows)
        """)
        assert findings == []

    def test_single_threaded_class_is_ignored(self):
        findings = lint_source("""
            class Plain:
                def __init__(self):
                    self.items = []
                def add(self, x):
                    self.items.append(x)
                def read(self):
                    return list(self.items)
        """)
        assert findings == []


class TestRaceUnguardedWrite:
    def test_write_outside_inferred_guard(self):
        findings = lint_source("""
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0
                def start(self):
                    threading.Thread(target=self._bump).start()
                def _bump(self):
                    with self._lock:
                        self.count += 1
                def reset(self):
                    self.count += 1
        """)
        assert rules_of(findings) == ["race-unguarded-write"]
        assert "self._lock" in findings[0].message
        assert "reset" in findings[0].message

    def test_fully_guarded_class_is_clean(self):
        findings = lint_source("""
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0
                def start(self):
                    threading.Thread(target=self._bump).start()
                def _bump(self):
                    with self._lock:
                        self.count += 1
                def read(self):
                    with self._lock:
                        return self.count
        """)
        assert findings == []

    def test_guarded_by_decorator_counts_as_guarded(self):
        findings = lint_source("""
            import threading

            class Jobs:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.jobs = []
                def start(self):
                    threading.Thread(target=self._worker).start()
                def _worker(self):
                    with self._lock:
                        self._push(1)
                @guarded_by("_lock")
                def _push(self, item):
                    self.jobs.append(item)
                def flush(self):
                    with self._lock:
                        return list(self.jobs)
        """)
        assert findings == []

    def test_alias_resolved_lock_guards(self):
        findings = lint_source("""
            import threading

            class Wrapper:
                def __init__(self, owner):
                    self.owner = owner
                    self.owner.handler = self._handle
                    self.log = []
                def _handle(self, event):
                    owner = self.owner
                    with owner._lock:
                        self.log.append(event)
                def dump(self):
                    with self.owner._lock:
                        return list(self.log)
        """)
        assert findings == []


class TestLockOrder:
    def test_ab_ba_cycle_is_flagged(self):
        findings = lint_source("""
            import threading

            class Orders:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()
                def ab(self):
                    with self._a:
                        with self._b:
                            pass
                def ba(self):
                    with self._b:
                        with self._a:
                            pass
        """)
        assert rules_of(findings) == ["lock-order", "lock-order"]
        assert "cycle" in findings[0].message

    def test_consistent_nesting_is_clean(self):
        findings = lint_source("""
            import threading

            class Orders:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()
                def one(self):
                    with self._a:
                        with self._b:
                            pass
                def two(self):
                    with self._a:
                        with self._b:
                            pass
        """)
        assert findings == []

    def test_suppression_comment_applies(self):
        findings = lint_source("""
            import threading

            class Orders:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()
                def ab(self):
                    with self._a:
                        with self._b:  # repro: allow(lock-order)
                            pass
                def ba(self):
                    with self._b:
                        with self._a:  # repro: allow(lock-order)
                            pass
        """)
        assert all(f.suppressed for f in findings)

    def test_rule_selection_runs_the_shared_pass(self):
        source = """
            import threading

            class Orders:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()
                def ab(self):
                    with self._a:
                        with self._b:
                            pass
                def ba(self):
                    with self._b:
                        with self._a:
                            pass
        """
        only = lint_source(source, rules={"lock-order"})
        assert rules_of(only) == ["lock-order", "lock-order"]
        none = lint_source(source, rules={"race-no-guard"})
        assert none == []


# ---------------------------------------------------------------------------
# Runtime sanitizer
# ---------------------------------------------------------------------------
@pytest.fixture
def san():
    threadsan.enable()
    try:
        yield threadsan.sanitizer()
    finally:
        threadsan.disable(reset=True)


class TestThreadSanitizer:
    def test_lock_order_inversion_detected(self, san):
        a = make_lock("A")
        b = make_lock("B")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(ThreadSanitizerError):
                a.acquire()
        assert san.violations and "inversion" in san.violations[0]

    def test_live_inversion_on_a_second_thread(self, san):
        a = make_lock("A")
        b = make_lock("B")
        with a:
            with b:
                pass                 # main thread records A -> B
        caught = []

        def invert():
            try:
                with b:
                    with a:          # B -> A closes the cycle
                        pass
            except ThreadSanitizerError as error:
                caught.append(str(error))

        thread = threading.Thread(target=invert)
        thread.start()
        thread.join(timeout=10)
        assert caught and "inversion" in caught[0]
        assert san.violations       # recorded, not lost with the thread

    def test_consistent_order_across_threads_is_clean(self, san):
        a = make_lock("A")
        b = make_lock("B")

        def nest():
            with a:
                with b:
                    pass

        threads = [threading.Thread(target=nest) for _ in range(2)]
        nest()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert san.violations == []
        assert san.acquisitions >= 6

    def test_rlock_reentrancy_is_not_an_edge(self, san):
        lock = make_rlock("R")
        with lock:
            with lock:
                pass
        assert san.violations == []
        assert "R" not in san.edges.get("R", {})

    def test_guarded_by_is_enforced(self, san):
        class Box:
            def __init__(self):
                self._lock = make_lock("Box._lock")
                self.items = []

            @guarded_by("_lock")
            def push(self, item):
                self.items.append(item)

        box = Box()
        with box._lock:
            box.push(1)              # held: fine
        with pytest.raises(ThreadSanitizerError):
            box.push(2)              # bare call: flagged
        assert san.guard_checks == 2
        assert any("push" in v for v in san.violations)

    def test_disabled_factories_return_plain_locks(self):
        was_enabled = threadsan.enabled()
        threadsan.disable(reset=True)
        try:
            lock = make_lock("plain")
            assert not isinstance(lock, threadsan.SanLock)

            class Box:
                def __init__(self):
                    self._lock = make_lock()
                    self.items = []

                @guarded_by("_lock")
                def push(self, item):
                    self.items.append(item)

            box = Box()
            box.push(1)              # no enforcement when disabled
            assert box.items == [1]
            assert box.push.__guarded_by__ == "_lock"
        finally:
            if was_enabled:
                threadsan.enable()


# ---------------------------------------------------------------------------
# Metrics stay bit-identical with instrumentation on
# ---------------------------------------------------------------------------
def _serve_sweep(tmp_path):
    """One daemon + one worker + one client sweep; canonical metrics."""
    specs = [JobSpec(workload=w, params={},
                     config=SimConfig(max_instructions=1200
                                      ).with_technique(TECH_OOO),
                     seed=seed)
             for seed, w in enumerate(["nas-is", "kangaroo"], start=1)]
    store = SharedStore(str(tmp_path / "store"))
    ledger = RunLedger(str(tmp_path / "runs.jsonl"))
    daemon = ServeDaemon(store=store, ledger=ledger, quiet=True,
                         retry_base=0.05, retry_cap=0.2, job_timeout=120)
    daemon.start()
    worker = Worker(f"127.0.0.1:{daemon.coordinator.port}",
                    worker_id="sanw", run_job=run_spec)
    thread = threading.Thread(target=worker.serve, daemon=True)
    thread.start()
    daemon.coordinator.wait_for_workers(1, timeout=60)
    results = {}
    client = ServeClient(f"127.0.0.1:{daemon.coordinator.port}")
    try:
        failed = client.run(
            specs, lambda spec, metrics, **meta:
            results.__setitem__(spec.key, metrics))
    finally:
        client.close()
        daemon.close()
    assert failed == {}
    return [json.dumps(results[s.key].to_dict(), sort_keys=True)
            for s in specs]


class TestBitIdenticalUnderSanitizer:
    def test_serve_sweep_matches_with_and_without(self, tmp_path):
        plain = _serve_sweep(tmp_path / "plain")
        threadsan.enable()
        try:
            sanitized = _serve_sweep(tmp_path / "sanitized")
            tracker = threadsan.sanitizer()
            assert tracker.violations == []
            assert tracker.acquisitions > 0   # instrumentation was live
        finally:
            threadsan.disable(reset=True)
        assert sanitized == plain
