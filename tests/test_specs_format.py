"""Tests for the declarative spec format: parsing + schema validation."""

import os

import pytest

from repro.specs import SpecError, load_spec, spec_from_dict
from repro.specs.format import parse_mini_toml, parse_toml

try:
    import tomllib
except ImportError:
    tomllib = None

SPECS_DIR = os.path.join(os.path.dirname(__file__), "..", "specs")
CHECKED_IN = ("fig2.toml", "fig7.toml", "fig8.toml", "fig12.toml",
              "mere_rob.toml")


def minimal_doc(**overrides):
    """A valid single-group spec document to perturb in error tests."""
    doc = {
        "spec": {"name": "t", "description": "d"},
        "matrix": {"name": "grid", "workloads": "scale",
                   "techniques": ["ooo", "dvr"]},
        "analysis": {
            "table": {"fn": "speedup_table", "needs": ["grid"],
                      "args": {"columns": ["dvr"]}},
        },
    }
    doc.update(overrides)
    return doc


class TestMiniTomlParser:
    @pytest.mark.skipif(tomllib is None, reason="needs tomllib to compare")
    @pytest.mark.parametrize("name", CHECKED_IN)
    def test_matches_tomllib_on_checked_in_specs(self, name):
        with open(os.path.join(SPECS_DIR, name)) as handle:
            text = handle.read()
        assert parse_mini_toml(text) == tomllib.loads(text)

    def test_tables_arrays_and_scalars(self):
        doc = parse_mini_toml(
            '[spec]\nname = "x"  # comment\ncount = 3\nratio = 1.5\n'
            'flag = true\nother = false\n')
        assert doc == {"spec": {"name": "x", "count": 3, "ratio": 1.5,
                               "flag": True, "other": False}}

    def test_array_of_tables_with_subtable(self):
        doc = parse_mini_toml(
            '[[matrix]]\nname = "a"\n[matrix.knobs]\n"core.rob_size" = '
            '[1, 2]\n[[matrix]]\nname = "b"\n')
        assert doc["matrix"][0]["name"] == "a"
        assert doc["matrix"][0]["knobs"] == {"core.rob_size": [1, 2]}
        assert doc["matrix"][1] == {"name": "b"}

    def test_multiline_array_and_inline_table(self):
        doc = parse_mini_toml(
            'values = [\n  1,  # one\n  2,\n  3,\n]\n'
            'point = {x = 1, y = "two"}\n')
        assert doc["values"] == [1, 2, 3]
        assert doc["point"] == {"x": 1, "y": "two"}

    def test_quoted_dotted_key_stays_one_segment(self):
        doc = parse_mini_toml('[knobs]\n"core.rob_size" = [16]\n')
        assert doc == {"knobs": {"core.rob_size": [16]}}

    def test_parse_errors_are_spec_errors(self):
        for text in ("key value\n", 'a = "unterminated\n', "a = [1, 2\n"):
            if tomllib is None:
                with pytest.raises(SpecError):
                    parse_toml(text)
            else:
                with pytest.raises(ValueError):
                    parse_mini_toml(text)

    def test_duplicate_key_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_mini_toml("a = 1\na = 2\n")


class TestLoadSpec:
    @pytest.mark.parametrize("name", CHECKED_IN)
    def test_checked_in_specs_load(self, name):
        spec = load_spec(os.path.join(SPECS_DIR, name))
        assert spec.groups and spec.analyses
        assert spec.digest and spec.source.endswith(name)

    def test_load_from_dict(self):
        spec = load_spec(minimal_doc())
        assert spec.name == "t"
        assert spec.group("grid").techniques == ("ooo", "dvr")
        assert spec.analyses[0].fn == "speedup_table"

    def test_load_json_file(self, tmp_path):
        import json
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(minimal_doc()))
        spec = load_spec(str(path))
        assert spec.name == "t" and spec.source == str(path)

    def test_dict_digest_is_stable(self):
        assert load_spec(minimal_doc()).digest \
            == load_spec(minimal_doc()).digest

    def test_unknown_extension_rejected(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("spec:\n")
        with pytest.raises(SpecError, match=r"\.toml or \.json"):
            load_spec(str(path))

    def test_missing_file_rejected(self):
        with pytest.raises(SpecError, match="does not exist"):
            load_spec("/no/such/spec.toml")


class TestValidation:
    def assert_rejects(self, doc, pattern):
        with pytest.raises(SpecError, match=pattern):
            spec_from_dict(doc)

    def test_missing_header(self):
        doc = minimal_doc()
        del doc["spec"]
        self.assert_rejects(doc, r"\[spec\] header")

    def test_empty_name(self):
        self.assert_rejects(minimal_doc(spec={"name": ""}), "non-empty")

    def test_unknown_top_level_key(self):
        self.assert_rejects(minimal_doc(extra={}), "unknown key.*'extra'")

    def test_missing_matrix(self):
        doc = minimal_doc()
        del doc["matrix"]
        self.assert_rejects(doc, r"\[\[matrix\]\]")

    def test_unknown_technique(self):
        doc = minimal_doc()
        doc["matrix"]["techniques"] = ["warp-drive"]
        self.assert_rejects(doc, "unknown technique 'warp-drive'")

    def test_duplicate_technique(self):
        doc = minimal_doc()
        doc["matrix"]["techniques"] = ["dvr", "dvr"]
        self.assert_rejects(doc, "listed twice")

    def test_unknown_workload(self):
        doc = minimal_doc()
        doc["matrix"]["workloads"] = [{"workload": "doom"}]
        self.assert_rejects(doc, "unknown workload 'doom'")

    def test_empty_workload_list(self):
        doc = minimal_doc()
        doc["matrix"]["workloads"] = []
        self.assert_rejects(doc, "at least one workload")

    def test_bad_workload_string(self):
        doc = minimal_doc()
        doc["matrix"]["workloads"] = "everything"
        self.assert_rejects(doc, "'scale' or 'scale-gap'")

    def test_unknown_knob_path(self):
        doc = minimal_doc()
        doc["matrix"]["knobs"] = {"core.robb_size": [128]}
        self.assert_rejects(doc, "unknown knob 'core.robb_size'.*rob_size")

    def test_knob_naming_section_rejected(self):
        doc = minimal_doc()
        doc["matrix"]["knobs"] = {"core": [128]}
        self.assert_rejects(doc, "whole config section")

    def test_knob_descending_into_value_rejected(self):
        doc = minimal_doc()
        doc["matrix"]["knobs"] = {"core.rob_size.bits": [1]}
        self.assert_rejects(doc, "plain value")

    def test_technique_is_not_a_knob(self):
        doc = minimal_doc()
        doc["matrix"]["knobs"] = {"technique": ["dvr"]}
        self.assert_rejects(doc, "matrix axis")

    def test_empty_knob_values_rejected(self):
        doc = minimal_doc()
        doc["matrix"]["knobs"] = {"core.rob_size": []}
        self.assert_rejects(doc, "empty value list")

    def test_unknown_exclusion_axis(self):
        doc = minimal_doc()
        doc["matrix"]["exclude"] = [{"flavor": "salty"}]
        self.assert_rejects(doc, "unknown axis 'flavor'")

    def test_empty_exclusion_rejected(self):
        doc = minimal_doc()
        doc["matrix"]["exclude"] = [{}]
        self.assert_rejects(doc, "eliminate every leaf")

    def test_unknown_analysis_fn(self):
        doc = minimal_doc()
        doc["analysis"]["table"]["fn"] = "magic"
        self.assert_rejects(doc, "unknown analysis fn 'magic'")

    def test_empty_needs_rejected(self):
        doc = minimal_doc()
        doc["analysis"]["table"]["needs"] = []
        self.assert_rejects(doc, "'needs' is empty")

    def test_unknown_needs_rejected(self):
        doc = minimal_doc()
        doc["analysis"]["table"]["needs"] = ["nope"]
        self.assert_rejects(doc, "references 'nope'")

    def test_group_analysis_name_collision(self):
        doc = minimal_doc()
        doc["analysis"]["grid"] = {"fn": "speedup_table", "needs": ["grid"],
                                   "args": {"columns": ["dvr"]}}
        self.assert_rejects(doc, "collide")

    def test_duplicate_group_name(self):
        doc = minimal_doc()
        doc["matrix"] = [dict(doc["matrix"]), dict(doc["matrix"])]
        self.assert_rejects(doc, "duplicate group name")

    def test_defaults_knobs_validated(self):
        self.assert_rejects(minimal_doc(defaults={"knobs": {"bogus": 1}}),
                            "unknown knob 'bogus'")

    def test_valid_knob_paths_accepted(self):
        doc = minimal_doc()
        doc["matrix"]["knobs"] = {"core.rob_size": [128, 256],
                                  "memsys.l1d_mshrs": [4],
                                  "max_instructions": [1000]}
        doc["defaults"] = {"knobs": {"memsys.dram_latency_cycles": 100}}
        spec = spec_from_dict(doc)
        assert set(spec.group("grid").knobs) == {
            "core.rob_size", "memsys.l1d_mshrs", "max_instructions"}
        assert spec.defaults == {"memsys.dram_latency_cycles": 100}

    def test_explicit_workload_labels(self):
        doc = minimal_doc()
        doc["matrix"]["workloads"] = [
            {"workload": "kangaroo"},
            {"workload": "bfs", "params": {"graph": "KR"}, "label": "b"},
        ]
        spec = spec_from_dict(doc)
        entries = spec.group("grid").workloads
        assert entries[0]["label"] == "kangaroo"
        assert entries[1] == {"workload": "bfs", "params": {"graph": "KR"},
                              "label": "b"}
