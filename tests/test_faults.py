"""Tests for ``repro.faults``: deterministic fault injection.

Covers the FaultPlan schema and serialization, the content-keyed
decision core (same seed -> same schedule; first occurrence only, so
retries converge), each seam wrapper (connection, cache, ledger)
degrading exactly as the DESIGN failure matrix promises, and the
``repro chaos`` runner reproducing an identical fault schedule from the
same seed while staying bit-identical to a fault-free baseline.
"""

from __future__ import annotations

import io
import socket

import pytest

from repro.cluster.protocol import Connection, ProtocolError, recv_message
from repro.config import SimConfig, TECH_OOO
from repro.faults import (FaultInjector, FaultPlan, FaultRule, KNOWN_SITES,
                          WorkerCrash, chaos_specs, run_chaos)
from repro.harness.runner import run_spec
from repro.jobs import JobSpec, ResultCache, RunLedger


def _spec(seed=1, workload="nas-is", max_instructions=1_200):
    return JobSpec(workload=workload, params={},
                   config=SimConfig(max_instructions=max_instructions
                                    ).with_technique(TECH_OOO), seed=seed)


# ---------------------------------------------------------------------------
# Plan schema
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultRule("conn.teleport", 0.5)

    def test_probability_range_enforced(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule("conn.drop", 1.5)

    def test_round_trip_through_dict(self):
        plan = FaultPlan.standard(42)
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        assert rebuilt.seed == 42
        assert rebuilt.to_dict() == plan.to_dict()
        assert rebuilt.sites() == plan.sites()

    def test_standard_plan_arms_every_site(self):
        assert FaultPlan.standard(1).sites() == sorted(KNOWN_SITES)


# ---------------------------------------------------------------------------
# Decision core
# ---------------------------------------------------------------------------
class TestInjectorDeterminism:
    PLAN = {"seed": 7, "rules": [{"site": "conn.drop", "probability": 0.5},
                                 {"site": "ledger.torn",
                                  "probability": 0.5}]}

    def test_same_seed_same_decisions(self):
        idents = [f"job-{n}" for n in range(40)]
        first = [FaultInjector(FaultPlan.from_dict(self.PLAN))
                 .decide("conn.drop", ident) is not None
                 for ident in idents]
        second = [FaultInjector(FaultPlan.from_dict(self.PLAN))
                  .decide("conn.drop", ident) is not None
                  for ident in idents]
        assert first == second
        assert any(first) and not all(first)      # p=0.5 actually mixes

    def test_decision_is_site_scoped(self):
        injector = FaultInjector(FaultPlan.from_dict(self.PLAN))
        drops = {ident for ident in (f"j{n}" for n in range(40))
                 if injector.decide("conn.drop", ident)}
        injector2 = FaultInjector(FaultPlan.from_dict(self.PLAN))
        tears = {ident for ident in (f"j{n}" for n in range(40))
                 if injector2.decide("ledger.torn", ident)}
        assert drops != tears                      # independent streams

    def test_fires_once_per_identity_so_retries_converge(self):
        plan = FaultPlan(1, [FaultRule("conn.drop", 1.0)])
        injector = FaultInjector(plan)
        assert injector.decide("conn.drop", "job-a") is not None
        assert injector.decide("conn.drop", "job-a") is None   # the retry
        assert injector.decide("conn.drop", "job-b") is not None

    def test_explicit_occurrence_triggers(self):
        plan = FaultPlan(1, [FaultRule("conn.drop", 0.0, at=(2,))])
        injector = FaultInjector(plan)
        fired = [injector.decide("conn.drop", "same") is not None
                 for _ in range(4)]
        assert fired == [False, False, True, False]

    def test_schedule_is_canonical(self):
        plan = FaultPlan(1, [FaultRule("conn.drop", 1.0)])
        injector = FaultInjector(plan)
        injector.decide("conn.drop", "z")
        injector.decide("conn.drop", "a")
        assert injector.schedule() == ["conn.drop:a", "conn.drop:z"]
        assert injector.summary() == {"conn.drop": 2}

    def test_worker_crash_escapes_exception_handlers(self):
        plan = FaultPlan(1, [FaultRule("worker.crash-before-result", 1.0)])
        injector = FaultInjector(plan)
        with pytest.raises(WorkerCrash):
            try:
                injector.worker_enter("job-a")
            except Exception:            # a worker's job-failure handler
                pytest.fail("WorkerCrash must not be a plain Exception")


# ---------------------------------------------------------------------------
# Connection seam
# ---------------------------------------------------------------------------
def _tcp_pair():
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.bind(("127.0.0.1", 0))
    server.listen(1)
    client = socket.create_connection(server.getsockname())
    peer, _addr = server.accept()
    server.close()
    return client, peer


def _faulty(rule):
    injector = FaultInjector(FaultPlan(1, [rule]))
    client, peer = _tcp_pair()
    return injector.wrap_connection(Connection(client)), peer


class TestFaultyConnection:
    def test_drop_swallows_only_the_targeted_frame(self):
        connection, peer = _faulty(FaultRule("conn.drop", 0.0, at=(0,)))
        try:
            connection.send("result", job_id="dropped")
            connection.send("result", job_id="kept")
            peer.settimeout(5.0)
            assert recv_message(peer)["job_id"] == "kept"
        finally:
            connection.close()
            peer.close()

    def test_corrupt_frame_is_rejected_by_framing(self):
        connection, peer = _faulty(FaultRule("conn.corrupt", 0.0, at=(0,)))
        try:
            connection.send("result", job_id="mangled")
            peer.settimeout(5.0)
            with pytest.raises(ProtocolError):   # never silently-wrong data
                recv_message(peer)
        finally:
            connection.close()
            peer.close()

    def test_truncated_frame_desynchronizes_stream(self):
        connection, peer = _faulty(FaultRule("conn.truncate", 0.0, at=(0,)))
        try:
            connection.send("result", job_id="cut")
            peer.settimeout(5.0)
            with pytest.raises(ProtocolError):
                recv_message(peer)
        finally:
            connection.close()
            peer.close()

    def test_partition_swallows_everything_after(self):
        connection, peer = _faulty(FaultRule("conn.partition", 0.0, at=(0,)))
        try:
            connection.send("result", job_id="gone")
            connection.send("heartbeat")         # job-less frames too
            connection.send("result", job_id="also-gone")
            peer.settimeout(0.3)
            with pytest.raises(socket.timeout):
                recv_message(peer)               # nothing ever arrives
        finally:
            connection.close()
            peer.close()

    def test_handshake_frames_pass_untouched(self):
        connection, peer = _faulty(FaultRule("conn.drop", 1.0))
        try:
            connection.send("hello", worker="w0")   # no job_id: not a target
            peer.settimeout(5.0)
            assert recv_message(peer)["type"] == "hello"
        finally:
            connection.close()
            peer.close()


# ---------------------------------------------------------------------------
# Persistence seams
# ---------------------------------------------------------------------------
class TestFaultyPersistence:
    @pytest.mark.parametrize("site", ["cache.truncate", "cache.corrupt"])
    def test_damaged_cache_entry_degrades_to_miss(self, tmp_path, site):
        injector = FaultInjector(FaultPlan(1, [FaultRule(site, 1.0)]))
        cache = injector.wrap_cache(ResultCache(str(tmp_path)))
        spec = _spec()
        cache.put(spec, run_spec(spec))
        reader = ResultCache(str(tmp_path))
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert reader.get(spec) is None
        assert reader.corrupt == 1
        # The damaged entry was discarded; a fresh put fully heals it.
        reader.put(spec, run_spec(spec))
        assert ResultCache(str(tmp_path)).get(spec) is not None

    def test_torn_append_loses_only_one_record(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        injector = FaultInjector(
            FaultPlan(1, [FaultRule("ledger.torn", 0.0, at=(0,))]))
        ledger = injector.wrap_ledger(RunLedger(path))
        torn_spec, intact_spec = _spec(seed=1), _spec(seed=2)
        metrics = run_spec(torn_spec)
        ledger.record(torn_spec, cache="miss", wall_s=1.0, worker=1,
                      metrics=metrics)
        ledger.record(intact_spec, cache="miss", wall_s=1.0, worker=1,
                      metrics=metrics)
        with pytest.warns(RuntimeWarning, match="corrupt ledger record"):
            records = RunLedger.read(path)
        assert [r["key"] for r in records] == [intact_spec.key]
        # Resume sees the torn spec as incomplete -> it gets re-dispatched.
        completed = RunLedger.completed_index(path)
        assert torn_spec.key not in completed
        assert intact_spec.key in completed


# ---------------------------------------------------------------------------
# End-to-end chaos runs
# ---------------------------------------------------------------------------
class TestChaosRun:
    def test_chaos_specs_are_pinned(self):
        first, second = chaos_specs(), chaos_specs()
        assert [s.key for s in first] == [s.key for s in second]
        assert len(chaos_specs(2)) == 2

    def test_same_seed_reproduces_schedule_bit_identically(self, tmp_path):
        kwargs = dict(workers=2, count=2, stream=io.StringIO())
        first = run_chaos(99, cache_dir=str(tmp_path / "a"), **kwargs)
        second = run_chaos(99, cache_dir=str(tmp_path / "b"), **kwargs)
        assert first["ok"], first
        assert second["ok"], second
        assert first["schedule"] == second["schedule"]
        assert first["stale_salt_rejected"]
        assert first["wrong_secret_rejected"]
        # The ledger records the plan, so a failing run is replayable
        # from the ledger alone.
        records = RunLedger.read(str(tmp_path / "a" / "runs.jsonl"))
        plans = [r for r in records if r.get("meta") == "chaos-plan"]
        assert len(plans) == 1
        assert FaultPlan.from_dict(plans[0]["plan"]).seed == 99
        # Meta records are structurally invisible to job-record readers.
        assert all("key" not in r for r in plans)
