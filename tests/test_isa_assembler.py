"""Tests for the assembler DSL and program container."""

import pytest

from repro.isa import Assembler, AssemblyError, Op


class TestRegisters:
    def test_string_register(self):
        a = Assembler()
        ins = a.li("r7", 1)
        assert ins.rd == 7

    def test_int_register(self):
        a = Assembler()
        ins = a.li(9, 1)
        assert ins.rd == 9

    def test_alias(self):
        a = Assembler()
        a.alias("rBase", 12)
        ins = a.load("r1", "rBase", 8)
        assert ins.rs1 == 12

    def test_unknown_register_rejected(self):
        a = Assembler()
        with pytest.raises(AssemblyError):
            a.li("bogus", 1)

    def test_out_of_range_register_rejected(self):
        a = Assembler()
        with pytest.raises(AssemblyError):
            a.li("r32", 1)


class TestLabels:
    def test_forward_reference_resolves(self):
        a = Assembler()
        a.jmp("end")
        a.nop()
        a.label("end")
        a.halt()
        program = a.build()
        assert program[0].target == 2

    def test_backward_reference_resolves(self):
        a = Assembler()
        a.label("top")
        a.nop()
        a.bnz("r1", "top")
        program = a.build()
        assert program[1].target == 0

    def test_undefined_label_raises_at_build(self):
        a = Assembler()
        a.jmp("nowhere")
        with pytest.raises(AssemblyError, match="nowhere"):
            a.build()

    def test_duplicate_label_rejected(self):
        a = Assembler()
        a.label("x")
        with pytest.raises(AssemblyError):
            a.label("x")

    def test_here_tracks_position(self):
        a = Assembler()
        assert a.here() == 0
        a.nop()
        assert a.here() == 1


class TestEncoding:
    def test_loadx_scale_default(self):
        a = Assembler()
        ins = a.loadx("r1", "r2", "r3")
        assert ins.imm == 8

    def test_loadx_custom_scale(self):
        a = Assembler()
        ins = a.loadx("r1", "r2", "r3", scale=1)
        assert ins.imm == 1

    def test_storex_registers(self):
        a = Assembler()
        ins = a.storex("r1", "r2", "r3")
        assert (ins.rs3, ins.rs1, ins.rs2) == (1, 2, 3)

    def test_store_offset(self):
        a = Assembler()
        ins = a.store("r1", "r2", 16)
        assert ins.rs3 == 1 and ins.rs1 == 2 and ins.imm == 16

    def test_every_alu_helper_emits_expected_opcode(self):
        a = Assembler()
        cases = [
            (a.add("r1", "r2", "r3"), Op.ADD),
            (a.sub("r1", "r2", "r3"), Op.SUB),
            (a.mul("r1", "r2", "r3"), Op.MUL),
            (a.div("r1", "r2", "r3"), Op.DIV),
            (a.and_("r1", "r2", "r3"), Op.AND),
            (a.or_("r1", "r2", "r3"), Op.OR),
            (a.xor("r1", "r2", "r3"), Op.XOR),
            (a.shl("r1", "r2", "r3"), Op.SHL),
            (a.shr("r1", "r2", "r3"), Op.SHR),
            (a.addi("r1", "r2", 1), Op.ADDI),
            (a.muli("r1", "r2", 2), Op.MULI),
            (a.andi("r1", "r2", 3), Op.ANDI),
            (a.shli("r1", "r2", 4), Op.SHLI),
            (a.shri("r1", "r2", 5), Op.SHRI),
            (a.mov("r1", "r2"), Op.MOV),
            (a.hash("r1", "r2"), Op.HASH),
            (a.cmplt("r1", "r2", "r3"), Op.CMPLT),
            (a.cmple("r1", "r2", "r3"), Op.CMPLE),
            (a.cmpeq("r1", "r2", "r3"), Op.CMPEQ),
            (a.cmpne("r1", "r2", "r3"), Op.CMPNE),
            (a.cmplti("r1", "r2", 6), Op.CMPLTI),
            (a.cmpeqi("r1", "r2", 7), Op.CMPEQI),
        ]
        for ins, op in cases:
            assert ins.op == op


class TestProgram:
    def _program(self):
        a = Assembler("demo")
        a.label("start")
        a.li("r1", 5)
        a.bnz("r1", "start")
        a.halt()
        return a.build()

    def test_pcs_assigned_sequentially(self):
        program = self._program()
        assert [ins.pc for ins in program] == [0, 1, 2]

    def test_len_and_indexing(self):
        program = self._program()
        assert len(program) == 3
        assert program[2].op == Op.HALT

    def test_label_at(self):
        program = self._program()
        assert program.label_at(0) == ["start"]
        assert program.label_at(1) == []

    def test_disassemble_contains_labels_and_ops(self):
        text = self._program().disassemble()
        assert "start:" in text
        assert "li" in text and "halt" in text
