"""Shared fixtures: small configs, tiny kernels, scaled-down graphs."""

from __future__ import annotations

import os
import random

import pytest

from repro.config import SimConfig
from repro.isa import Assembler, GuestMemory
from repro.workloads.base import BuiltWorkload
from repro.workloads.graphs import GRAPH_INPUTS, GraphSpec, _csr_cache


@pytest.fixture(autouse=True, scope="session")
def _isolated_jobs_cache(tmp_path_factory):
    """Point the repro.jobs result cache at a session-scratch directory.

    Keeps test runs from reading or polluting the user's real cache while
    still exercising (and benefiting from) caching within the session.
    """
    import repro.jobs as jobs
    cache_dir = str(tmp_path_factory.mktemp("repro-cache"))
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = cache_dir
    jobs.set_context(None)
    yield cache_dir
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old
    jobs.set_context(None)


@pytest.fixture
def config():
    """Paper configuration with a small instruction budget."""
    return SimConfig(max_instructions=5_000)


@pytest.fixture
def guest_memory():
    return GuestMemory(16 * 1024 * 1024)


def build_chain_workload(n=4096, levels=2, seed=7, memory_bytes=64 * 1024 * 1024):
    """The canonical indirect-chain kernel (paper Fig 1 shape):

        for i in range(n): C[B[A[i]]] += 1   (depth = ``levels``)

    Returns a BuiltWorkload whose metadata carries the array bases.
    """
    mem = GuestMemory(memory_bytes)
    rnd = random.Random(seed)
    arrays = []
    for level in range(levels + 1):
        if level == 0:
            values = [rnd.randrange(n) for _ in range(n)]
        elif level < levels:
            values = [rnd.randrange(n) for _ in range(n)]
        else:
            values = [0] * n
        arrays.append(mem.alloc_array(values, f"array{level}"))

    a = Assembler("chain")
    a.alias("rI", 1)
    a.alias("rN", 2)
    a.alias("rT", 3)
    a.alias("rC", 4)
    bases = []
    for level in range(levels + 1):
        bases.append(a.alias(f"rA{level}", 5 + level))
    for level, base in enumerate(arrays):
        a.li(f"rA{level}", base)
    a.li("rI", 0)
    a.li("rN", n)
    a.label("loop")
    a.loadx("rT", "rA0", "rI")            # striding load
    for level in range(1, levels):
        a.loadx("rT", f"rA{level}", "rT")  # dependent chain
    a.loadx("rC", f"rA{levels}", "rT")
    a.addi("rC", "rC", 1)
    a.storex("rC", f"rA{levels}", "rT")
    a.addi("rI", "rI", 1)
    a.cmplt("rC", "rI", "rN")
    a.bnz("rC", "loop")
    a.halt()
    return BuiltWorkload("chain", a.build(), mem,
                         metadata={"arrays": arrays, "n": n})


@pytest.fixture
def chain_workload():
    return build_chain_workload()


@pytest.fixture
def tiny_graph(monkeypatch):
    """Register a small test graph input and return its name."""
    name = "TESTG"
    spec = GraphSpec(name, "rmat", 9, 8)
    monkeypatch.setitem(GRAPH_INPUTS, name, spec)
    yield name
    _csr_cache.pop((spec, 12345), None)


@pytest.fixture
def tiny_uniform_graph(monkeypatch):
    name = "TESTU"
    spec = GraphSpec(name, "uniform", 9, 8)
    monkeypatch.setitem(GRAPH_INPUTS, name, spec)
    yield name
    _csr_cache.pop((spec, 12345), None)
