"""Tests for the full memory hierarchy: latencies, MSHR merging,
provenance statistics, prefetch paths and the oracle model."""

import pytest

from repro.config import ImpConfig, MemSysConfig, StridePrefetcherConfig
from repro.isa import GuestMemory
from repro.memsys import (LEVEL_L1, LEVEL_L2, LEVEL_L3, LEVEL_OFFCHIP,
                          MemoryHierarchy, SRC_DEMAND, SRC_DVR)


def make_hierarchy(stride_enabled=False, imp_enabled=False):
    mem = GuestMemory(64 * 1024 * 1024)
    hierarchy = MemoryHierarchy(
        MemSysConfig(),
        StridePrefetcherConfig(enabled=stride_enabled),
        ImpConfig(enabled=imp_enabled),
        mem)
    return hierarchy, mem


class TestAccessLatencies:
    def test_cold_miss_goes_to_dram(self):
        hierarchy, _ = make_hierarchy()
        result = hierarchy.demand_load(0x10000, pc=1, value=0, now=100)
        assert result.level == LEVEL_OFFCHIP
        # l1+l2+l3 tag path (42) + 200 DRAM
        assert result.complete_cycle == 100 + 42 + 200

    def test_l1_hit_after_fill(self):
        hierarchy, _ = make_hierarchy()
        first = hierarchy.demand_load(0x10000, 1, 0, 100)
        later = first.complete_cycle + 10
        result = hierarchy.demand_load(0x10000, 1, 0, later)
        assert result.level == LEVEL_L1
        assert result.complete_cycle == later + 4

    def test_l2_hit_after_l1_eviction(self):
        hierarchy, _ = make_hierarchy()
        hierarchy.demand_load(0x10000, 1, 0, 0)
        hierarchy.tick(400)
        # Evict from L1 by filling its set: same set = same low bits.
        l1_sets = hierarchy.l1d.num_sets
        for way in range(1, 10):
            addr = 0x10000 + way * l1_sets * 64
            hierarchy.demand_load(addr, 1, 0, 400 + way)
            hierarchy.tick(1000 + way * 300)
        assert not hierarchy.l1d.contains(0x10000 >> 6)
        result = hierarchy.demand_load(0x10000, 1, 0, 10_000)
        assert result.level == LEVEL_L2
        assert result.complete_cycle == 10_000 + 4 + 8

    def test_inflight_merge(self):
        hierarchy, _ = make_hierarchy()
        first = hierarchy.demand_load(0x10000, 1, 0, 0)
        merged = hierarchy.demand_load(0x10020, 1, 0, 50)  # same line
        assert merged.merged
        assert merged.complete_cycle == first.complete_cycle
        assert merged.level == LEVEL_OFFCHIP

    def test_same_line_counts_one_dram_access(self):
        hierarchy, _ = make_hierarchy()
        hierarchy.demand_load(0x10000, 1, 0, 0)
        hierarchy.demand_load(0x10008, 1, 0, 1)
        assert hierarchy.stats.dram_accesses[SRC_DEMAND] == 1


class TestMshrPressure:
    def test_demand_blocked_when_mshrs_full(self):
        hierarchy, _ = make_hierarchy()
        for k in range(24):
            assert hierarchy.demand_load(0x10000 + k * 64, 1, 0, 0) is not None
        blocked = hierarchy.demand_load(0x80000, 1, 0, 0)
        assert blocked is None
        assert hierarchy.stats.mshr_blocked == 1

    def test_retry_succeeds_after_fill(self):
        hierarchy, _ = make_hierarchy()
        for k in range(24):
            hierarchy.demand_load(0x10000 + k * 64, 1, 0, 0)
        result = hierarchy.demand_load(0x80000, 1, 0, 500)
        assert result is not None

    def test_prefetch_dropped_when_full(self):
        hierarchy, _ = make_hierarchy()
        for k in range(24):
            hierarchy.demand_load(0x10000 + k * 64, 1, 0, 0)
        assert not hierarchy.prefetch(0x90000, 0, SRC_DVR)


class TestProvenance:
    def test_prefetch_then_demand_hit_records_use(self):
        hierarchy, _ = make_hierarchy()
        hierarchy.prefetch(0x20000, 0, SRC_DVR)
        hierarchy.demand_load(0x20000, 1, 0, 1000)
        assert hierarchy.stats.prefetch_used[SRC_DVR] == 1
        assert hierarchy.stats.timeliness[SRC_DVR][LEVEL_L1] == 1

    def test_use_counted_once_per_line(self):
        hierarchy, _ = make_hierarchy()
        hierarchy.prefetch(0x20000, 0, SRC_DVR)
        hierarchy.demand_load(0x20000, 1, 0, 1000)
        hierarchy.demand_load(0x20000, 1, 0, 1010)
        assert hierarchy.stats.prefetch_used[SRC_DVR] == 1

    def test_late_prefetch_counts_offchip(self):
        hierarchy, _ = make_hierarchy()
        hierarchy.prefetch(0x20000, 0, SRC_DVR)
        hierarchy.demand_load(0x20000, 1, 0, 10)  # fill still in flight
        assert hierarchy.stats.timeliness[SRC_DVR][LEVEL_OFFCHIP] == 1

    def test_dram_accesses_attributed_to_source(self):
        hierarchy, _ = make_hierarchy()
        hierarchy.prefetch(0x20000, 0, SRC_DVR)
        hierarchy.demand_load(0x30000, 1, 0, 0)
        assert hierarchy.stats.dram_accesses[SRC_DVR] == 1
        assert hierarchy.stats.dram_accesses[SRC_DEMAND] == 1

    def test_accuracy_helper(self):
        hierarchy, _ = make_hierarchy()
        hierarchy.prefetch(0x20000, 0, SRC_DVR)
        hierarchy.prefetch(0x30000, 0, SRC_DVR)
        hierarchy.demand_load(0x20000, 1, 0, 1000)
        assert hierarchy.stats.accuracy(SRC_DVR) == 0.5

    def test_store_path_touches_only_store_stats(self):
        hierarchy, _ = make_hierarchy()
        hierarchy.demand_store(0x20000, 0)                 # write miss
        hierarchy.tick(1000)
        hierarchy.demand_store(0x20000, 1000)              # write hit
        assert hierarchy.stats.demand_stores == 2
        assert hierarchy.stats.demand_loads == 0
        assert all(count == 0
                   for count in hierarchy.stats.demand_hits.values())


class TestPrefetchPath:
    def test_prefetch_resident_line_is_noop(self):
        hierarchy, _ = make_hierarchy()
        hierarchy.demand_load(0x20000, 1, 0, 0)
        assert not hierarchy.prefetch(0x20000, 10, SRC_DVR)

    def test_prefetch_out_of_bounds_rejected(self):
        hierarchy, mem = make_hierarchy()
        assert not hierarchy.prefetch(mem.size_bytes + 64, 0, SRC_DVR)

    def test_runahead_load_returns_timing(self):
        hierarchy, _ = make_hierarchy()
        result = hierarchy.runahead_load(0x20000, 0, SRC_DVR)
        assert result.complete_cycle == 242


class TestStrideIntegration:
    def test_stride_stream_triggers_prefetches(self):
        hierarchy, _ = make_hierarchy(stride_enabled=True)
        now = 0
        for k in range(8):
            now += 50
            hierarchy.demand_load(0x40000 + k * 64, pc=7, value=0, now=now)
        assert hierarchy.stats.prefetch_issued.get("stride", 0) > 0

    def test_stride_prefetch_hits_help_later_demand(self):
        hierarchy, _ = make_hierarchy(stride_enabled=True)
        now = 0
        for k in range(6):
            now += 300
            hierarchy.demand_load(0x40000 + k * 64, pc=7, value=0, now=now)
        # By now the prefetcher runs ahead; the next access should hit.
        result = hierarchy.demand_load(0x40000 + 6 * 64, 7, 0, now + 300)
        assert result.level in (LEVEL_L1, LEVEL_L2)


class TestOracle:
    def test_oracle_load_is_l1_latency(self):
        hierarchy, _ = make_hierarchy()
        complete = hierarchy.oracle_load(0x50000, 1000)
        assert complete == 1004

    def test_oracle_spends_bandwidth(self):
        hierarchy, _ = make_hierarchy()
        hierarchy.oracle_load(0x50000, 0)
        hierarchy.oracle_load(0x51000, 0)
        assert hierarchy.stats.dram_accesses["oracle"] == 2

    def test_oracle_resident_line_free(self):
        hierarchy, _ = make_hierarchy()
        hierarchy.oracle_load(0x50000, 0)
        hierarchy.oracle_load(0x50000, 10)
        assert hierarchy.stats.dram_accesses["oracle"] == 1

    def test_oracle_bandwidth_bound_under_burst(self):
        hierarchy, _ = make_hierarchy()
        completes = [hierarchy.oracle_load(0x100000 + k * 64, now=0)
                     for k in range(200)]
        # 200 lines need >= 1000 channel cycles; latency cannot be hidden
        # below the bandwidth floor.
        assert completes[-1] >= 199 * 5
