"""Property-based whole-simulator invariants.

Random guest programs are generated (straight-line arithmetic, memory
accesses into a scratch array, and a bounded counting loop) and run both
through the pure functional interpreter and the full cycle-level core.
The architectural results must be identical -- the timing model must
never change what a program computes.  On top of that, every runahead
technique is speculative-only: running the same program under any engine
must produce the same final architectural state.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SimConfig
from repro.isa import Assembler, GuestMemory, run_functional
from repro.memsys import MemoryHierarchy
from repro.uarch import OoOCore

SCRATCH_WORDS = 512

# Register conventions for generated programs:
#   r1 = scratch base, r2 = loop counter, r3 = loop bound,
#   r4..r11 = computation registers.
_COMPUTE_REGS = [f"r{k}" for k in range(4, 12)]


@st.composite
def random_body(draw):
    """A list of (op, args) describing a loop body."""
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=12))):
        kind = draw(st.sampled_from(
            ["addi", "add", "mul", "xor", "shri", "hash", "cmplt",
             "load", "store"]))
        rd = draw(st.sampled_from(_COMPUTE_REGS))
        rs1 = draw(st.sampled_from(_COMPUTE_REGS))
        rs2 = draw(st.sampled_from(_COMPUTE_REGS))
        imm = draw(st.integers(min_value=0, max_value=63))
        ops.append((kind, rd, rs1, rs2, imm))
    return ops


def build_random_program(body, iterations):
    a = Assembler("random")
    mem = GuestMemory(4 * 1024 * 1024)
    base = mem.alloc_array(list(range(SCRATCH_WORDS)), "scratch")
    a.li("r1", base)
    a.li("r2", 0)
    a.li("r3", iterations)
    for k, reg in enumerate(_COMPUTE_REGS):
        a.li(reg, k * 3 + 1)
    a.label("loop")
    for kind, rd, rs1, rs2, imm in body:
        if kind == "addi":
            a.addi(rd, rs1, imm)
        elif kind == "add":
            a.add(rd, rs1, rs2)
        elif kind == "mul":
            a.mul(rd, rs1, rs2)
        elif kind == "xor":
            a.xor(rd, rs1, rs2)
        elif kind == "shri":
            a.shri(rd, rs1, imm % 8)
        elif kind == "hash":
            a.hash(rd, rs1)
        elif kind == "cmplt":
            a.cmplt(rd, rs1, rs2)
        elif kind == "load":
            # Clamp the index into the scratch array.
            a.andi(rd, rs1, SCRATCH_WORDS - 1)
            a.loadx(rd, "r1", rd)
        elif kind == "store":
            a.andi(rd, rs1, SCRATCH_WORDS - 1)
            a.storex(rs2, "r1", rd)
    a.addi("r2", "r2", 1)
    a.cmplt("r12", "r2", "r3")
    a.bnz("r12", "loop")
    a.halt()
    return a.build(), mem, base


def run_timing(program, mem, technique="ooo"):
    config = SimConfig(max_instructions=10_000_000
                       ).with_technique(technique)
    hierarchy = MemoryHierarchy(config.memsys, config.stride_pf, config.imp,
                                mem)
    from repro.harness.runner import build_engine
    engine = build_engine(config, program, mem, hierarchy)
    core = OoOCore(program, mem, config, hierarchy, engine=engine,
                   perfect_memory=technique == "oracle")
    stats = core.run(max_instructions=10_000_000)
    return core, stats


@settings(max_examples=20, deadline=None)
@given(random_body(), st.integers(min_value=1, max_value=40))
def test_timing_model_preserves_architecture(body, iterations):
    program, mem_f, base = build_random_program(body, iterations)
    ref_regs, ref_count = run_functional(program, mem_f,
                                         max_instructions=1_000_000)
    program2, mem_t, _ = build_random_program(body, iterations)
    core, stats = run_timing(program2, mem_t)
    assert stats.halted
    assert stats.committed == ref_count
    assert core.regs == ref_regs
    assert mem_t.words == mem_f.words


@settings(max_examples=8, deadline=None)
@given(random_body(), st.integers(min_value=5, max_value=30),
       st.sampled_from(["pre", "vr", "dvr", "oracle"]))
def test_runahead_never_changes_architecture(body, iterations, technique):
    program_a, mem_a, _ = build_random_program(body, iterations)
    run_timing(program_a, mem_a, technique="ooo")
    program_b, mem_b, _ = build_random_program(body, iterations)
    run_timing(program_b, mem_b, technique=technique)
    assert mem_a.words == mem_b.words


@settings(max_examples=10, deadline=None)
@given(random_body(), st.integers(min_value=1, max_value=30))
def test_cycle_count_sane(body, iterations):
    """Cycles are bounded below by committed/width and the run terminates."""
    program, mem, _ = build_random_program(body, iterations)
    _, stats = run_timing(program, mem)
    assert stats.cycles >= stats.committed / SimConfig().core.width
