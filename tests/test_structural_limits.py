"""Structural-hazard edge cases: issue-queue / store-queue blocking,
prefetch-pollution accounting, and the VR termination-grace knob."""

from dataclasses import replace

import pytest

from repro.config import SimConfig
from repro.harness.runner import run_built
from repro.isa import Assembler, GuestMemory
from repro.memsys import MemoryHierarchy
from repro.memsys.cache import CacheLine
from repro.uarch import OoOCore
from repro.workloads.base import BuiltWorkload
from tests.conftest import build_chain_workload


def dependent_miss_program(n=2048):
    """Every instruction depends on a missing load: the IQ fills with
    waiters."""
    import random
    rnd = random.Random(5)
    mem = GuestMemory(64 * 1024 * 1024)
    permutation = list(range(1 << 16))
    rnd.shuffle(permutation)
    base = mem.alloc_array(permutation, "data")
    a = Assembler("chase")
    a.li("r1", base)
    a.li("r2", 0)
    a.label("loop")
    a.loadx("r3", "r1", "r3")       # pointer chase
    a.andi("r3", "r3", (1 << 16) - 1)
    a.addi("r2", "r2", 1)
    a.cmplti("r4", "r2", n)
    a.bnz("r4", "loop")
    a.halt()
    return BuiltWorkload("chase", a.build(), mem)


class TestQueueLimits:
    def test_small_issue_queue_hurts(self):
        built_small = build_chain_workload(n=65536)
        built_big = build_chain_workload(n=65536)
        config = SimConfig(max_instructions=5_000)
        small_iq = replace(config, core=replace(config.core,
                                                issue_queue_size=16))
        small = run_built(built_small, small_iq)
        big = run_built(built_big, config)
        assert small.ipc < big.ipc

    def test_small_store_queue_hurts_store_heavy_code(self):
        def store_program():
            mem = GuestMemory(16 * 1024 * 1024)
            out = mem.alloc(1 << 14, "out")
            a = Assembler()
            a.li("r1", out)
            a.li("r2", 0)
            a.label("loop")
            a.storex("r2", "r1", "r2")
            a.addi("r2", "r2", 1)
            a.cmplti("r3", "r2", 1500)
            a.bnz("r3", "loop")
            a.halt()
            return BuiltWorkload("stores", a.build(), mem)

        config = SimConfig(max_instructions=5_000)
        tiny_sq = replace(config, core=replace(config.core,
                                               store_queue_size=2))
        slow = run_built(store_program(), tiny_sq)
        fast = run_built(store_program(), config)
        assert slow.cycles >= fast.cycles

    def test_pointer_chase_ignores_rob_size(self):
        """A serial chain gains nothing from a bigger window."""
        config = SimConfig(max_instructions=4_000)
        small = run_built(dependent_miss_program(),
                          config.with_rob(64))
        big = run_built(dependent_miss_program(),
                        config.with_rob(512))
        assert big.ipc < small.ipc * 1.2


class TestPollutionAccounting:
    def test_unused_prefetch_eviction_counted(self):
        config = SimConfig()
        mem = GuestMemory(64 * 1024 * 1024)
        hierarchy = MemoryHierarchy(config.memsys, config.stride_pf,
                                    config.imp, mem)
        # Prefetch a set's worth of lines into one L3 set, never touch
        # them, then force evictions with demand traffic to the same set.
        l3_sets = hierarchy.l3.num_sets
        for way in range(20):
            hierarchy.prefetch(64 * l3_sets * way, 0, "dvr")
            hierarchy.tick(1000 * (way + 1))
        for way in range(20, 60):
            hierarchy.demand_load(64 * l3_sets * way, 1, 0,
                                  100_000 + way * 1000)
            hierarchy.tick(100_000 + way * 1000 + 500)
        assert hierarchy.stats.prefetch_evicted_unused.get("dvr", 0) > 0


class TestVrGrace:
    def test_zero_grace_terminates_immediately(self):
        config = SimConfig(max_instructions=6_000)
        config = replace(config, runahead=replace(config.runahead,
                                                  vr_termination_grace=0))
        zero = run_built(build_chain_workload(n=65536),
                         config.with_technique("vr"))
        config_long = replace(config, runahead=replace(
            config.runahead, vr_termination_grace=2_000))
        long_grace = run_built(build_chain_workload(n=65536),
                               config_long.with_technique("vr"))
        assert (zero.engine_stats["vr_delayed_termination_cycles"] <=
                long_grace.engine_stats["vr_delayed_termination_cycles"])
