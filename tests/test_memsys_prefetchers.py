"""Tests for the stride prefetcher and IMP."""

from repro.config import ImpConfig, StridePrefetcherConfig
from repro.isa import GuestMemory
from repro.memsys.cache import Cache, CacheLine
from repro.config import CacheConfig
from repro.memsys.imp import IndirectMemoryPrefetcher
from repro.memsys.stride_prefetcher import StridePrefetcher


def trained_stride_pf(pc=7, base=0x1000, stride=64, steps=4):
    pf = StridePrefetcher(StridePrefetcherConfig(enabled=True))
    out = ()
    for k in range(steps):
        out = pf.observe(pc, base + k * stride)
    return pf, out


class TestStridePrefetcher:
    def test_untrained_returns_nothing(self):
        pf = StridePrefetcher(StridePrefetcherConfig(enabled=True))
        assert pf.observe(1, 0x1000) == ()
        assert pf.observe(1, 0x1040) == ()  # first stride observation

    def test_trained_emits_ahead_of_stream(self):
        pf, out = trained_stride_pf()
        config = StridePrefetcherConfig()
        assert len(out) == config.degree
        expected_first = 0x1000 + 3 * 64 + 64 * config.distance
        assert out[0] == expected_first

    def test_negative_stride(self):
        pf = StridePrefetcher(StridePrefetcherConfig(enabled=True))
        out = ()
        for k in range(4):
            out = pf.observe(3, 0x10000 - k * 64)
        assert all(addr < 0x10000 - 3 * 64 for addr in out)

    def test_stride_change_resets_confidence(self):
        pf, _ = trained_stride_pf()
        assert pf.observe(7, 0x1000 + 999) == ()  # broken pattern

    def test_is_striding(self):
        pf, _ = trained_stride_pf()
        assert pf.is_striding(7)
        assert not pf.is_striding(8)

    def test_stream_capacity_lru(self):
        config = StridePrefetcherConfig(enabled=True, streams=2)
        pf = StridePrefetcher(config)
        pf.observe(1, 100)
        pf.observe(2, 200)
        pf.observe(3, 300)  # evicts pc 1
        assert pf.entry(1) is None
        assert pf.entry(2) is not None

    def test_disabled_never_trains(self):
        pf = StridePrefetcher(StridePrefetcherConfig(enabled=False))
        for k in range(8):
            assert pf.observe(1, k * 64) == ()

    def test_small_stride_prefetches_distinct_lines(self):
        pf = StridePrefetcher(StridePrefetcherConfig(enabled=True))
        out = ()
        for k in range(5):
            out = pf.observe(9, 0x2000 + k * 8)  # 8-byte stride
        lines = {addr >> 6 for addr in out}
        assert len(lines) == len(out)


def make_imp(l1=None):
    mem = GuestMemory(1 << 22)
    imp = IndirectMemoryPrefetcher(ImpConfig(enabled=True), mem, l1_cache=l1)
    return imp, mem


class TestImp:
    def _train(self, imp, base=0x100000, shift=3, index_pc=7):
        """Feed (index value, miss at base + value<<shift) pairs."""
        for k, value in enumerate([10, 20, 30]):
            imp.observe_index_load(index_pc, 0x1000 + k * 8, value, stride=8)
            imp.observe_miss(base + (value << shift))

    def test_pattern_confirmation(self):
        imp, _ = make_imp()
        self._train(imp)
        assert imp.patterns_confirmed >= 1
        entry = imp._entries[7]
        assert entry.confirmed
        assert entry.base == 0x100000 and entry.shift == 3

    def test_prefetches_follow_future_index_values(self):
        imp, mem = make_imp()
        self._train(imp)
        # Future index values live in the index array.
        index_base = 0x1000
        for k in range(40):
            mem.write_word(index_base + k * 8, 100 + k)
        out = imp.observe_index_load(7, index_base + 3 * 8, 99, stride=8)
        config = ImpConfig()
        assert len(out) == config.degree
        expect0 = 0x100000 + ((100 + 3 + config.distance) << 3)
        assert out[0] == expect0

    def test_blocked_when_index_line_not_cached(self):
        l1 = Cache(CacheConfig(32 * 1024, 8, 4), "L1")
        imp, mem = make_imp(l1=l1)
        self._train(imp)
        out = imp.observe_index_load(7, 0x1000, 50, stride=8)
        assert out == []
        assert imp.index_reads_blocked > 0

    def test_allowed_when_index_line_cached(self):
        l1 = Cache(CacheConfig(32 * 1024, 8, 4), "L1")
        imp, mem = make_imp(l1=l1)
        self._train(imp)
        # Make every index line resident.
        for line_addr in range(0, 0x4000 >> 6):
            l1.install(line_addr, CacheLine("demand", 0, "L1"))
        out = imp.observe_index_load(7, 0x1000, 50, stride=8)
        assert len(out) > 0

    def test_no_prefetch_without_confirmation(self):
        imp, _ = make_imp()
        imp.observe_index_load(7, 0x1000, 10, stride=8)
        out = imp.observe_index_load(7, 0x1008, 20, stride=8)
        assert out == ()

    def test_disabled(self):
        mem = GuestMemory(1 << 20)
        imp = IndirectMemoryPrefetcher(ImpConfig(enabled=False), mem)
        imp.observe_miss(0x2000)
        assert imp.observe_index_load(1, 0x100, 5, 8) == ()
        assert not imp._entries

    def test_zero_stride_produces_nothing(self):
        imp, _ = make_imp()
        self._train(imp)
        assert imp.observe_index_load(7, 0x1000, 50, stride=0) == ()

    def test_table_capacity_bounded(self):
        imp, _ = make_imp()
        for pc in range(40):
            imp.observe_index_load(pc, 0x1000, pc, stride=8)
            imp.observe_miss(0x100000 + pc * 64)
        assert len(imp._entries) <= ImpConfig().table_entries
