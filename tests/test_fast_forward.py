"""Event-driven fast-forwarding must be invisible in the results.

The whole contract of the cycle-skipping scheduler (DESIGN.md, "Event-
driven scheduling") is that ``fast_forward`` is a pure wall-clock
optimization: every statistic -- cycles, CPI stack, ROB-stall counters,
MSHR occupancy integral, engine stats -- is bit-identical with it on or
off, for every engine.  These tests pin that equivalence across the
engine matrix, check the config digest tracks the toggle, and prove the
skipper actually engages on a latency-bound workload.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.bench import build_chase
from repro.config import SimConfig, config_digest
from repro.harness.runner import run_built, run_workload
from repro.workloads import make_workload

ENGINE_MATRIX = [
    # (technique, stride prefetcher enabled): "none" is the bare OoO
    # core, "stride" the shipping default.
    pytest.param("ooo", False, id="none"),
    pytest.param("ooo", True, id="stride"),
    pytest.param("pre", True, id="pre"),
    pytest.param("vr", True, id="vr"),
    pytest.param("dvr", True, id="dvr"),
]


def _run_pair(workload_name, technique, stride_enabled,
              instructions=2000):
    results = []
    for fast_forward in (True, False):
        config = SimConfig(max_instructions=instructions,
                           fast_forward=fast_forward
                           ).with_technique(technique)
        config = replace(config, stride_pf=replace(
            config.stride_pf, enabled=stride_enabled))
        metrics = run_workload(make_workload(workload_name), config)
        payload = metrics.to_dict()
        payload.pop("config")        # differs by the toggle itself
        results.append(payload)
    return results


class TestEquivalence:
    @pytest.mark.parametrize("technique, stride_enabled", ENGINE_MATRIX)
    def test_camel_metrics_bit_identical(self, technique, stride_enabled):
        on, off = _run_pair("camel", technique, stride_enabled)
        assert on == off

    @pytest.mark.parametrize("technique, stride_enabled", ENGINE_MATRIX)
    def test_nas_is_metrics_bit_identical(self, technique, stride_enabled):
        on, off = _run_pair("nas-is", technique, stride_enabled)
        assert on == off

    @pytest.mark.parametrize("technique", ["ooo", "pre", "vr", "dvr"])
    def test_pointer_chase_bit_identical(self, technique):
        # The serial chase is the worst case: nearly every cycle is a
        # skippable stall, so any attribution slip would surface here.
        results = []
        for fast_forward in (True, False):
            config = SimConfig(max_instructions=2000,
                               fast_forward=fast_forward
                               ).with_technique(technique)
            metrics = run_built(build_chase(entries=1 << 12), config)
            payload = metrics.to_dict()
            payload.pop("config")
            results.append(payload)
        assert results[0] == results[1]


class TestRunToCompletion:
    def test_halt_drain_is_not_a_deadlock(self):
        # The cycle in which HALT commits is quiescent with no events
        # left; it must end the run, not trip the deadlock guard.
        results = []
        for fast_forward in (True, False):
            config = SimConfig(max_instructions=100_000,
                               fast_forward=fast_forward)
            metrics = run_built(build_chase(entries=1 << 10), config)
            payload = metrics.to_dict()
            payload.pop("config")
            results.append(payload)
        assert results[0] == results[1]
        assert results[0]["cycles"] > 0


class TestEngagement:
    def test_fast_forward_skips_cycles_on_chase(self):
        config = SimConfig(max_instructions=2000, fast_forward=True)
        built = build_chase(entries=1 << 12)
        from repro.harness.runner import build_engine
        from repro.memsys.hierarchy import MemoryHierarchy
        from repro.uarch.core import OoOCore
        hierarchy = MemoryHierarchy(config.memsys, config.stride_pf,
                                    config.imp, built.memory)
        engine = build_engine(config, built.program, built.memory, hierarchy)
        core = OoOCore(built.program, built.memory, config, hierarchy,
                       engine=engine)
        stats = core.run()
        assert stats.fast_forward_spans > 0
        # A serial chase stalls for most of its execution.
        assert stats.fast_forward_cycles > stats.cycles // 2

    def test_disabled_toggle_never_skips(self):
        config = SimConfig(max_instructions=2000, fast_forward=False)
        built = build_chase(entries=1 << 12)
        from repro.harness.runner import build_engine
        from repro.memsys.hierarchy import MemoryHierarchy
        from repro.uarch.core import OoOCore
        hierarchy = MemoryHierarchy(config.memsys, config.stride_pf,
                                    config.imp, built.memory)
        engine = build_engine(config, built.program, built.memory, hierarchy)
        core = OoOCore(built.program, built.memory, config, hierarchy,
                       engine=engine)
        stats = core.run()
        assert stats.fast_forward_spans == 0
        assert stats.fast_forward_cycles == 0


class TestConfigDigest:
    def test_digest_tracks_fast_forward_field(self):
        on = SimConfig(fast_forward=True)
        off = SimConfig(fast_forward=False)
        assert config_digest(on) != config_digest(off)
        assert config_digest(on) == config_digest(SimConfig())
