"""Tests for metrics, runner dispatch, reporting, and experiment plumbing."""

import pytest

from repro.config import (ALL_TECHNIQUES, SimConfig, TECH_DVR,
                          TECH_DVR_DISCOVERY, TECH_DVR_OFFLOAD, TECH_IMP,
                          TECH_OOO, TECH_ORACLE, TECH_PRE, TECH_VR,
                          paper_config, table1_rows)
from repro.core.dvr import DvrEngine
from repro.harness import (ExperimentScale, format_kv, format_table, gmean,
                           hmean, run_built, run_techniques, run_workload,
                           table1_config)
from repro.harness.runner import build_engine
from repro.runahead import OracleEngine, PreEngine, VrEngine
from repro.uarch.core import NullEngine
from tests.conftest import build_chain_workload


class TestConfig:
    def test_paper_config_table1_values(self):
        config = paper_config()
        assert config.core.rob_size == 350
        assert config.core.width == 5
        assert config.memsys.l1d_mshrs == 24
        assert config.memsys.dram_latency_cycles == 200
        assert config.dvr.max_lanes == 128

    def test_with_technique_sets_flags(self):
        config = SimConfig().with_technique(TECH_IMP)
        assert config.imp.enabled
        config = SimConfig().with_technique(TECH_DVR_OFFLOAD)
        assert not config.dvr.discovery_enabled
        config = SimConfig().with_technique(TECH_DVR_DISCOVERY)
        assert config.dvr.discovery_enabled and not config.dvr.nested_enabled
        config = SimConfig().with_technique(TECH_DVR)
        assert config.dvr.discovery_enabled and config.dvr.nested_enabled

    def test_with_rob_plain(self):
        config = SimConfig().with_rob(128)
        assert config.core.rob_size == 128
        assert config.core.issue_queue_size == 128  # unscaled

    def test_with_rob_scaled_backend(self):
        config = SimConfig().with_rob(512, scale_backend=True)
        assert config.core.rob_size == 512
        assert config.core.issue_queue_size > 128
        assert config.core.store_queue_size > 72

    def test_with_technique_does_not_mutate_original(self):
        config = SimConfig()
        config.with_technique(TECH_IMP)
        assert not config.imp.enabled

    def test_table1_rows_complete(self):
        rows = dict(table1_rows())
        assert "ROB size" in rows and rows["ROB size"] == "350"
        assert "Memory" in rows


class TestEngineDispatch:
    @pytest.mark.parametrize("technique,engine_type", [
        (TECH_OOO, NullEngine),
        (TECH_IMP, NullEngine),
        (TECH_PRE, PreEngine),
        (TECH_VR, VrEngine),
        (TECH_DVR, DvrEngine),
        (TECH_DVR_OFFLOAD, DvrEngine),
        (TECH_DVR_DISCOVERY, DvrEngine),
        (TECH_ORACLE, OracleEngine),
    ])
    def test_build_engine(self, technique, engine_type, chain_workload):
        from repro.memsys import MemoryHierarchy
        config = SimConfig().with_technique(technique)
        hierarchy = MemoryHierarchy(config.memsys, config.stride_pf,
                                    config.imp, chain_workload.memory)
        engine = build_engine(config, chain_workload.program,
                              chain_workload.memory, hierarchy)
        assert isinstance(engine, engine_type)

    def test_unknown_technique_raises(self, chain_workload):
        config = SimConfig(technique="warp-drive")
        with pytest.raises(ValueError):
            run_built(chain_workload, config)


class TestMetrics:
    def _metrics(self, technique=TECH_OOO):
        config = SimConfig(max_instructions=3_000).with_technique(technique)
        return run_built(build_chain_workload(n=4096), config)

    def test_basic_fields(self):
        metrics = self._metrics()
        assert metrics.committed >= 3_000
        assert metrics.cycles > 0
        assert 0 < metrics.ipc <= SimConfig().core.width
        assert metrics.workload == "chain"
        assert metrics.technique == TECH_OOO

    def test_mpki_consistent(self):
        metrics = self._metrics()
        total = sum(metrics.dram_accesses.values())
        assert abs(metrics.mpki - 1000 * total / metrics.committed) < 1e-9

    def test_speedup_over_self_is_one(self):
        metrics = self._metrics()
        assert metrics.speedup_over(metrics) == 1.0

    def test_dram_split_sums(self):
        metrics = self._metrics(TECH_DVR)
        main, runahead = metrics.dram_split()
        assert main + runahead == sum(metrics.dram_accesses.values())

    def test_timeliness_fractions_sum_to_one(self):
        metrics = self._metrics(TECH_DVR)
        fractions = metrics.timeliness_fractions("dvr")
        total = sum(fractions.values())
        assert total == 0.0 or abs(total - 1.0) < 1e-9

    def test_as_dict_roundtrip(self):
        data = self._metrics().as_dict()
        assert data["technique"] == TECH_OOO
        assert "ipc" in data and "mlp" in data


class TestRunTechniques:
    def test_each_technique_runs_and_is_isolated(self):
        results = run_techniques(
            lambda: None if False else build_chain_workload(n=4096),
            [], SimConfig())
        assert results == {}

    def test_multi_technique_results(self):
        workload = _RebuildableChain()
        results = run_techniques(workload, [TECH_OOO, TECH_DVR],
                                 SimConfig(max_instructions=3_000))
        assert set(results) == {TECH_OOO, TECH_DVR}
        assert results[TECH_DVR].technique == TECH_DVR


class _RebuildableChain:
    def build(self, memory_bytes=None, seed=None):
        return build_chain_workload(n=4096)


class TestReport:
    def test_hmean(self):
        assert abs(hmean([1.0, 2.0]) - 4.0 / 3.0) < 1e-9
        assert hmean([]) == 0.0
        assert hmean([0.0, 2.0]) == 2.0  # zeros excluded

    def test_gmean(self):
        assert abs(gmean([1.0, 4.0]) - 2.0) < 1e-9

    def test_format_table(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 2.25]],
                            title="T")
        assert "T" in text and "1.50" in text and "2.25" in text

    def test_format_kv(self):
        text = format_kv("Config", [("rob", 350), ("width", 5)])
        assert "rob" in text and "350" in text


class TestExperimentScale:
    def test_default_scale_small(self):
        scale = ExperimentScale()
        labels = [label for label, _ in scale.workloads()]
        assert "bfs_KR" in labels and "bfs_UR" in labels
        assert "camel" in labels

    def test_full_scale_covers_all_graphs(self):
        scale = ExperimentScale.full()
        labels = [label for label, _ in scale.workloads()]
        assert sum(1 for label in labels if label.startswith("bfs")) == 5

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert len(ExperimentScale.from_env().gap_graphs) == 5
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert len(ExperimentScale.from_env().gap_graphs) == 2

    def test_env_paper_alias_and_empty(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert len(ExperimentScale.from_env().gap_graphs) == 5
        monkeypatch.setenv("REPRO_SCALE", "")
        assert len(ExperimentScale.from_env().gap_graphs) == 2

    def test_env_unknown_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "ful")
        with pytest.raises(ValueError, match="REPRO_SCALE.*'ful'.*small"):
            ExperimentScale.from_env()

    def test_table1_renders(self):
        text = table1_config().render()
        assert "ROB size" in text and "350" in text
