"""Tests for guest memory and the architectural execution semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (Assembler, GuestFault, GuestMemory, Op,
                       compute_mem_addr, execute, hash64, run_functional,
                       to_signed64)
from repro.isa.instructions import Instruction


class TestGuestMemory:
    def test_alloc_is_line_aligned(self):
        mem = GuestMemory(1 << 20)
        base = mem.alloc(10)
        assert base % 64 == 0

    def test_alloc_array_roundtrip(self):
        mem = GuestMemory(1 << 20)
        base = mem.alloc_array([3, 1, 4, 1, 5])
        assert mem.read_array(base, 5) == [3, 1, 4, 1, 5]

    def test_alloc_array_numpy(self):
        import numpy as np
        mem = GuestMemory(1 << 20)
        base = mem.alloc_array(np.array([7, 8, 9], dtype=np.int64))
        assert mem.read_word(base + 16) == 9

    def test_allocations_do_not_overlap(self):
        mem = GuestMemory(1 << 20)
        a = mem.alloc_array([1] * 100)
        b = mem.alloc_array([2] * 100)
        assert b >= a + 100 * 8

    def test_exhaustion_raises(self):
        mem = GuestMemory(1 << 12)
        with pytest.raises(MemoryError):
            mem.alloc(10_000)

    def test_word_write_read(self):
        mem = GuestMemory(1 << 12)
        mem.write_word(64, -17)
        assert mem.read_word(64) == -17

    def test_in_bounds(self):
        mem = GuestMemory(1 << 12)
        assert mem.in_bounds(0) and mem.in_bounds((1 << 12) - 8)
        assert not mem.in_bounds(1 << 12)
        assert not mem.in_bounds(-8)

    def test_size_must_be_word_multiple(self):
        with pytest.raises(ValueError):
            GuestMemory(1001)


def _exec_one(op, rd=-1, rs1=-1, rs2=-1, rs3=-1, imm=0, target=-1,
              regs=None, mem=None):
    regs = regs if regs is not None else [0] * 32
    mem = mem or GuestMemory(1 << 16)
    ins = Instruction(op, rd=rd, rs1=rs1, rs2=rs2, rs3=rs3, imm=imm,
                      target=target, pc=10)
    next_pc, addr = execute(ins, regs, mem)
    return next_pc, addr, regs, mem


class TestExecuteAlu:
    @pytest.mark.parametrize("op,a,b,expect", [
        (Op.ADD, 3, 4, 7),
        (Op.SUB, 3, 4, -1),
        (Op.MUL, -3, 4, -12),
        (Op.DIV, 13, 4, 3),
        (Op.AND, 0b1100, 0b1010, 0b1000),
        (Op.OR, 0b1100, 0b1010, 0b1110),
        (Op.XOR, 0b1100, 0b1010, 0b0110),
        (Op.SHL, 3, 2, 12),
        (Op.SHR, 12, 2, 3),
        (Op.CMPLT, 3, 4, 1),
        (Op.CMPLE, 4, 4, 1),
        (Op.CMPEQ, 4, 4, 1),
        (Op.CMPNE, 4, 4, 0),
    ])
    def test_register_register(self, op, a, b, expect):
        regs = [0] * 32
        regs[1], regs[2] = a, b
        _, _, regs, _ = _exec_one(op, rd=3, rs1=1, rs2=2, regs=regs)
        assert regs[3] == expect

    @pytest.mark.parametrize("op,a,imm,expect", [
        (Op.ADDI, 3, 4, 7),
        (Op.MULI, 3, -2, -6),
        (Op.ANDI, 0b111, 0b101, 0b101),
        (Op.SHLI, 1, 4, 16),
        (Op.SHRI, 16, 4, 1),
        (Op.CMPLTI, 3, 4, 1),
        (Op.CMPEQI, 4, 4, 1),
    ])
    def test_register_immediate(self, op, a, imm, expect):
        regs = [0] * 32
        regs[1] = a
        _, _, regs, _ = _exec_one(op, rd=3, rs1=1, imm=imm, regs=regs)
        assert regs[3] == expect

    def test_div_by_zero_yields_zero(self):
        regs = [0] * 32
        regs[1] = 5
        _, _, regs, _ = _exec_one(Op.DIV, rd=3, rs1=1, rs2=2, regs=regs)
        assert regs[3] == 0

    def test_mul_wraps_to_signed64(self):
        regs = [0] * 32
        regs[1] = regs[2] = 1 << 40
        _, _, regs, _ = _exec_one(Op.MUL, rd=3, rs1=1, rs2=2, regs=regs)
        assert regs[3] == to_signed64(1 << 80)

    def test_shr_is_logical_on_negative(self):
        regs = [0] * 32
        regs[1], regs[2] = -1, 60
        _, _, regs, _ = _exec_one(Op.SHR, rd=3, rs1=1, rs2=2, regs=regs)
        assert regs[3] == 15

    def test_hash_matches_helper(self):
        regs = [0] * 32
        regs[1] = 99
        _, _, regs, _ = _exec_one(Op.HASH, rd=3, rs1=1, regs=regs)
        assert regs[3] == hash64(99)

    def test_li_and_mov(self):
        regs = [0] * 32
        _, _, regs, _ = _exec_one(Op.LI, rd=1, imm=-5, regs=regs)
        assert regs[1] == -5
        _, _, regs, _ = _exec_one(Op.MOV, rd=2, rs1=1, regs=regs)
        assert regs[2] == -5


class TestExecuteMemory:
    def test_load_offset(self):
        mem = GuestMemory(1 << 16)
        mem.write_word(128, 77)
        regs = [0] * 32
        regs[1] = 120
        _, addr, regs, _ = _exec_one(Op.LOAD, rd=2, rs1=1, imm=8,
                                     regs=regs, mem=mem)
        assert addr == 128 and regs[2] == 77

    def test_loadx_scaled_index(self):
        mem = GuestMemory(1 << 16)
        mem.write_word(64 + 3 * 8, 55)
        regs = [0] * 32
        regs[1], regs[2] = 64, 3
        _, addr, regs, _ = _exec_one(Op.LOADX, rd=3, rs1=1, rs2=2, imm=8,
                                     regs=regs, mem=mem)
        assert addr == 88 and regs[3] == 55

    def test_store_and_storex(self):
        mem = GuestMemory(1 << 16)
        regs = [0] * 32
        regs[1], regs[2], regs[3] = 64, 2, -9
        _exec_one(Op.STOREX, rs1=1, rs2=2, rs3=3, imm=8, regs=regs, mem=mem)
        assert mem.read_word(80) == -9
        _exec_one(Op.STORE, rs1=1, rs3=3, imm=0, regs=regs, mem=mem)
        assert mem.read_word(64) == -9

    def test_load_out_of_bounds_faults(self):
        regs = [0] * 32
        regs[1] = 1 << 30
        with pytest.raises(GuestFault):
            _exec_one(Op.LOAD, rd=2, rs1=1, regs=regs)

    def test_store_negative_address_faults(self):
        regs = [0] * 32
        regs[1] = -64
        with pytest.raises(GuestFault):
            _exec_one(Op.STORE, rs1=1, rs3=2, regs=regs)

    def test_compute_mem_addr_matches_execute(self):
        mem = GuestMemory(1 << 16)
        regs = [0] * 32
        regs[1], regs[2] = 64, 3
        ins = Instruction(Op.LOADX, rd=3, rs1=1, rs2=2, imm=8, pc=0)
        assert compute_mem_addr(ins, regs) == 88
        ins = Instruction(Op.ADD, rd=3, rs1=1, rs2=2, pc=0)
        assert compute_mem_addr(ins, regs) == -1


class TestExecuteControl:
    def test_bnz_taken_and_not_taken(self):
        regs = [0] * 32
        regs[1] = 1
        next_pc, _, _, _ = _exec_one(Op.BNZ, rs1=1, target=3, regs=regs)
        assert next_pc == 3
        regs[1] = 0
        next_pc, _, _, _ = _exec_one(Op.BNZ, rs1=1, target=3, regs=regs)
        assert next_pc == 11  # pc + 1

    def test_bez(self):
        regs = [0] * 32
        next_pc, _, _, _ = _exec_one(Op.BEZ, rs1=1, target=3, regs=regs)
        assert next_pc == 3

    def test_jmp(self):
        next_pc, _, _, _ = _exec_one(Op.JMP, target=7)
        assert next_pc == 7

    def test_nop_falls_through(self):
        next_pc, _, _, _ = _exec_one(Op.NOP)
        assert next_pc == 11


class TestRunFunctional:
    def test_sum_loop(self):
        a = Assembler()
        a.li("r1", 0)   # i
        a.li("r2", 0)   # sum
        a.label("loop")
        a.add("r2", "r2", "r1")
        a.addi("r1", "r1", 1)
        a.cmplti("r3", "r1", 10)
        a.bnz("r3", "loop")
        a.halt()
        mem = GuestMemory(1 << 12)
        regs, count = run_functional(a.build(), mem)
        assert regs[2] == sum(range(10))
        assert count == 2 + 4 * 10 + 1

    def test_max_instructions_cap(self):
        a = Assembler()
        a.label("spin")
        a.jmp("spin")
        mem = GuestMemory(1 << 12)
        _, count = run_functional(a.build(), mem, max_instructions=100)
        assert count == 100

    def test_initial_registers_respected(self):
        a = Assembler()
        a.addi("r1", "r1", 1)
        a.halt()
        mem = GuestMemory(1 << 12)
        start = [5] * 32
        regs, _ = run_functional(a.build(), mem, regs=start)
        assert regs[1] == 6
        assert start[1] == 5  # input not mutated

    def test_rejects_bad_register_count(self):
        a = Assembler()
        a.halt()
        with pytest.raises(ValueError):
            run_functional(a.build(), GuestMemory(1 << 12), regs=[0] * 5)


@given(st.lists(st.integers(min_value=-(1 << 62), max_value=1 << 62),
                min_size=2, max_size=2),
       st.sampled_from([Op.ADD, Op.SUB, Op.MUL, Op.AND, Op.OR, Op.XOR]))
def test_alu_property_matches_python(values, op):
    """ALU semantics agree with Python integer arithmetic (mod 2^64)."""
    regs = [0] * 32
    regs[1], regs[2] = values
    ins = Instruction(op, rd=3, rs1=1, rs2=2, pc=0)
    execute(ins, regs, GuestMemory(1 << 12))
    expect = {
        Op.ADD: values[0] + values[1],
        Op.SUB: values[0] - values[1],
        Op.MUL: to_signed64(values[0] * values[1]),
        Op.AND: values[0] & values[1],
        Op.OR: values[0] | values[1],
        Op.XOR: values[0] ^ values[1],
    }[op]
    assert regs[3] == expect
