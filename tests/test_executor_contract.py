"""Backend-independent contract tests for the executor family.

``Executor`` (serial and process-pool), ``BatchExecutor`` (lockstep
lanes) and ``ClusterExecutor`` must be interchangeable behind
``run(specs) -> [Metrics]``: same dedup semantics, same cache
accounting, same input-order alignment, same one-retry story when a job
crashes, and the same ``JobError`` when a job is truly broken.  These
tests run the identical assertions against all four backends.
"""

from __future__ import annotations

import concurrent.futures
import json

import pytest

from repro.config import SimConfig, TECH_DVR, TECH_OOO
from repro.cluster import ClusterExecutor, Coordinator, Worker
from repro.harness.runner import run_spec
from repro.jobs import (Executor, JobError, JobSpec, NullCache, ResultCache,
                        RunLedger)

BACKENDS = ("serial", "pool", "lanes", "cluster")


def _spec(workload="nas-is", technique=TECH_OOO, seed=1,
          max_instructions=1_200, **params):
    config = SimConfig(max_instructions=max_instructions
                       ).with_technique(technique)
    return JobSpec(workload=workload, params=params, config=config,
                   seed=seed)


class _Quiet:
    def update(self, done, total, spec, cached):
        pass

    def finish(self, total, cached, wall_s):
        pass


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


@pytest.fixture
def make_executor(backend, tmp_path):
    """Factory building an executor of the requested backend.

    ``run_job`` (cluster only) injects worker-side behaviour; other
    backends ignore it and run the real simulator.  ``injector``
    (a ``repro.faults.FaultInjector``) arms worker/connection fault
    sites on the cluster backend; persistence-seam faults apply to every
    backend through the wrapped cache/ledger the caller passes in.
    """
    import threading

    from repro.faults import WorkerCrash

    coordinators = []
    stop = threading.Event()

    def factory(cache=None, ledger=None, run_job=None, workers=2,
                injector=None):
        cache = cache if cache is not None else NullCache()
        ledger_obj = ledger
        if backend == "serial":
            return Executor(jobs=1, cache=cache, ledger=ledger_obj,
                            progress=_Quiet())
        if backend == "pool":
            return Executor(jobs=2, cache=cache, ledger=ledger_obj,
                            progress=_Quiet())
        if backend == "lanes":
            from repro.lanes import BatchExecutor
            return BatchExecutor(lanes=4, cache=cache, ledger=ledger_obj,
                                 progress=_Quiet())
        # Injected faults (dropped results, crashes) need the lease
        # timeout + heartbeat machinery to actually run, not sit out a
        # 120s timeout.
        coordinator = Coordinator(
            job_timeout=2.0 if injector is not None else 120,
            heartbeat_timeout=2.5 if injector is not None else 15.0,
            retry_base=0.05, retry_cap=0.2, max_attempts=8,
            worker_grace=30.0)
        coordinator.start()
        coordinators.append(coordinator)

        def serve_loop(worker_id):
            # With faults armed, crashed/partitioned workers rejoin like
            # a supervised fleet; without, one serve() call as before.
            while not stop.is_set():
                worker = Worker(f"127.0.0.1:{coordinator.port}",
                                worker_id=worker_id,
                                run_job=run_job or run_spec,
                                injector=injector, quiet=True,
                                heartbeat_interval=0.5, reconnect=0)
                try:
                    code = worker.serve()
                except WorkerCrash:
                    continue
                if injector is None or code == 2:
                    return

        for index in range(workers):
            threading.Thread(target=serve_loop, args=(f"w{index}",),
                             daemon=True).start()
        coordinator.wait_for_workers(workers, timeout=10)
        return ClusterExecutor(coordinator, cache=cache, ledger=ledger_obj,
                               progress=_Quiet())

    yield factory
    stop.set()
    for coordinator in coordinators:
        coordinator.close()


def _dumps(metrics):
    return json.dumps(metrics.to_dict(), sort_keys=True)


# ---------------------------------------------------------------------------
# Alignment + dedup
# ---------------------------------------------------------------------------
def test_results_align_with_input_order(make_executor):
    specs = [_spec(seed=3), _spec(workload="kangaroo", seed=1),
             _spec(technique=TECH_DVR, seed=2)]
    expected = [_dumps(run_spec(spec)) for spec in specs]
    results = make_executor().run(specs)
    assert [_dumps(metrics) for metrics in results] == expected


def test_duplicate_specs_simulated_once(make_executor, tmp_path):
    ledger = RunLedger(str(tmp_path / "runs.jsonl"))
    duplicate = _spec(seed=7)
    specs = [duplicate, _spec(seed=8), _spec(seed=7)]
    results = make_executor(ledger=ledger).run(specs)
    assert _dumps(results[0]) == _dumps(results[2])
    records = RunLedger.read(ledger.path)
    assert len(records) == 2                  # two unique keys, one run each
    assert {record["key"] for record in records} == \
        {specs[0].key, specs[1].key}


def test_duplicate_specs_dedup_survives_one_crash(make_executor, backend,
                                                  tmp_path, monkeypatch):
    """A job that crashes once still yields one result for both positions."""
    failures = {"left": 1}

    def flaky(spec):
        if failures["left"] > 0:
            failures["left"] -= 1
            raise RuntimeError("injected crash")
        return run_spec(spec)

    if backend == "pool":
        pytest.skip("cross-process injection covered by the fake-pool tests")
    if backend == "serial":
        monkeypatch.setattr("repro.harness.runner.run_spec", flaky)
    if backend == "lanes":
        # Lanes never call run_spec; crash the lane at its build seam
        # instead (the retry then runs serially in the parent).
        import repro.lanes.batch as batch_mod
        real_build = batch_mod.build_spec_workload

        def flaky_build(spec):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise RuntimeError("injected crash")
            return real_build(spec)

        monkeypatch.setattr(batch_mod, "build_spec_workload", flaky_build)
    ledger = RunLedger(str(tmp_path / "runs.jsonl"))
    executor = make_executor(ledger=ledger, run_job=flaky)
    duplicate = _spec(seed=11)
    results = executor.run([duplicate, _spec(seed=11)])
    assert _dumps(results[0]) == _dumps(results[1])
    records = RunLedger.read(ledger.path)
    assert len(records) == 1
    assert records[0]["status"] == "retried"
    assert records[0]["retries"] == 1


# ---------------------------------------------------------------------------
# Cache accounting
# ---------------------------------------------------------------------------
def test_cached_vs_executed_accounting(make_executor, tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    ledger = RunLedger(str(tmp_path / "runs.jsonl"))
    specs = [_spec(seed=21), _spec(seed=22)]

    first = make_executor(cache=cache, ledger=ledger).run(specs)
    records = RunLedger.read(ledger.path)
    assert [record["cache"] for record in records] == ["miss", "miss"]

    second = make_executor(cache=cache, ledger=ledger).run(
        specs + [_spec(seed=23)])
    records = RunLedger.read(ledger.path)[2:]
    assert sorted(record["cache"] for record in records) == \
        ["hit", "hit", "miss"]
    hits = [record for record in records if record["cache"] == "hit"]
    assert all(record["worker"] == "parent" for record in hits)
    assert [_dumps(metrics) for metrics in second[:2]] == \
        [_dumps(metrics) for metrics in first]


# ---------------------------------------------------------------------------
# Fault tolerance: a fixed FaultPlan must not change the answers
# ---------------------------------------------------------------------------
def test_fixed_fault_plan_yields_bit_identical_metrics(make_executor,
                                                       backend, tmp_path):
    """Every backend survives the same armed fault plan bit-identically.

    Serial/pool exercise the persistence seams (corrupt cache entries,
    torn ledger appends); cluster additionally takes dropped result
    frames and worker crashes.  The contract is that none of it changes
    a single output bit — faults only cost retries.
    """
    import warnings

    from repro.faults import FaultInjector, FaultPlan, FaultRule

    plan = FaultPlan(2024, [
        FaultRule("cache.corrupt", 1.0),
        FaultRule("ledger.torn", 0.5),
        FaultRule("conn.drop", 0.4),
        FaultRule("worker.crash-before-result", 0.4),
    ])
    injector = FaultInjector(plan)
    cache = injector.wrap_cache(ResultCache(str(tmp_path / "cache")))
    ledger = injector.wrap_ledger(RunLedger(str(tmp_path / "runs.jsonl")))
    specs = [_spec(seed=61), _spec(workload="kangaroo", seed=62),
             _spec(technique=TECH_DVR, seed=63)]
    expected = [_dumps(run_spec(spec)) for spec in specs]

    executor = make_executor(cache=cache, ledger=ledger, injector=injector)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        results = executor.run(specs)
    assert [_dumps(metrics) for metrics in results] == expected

    # Same plan, fresh injector: the persistence faults already fired
    # for these identities, so the schedule replays without re-firing
    # randomly — and the damaged cache degrades to a miss, not an error.
    replay = FaultInjector(plan)
    cache2 = replay.wrap_cache(ResultCache(str(tmp_path / "cache")))
    ledger2 = replay.wrap_ledger(RunLedger(str(tmp_path / "runs.jsonl")))
    executor = make_executor(cache=cache2, ledger=ledger2, injector=replay)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        again = executor.run(specs)
    assert [_dumps(metrics) for metrics in again] == expected
    assert replay.schedule()                     # faults did fire again


# ---------------------------------------------------------------------------
# Broken jobs fail the same way everywhere
# ---------------------------------------------------------------------------
def test_unrunnable_spec_raises_job_error(make_executor, backend, tmp_path):
    if backend == "pool":
        pytest.skip("pool failure paths covered by the fake-pool tests")
    ledger = RunLedger(str(tmp_path / "runs.jsonl"))
    executor = make_executor(ledger=ledger)
    with pytest.raises(JobError):
        executor.run([_spec(workload="no-such-workload")])
    records = RunLedger.read(ledger.path)
    assert records[-1]["status"] == "failed"
    assert records[-1]["worker"] == "parent"


# ---------------------------------------------------------------------------
# Pool-specific failure paths (deterministic via a fake pool)
# ---------------------------------------------------------------------------
class _FakePool:
    """ProcessPoolExecutor stand-in whose futures hang or crash."""

    def __init__(self, max_workers=None):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    mode = "hang"

    def submit(self, fn, payload):
        future = concurrent.futures.Future()
        if self.mode == "crash":
            future.set_exception(
                concurrent.futures.process.BrokenProcessPool("worker died"))
        # "hang": never resolves, so result(timeout) raises TimeoutError.
        return future


@pytest.fixture
def fake_pool(monkeypatch):
    def activate(mode):
        _FakePool.mode = mode
        monkeypatch.setattr("repro.jobs.executor.ProcessPoolExecutor",
                            _FakePool)
    return activate


def test_pool_job_timeout_retries_in_parent(fake_pool, tmp_path):
    fake_pool("hang")
    ledger = RunLedger(str(tmp_path / "runs.jsonl"))
    executor = Executor(jobs=2, ledger=ledger, timeout=0.2,
                        progress=_Quiet())
    specs = [_spec(seed=31), _spec(seed=32)]
    results = executor.run(specs)
    assert [_dumps(metrics) for metrics in results] == \
        [_dumps(run_spec(spec)) for spec in specs]
    records = RunLedger.read(ledger.path)
    assert all(record["status"] == "retried" for record in records)
    assert all(record["worker"] == "parent" for record in records)
    assert all(record["retries"] == 1 for record in records)


def test_pool_worker_crash_retries_in_parent(fake_pool, tmp_path):
    fake_pool("crash")
    ledger = RunLedger(str(tmp_path / "runs.jsonl"))
    executor = Executor(jobs=2, ledger=ledger, progress=_Quiet())
    results = executor.run([_spec(seed=41), _spec(seed=42)])
    assert all(metrics.cycles > 0 for metrics in results)
    records = RunLedger.read(ledger.path)
    assert [record["status"] for record in records] == \
        ["retried", "retried"]
