"""Tests for the MSHR file and its occupancy accounting."""

from hypothesis import given, strategies as st

from repro.memsys.mshr import MshrFile


class TestAllocation:
    def test_allocate_and_lookup(self):
        mshrs = MshrFile(4)
        assert mshrs.allocate(10, fill_cycle=50, now=0)
        assert mshrs.lookup(10) == 50
        assert mshrs.lookup(11) is None

    def test_duplicate_allocation_merges(self):
        mshrs = MshrFile(2)
        assert mshrs.allocate(10, 50, 0)
        assert mshrs.allocate(10, 60, 5)  # secondary miss: no new entry
        assert mshrs.occupancy() == 1

    def test_full_rejection(self):
        mshrs = MshrFile(2)
        assert mshrs.allocate(1, 100, 0)
        assert mshrs.allocate(2, 100, 0)
        assert not mshrs.allocate(3, 100, 0)
        assert mshrs.full_rejections == 1

    def test_drain_releases_filled(self):
        mshrs = MshrFile(2)
        mshrs.allocate(1, 10, 0)
        mshrs.allocate(2, 20, 0)
        mshrs.drain(15)
        assert mshrs.occupancy() == 1
        assert mshrs.lookup(1) is None
        assert mshrs.lookup(2) == 20

    def test_available_drains_first(self):
        mshrs = MshrFile(1)
        mshrs.allocate(1, 10, 0)
        assert mshrs.available(5) == 0
        assert mshrs.available(10) == 1

    def test_allocation_counter(self):
        mshrs = MshrFile(4)
        mshrs.allocate(1, 10, 0)
        mshrs.allocate(2, 10, 0)
        mshrs.allocate(1, 10, 0)  # merge, not counted
        assert mshrs.allocations == 2


class TestOccupancyIntegral:
    def test_average_occupancy_single_miss(self):
        mshrs = MshrFile(4)
        mshrs.allocate(1, 100, 0)
        # One MSHR held for 100 of 200 cycles = 0.5 average.
        assert abs(mshrs.average_occupancy(200) - 0.5) < 0.02

    def test_average_occupancy_overlapping(self):
        mshrs = MshrFile(4)
        mshrs.allocate(1, 100, 0)
        mshrs.allocate(2, 100, 0)
        assert abs(mshrs.average_occupancy(100) - 2.0) < 0.05

    def test_peak_occupancy(self):
        mshrs = MshrFile(8)
        for k in range(5):
            mshrs.allocate(k, 100, 0)
        mshrs.drain(150)
        mshrs.allocate(99, 300, 200)
        assert mshrs.peak_occupancy == 5

    def test_zero_time_average(self):
        assert MshrFile(4).average_occupancy(0) == 0.0


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=50),
                          st.integers(min_value=1, max_value=30)),
                min_size=1, max_size=60))
def test_property_occupancy_bounded(requests):
    """Occupancy never exceeds the entry count; averages stay in range."""
    mshrs = MshrFile(4)
    now = 0
    for line, duration in requests:
        now += 1
        mshrs.allocate(line, now + duration, now)
        assert mshrs.occupancy() <= 4
    average = mshrs.average_occupancy(now + 100)
    assert 0.0 <= average <= 4.0
