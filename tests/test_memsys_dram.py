"""Tests for the DRAM latency/bandwidth model."""

from repro.config import MemSysConfig
from repro.memsys.dram import Dram


def make_dram():
    return Dram(MemSysConfig())


class TestLatency:
    def test_idle_request_pays_min_latency(self):
        dram = make_dram()
        assert dram.request(1000) == 1200

    def test_back_to_back_requests_queue(self):
        dram = make_dram()
        first = dram.request(0)
        second = dram.request(0)
        assert first == 200
        assert second == 205  # one line interval behind

    def test_spread_requests_do_not_queue(self):
        dram = make_dram()
        dram.request(0)
        assert dram.request(100) == 300  # channel free again

    def test_queue_delay_accounting(self):
        dram = make_dram()
        for _ in range(4):
            dram.request(0)
        assert dram.total_queue_delay == 5 + 10 + 15
        assert dram.average_queue_delay == (5 + 10 + 15) / 4

    def test_queue_delay_estimate(self):
        dram = make_dram()
        dram.request(0)
        assert dram.queue_delay_estimate(0) == 5
        assert dram.queue_delay_estimate(100) == 0


class TestOccupy:
    def test_occupy_claims_slots_without_latency(self):
        dram = make_dram()
        first = dram.occupy()
        second = dram.occupy()
        assert second == first + 5

    def test_occupy_counts_requests(self):
        dram = make_dram()
        dram.occupy()
        dram.request(0)
        assert dram.requests == 2

    def test_bandwidth_bound_sequence(self):
        """N lines take at least N * line_interval channel cycles."""
        dram = make_dram()
        last = 0
        for _ in range(100):
            last = dram.occupy()
        assert last >= 99 * 5
