"""Batch-lane lockstep simulation: equivalence and scheduling edge cases.

The whole point of ``repro.lanes`` is that batching is *invisible*: a
:class:`LaneBatch` computes, field for field, exactly what serial
``run_spec`` calls would -- for every technique, at any lane count, with
templates cloned instead of rebuilt.  These tests pin that equivalence
plus the scheduling edges: ``lanes=1`` degenerates to serial, more lanes
than jobs, a spec that retires inside its first slice, and one lane
failing mid-batch without touching its neighbours.
"""

from __future__ import annotations

import json

import pytest

import repro.lanes.batch as batch_mod
from repro.config import (SimConfig, TECH_DVR, TECH_OOO, TECH_PRE, TECH_VR)
from repro.harness.metrics import _FIELDS
from repro.harness.runner import run_spec
from repro.jobs import Executor, JobSpec, NullCache, RunLedger
from repro.lanes import BatchExecutor, LaneBatch, template_key


def _spec(workload="nas-is", technique=TECH_OOO, seed=1,
          max_instructions=1_200, **params):
    config = SimConfig(max_instructions=max_instructions
                       ).with_technique(technique)
    return JobSpec(workload=workload, params=params, config=config,
                   seed=seed)


def _dumps(metrics):
    return json.dumps(metrics.to_dict(), sort_keys=True)


def _assert_identical(metrics, expected):
    """Field-wise identity (Metrics has no __eq__ on purpose)."""
    for name in _FIELDS:
        assert getattr(metrics, name) == getattr(expected, name), name


class _Quiet:
    def update(self, done, total, spec, cached):
        pass

    def finish(self, total, cached, wall_s):
        pass


# ---------------------------------------------------------------------------
# Equivalence: lockstep == serial, template clones included
# ---------------------------------------------------------------------------
def test_lockstep_matches_serial_across_techniques(monkeypatch):
    """One template, four techniques: every lane bit-matches run_spec.

    The specs differ only in technique, so they share a build template
    -- three of the four lanes run on *clones*, which is exactly the
    path that must not perturb a single metric.
    """
    builds = []
    real_build = batch_mod.build_spec_workload

    def counting_build(spec):
        builds.append(spec.key)
        return real_build(spec)

    monkeypatch.setattr(batch_mod, "build_spec_workload", counting_build)
    specs = [_spec(technique=technique, seed=5)
             for technique in (TECH_OOO, TECH_PRE, TECH_VR, TECH_DVR)]
    assert len({template_key(spec) for spec in specs}) == 1
    expected = [run_spec(spec) for spec in specs]

    lanes = LaneBatch(specs, lanes=4, step=500).run()
    assert len(builds) == 1               # one build, three clones
    for lane, reference in zip(lanes, expected):
        assert lane.status == "done"
        _assert_identical(lane.metrics, reference)


def test_interleaving_invariance_across_step_sizes():
    """Slice size changes interleaving, never results."""
    specs = [_spec(seed=6), _spec(technique=TECH_DVR, seed=6)]
    reference = [_dumps(run_spec(spec)) for spec in specs]
    for step in (100, 700, 10_000):
        lanes = LaneBatch(specs, lanes=2, step=step).run()
        assert [_dumps(lane.metrics) for lane in lanes] == reference


def test_lanes_one_equals_serial_executor(tmp_path):
    """``--lanes 1`` is the serial executor with extra steps, not more."""
    specs = [_spec(seed=31), _spec(workload="kangaroo", seed=32),
             _spec(technique=TECH_DVR, seed=33)]
    serial = Executor(jobs=1, cache=NullCache(),
                      progress=_Quiet()).run(specs)
    banked = BatchExecutor(lanes=1, cache=NullCache(),
                           progress=_Quiet()).run(specs)
    assert [_dumps(metrics) for metrics in banked] == \
        [_dumps(metrics) for metrics in serial]


# ---------------------------------------------------------------------------
# Scheduling edges
# ---------------------------------------------------------------------------
def test_more_lanes_than_jobs():
    specs = [_spec(seed=11), _spec(seed=12)]
    lanes = LaneBatch(specs, lanes=8).run()
    assert [lane.status for lane in lanes] == ["done", "done"]
    for lane, spec in zip(lanes, specs):
        _assert_identical(lane.metrics, run_spec(spec))


def test_spec_retiring_in_first_slice_frees_its_slot():
    """A sub-slice spec retires on iteration one; the slot backfills.

    With one lane and a step far above the short spec's instruction
    budget, the short spec must finish inside its first ``advance`` call
    and hand the slot to the pending spec -- the loop must not wedge on
    an already-done lane.
    """
    short = _spec(seed=21, max_instructions=100)
    long = _spec(seed=22, max_instructions=2_400)
    order = []
    lanes = LaneBatch([short, long], lanes=1, step=5_000,
                      on_lane_start=lambda lane: order.append(
                          lane.spec.seed)).run()
    assert order == [21, 22]              # second started after first retired
    assert [lane.status for lane in lanes] == ["done", "done"]
    _assert_identical(lanes[0].metrics, run_spec(short))
    _assert_identical(lanes[1].metrics, run_spec(long))


def test_mid_batch_failure_is_isolated():
    """One lane blowing up mid-flight leaves its neighbours bit-exact."""

    class _Boom:
        def advance(self, step):
            raise RuntimeError("injected mid-batch failure")

    specs = [_spec(seed=41), _spec(seed=42), _spec(seed=43)]

    def sabotage(lane):
        if lane.spec.seed == 42:
            lane.core = _Boom()

    finished = []
    lanes = LaneBatch(specs, lanes=3, step=400,
                      on_lane_start=sabotage).run(finished.append)
    assert [lane.status for lane in lanes] == ["done", "failed", "done"]
    assert isinstance(lanes[1].error, RuntimeError)
    assert len(finished) == 3             # on_finish fired for every lane
    _assert_identical(lanes[0].metrics, run_spec(specs[0]))
    _assert_identical(lanes[2].metrics, run_spec(specs[2]))


def test_construction_failure_reports_without_blocking_batch():
    """An unbuildable spec fails at start; the rest of the batch runs."""
    good = _spec(seed=51)
    bad = _spec(workload="no-such-workload", seed=52)
    lanes = LaneBatch([bad, good], lanes=2).run()
    assert lanes[0].status == "failed"
    assert lanes[0].error is not None
    assert lanes[1].status == "done"
    _assert_identical(lanes[1].metrics, run_spec(good))


# ---------------------------------------------------------------------------
# Executor-level retry of failed lanes
# ---------------------------------------------------------------------------
def test_batch_executor_retries_failed_lane_in_parent(monkeypatch, tmp_path):
    """A lane that fails once re-runs serially through the retry path."""
    failures = {"left": 1}
    real_build = batch_mod.build_spec_workload

    def flaky_build(spec):
        if spec.seed == 62 and failures["left"] > 0:
            failures["left"] -= 1
            raise RuntimeError("injected build crash")
        return real_build(spec)

    monkeypatch.setattr(batch_mod, "build_spec_workload", flaky_build)
    ledger = RunLedger(str(tmp_path / "runs.jsonl"))
    executor = BatchExecutor(lanes=4, cache=NullCache(), ledger=ledger,
                             progress=_Quiet())
    specs = [_spec(seed=61), _spec(seed=62)]
    results = executor.run(specs)
    assert [_dumps(metrics) for metrics in results] == \
        [_dumps(run_spec(spec)) for spec in specs]
    by_key = {record["key"]: record for record in RunLedger.read(ledger.path)}
    assert by_key[specs[0].key]["status"] == "ok"
    assert by_key[specs[1].key]["status"] == "retried"
    assert by_key[specs[1].key]["worker"] == "parent"
    assert by_key[specs[1].key]["retries"] == 1
