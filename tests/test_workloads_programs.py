"""Sanity checks over every workload's generated program text and the
timing behavior the paper's narrative assigns to each kernel family."""

import pytest

from repro.config import SimConfig
from repro.harness.runner import run_built
from repro.workloads import GAP_WORKLOADS, make_workload
from tests.test_workloads_kernels import SMALL_PARAMS, build_small


class TestProgramText:
    def test_every_program_disassembles(self, tiny_graph):
        names = sorted(set(GAP_WORKLOADS) | set(SMALL_PARAMS) | {"graph500"})
        for name in names:
            built = build_small(name, tiny_graph)
            text = built.program.disassemble()
            assert "halt" in text
            assert len(text.splitlines()) >= len(built.program)

    def test_gap_inner_loops_bottom_tested(self, tiny_graph):
        """Every GAP kernel's inner loop ends in a backward conditional
        branch (the shape Discovery Mode's SBB logic expects)."""
        for name in GAP_WORKLOADS:
            built = build_small(name, tiny_graph)
            backward = [ins for ins in built.program
                        if ins.is_cond_branch and 0 <= ins.target < ins.pc]
            assert backward, f"{name} has no backward conditional branch"

    def test_programs_fit_register_file(self, tiny_graph):
        names = sorted(set(GAP_WORKLOADS) | set(SMALL_PARAMS))
        for name in names:
            built = build_small(name, tiny_graph)
            for ins in built.program:
                for reg in (ins.rd, *ins.srcs):
                    assert -1 <= reg < 32


class TestKernelTimingCharacter:
    """The families behave the way the paper's narrative needs."""

    def test_gap_kernels_mispredict_heavily(self, tiny_graph):
        config = SimConfig(max_instructions=5_000)
        built = build_small("bfs", tiny_graph)
        metrics = run_built(built, config)
        assert metrics.branch_mpki > 5

    def test_streaming_kernels_predict_well(self):
        config = SimConfig(max_instructions=5_000)
        built = build_small("randomaccess", None)
        metrics = run_built(built, config)
        assert metrics.branch_mpki < 5

    def test_hpcdb_fills_rob_gap_does_not(self, tiny_graph):
        config = SimConfig(max_instructions=5_000)
        hpcdb = run_built(build_small("camel", None), config)
        gap = run_built(build_small("bfs", tiny_graph), config)
        assert hpcdb.rob_full_fraction > gap.rob_full_fraction

    def test_all_kernels_are_memory_bound(self, tiny_graph):
        """Every benchmark misses the LLC (that's the point of the suite)."""
        config = SimConfig(max_instructions=5_000)
        for name in ("bfs", "camel", "nas-cg", "randomaccess"):
            built = build_small(name, tiny_graph)
            metrics = run_built(built, config)
            assert metrics.mpki > 1, f"{name} never reaches DRAM"
