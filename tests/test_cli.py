"""Tests for the ``python -m repro`` command-line interface."""

import os

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "bfs" in out and "dvr" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "ROB size" in out

    def test_run_workload(self, capsys, tiny_graph):
        assert main(["run", "bfs", "--graph", tiny_graph,
                     "--technique", "dvr", "--instructions", "2000"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "dvr_spawns" in out

    def test_run_hpcdb_workload(self, capsys):
        assert main(["run", "nas-is", "--technique", "ooo",
                     "--instructions", "2000"]) == 0
        assert "IPC" in capsys.readouterr().out

    def test_run_requires_workload(self):
        with pytest.raises(SystemExit):
            main(["run"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_fig9_with_tiny_scale(self, capsys, tiny_graph):
        assert main(["fig9", "--graphs", tiny_graph,
                     "--instructions", "2000"]) == 0
        out = capsys.readouterr().out
        assert "MSHRs" in out


class TestJobsFlags:
    def test_fig11_parallel_matches_serial(self, capsys, tiny_graph):
        argv = ["fig11", "--graphs", tiny_graph, "--instructions", "1000"]
        assert main(argv + ["--jobs", "1", "--no-cache"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2", "--no-cache"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_cache_dir_flag_and_stats_and_clear(self, capsys, tmp_path,
                                                tiny_graph):
        import os
        cache_dir = str(tmp_path / "cli-cache")
        assert main(["fig11", "--instructions", "500", "--graphs",
                     tiny_graph, "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert os.path.exists(os.path.join(cache_dir, "runs.jsonl"))
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "cache dir" in out and "entries" in out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "removed" in out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "0" in capsys.readouterr().out

    def test_cache_unknown_action(self, capsys):
        assert main(["cache", "defrag"]) == 2

    def test_cache_prune_requires_keep_current(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cli-cache")
        assert main(["cache", "prune", "--cache-dir", cache_dir]) == 2
        assert "--keep-current" in capsys.readouterr().err

    def test_cache_prune_keeps_current_generation(self, capsys, tmp_path,
                                                  tiny_graph):
        import os
        from repro.jobs import code_salt
        cache_dir = str(tmp_path / "cli-cache")
        assert main(["fig11", "--instructions", "500", "--graphs",
                     tiny_graph, "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        # Plant a stale generation next to the freshly-written current one.
        stale_dir = os.path.join(cache_dir, "results", "deadbeef0000")
        os.makedirs(stale_dir)
        with open(os.path.join(stale_dir, "x.json"), "w") as handle:
            handle.write("{}")
        assert main(["cache", "prune", "--keep-current",
                     "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "pruned 1" in out
        assert not os.path.exists(stale_dir)
        current_dir = os.path.join(cache_dir, "results", code_salt())
        assert os.listdir(current_dir)


class TestSweepCommand:
    def test_sweep_requires_experiment(self, capsys):
        assert main(["sweep"]) == 2
        assert "experiment name" in capsys.readouterr().err

    def test_sweep_unknown_experiment(self, capsys):
        assert main(["sweep", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_sweep_local_backend_matches_figure_command(self, capsys,
                                                        tiny_graph):
        scale = ["--graphs", tiny_graph, "--instructions", "1000",
                 "--no-cache"]
        assert main(["fig11"] + scale) == 0
        direct = capsys.readouterr().out
        assert main(["sweep", "fig11"] + scale) == 0
        assert capsys.readouterr().out == direct

    def test_sweep_cluster_backend_matches_local(self, capsys, tmp_path,
                                                 tiny_graph):
        """CLI-level acceptance: --backend cluster with loopback workers
        renders the same figure as the local pool."""
        scale = ["--graphs", tiny_graph, "--instructions", "1000"]
        assert main(["sweep", "fig11", "--cache-dir",
                     str(tmp_path / "a")] + scale) == 0
        local = capsys.readouterr().out
        assert main(["sweep", "fig11", "--backend", "cluster",
                     "--workers", "2", "--cache-dir",
                     str(tmp_path / "b")] + scale) == 0
        assert capsys.readouterr().out == local


class TestClusterCommand:
    def test_worker_requires_connect(self, capsys):
        assert main(["cluster", "worker"]) == 2
        assert "--connect" in capsys.readouterr().err

    def test_status_requires_connect(self, capsys):
        assert main(["cluster", "status"]) == 2
        assert "--connect" in capsys.readouterr().err

    def test_status_unreachable_coordinator(self, capsys):
        assert main(["cluster", "status", "--connect",
                     "127.0.0.1:1"]) == 1
        assert "cannot reach coordinator" in capsys.readouterr().err

    def test_unknown_action(self, capsys):
        assert main(["cluster", "defrag"]) == 2

    def test_status_against_live_coordinator(self, capsys):
        from repro.cluster import Coordinator
        coordinator = Coordinator()
        coordinator.start()
        try:
            assert main(["cluster", "status", "--connect",
                         f"127.0.0.1:{coordinator.port}"]) == 0
            out = capsys.readouterr().out
            assert f"coordinator  127.0.0.1:{coordinator.port}" in out
            assert "workers      0" in out
        finally:
            coordinator.close()


class TestReportCommand:
    def test_report_missing_ledger(self, capsys, tmp_path):
        assert main(["report", "--from-ledger",
                     str(tmp_path / "nope.jsonl")]) == 1
        assert "no ledger" in capsys.readouterr().err

    def test_report_from_sweep_ledger(self, capsys, tmp_path, tiny_graph):
        cache_dir = str(tmp_path / "cli-cache")
        assert main(["fig9", "--graphs", tiny_graph, "--instructions",
                     "1000", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        ledger_path = str(tmp_path / "cli-cache" / "runs.jsonl")
        assert main(["report", "--from-ledger", ledger_path]) == 0
        out = capsys.readouterr().out
        assert "Sweep progress from" in out
        assert "completed point(s)" in out
        assert "vs ooo" in out
        # Baselines present, so a harmonic-mean speedup line is rendered.
        assert "h-mean speedup over ooo" in out


class TestMaxBytesPrune:
    def test_prune_max_bytes_evicts_until_budget(self, capsys, tmp_path,
                                                 tiny_graph):
        import os
        cache_dir = str(tmp_path / "cli-cache")
        assert main(["fig11", "--graphs", tiny_graph, "--instructions",
                     "500", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        from repro.jobs import code_salt
        results_dir = os.path.join(cache_dir, "results", code_salt())
        before = len(os.listdir(results_dir))
        assert before > 1
        assert main(["cache", "prune", "--max-bytes", "1",
                     "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert f"evicted {before} oldest result(s)" in out
        assert os.listdir(results_dir) == []

    def test_prune_max_bytes_noop_when_under_budget(self, capsys, tmp_path,
                                                    tiny_graph):
        cache_dir = str(tmp_path / "cli-cache")
        assert main(["fig11", "--graphs", tiny_graph, "--instructions",
                     "500", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "prune", "--max-bytes", str(10 ** 9),
                     "--cache-dir", cache_dir]) == 0
        assert "evicted 0" in capsys.readouterr().out


class TestBenchCommand:
    @pytest.fixture(autouse=True)
    def _stub_lanes_sweep(self, monkeypatch):
        # The pinned lanes matrix is its own (slow) benchmark with its
        # own suite; these tests exercise the bench CLI path, so stub
        # the sweep section (also keeps the KR18 runtime graph
        # registration from leaking into registry-enumerating tests).
        monkeypatch.setattr(
            "repro.bench.harness.run_lanes_sweep",
            lambda **kwargs: {"lanes": kwargs.get("lanes"), "step": 2000,
                              "specs": 1, "templates": 1,
                              "wall_s_serial": 2.0, "wall_s_lanes": 1.0,
                              "lanes_speedup": 2.0, "identical": True})

    def test_bench_smoke_writes_report(self, capsys, tmp_path, monkeypatch):
        import json
        import os
        # One cheap case, one repeat: exercises the full path end to end.
        monkeypatch.setattr("repro.bench.harness.SCALE_INSTRUCTIONS",
                            {"smoke": 500, "small": 500, "full": 500})
        monkeypatch.setattr("repro.bench.harness.SMOKE_MATRIX",
                            (("nas-is", "ooo"),))
        bench_dir = str(tmp_path / "benchmarks")
        assert main(["bench", "--scale", "smoke", "--repeats", "1",
                     "--label", "t", "--bench-dir", bench_dir]) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out
        path = os.path.join(bench_dir, "BENCH_t.json")
        with open(path) as handle:
            report = json.load(handle)
        assert report["totals"]["cycles_per_sec"] > 0
        assert report["cases"][0]["workload"] == "nas-is"
        # Comparing a report against itself never regresses.
        assert main(["bench", "--scale", "smoke", "--repeats", "1",
                     "--label", "t2", "--bench-dir", bench_dir,
                     "--baseline", path]) == 0

    def test_bench_regression_fails(self, capsys, tmp_path, monkeypatch):
        import json
        import os
        monkeypatch.setattr("repro.bench.harness.SCALE_INSTRUCTIONS",
                            {"smoke": 500, "small": 500, "full": 500})
        monkeypatch.setattr("repro.bench.harness.SMOKE_MATRIX",
                            (("nas-is", "ooo"),))
        bench_dir = str(tmp_path / "benchmarks")
        assert main(["bench", "--scale", "smoke", "--repeats", "1",
                     "--label", "base", "--bench-dir", bench_dir]) == 0
        capsys.readouterr()
        path = os.path.join(bench_dir, "BENCH_base.json")
        with open(path) as handle:
            report = json.load(handle)
        # Pretend the baseline machine was 100x faster.
        report["totals"]["cycles_per_sec"] *= 100
        with open(path, "w") as handle:
            json.dump(report, handle)
        assert main(["bench", "--scale", "smoke", "--repeats", "1",
                     "--label", "new", "--bench-dir", bench_dir,
                     "--baseline", path, "--threshold", "25"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_bench_profile_embeds_rows(self, tmp_path, monkeypatch, capsys):
        import json
        import os
        monkeypatch.setattr("repro.bench.harness.SCALE_INSTRUCTIONS",
                            {"smoke": 500, "small": 500, "full": 500})
        monkeypatch.setattr("repro.bench.harness.SMOKE_MATRIX",
                            (("nas-is", "ooo"),))
        bench_dir = str(tmp_path / "benchmarks")
        assert main(["bench", "--scale", "smoke", "--repeats", "1",
                     "--label", "p", "--bench-dir", bench_dir,
                     "--profile"]) == 0
        capsys.readouterr()
        with open(os.path.join(bench_dir, "BENCH_p.json")) as handle:
            report = json.load(handle)
        rows = report["profiles"]["nas-is/ooo"]
        assert rows and {"function", "ncalls", "tottime_s",
                         "cumtime_s"} <= set(rows[0])


class TestJsonExport:
    def test_out_appends_json_lines(self, tmp_path, capsys):
        out = tmp_path / "results.jsonl"
        assert main(["table1", "--out", str(out)]) == 0
        assert main(["table1", "--out", str(out)]) == 0
        import json
        lines = out.read_text().strip().splitlines()
        assert len(lines) == 2
        payload = json.loads(lines[0])
        assert payload["name"].startswith("Table 1")
        assert payload["rows"]


class TestEnvCommand:
    SPEC = os.path.join(os.path.dirname(__file__), "..", "specs",
                        "fig7.toml")

    def test_env_show(self, capsys):
        assert main(["env", "show", "--spec", self.SPEC]) == 0
        out = capsys.readouterr().out
        assert "spec        fig7" in out
        assert "matrix      grid" in out
        assert "analysis    table: fn=speedup_table" in out

    def test_env_concretize(self, capsys):
        assert main(["env", "concretize", "--spec", self.SPEC]) == 0
        out = capsys.readouterr().out
        assert "DAG fig7" in out and "dry run: nothing executed" in out

    def test_env_run_dry_run(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["env", "run", "--spec", self.SPEC, "--dry-run",
                     "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "dry run: nothing executed" in out
        assert "0/1 artifact(s) cached" in out
        # Nothing executed: no ledger was written.
        assert not os.path.exists(os.path.join(cache_dir, "runs.jsonl"))

    def test_env_run_executes_spec(self, capsys, tmp_path):
        import json
        spec_path = tmp_path / "mini.json"
        spec_path.write_text(json.dumps({
            "spec": {"name": "mini"},
            "matrix": {"name": "grid",
                       "workloads": [{"workload": "kangaroo"}],
                       "techniques": ["ooo", "dvr"],
                       "knobs": {"max_instructions": [800]}},
            "analysis": {"table": {
                "fn": "speedup_table", "needs": ["grid"],
                "args": {"columns": ["dvr"], "title": "mini table"}}},
        }))
        out_path = tmp_path / "out.jsonl"
        assert main(["env", "run", "--spec", str(spec_path),
                     "--out", str(out_path)]) == 0
        assert "mini table" in capsys.readouterr().out
        payload = json.loads(out_path.read_text().strip())
        assert payload["name"] == "mini table"
        assert payload["rows"][-1][0] == "H-mean"

    def test_env_requires_spec(self, capsys):
        assert main(["env", "run"]) == 2
        assert "--spec" in capsys.readouterr().err

    def test_env_unknown_action(self, capsys):
        assert main(["env", "explode", "--spec", self.SPEC]) == 2
        assert "unknown env action" in capsys.readouterr().err

    def test_env_bad_spec_reports_error(self, capsys, tmp_path):
        spec_path = tmp_path / "bad.json"
        spec_path.write_text('{"spec": {"name": "x"}}')
        assert main(["env", "run", "--spec", str(spec_path)]) == 2
        assert "matrix" in capsys.readouterr().err
