"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "bfs" in out and "dvr" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "ROB size" in out

    def test_run_workload(self, capsys, tiny_graph):
        assert main(["run", "bfs", "--graph", tiny_graph,
                     "--technique", "dvr", "--instructions", "2000"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "dvr_spawns" in out

    def test_run_hpcdb_workload(self, capsys):
        assert main(["run", "nas-is", "--technique", "ooo",
                     "--instructions", "2000"]) == 0
        assert "IPC" in capsys.readouterr().out

    def test_run_requires_workload(self):
        with pytest.raises(SystemExit):
            main(["run"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_fig9_with_tiny_scale(self, capsys, tiny_graph):
        assert main(["fig9", "--graphs", tiny_graph,
                     "--instructions", "2000"]) == 0
        out = capsys.readouterr().out
        assert "MSHRs" in out


class TestJobsFlags:
    def test_fig11_parallel_matches_serial(self, capsys, tiny_graph):
        argv = ["fig11", "--graphs", tiny_graph, "--instructions", "1000"]
        assert main(argv + ["--jobs", "1", "--no-cache"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2", "--no-cache"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_cache_dir_flag_and_stats_and_clear(self, capsys, tmp_path,
                                                tiny_graph):
        import os
        cache_dir = str(tmp_path / "cli-cache")
        assert main(["fig11", "--instructions", "500", "--graphs",
                     tiny_graph, "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert os.path.exists(os.path.join(cache_dir, "runs.jsonl"))
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "cache dir" in out and "entries" in out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "removed" in out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "0" in capsys.readouterr().out

    def test_cache_unknown_action(self, capsys):
        assert main(["cache", "defrag"]) == 2


class TestJsonExport:
    def test_out_appends_json_lines(self, tmp_path, capsys):
        out = tmp_path / "results.jsonl"
        assert main(["table1", "--out", str(out)]) == 0
        assert main(["table1", "--out", str(out)]) == 0
        import json
        lines = out.read_text().strip().splitlines()
        assert len(lines) == 2
        payload = json.loads(lines[0])
        assert payload["name"].startswith("Table 1")
        assert payload["rows"]
