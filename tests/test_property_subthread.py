"""Property-based robustness tests for the vector-runahead subthread.

Random loop kernels (random chain depth, divergent branches, random data)
are vectorized with random lane counts and termination settings.  The
invariants: the subthread always terminates within its structural bounds,
never writes guest memory, never reads out of bounds, and its statistics
stay self-consistent.
"""

import random as _random

from hypothesis import given, settings, strategies as st

from repro.config import SimConfig
from repro.core.subthread import (FLOW_FIRST_LANE, FLOW_RECONVERGE,
                                  SubthreadStats, VectorSubthread)
from repro.isa import Assembler, GuestMemory
from repro.memsys import MemoryHierarchy
from repro.uarch.scheduler import IssuePorts


@st.composite
def loop_kernel(draw):
    """(program builder inputs) for a random indirect-chain loop."""
    return {
        "chain_depth": draw(st.integers(min_value=0, max_value=4)),
        "with_branch": draw(st.booleans()),
        "with_store": draw(st.booleans()),
        "n": draw(st.sampled_from([256, 1024, 4096])),
        "seed": draw(st.integers(min_value=0, max_value=2 ** 16)),
    }


def build_kernel(spec):
    rnd = _random.Random(spec["seed"])
    n = spec["n"]
    mem = GuestMemory(32 * 1024 * 1024)
    base = mem.alloc_array([rnd.randrange(n) for _ in range(n)], "A")
    table = mem.alloc_array([rnd.randrange(n) for _ in range(n)], "T")
    a = Assembler("random-loop")
    a.li("r1", base)
    a.li("r2", table)
    a.li("r3", 0)       # i
    a.li("r4", n)       # bound
    a.label("loop")
    a.loadx("r5", "r1", "r3")          # pc 4: striding load
    for _ in range(spec["chain_depth"]):
        a.loadx("r5", "r2", "r5")      # dependent chain
    if spec["with_branch"]:
        a.andi("r6", "r5", 1)
        a.bez("r6", "skip")
        a.loadx("r7", "r2", "r5")      # divergent-path load
        a.label("skip")
    if spec["with_store"]:
        a.storex("r5", "r2", "r3")
    a.addi("r3", "r3", 1)
    a.cmplt("r8", "r3", "r4")
    a.bnz("r8", "loop")
    a.halt()
    regs = [0] * 32
    regs[1], regs[2], regs[3], regs[4] = base, table, 0, n
    return a.build(), mem, regs, base


@settings(max_examples=25, deadline=None)
@given(loop_kernel(),
       st.integers(min_value=1, max_value=128),
       st.sampled_from([FLOW_RECONVERGE, FLOW_FIRST_LANE]),
       st.booleans())
def test_subthread_robust_on_random_kernels(spec, lanes, flow,
                                            terminate_at_stride):
    program, mem, regs, base = build_kernel(spec)
    config = SimConfig()
    hierarchy = MemoryHierarchy(config.memsys, config.stride_pf,
                                config.imp, mem)
    subthread = VectorSubthread(program, mem, hierarchy, config.core,
                                config.dvr, source="dvr", flow=flow,
                                stats=SubthreadStats())
    snapshot = list(mem.words)
    flr = 4 + spec["chain_depth"] if spec["chain_depth"] else -1
    subthread.spawn(4, 8, base + 64, regs, lanes, flr_pc=flr,
                    terminate_at_stride=terminate_at_stride)
    ports = IssuePorts(config.core)
    now = 0
    while not subthread.done:
        now += 1
        ports.new_cycle()
        subthread.step(now, ports)
        hierarchy.tick(now)
        assert now < 500_000, "subthread failed to terminate"
    stats = subthread.stats
    # Structural bounds.
    assert stats.instructions <= config.dvr.subthread_timeout + 1
    assert stats.lane_loads_issued <= (stats.instructions + 1) * lanes
    # Speculation never mutates guest memory.
    assert mem.words == snapshot
    # The VRAT returned everything to the free lists.
    assert subthread.vrat.free_vector_regs == config.core.phys_vec_regs
