"""Behavioral tests for the PRE, VR, Oracle and DVR engines running
inside a real core on real kernels."""

import pytest

from repro.config import SimConfig
from repro.harness.runner import run_built, run_techniques
from tests.conftest import build_chain_workload


def run(technique, workload=None, max_instructions=15_000, **build_kw):
    workload = workload or build_chain_workload(n=16384, **build_kw)
    config = SimConfig(max_instructions=max_instructions
                       ).with_technique(technique)
    return run_built(workload, config)


class TestPre:
    def test_triggers_on_rob_stalls(self):
        metrics = run("pre")
        assert metrics.engine_stats["pre_intervals"] > 0

    def test_walks_future_instructions(self):
        metrics = run("pre")
        stats = metrics.engine_stats
        assert stats["pre_instructions_walked"] > stats["pre_intervals"]

    def test_never_slower_than_baseline_much(self):
        base = run("ooo")
        pre = run("pre")
        assert pre.ipc > base.ipc * 0.95

    def test_cannot_cover_second_indirection(self):
        """PRE's INV semantics stop at the first missing level, so its
        DRAM share stays small on a two-level chain (the paper's core
        criticism of scalar runahead)."""
        metrics = run("pre", workload=build_chain_workload(n=16384, levels=2))
        pre_dram = metrics.dram_accesses.get("pre", 0)
        demand_dram = metrics.dram_accesses.get("demand", 1)
        assert pre_dram < demand_dram


class TestVr:
    def test_triggers_and_vectorizes(self):
        metrics = run("vr")
        stats = metrics.engine_stats
        assert stats["vr_intervals"] > 0
        assert stats["vr_lane_loads"] > 0

    def test_delayed_termination_accounted(self):
        metrics = run("vr")
        assert metrics.engine_stats["vr_delayed_termination_cycles"] >= 0

    def test_delayed_termination_bounded(self):
        """Paper Section 3(2): delayed termination costs at most ~12% of
        execution time."""
        metrics = run("vr")
        delay = metrics.engine_stats["vr_delayed_termination_cycles"]
        assert delay < 0.25 * metrics.cycles

    def test_runahead_dram_attributed(self):
        metrics = run("vr")
        assert metrics.dram_accesses.get("vr", 0) > 0


class TestOracle:
    def test_fastest_technique(self):
        results = run_techniques(
            build_chain_workload(n=16384),
            ["ooo", "dvr", "oracle"],
            SimConfig(max_instructions=15_000))
        assert results["oracle"].ipc >= results["dvr"].ipc
        assert results["oracle"].ipc > results["ooo"].ipc

    def test_no_demand_dram_misses(self):
        metrics = run("oracle")
        assert metrics.dram_accesses.get("demand", 0) == 0
        assert metrics.dram_accesses.get("oracle", 0) > 0

    def test_architectural_result_unchanged(self):
        built_a = build_chain_workload(n=512)
        built_b = build_chain_workload(n=512)
        config = SimConfig(max_instructions=200_000)
        run_built(built_a, config.with_technique("ooo"))
        run_built(built_b, config.with_technique("oracle"))
        base = built_a.metadata["arrays"][-1]
        n = built_a.metadata["n"]
        assert (built_a.memory.read_array(base, n) ==
                built_b.memory.read_array(base, n))


class TestDvrEngine:
    def test_spawns_decoupled_from_stalls(self, tiny_graph):
        """DVR triggers even when the ROB never fills (Key Insight #1)."""
        from repro.workloads.gap import Bfs
        built = Bfs(graph=tiny_graph).build(memory_bytes=64 * 1024 * 1024)
        config = SimConfig(max_instructions=8_000).with_technique("dvr")
        metrics = run_built(built, config)
        assert metrics.rob_full_cycles == 0 or metrics.rob_full_fraction < 0.05
        assert metrics.engine_stats["dvr_spawns"] > 0

    def test_never_blocks_main_thread(self):
        metrics = run("dvr")
        assert metrics.commit_blocked_runahead == 0

    def test_speeds_up_indirect_chain(self):
        base = run("ooo", workload=build_chain_workload(n=65536))
        dvr = run("dvr", workload=build_chain_workload(n=65536))
        assert dvr.ipc > base.ipc

    def test_prefetches_are_used(self):
        metrics = run("dvr")
        used = metrics.prefetch_used.get("dvr", 0)
        issued = metrics.prefetch_issued.get("dvr", 1)
        assert used / issued > 0.5  # Discovery Mode keeps DVR accurate

    def test_raises_mlp_over_baseline(self, tiny_graph):
        from repro.workloads.gap import Bfs
        config = SimConfig(max_instructions=8_000)
        built = Bfs(graph=tiny_graph).build(memory_bytes=64 * 1024 * 1024)
        base = run_built(built, config.with_technique("ooo"))
        built = Bfs(graph=tiny_graph).build(memory_bytes=64 * 1024 * 1024)
        dvr = run_built(built, config.with_technique("dvr"))
        assert dvr.mlp > base.mlp

    def test_architectural_result_identical_across_techniques(self):
        """Runahead is speculative: it must never change guest state."""
        finals = {}
        for technique in ("ooo", "pre", "vr", "dvr"):
            built = build_chain_workload(n=512)
            config = SimConfig(max_instructions=200_000
                               ).with_technique(technique)
            run_built(built, config)
            base = built.metadata["arrays"][-1]
            finals[technique] = built.memory.read_array(base, 512)
        assert all(v == finals["ooo"] for v in finals.values())


class TestAblations:
    def test_offload_mode_skips_discovery(self):
        metrics = run("dvr-offload")
        stats = metrics.engine_stats
        assert stats["dvr_discoveries_started"] == 0
        assert stats["dvr_spawns"] > 0

    def test_discovery_mode_skips_nested(self, tiny_uniform_graph):
        from repro.workloads.gap import Bfs
        built = Bfs(graph=tiny_uniform_graph).build(
            memory_bytes=64 * 1024 * 1024)
        config = SimConfig(max_instructions=8_000
                           ).with_technique("dvr-discovery")
        metrics = run_built(built, config)
        assert metrics.engine_stats["dvr_discoveries_started"] > 0
        assert metrics.engine_stats["dvr_ndm_entries"] == 0

    def test_full_dvr_uniformly_best_on_short_loops(self):
        """Paper Fig 8: '+Discovery' alone can lose to blind Offload on
        some loop shapes (the cc/pr double-edged sword), but the full
        technique -- with Nested Runahead Mode -- is uniformly best."""
        from tests.test_core_nested import nested_workload
        config = SimConfig(max_instructions=10_000)
        ipcs = {}
        for technique in ("ooo", "dvr-offload", "dvr-discovery", "dvr"):
            built = nested_workload(branchy=True)
            metrics = run_built(built, config.with_technique(technique))
            ipcs[technique] = metrics.ipc
        assert ipcs["dvr"] >= max(ipcs.values()) * 0.999
        assert ipcs["dvr"] > ipcs["ooo"]

    def test_full_dvr_more_accurate_than_offload(self):
        """Loop bounds + NDM make full DVR's prefetches more likely to be
        used than blind 128-lane offload (paper Fig 10)."""
        from tests.test_core_nested import nested_workload
        config = SimConfig(max_instructions=10_000)
        rates = {}
        for technique in ("dvr-offload", "dvr"):
            built = nested_workload(branchy=True)
            metrics = run_built(built, config.with_technique(technique))
            used = metrics.prefetch_used.get("dvr", 0)
            issued = max(1, metrics.prefetch_issued.get("dvr", 0))
            rates[technique] = used / issued
        assert rates["dvr"] > rates["dvr-offload"]
