"""Schema-drift checks: config/Metrics completeness, engine contracts."""

from __future__ import annotations

import textwrap

import dataclasses

from repro.analysis.contracts import check_engine_contracts, engine_classes
from repro.analysis.schema import (check_config_schema, check_metrics_schema,
                                   iter_leaf_fields)
from repro.config import SimConfig, config_digest, config_from_dict, \
    config_to_dict


class TestConfigRoundTripCompleteness:
    def test_live_config_schema_is_clean(self):
        assert check_config_schema() == []

    def test_every_leaf_field_is_enumerated(self):
        leaves = list(iter_leaf_fields(SimConfig))
        # Spot-check representatives from every nesting level.
        assert "technique" in leaves
        assert "fast_forward" in leaves
        assert "sanitize" in leaves
        assert "core.rob_size" in leaves
        assert "core.int_alu.count" in leaves
        assert "memsys.l1d.size_bytes" in leaves
        assert "dvr.max_lanes" in leaves
        assert "branch.history_lengths" in leaves
        # No duplicates, plenty of coverage.
        assert len(leaves) == len(set(leaves)) > 50

    def test_auto_derived_round_trip_per_field(self):
        """The satellite completeness test: every leaf survives the dict
        round-trip and moves config_digest, derived from the dataclasses
        so a new field can't silently opt out."""
        base = SimConfig()
        base_digest = config_digest(base)
        for dotted in iter_leaf_fields(SimConfig):
            # Perturb through the same machinery the linter check uses.
            from repro.analysis.schema import _get_path, _perturb, \
                _replace_path
            value = _perturb(_get_path(base, dotted))
            assert value is not None, dotted
            perturbed = _replace_path(base, dotted, value)
            restored = config_from_dict(SimConfig,
                                        config_to_dict(perturbed))
            assert restored == perturbed, dotted
            assert config_digest(perturbed) != base_digest, dotted

    def test_dropped_field_is_detected(self):
        """A field that config_from_dict ignores shows up as a finding."""
        # Simulate drift: serialize, delete a key, rebuild -- the rebuilt
        # config silently falls back to the default.  The checker's
        # perturb-and-compare protocol is exactly what catches this.
        data = config_to_dict(SimConfig(max_instructions=99_999))
        del data["max_instructions"]
        restored = config_from_dict(SimConfig, data)
        assert restored.max_instructions == SimConfig().max_instructions


class TestMetricsSchema:
    def test_live_metrics_schema_is_clean(self):
        assert check_metrics_schema() == []

    def test_extra_init_attribute_is_flagged(self):
        source = textwrap.dedent("""
            class Metrics:
                def __init__(self):
                    self.workload = "w"
                    self.brand_new_counter = 0
        """)
        findings = check_metrics_schema(source=source, path="<test>")
        assert any("brand_new_counter" in f.message for f in findings)
        assert all(f.rule == "schema-roundtrip" for f in findings)

    def test_missing_assignment_is_flagged(self):
        source = textwrap.dedent("""
            class Metrics:
                def __init__(self):
                    self.workload = "w"
        """)
        findings = check_metrics_schema(source=source, path="<test>")
        assert any("never assigns" in f.message for f in findings)


class TestEngineContracts:
    def test_live_engines_honour_the_contract(self):
        assert check_engine_contracts() == []

    def test_all_known_engines_discovered(self):
        names = {cls.__name__ for cls in engine_classes()}
        assert {"RunaheadEngine", "NullEngine", "DvrEngine", "PreEngine",
                "VrEngine", "OracleEngine"} <= names

    def test_broken_engine_is_flagged(self):
        class BadTickEngine(dict):   # deliberately broken  # repro: allow(engine-quiescence)
            def tick(self, now, ports):
                pass

        from repro.analysis.contracts import _check_signature
        assert _check_signature(BadTickEngine, "quiescent") is not None

    def test_wrong_signature_is_flagged(self):
        class WrongSig:
            def quiescent(self):          # missing ``now``
                return True

            def next_event(self, now):
                return None

        from repro.analysis.contracts import _check_signature
        assert _check_signature(WrongSig, "quiescent") is not None
        assert _check_signature(WrongSig, "next_event") is None


class TestLintReportIncludesDynamicChecks:
    def test_full_lint_runs_dynamic_checks(self):
        from repro.analysis import run_lint
        report = run_lint()
        assert report.ok
        # Restricting to a subpath skips the package-level checks.
        import os
        import repro
        subdir = os.path.join(os.path.dirname(repro.__file__), "isa")
        partial = run_lint(paths=[subdir])
        assert partial.files_checked < report.files_checked


def test_dataclass_guard():
    """All config nodes are dataclasses (iter_leaf_fields relies on it)."""
    assert dataclasses.is_dataclass(SimConfig)
