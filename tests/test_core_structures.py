"""Tests for DVR's small hardware structures: the stride detector (RPT),
taint tracker (VTT), loop-bound detector, VRAT, reconvergence stack, and
the hardware-cost accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.config import CoreConfig, DvrConfig
from repro.core.hw_cost import hardware_budget, total_bytes
from repro.core.loop_bounds import LoopBoundDetector, LoopBoundResult
from repro.core.reconvergence import ReconvergenceStack
from repro.core.stride_detector import StrideDetector
from repro.core.taint import TaintTracker
from repro.core.vrat import Vrat, VratExhausted
from repro.isa.instructions import Instruction, Op


class TestStrideDetector:
    def make(self):
        return StrideDetector(DvrConfig())

    def test_builds_confidence_on_steady_stride(self):
        det = self.make()
        for k in range(4):
            det.observe(10, 0x1000 + k * 8)
        assert det.is_confident(10)
        assert det.get(10).stride == 8

    def test_two_observations_not_confident(self):
        det = self.make()
        det.observe(10, 0x1000)
        det.observe(10, 0x1008)
        assert not det.is_confident(10)

    def test_stride_change_resets(self):
        det = self.make()
        for k in range(4):
            det.observe(10, 0x1000 + k * 8)
        det.observe(10, 0x9000)
        assert not det.is_confident(10)

    def test_zero_stride_never_confident(self):
        det = self.make()
        for _ in range(8):
            det.observe(10, 0x1000)
        assert not det.is_confident(10)

    def test_negative_stride_supported(self):
        det = self.make()
        for k in range(4):
            det.observe(10, 0x9000 - k * 16)
        assert det.is_confident(10)
        assert det.get(10).stride == -16

    def test_capacity_eviction(self):
        det = StrideDetector(DvrConfig(stride_detector_entries=4))
        for pc in range(6):
            det.observe(pc, 0x1000)
        assert len(det) == 4
        assert det.get(0) is None
        assert det.get(5) is not None

    def test_lru_refresh_protects_hot_entry(self):
        det = StrideDetector(DvrConfig(stride_detector_entries=2))
        det.observe(1, 0x100)
        det.observe(2, 0x200)
        det.observe(1, 0x108)  # refresh pc 1
        det.observe(3, 0x300)  # should evict pc 2
        assert det.get(1) is not None
        assert det.get(2) is None

    def test_confident_entries_listing(self):
        det = self.make()
        for k in range(4):
            det.observe(10, 0x1000 + k * 8)
            det.observe(11, 0x5000)  # zero stride
        assert [entry.pc for entry in det.confident_entries()] == [10]

    @given(st.integers(min_value=1, max_value=1024),
           st.integers(min_value=-512, max_value=512).filter(lambda s: s != 0))
    def test_property_any_nonzero_stride_learnable(self, base, stride):
        det = self.make()
        for k in range(5):
            det.observe(1, base + k * stride)
        assert det.is_confident(1)
        assert det.get(1).stride == stride


def _ins(op, rd=-1, rs1=-1, rs2=-1, rs3=-1, imm=0, target=-1, pc=0):
    return Instruction(op, rd=rd, rs1=rs1, rs2=rs2, rs3=rs3, imm=imm,
                       target=target, pc=pc)


class TestTaintTracker:
    def test_seed_and_direct_propagation(self):
        vtt = TaintTracker()
        vtt.reset(seed_reg=1)
        assert vtt.is_tainted(1)
        assert vtt.observe(_ins(Op.ADD, rd=2, rs1=1, rs2=3))
        assert vtt.is_tainted(2)

    def test_transitive_propagation(self):
        vtt = TaintTracker()
        vtt.reset(1)
        vtt.observe(_ins(Op.ADD, rd=2, rs1=1, rs2=3))
        vtt.observe(_ins(Op.MOV, rd=4, rs1=2))
        assert vtt.is_tainted(4)

    def test_overwrite_clears_taint(self):
        vtt = TaintTracker()
        vtt.reset(1)
        vtt.observe(_ins(Op.LI, rd=1, imm=5))
        assert not vtt.is_tainted(1)

    def test_untainted_instruction_not_in_chain(self):
        vtt = TaintTracker()
        vtt.reset(1)
        assert not vtt.observe(_ins(Op.ADD, rd=2, rs1=3, rs2=4))

    def test_flr_updates_on_tainted_load(self):
        vtt = TaintTracker()
        vtt.reset(1)
        vtt.observe(_ins(Op.LOADX, rd=2, rs1=5, rs2=1, imm=8, pc=17))
        assert vtt.flr_pc == 17
        vtt.observe(_ins(Op.LOADX, rd=3, rs1=5, rs2=2, imm=8, pc=19))
        assert vtt.flr_pc == 19
        assert vtt.has_dependent_load

    def test_untainted_load_does_not_touch_flr(self):
        vtt = TaintTracker()
        vtt.reset(1)
        vtt.observe(_ins(Op.LOADX, rd=2, rs1=5, rs2=6, imm=8, pc=17))
        assert vtt.flr_pc == -1

    def test_chain_pcs_recorded(self):
        vtt = TaintTracker()
        vtt.reset(1)
        vtt.observe(_ins(Op.ADD, rd=2, rs1=1, rs2=1, pc=3))
        vtt.observe(_ins(Op.ADD, rd=9, rs1=8, rs2=8, pc=4))  # unrelated
        vtt.observe(_ins(Op.LOADX, rd=5, rs1=6, rs2=2, imm=8, pc=5))
        assert vtt.chain_pcs == [3, 5]

    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15),
                              st.integers(0, 15)), max_size=50))
    def test_property_bits_always_within_register_file(self, writes):
        vtt = TaintTracker()
        vtt.reset(0)
        for rd, rs1, rs2 in writes:
            vtt.observe(_ins(Op.ADD, rd=rd, rs1=rs1, rs2=rs2))
            assert 0 <= vtt.bits < (1 << 32)


class TestLoopBoundDetector:
    def _loop_sequence(self, det, induction=5, bound=6, stride_pc=10):
        """Simulate: cmp rC, rI, rN; bnz rC -> stride_pc-2 (backward)."""
        det.observe_compare(_ins(Op.CMPLT, rd=7, rs1=induction, rs2=bound,
                                 pc=20))
        det.observe_branch(_ins(Op.BNZ, rs1=7, target=8, pc=21),
                           stride_pc=stride_pc)

    def test_identifies_compare_and_branch(self):
        det = LoopBoundDetector()
        det.checkpoint_entry([0] * 32)
        self._loop_sequence(det)
        assert det.sbb
        assert det.branch_pc == 21

    def test_forward_branch_not_accepted(self):
        det = LoopBoundDetector()
        det.checkpoint_entry([0] * 32)
        det.observe_compare(_ins(Op.CMPLT, rd=7, rs1=5, rs2=6, pc=20))
        det.observe_branch(_ins(Op.BNZ, rs1=7, target=50, pc=21),
                           stride_pc=10)
        assert not det.sbb
        assert det.other_branch_seen

    def test_flr_update_resets_lcr(self):
        det = LoopBoundDetector()
        det.checkpoint_entry([0] * 32)
        det.observe_compare(_ins(Op.CMPLT, rd=7, rs1=5, rs2=6, pc=20))
        det.on_flr_update()
        assert det.lcr_dest == -1

    def test_finalize_classifies_bound_and_induction(self):
        det = LoopBoundDetector()
        entry = [0] * 32
        entry[5], entry[6] = 10, 100   # induction=10, bound=100
        det.checkpoint_entry(entry)
        self._loop_sequence(det, induction=5, bound=6)
        exit_regs = list(entry)
        exit_regs[5] = 11              # induction advanced by 1
        result = det.finalize(exit_regs)
        assert result.found
        assert result.bound_reg == 6
        assert result.induction_reg == 5
        assert result.increment == 1

    def test_finalize_swapped_operands(self):
        det = LoopBoundDetector()
        entry = [0] * 32
        entry[5], entry[6] = 100, 10
        det.checkpoint_entry(entry)
        det.observe_compare(_ins(Op.CMPLT, rd=7, rs1=5, rs2=6, pc=20))
        det.observe_branch(_ins(Op.BNZ, rs1=7, target=8, pc=21), 10)
        exit_regs = list(entry)
        exit_regs[6] = 12              # rs2 is the induction
        result = det.finalize(exit_regs)
        assert result.found and result.induction_reg == 6
        assert result.increment == 2

    def test_finalize_fails_when_both_change(self):
        det = LoopBoundDetector()
        entry = [0] * 32
        det.checkpoint_entry(entry)
        self._loop_sequence(det)
        exit_regs = list(entry)
        exit_regs[5], exit_regs[6] = 3, 4
        assert not det.finalize(exit_regs).found

    def test_finalize_fails_without_branch(self):
        det = LoopBoundDetector()
        det.checkpoint_entry([0] * 32)
        det.observe_compare(_ins(Op.CMPLT, rd=7, rs1=5, rs2=6, pc=20))
        assert not det.finalize([1] * 32).found


class TestLoopBoundResult:
    def test_remaining_positive_increment(self):
        result = LoopBoundResult(found=True, bound_reg=6, induction_reg=5,
                                 increment=1)
        regs = [0] * 32
        regs[5], regs[6] = 10, 50
        assert result.remaining_iterations(regs, cap=128) == 40

    def test_remaining_capped(self):
        result = LoopBoundResult(found=True, bound_reg=6, induction_reg=5,
                                 increment=1)
        regs = [0] * 32
        regs[5], regs[6] = 0, 1000
        assert result.remaining_iterations(regs, cap=128) == 128

    def test_remaining_negative_clamped_to_zero(self):
        result = LoopBoundResult(found=True, bound_reg=6, induction_reg=5,
                                 increment=1)
        regs = [0] * 32
        regs[5], regs[6] = 50, 10
        assert result.remaining_iterations(regs, cap=128) == 0

    def test_remaining_downward_loop(self):
        result = LoopBoundResult(found=True, bound_reg=6, induction_reg=5,
                                 increment=-2)
        regs = [0] * 32
        regs[5], regs[6] = 20, 0
        assert result.remaining_iterations(regs, cap=128) == 10

    def test_not_found_returns_cap(self):
        result = LoopBoundResult(found=False)
        assert result.remaining_iterations([0] * 32, cap=128) == 128

    @given(st.integers(0, 1000), st.integers(0, 1000),
           st.integers(1, 16), st.integers(1, 256))
    def test_property_remaining_in_range(self, cur, bound, inc, cap):
        result = LoopBoundResult(found=True, bound_reg=6, induction_reg=5,
                                 increment=inc)
        regs = [0] * 32
        regs[5], regs[6] = cur, bound
        remaining = result.remaining_iterations(regs, cap=cap)
        assert 0 <= remaining <= cap


class TestVrat:
    def make(self):
        return Vrat(CoreConfig(), DvrConfig())

    def test_initialize_maps_all_scalars(self):
        vrat = self.make()
        vrat.initialize_from_main()
        assert all(vrat.kind(r) == "scalar" for r in range(32))

    def test_vectorize_allocates_16(self):
        vrat = self.make()
        vrat.initialize_from_main()
        before = vrat.free_vector_regs
        vrat.make_vector(3)
        assert vrat.free_vector_regs == before - 16
        assert vrat.kind(3) == "vector"

    def test_vectorize_frees_scalar(self):
        vrat = self.make()
        vrat.initialize_from_main()
        before = vrat.free_int_regs
        vrat.make_vector(3)
        assert vrat.free_int_regs == before + 1

    def test_scalar_overwrite_frees_vector(self):
        vrat = self.make()
        vrat.initialize_from_main()
        vrat.make_vector(3)
        free_vec = vrat.free_vector_regs
        vrat.make_scalar(3)
        assert vrat.free_vector_regs == free_vec + 16
        assert vrat.kind(3) == "scalar"

    def test_vector_exhaustion(self):
        vrat = self.make()
        vrat.initialize_from_main()
        # 128 vector regs / 16 per mapping = 8 mappings.
        for reg in range(8):
            vrat.make_vector(reg)
        with pytest.raises(VratExhausted):
            vrat.make_vector(9)
        assert vrat.exhaustions == 1

    def test_release_all_restores_capacity(self):
        vrat = self.make()
        vrat.initialize_from_main()
        vrat.make_vector(1)
        vrat.make_vector(2)
        vrat.release_all()
        assert vrat.free_vector_regs == CoreConfig().phys_vec_regs
        vrat.initialize_from_main()  # can spawn again

    def test_double_vectorize_idempotent(self):
        vrat = self.make()
        vrat.initialize_from_main()
        vrat.make_vector(1)
        free = vrat.free_vector_regs
        vrat.make_vector(1)
        assert vrat.free_vector_regs == free

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 31)),
                    max_size=60))
    def test_property_free_lists_never_exceed_capacity(self, ops):
        vrat = self.make()
        vrat.initialize_from_main()
        for to_vector, reg in ops:
            try:
                if to_vector:
                    vrat.make_vector(reg)
                else:
                    vrat.make_scalar(reg)
            except VratExhausted:
                pass
            assert 0 <= vrat.free_vector_regs <= CoreConfig().phys_vec_regs
            assert 0 <= vrat.free_int_regs <= CoreConfig().phys_int_regs
        vrat.release_all()
        assert vrat.free_vector_regs == CoreConfig().phys_vec_regs


class TestReconvergenceStack:
    def test_push_pop_lifo(self):
        stack = ReconvergenceStack(8)
        stack.push(10, [1, 2])
        stack.push(20, [3])
        assert stack.pop() == (20, (3,))
        assert stack.pop() == (10, (1, 2))
        assert stack.empty

    def test_overflow_drops(self):
        stack = ReconvergenceStack(2)
        assert stack.push(1, [1])
        assert stack.push(2, [2])
        assert not stack.push(3, [3])
        assert stack.overflows == 1
        assert len(stack) == 2

    def test_pop_empty_returns_none(self):
        assert ReconvergenceStack(2).pop() is None


class TestHardwareCost:
    def test_total_matches_paper(self):
        assert total_bytes(DvrConfig(), CoreConfig()) == 1139

    def test_structure_budget_rows(self):
        rows = {name: nbytes for name, _, nbytes in
                hardware_budget(DvrConfig(), CoreConfig())}
        assert rows["Stride detector (RPT)"] == 460
        assert rows["VRAT"] == 288
        assert rows["VIR"] == 86
        assert rows["Front-end buffer"] == 64
        assert rows["Reconvergence stack"] == 176
        assert rows["FLR"] == 6
        assert rows["LCR"] == 2
        assert rows["Loop-bound detector"] == 48

    def test_budget_scales_with_config(self):
        bigger = DvrConfig(stride_detector_entries=64)
        assert total_bytes(bigger, CoreConfig()) > 1139
