"""Tests for the pipeline trace facility and the CPI-stack accounting."""

import pytest

from repro.config import SimConfig
from repro.harness.runner import run_built
from repro.isa import Assembler, GuestMemory
from repro.memsys import MemoryHierarchy
from repro.uarch import OoOCore, PipelineTrace
from tests.conftest import build_chain_workload


def run_traced(built, trace, config=None, technique="ooo"):
    config = (config or SimConfig(max_instructions=2_000)
              ).with_technique(technique)
    hierarchy = MemoryHierarchy(config.memsys, config.stride_pf, config.imp,
                                built.memory)
    core = OoOCore(built.program, built.memory, config, hierarchy,
                   trace=trace)
    stats = core.run()
    return core, stats


class TestPipelineTrace:
    def test_records_limited_entries(self):
        trace = PipelineTrace(limit=50)
        run_traced(build_chain_workload(n=2048), trace)
        assert len(trace.entries) == 50

    def test_event_ordering(self):
        trace = PipelineTrace(limit=100)
        run_traced(build_chain_workload(n=2048), trace)
        for entry in trace.entries:
            if entry.issue >= 0:
                assert entry.dispatch <= entry.issue <= entry.complete

    def test_load_latencies_reflect_hierarchy(self):
        trace = PipelineTrace(limit=200)
        run_traced(build_chain_workload(n=2048), trace)
        latencies = trace.load_latencies()
        assert latencies
        offchip = [lat for _, level, lat in latencies
                   if level == "Off-chip"]
        assert offchip and min(offchip) >= 200  # DRAM trips traced

    def test_skip_window(self):
        trace = PipelineTrace(limit=10, skip=100)
        run_traced(build_chain_workload(n=2048), trace)
        assert trace.entries[0].seq == 100

    def test_render(self):
        trace = PipelineTrace(limit=20)
        run_traced(build_chain_workload(n=2048), trace)
        text = trace.render(max_rows=5)
        assert "disp" in text
        assert len(text.splitlines()) == 6


class TestCpiStack:
    def test_components_sum_to_cycles(self):
        config = SimConfig(max_instructions=3_000)
        metrics = run_built(build_chain_workload(n=8192), config)
        total = sum(metrics.cpi_stack.values()) * metrics.committed
        assert total == pytest.approx(metrics.cycles, rel=0.01)

    def test_memory_dominates_indirect_chain(self):
        config = SimConfig(max_instructions=3_000)
        metrics = run_built(build_chain_workload(n=65536), config)
        stack = metrics.cpi_stack
        assert stack["memory"] > stack["base"]
        assert stack["memory"] > stack["frontend"]

    def test_compute_loop_is_base_dominated(self):
        a = Assembler()
        a.li("r1", 0)
        a.label("loop")
        a.addi("r2", "r2", 1)
        a.addi("r3", "r3", 1)
        a.addi("r1", "r1", 1)
        a.cmplti("r4", "r1", 5000)
        a.bnz("r4", "loop")
        a.halt()
        mem = GuestMemory(1 << 20)
        from repro.workloads.base import BuiltWorkload
        metrics = run_built(BuiltWorkload("alu", a.build(), mem),
                            SimConfig(max_instructions=10_000))
        stack = metrics.cpi_stack
        assert stack["base"] > stack["memory"]

    def test_dvr_shrinks_memory_component(self):
        config = SimConfig(max_instructions=3_000)
        base = run_built(build_chain_workload(n=65536), config)
        dvr = run_built(build_chain_workload(n=65536),
                        config.with_technique("dvr"))
        assert dvr.cpi_stack["memory"] < base.cpi_stack["memory"]

    def test_mispredict_heavy_loop_shows_frontend(self):
        import random
        rnd = random.Random(3)
        a = Assembler()
        mem = GuestMemory(1 << 22)
        bits = mem.alloc_array([rnd.randrange(2) for _ in range(4096)], "b")
        a.li("r1", bits)
        a.li("r2", 0)
        a.label("loop")
        a.loadx("r3", "r1", "r2")
        a.bez("r3", "skip")
        a.addi("r4", "r4", 1)
        a.label("skip")
        a.addi("r2", "r2", 1)
        a.cmplti("r5", "r2", 4000)
        a.bnz("r5", "loop")
        a.halt()
        from repro.workloads.base import BuiltWorkload
        metrics = run_built(BuiltWorkload("branchy", a.build(), mem),
                            SimConfig(max_instructions=20_000))
        assert metrics.cpi_stack["frontend"] > 0.1
