"""Determinism linter: rules, suppressions, fixes, CLI, clean tree."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap

from repro.__main__ import main
from repro.analysis import lint_file, run_lint
from repro.analysis.fixes import RNG_NAME, fix_source
from repro.analysis.linter import LintReport, iter_source_files
from repro.analysis.rules import ALL_RULE_NAMES


def lint_source(source, relpath="uarch/fixture.py", rules=None):
    """Lint a source snippet as if it were a package file."""
    return lint_file("/fixture.py", relpath=relpath, rules=rules,
                     source=textwrap.dedent(source))


def rules_of(findings):
    return [f.rule for f in findings]


class TestNondetRules:
    def test_builtin_hash_and_id(self):
        findings = lint_source("""
            def key(node):
                return hash(node) ^ id(node)
        """)
        assert rules_of(findings) == ["nondet-hash", "nondet-id"]

    def test_bare_random_calls(self):
        findings = lint_source("""
            import random
            x = random.randint(0, 9)
            y = random.random()
            rng = random.Random()
        """)
        assert rules_of(findings) == ["nondet-bare-random"] * 3

    def test_seeded_random_is_clean(self):
        findings = lint_source("""
            import random
            rng = random.Random(12345)
            x = rng.randint(0, 9)
        """)
        assert findings == []

    def test_numpy_global_rng(self):
        findings = lint_source("""
            import numpy as np
            a = np.random.rand(4)
            b = np.random.default_rng()
            c = np.random.default_rng(7)     # seeded: fine
        """)
        assert rules_of(findings) == ["nondet-bare-random"] * 2

    def test_wall_clock_in_simulation_code(self):
        findings = lint_source("""
            import time
            def tick():
                return time.perf_counter()
        """)
        assert rules_of(findings) == ["nondet-time"]

    def test_wall_clock_exempt_in_infrastructure(self):
        for relpath in ("jobs/ledger.py", "bench/harness.py",
                        "analysis/linter.py", "__main__.py"):
            findings = lint_source("""
                import time
                t = time.time()
            """, relpath=relpath)
            assert findings == [], relpath

    def test_set_iteration_forms(self):
        findings = lint_source("""
            frontier = set()
            for node in frontier:
                print(node)
            order = [n for n in {1, 2, 3}]
            first = frontier.pop()
        """)
        assert rules_of(findings) == ["nondet-set-iter"] * 3

    def test_self_attribute_sets_are_tracked(self):
        findings = lint_source("""
            class Walker:
                def __init__(self):
                    self.seen = set()
                def walk(self):
                    return list(self.seen)   # not iteration syntax: clean
                def drain(self):
                    for n in self.seen:
                        yield n
        """)
        assert rules_of(findings) == ["nondet-set-iter"]
        assert findings[0].line == 8

    def test_set_membership_is_clean(self):
        findings = lint_source("""
            seen = set()
            def visit(n):
                if n in seen:
                    return True
                seen.add(n)
                return len(seen) > 3
        """)
        assert findings == []

    def test_dict_iteration_is_exempt(self):
        findings = lint_source("""
            table = {}
            for key, value in table.items():
                print(key, value)
            for value in table.values():
                print(value)
        """)
        assert findings == []


class TestEngineQuiescenceRule:
    def test_tick_without_quiescent_is_flagged(self):
        findings = lint_source("""
            class ThrottleEngine:
                def tick(self, now, ports):
                    self.work += 1
        """)
        assert rules_of(findings) == ["engine-quiescence"]

    def test_tick_with_quiescent_is_clean(self):
        findings = lint_source("""
            class ThrottleEngine:
                def tick(self, now, ports):
                    self.work += 1
                def quiescent(self, now):
                    return self.work == 0
        """)
        assert findings == []

    def test_next_event_without_quiescent_is_flagged(self):
        findings = lint_source("""
            class WakeEngine:
                def next_event(self, now):
                    return now + 10
        """)
        assert rules_of(findings) == ["engine-quiescence"]

    def test_base_subclass_detected_without_name_suffix(self):
        findings = lint_source("""
            class Throttle(RunaheadEngine):
                def blocks_commit(self, now):
                    return True
        """)
        assert rules_of(findings) == ["engine-quiescence"]

    def test_non_engine_class_is_ignored(self):
        findings = lint_source("""
            class Clock:
                def tick(self, now, ports):
                    pass
        """)
        assert findings == []


class TestSuppressions:
    def test_allow_comment_suppresses(self):
        findings = lint_source("""
            x = hash("k")  # repro: allow(nondet-hash)
        """)
        assert len(findings) == 1 and findings[0].suppressed
        report = LintReport(findings, files_checked=1)
        assert report.ok and report.errors == []

    def test_allow_star_and_lists(self):
        findings = lint_source("""
            a = hash("k")  # repro: allow(*)
            b = id("k")    # repro: allow(nondet-hash, nondet-id)
            c = hash("k")  # repro: allow(nondet-id)
        """)
        suppressed = [f.suppressed for f in findings]
        assert suppressed == [True, True, False]

    def test_allow_list_tolerates_spacing(self):
        findings = lint_source("""
            a = hash("k")  # repro: allow( nondet-hash ,nondet-id )
        """)
        assert [f.suppressed for f in findings] == [True]

    def test_star_suppresses_multiple_rules_on_one_line(self):
        findings = lint_source("""
            a = hash("k") ^ id("k")  # repro: allow(*)
        """)
        assert len(findings) == 2
        assert all(f.suppressed for f in findings)

    def test_allow_comment_on_wrong_line_does_not_suppress(self):
        findings = lint_source("""
            # repro: allow(nondet-hash)
            a = hash("k")
        """)
        assert [f.suppressed for f in findings] == [False]


class TestFixes:
    def test_wrap_sorted(self):
        source = textwrap.dedent("""
            s = {3, 1, 2}
            for x in s:
                print(x)
        """)
        findings = lint_source(source)
        fixed, applied = fix_source(source, findings)
        assert applied == 1
        assert "for x in sorted(s):" in fixed
        assert lint_source(fixed) == []

    def test_reroute_random_inserts_seeded_rng(self):
        source = textwrap.dedent("""
            import random
            def jitter():
                return random.uniform(0.0, 1.0)
        """)
        findings = lint_source(source)
        fixed, applied = fix_source(source, findings)
        assert applied == 1
        assert f"return {RNG_NAME}.uniform(0.0, 1.0)" in fixed
        assert f"{RNG_NAME} = random.Random(" in fixed
        assert lint_source(fixed) == []

    def test_rng_line_inserted_once_for_many_fixes(self):
        source = textwrap.dedent("""
            import random
            a = random.random()
            b = random.randint(0, 3)
        """)
        findings = lint_source(source)
        fixed, applied = fix_source(source, findings)
        assert applied == 2
        assert fixed.count(f"{RNG_NAME} = random.Random(") == 1

    def test_suppressed_findings_are_not_fixed(self):
        source = 'import random\nx = random.random()  # repro: allow(nondet-bare-random)\n'
        findings = lint_source(source)
        fixed, applied = fix_source(source, findings)
        assert applied == 0 and fixed == source

    def test_stale_payload_is_skipped_not_botched(self):
        source = "import random\nx = random.random()\n"
        findings = lint_source(source)
        drifted = "import random\ny = 1  # line changed since linting\n"
        fixed, applied = fix_source(drifted, findings)
        assert applied == 0 and fixed == drifted

    def test_fix_is_idempotent(self):
        source = textwrap.dedent("""
            import random
            s = {3, 1, 2}
            for x in s:
                print(x)
            a = random.random()
        """)
        once, applied_once = fix_source(source, lint_source(source))
        assert applied_once == 2
        twice, applied_twice = fix_source(once, lint_source(once))
        assert applied_twice == 0
        assert twice == once

    def test_cli_fix_second_run_is_a_noop(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        assert main(["lint", str(bad), "--fix"]) == 0
        fixed_text = bad.read_text()
        assert main(["lint", str(bad), "--fix"]) == 0
        assert bad.read_text() == fixed_text


class TestTreeAndDiscovery:
    def test_repro_package_lints_clean(self):
        report = run_lint()
        assert report.files_checked > 40
        assert report.errors == [], "\n" + "\n".join(
            f.render() for f in report.errors)

    def test_iter_source_files_sorted_and_relative(self):
        pairs = list(iter_source_files())
        paths = [path for path, _ in pairs]
        assert paths == sorted(paths)
        rels = dict(pairs)
        assert any(rel == "config.py" for rel in rels.values())
        assert any(rel.startswith("uarch/") for rel in rels.values())
        assert not any("__pycache__" in path for path in paths)

    def test_rule_filter(self):
        source = "x = hash('k')\ny = id('k')\n"
        only_id = lint_source(source, rules={"nondet-id"})
        assert rules_of(only_id) == ["nondet-id"]

    def test_co_emitted_rule_selection_coupling(self):
        # nondet-id is emitted by the nondet-hash pass: selecting only
        # nondet-hash must not leak nondet-id findings, and selecting
        # only nondet-id must still run the shared pass.
        source = "x = hash('k')\ny = id('k')\n"
        only_hash = lint_source(source, rules={"nondet-hash"})
        assert rules_of(only_hash) == ["nondet-hash"]
        unrelated = lint_source(source, rules={"nondet-time"})
        assert unrelated == []

    def test_outside_tree_relpath_keeps_target_prefix(self, tmp_path):
        # A linted directory outside the package keeps its basename as
        # the relpath prefix, so prefix-keyed exemptions (tests/,
        # benchmarks/) apply to it.
        tree = tmp_path / "tests"
        tree.mkdir()
        (tree / "test_timing.py").write_text(
            "import time\nt0 = time.monotonic()\n")
        pairs = list(iter_source_files([str(tree)]))
        assert [rel for _path, rel in pairs] == ["tests/test_timing.py"]
        report = run_lint([str(tree)])
        assert report.errors == []   # tests/ is wall-clock exempt

    def test_syntax_error_becomes_finding(self):
        findings = lint_source("def broken(:\n")
        assert rules_of(findings) == ["syntax-error"]


class TestLintCli:
    def test_lint_clean_tree_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_lint_seeded_violation_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("x = hash('k')\n")
        assert main(["lint", str(bad)]) == 1
        assert "nondet-hash" in capsys.readouterr().out

    def test_lint_json_report(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        out = tmp_path / "lint.json"
        assert main(["lint", str(bad), "--json", str(out)]) == 1
        report = json.loads(out.read_text())
        assert report["ok"] is False and report["errors"] == 1
        assert report["counts_by_rule"] == {"nondet-bare-random": 1}
        finding = report["findings"][0]
        assert finding["rule"] == "nondet-bare-random"
        assert finding["fixable"] is True

    def test_lint_fix_rewrites_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        assert main(["lint", str(bad), "--fix"]) == 0
        assert RNG_NAME in bad.read_text()

    def test_lint_unknown_rule_exits_two(self, capsys):
        assert main(["lint", "--rules", "no-such-rule"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_rule_names_are_known(self):
        assert set(ALL_RULE_NAMES) >= {
            "nondet-hash", "nondet-id", "nondet-bare-random", "nondet-time",
            "nondet-set-iter", "engine-quiescence", "schema-roundtrip",
            "engine-contract", "race-unguarded-write", "race-no-guard",
            "lock-order", "time-exempt-drift"}


class TestTimeExemptDrift:
    def test_real_tree_has_no_drift(self):
        from repro.analysis.rules import check_time_exemptions
        assert check_time_exemptions() == []

    def test_stale_directory_prefix_is_flagged(self, monkeypatch):
        from repro.analysis import rules
        monkeypatch.setattr(rules, "TIME_EXEMPT_PREFIXES",
                            rules.TIME_EXEMPT_PREFIXES + ("ghost/",))
        findings = rules.check_time_exemptions()
        assert rules_of(findings) == ["time-exempt-drift"]
        assert "ghost/" in findings[0].message

    def test_stale_module_entry_is_flagged(self, monkeypatch):
        from repro.analysis import rules
        monkeypatch.setattr(rules, "TIME_EXEMPT_PREFIXES",
                            rules.TIME_EXEMPT_PREFIXES + ("__ghost__",))
        findings = rules.check_time_exemptions()
        assert rules_of(findings) == ["time-exempt-drift"]
        assert "__ghost__" in findings[0].message

    def test_unlisted_infra_package_is_flagged(self, monkeypatch):
        from repro.analysis import rules
        pruned = tuple(p for p in rules.TIME_EXEMPT_PREFIXES
                       if p != "serve/")
        monkeypatch.setattr(rules, "TIME_EXEMPT_PREFIXES", pruned)
        findings = rules.check_time_exemptions()
        assert findings and all(f.rule == "time-exempt-drift"
                                for f in findings)
        assert any("'serve'" in f.message for f in findings)


class TestDeterminismRegression:
    def test_metrics_stable_across_hash_seeds(self):
        """Pin PR 1's PYTHONHASHSEED fix: identical metrics under two
        adversarial interpreter hash seeds."""
        script = (
            "import json;"
            "from repro.config import SimConfig;"
            "from repro.harness.runner import run_workload;"
            "from repro.workloads import make_workload;"
            "m = run_workload(make_workload('bfs', graph='KR'),"
            "                 SimConfig(max_instructions=3000),"
            "                 technique='dvr');"
            "print(json.dumps(m.to_dict(), sort_keys=True))"
        )
        outputs = []
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep))
        for seed in ("0", "424242"):
            env["PYTHONHASHSEED"] = seed
            result = subprocess.run(
                [sys.executable, "-c", script], env=env,
                capture_output=True, text=True, timeout=300)
            assert result.returncode == 0, result.stderr
            outputs.append(result.stdout.strip())
        assert outputs[0] == outputs[1]
