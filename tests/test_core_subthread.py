"""Tests for the vector-runahead subthread: vectorization, gathers,
divergence/reconvergence, termination rules, and VRAT interaction."""

import random

import pytest

from repro.config import CoreConfig, DvrConfig, SimConfig
from repro.core.subthread import (FLOW_FIRST_LANE, FLOW_RECONVERGE,
                                  SubthreadStats, VectorSubthread)
from repro.isa import Assembler, GuestMemory
from repro.memsys import MemoryHierarchy, SRC_DVR
from repro.uarch.scheduler import IssuePorts


def make_env(program, mem, dvr_config=None, flow=FLOW_RECONVERGE):
    config = SimConfig()
    dvr_config = dvr_config or config.dvr
    hierarchy = MemoryHierarchy(config.memsys, config.stride_pf, config.imp,
                                mem)
    subthread = VectorSubthread(program, mem, hierarchy, config.core,
                                dvr_config, source=SRC_DVR, flow=flow,
                                stats=SubthreadStats())
    ports = IssuePorts(config.core)
    return subthread, hierarchy, ports


def run_subthread(subthread, ports, max_cycles=100_000):
    now = 0
    while not subthread.done and now < max_cycles:
        now += 1
        ports.new_cycle()
        subthread.step(now, ports)
        subthread.hierarchy.tick(now)
    return now


def chain_program(mem, n=1024, seed=3):
    """A[i] -> B[A[i]] -> C[B[..]]++ chain; returns (program, bases)."""
    rnd = random.Random(seed)
    base_a = mem.alloc_array([rnd.randrange(n) for _ in range(n)], "A")
    base_b = mem.alloc_array([rnd.randrange(n) for _ in range(n)], "B")
    base_c = mem.alloc_array([0] * n, "C")
    a = Assembler("chain")
    for name, reg in [("rA", 1), ("rB", 2), ("rC", 3), ("rI", 4), ("rN", 5),
                      ("rT", 6), ("rV", 7), ("rCnd", 8)]:
        a.alias(name, reg)
    a.li("rA", base_a)
    a.li("rB", base_b)
    a.li("rC", base_c)
    a.li("rI", 0)
    a.li("rN", n)
    a.label("loop")
    a.loadx("rT", "rA", "rI")      # pc 5: striding load
    a.loadx("rV", "rB", "rT")      # pc 6
    a.loadx("rT", "rC", "rV")      # pc 7: FLR
    a.addi("rT", "rT", 1)
    a.storex("rT", "rC", "rV")
    a.addi("rI", "rI", 1)
    a.cmplt("rCnd", "rI", "rN")
    a.bnz("rCnd", "loop")
    a.halt()
    regs = [0] * 32
    regs[1], regs[2], regs[3], regs[4], regs[5] = (base_a, base_b, base_c,
                                                   100, n)
    return a.build(), (base_a, base_b, base_c), regs


class TestSpawnAndGather:
    def test_spawn_initializes_lanes(self):
        mem = GuestMemory(32 * 1024 * 1024)
        program, bases, regs = chain_program(mem)
        subthread, _, _ = make_env(program, mem)
        assert subthread.spawn(5, 8, bases[0] + 800, regs, 32,
                               flr_pc=7)
        assert subthread.active == list(range(32))
        assert not subthread.done

    def test_stride_load_prefetches_future_lanes(self):
        mem = GuestMemory(32 * 1024 * 1024)
        program, bases, regs = chain_program(mem)
        subthread, hierarchy, ports = make_env(program, mem)
        subthread.spawn(5, 8, bases[0] + 100 * 8, regs, 16, flr_pc=7)
        run_subthread(subthread, ports)
        # Lane k fetched A + (100 + k + 1)*8.
        for k in (0, 15):
            line = (bases[0] + (100 + k + 1) * 8) >> 6
            assert (hierarchy.l1d.contains(line) or
                    hierarchy.l2.contains(line))

    def test_chain_levels_prefetched(self):
        mem = GuestMemory(32 * 1024 * 1024)
        program, bases, regs = chain_program(mem)
        subthread, hierarchy, ports = make_env(program, mem)
        subthread.spawn(5, 8, bases[0] + 100 * 8, regs, 16, flr_pc=7)
        run_subthread(subthread, ports)
        # Every lane's B and C lines must be resident.
        for k in range(16):
            a_val = mem.read_word(bases[0] + (101 + k) * 8)
            b_addr = bases[1] + a_val * 8
            assert hierarchy.l1d.contains(b_addr >> 6)
            b_val = mem.read_word(b_addr)
            c_addr = bases[2] + b_val * 8
            assert hierarchy.l1d.contains(c_addr >> 6)

    def test_flr_terminates_before_loop_tail(self):
        mem = GuestMemory(32 * 1024 * 1024)
        program, bases, regs = chain_program(mem)
        subthread, _, ports = make_env(program, mem)
        subthread.spawn(5, 8, bases[0] + 800, regs, 8, flr_pc=7)
        run_subthread(subthread, ports)
        # Instruction count: stride load, B load, C load -- then stop.
        assert subthread.stats.instructions == 3

    def test_terminate_at_stride_runs_whole_body(self):
        mem = GuestMemory(32 * 1024 * 1024)
        program, bases, regs = chain_program(mem)
        subthread, _, ports = make_env(program, mem)
        subthread.spawn(5, 8, bases[0] + 800, regs, 8,
                        flr_pc=-1, terminate_at_stride=True)
        run_subthread(subthread, ports)
        # loads + addi + (store skipped) + addi + cmp + bnz + stride again
        assert subthread.stats.instructions == 9

    def test_zero_lanes_never_starts(self):
        mem = GuestMemory(32 * 1024 * 1024)
        program, bases, regs = chain_program(mem)
        subthread, _, _ = make_env(program, mem)
        assert not subthread.spawn(5, 8, bases[0], regs, 0, flr_pc=7)
        assert subthread.done

    def test_out_of_bounds_lanes_masked(self):
        mem = GuestMemory(32 * 1024 * 1024)
        program, bases, regs = chain_program(mem)
        subthread, _, ports = make_env(program, mem)
        # Spawn near the end of guest memory: high lanes fault.
        subthread.spawn(5, 8, mem.size_bytes - 5 * 8, regs, 16, flr_pc=7)
        run_subthread(subthread, ports)
        assert subthread.done  # no crash; faulting lanes masked

    def test_dram_accesses_attributed_to_dvr(self):
        mem = GuestMemory(32 * 1024 * 1024)
        program, bases, regs = chain_program(mem)
        subthread, hierarchy, ports = make_env(program, mem)
        subthread.spawn(5, 8, bases[0] + 800, regs, 32, flr_pc=7)
        run_subthread(subthread, ports)
        assert hierarchy.stats.dram_accesses.get(SRC_DVR, 0) > 0


def divergent_program(mem, n=512, taken_fraction=0.5, seed=4):
    """Lanes branch on a loaded flag; each path loads a different array."""
    rnd = random.Random(seed)
    flags = [1 if rnd.random() < taken_fraction else 0 for _ in range(n)]
    base_f = mem.alloc_array(flags, "flags")
    base_x = mem.alloc_array(list(range(n)), "X")
    base_y = mem.alloc_array(list(range(n)), "Y")
    a = Assembler("divergent")
    for name, reg in [("rF", 1), ("rX", 2), ("rY", 3), ("rI", 4), ("rN", 5),
                      ("rT", 6), ("rV", 7), ("rCnd", 8)]:
        a.alias(name, reg)
    a.li("rF", base_f)
    a.li("rX", base_x)
    a.li("rY", base_y)
    a.li("rI", 0)
    a.li("rN", n)
    a.label("loop")
    a.loadx("rT", "rF", "rI")      # pc 5: striding load of per-lane flag
    a.bez("rT", "else")
    a.loadx("rV", "rX", "rI")      # taken path: X[i]
    a.jmp("join")
    a.label("else")
    a.loadx("rV", "rY", "rI")      # fall path: Y[i]
    a.label("join")
    a.addi("rI", "rI", 1)
    a.cmplt("rCnd", "rI", "rN")
    a.bnz("rCnd", "loop")
    a.halt()
    regs = [0] * 32
    regs[1], regs[2], regs[3], regs[4], regs[5] = (base_f, base_x, base_y,
                                                   0, n)
    return a.build(), flags, regs


class TestDivergence:
    def test_reconvergence_covers_both_paths(self):
        mem = GuestMemory(32 * 1024 * 1024)
        program, flags, regs = divergent_program(mem)
        subthread, _, ports = make_env(program, mem)
        subthread.spawn(5, 8, 64, regs, 32, flr_pc=-1,
                        terminate_at_stride=True)
        run_subthread(subthread, ports)
        assert subthread.stats.divergences >= 1
        assert subthread.reconv.pushes >= 1

    def test_first_lane_mode_drops_divergers(self):
        mem = GuestMemory(32 * 1024 * 1024)
        program, flags, regs = divergent_program(mem)
        subthread, _, ports = make_env(program, mem, flow=FLOW_FIRST_LANE)
        subthread.spawn(5, 8, 64, regs, 32, flr_pc=-1,
                        terminate_at_stride=True)
        run_subthread(subthread, ports)
        assert subthread.stats.divergences >= 1
        assert subthread.reconv.pushes == 0

    def test_reconverge_prefetches_more_than_first_lane(self):
        """DVR's divergence handling covers lanes VR throws away."""
        counts = {}
        for flow in (FLOW_RECONVERGE, FLOW_FIRST_LANE):
            mem = GuestMemory(32 * 1024 * 1024)
            program, flags, regs = divergent_program(mem)
            subthread, hierarchy, ports = make_env(program, mem, flow=flow)
            subthread.spawn(5, 8, 64, regs, 64, flr_pc=-1,
                            terminate_at_stride=True)
            run_subthread(subthread, ports)
            counts[flow] = subthread.stats.lane_loads_issued
        assert counts[FLOW_RECONVERGE] > counts[FLOW_FIRST_LANE]

    def test_uniform_branch_no_divergence(self):
        mem = GuestMemory(32 * 1024 * 1024)
        program, flags, regs = divergent_program(mem, taken_fraction=1.0)
        subthread, _, ports = make_env(program, mem)
        subthread.spawn(5, 8, 64, regs, 16, flr_pc=-1,
                        terminate_at_stride=True)
        run_subthread(subthread, ports)
        assert subthread.stats.divergences == 0


class TestResourceLimits:
    def test_timeout_bounds_execution(self):
        mem = GuestMemory(32 * 1024 * 1024)
        a = Assembler("spin")
        base = mem.alloc_array(list(range(1024)), "data")
        a.li("r1", base)
        a.li("r2", 0)
        a.label("loop")
        a.loadx("r3", "r1", "r2")   # pc 2: striding
        a.addi("r4", "r4", 1)
        a.jmp("inner_spin")
        a.label("inner_spin")
        a.addi("r4", "r4", 1)
        a.jmp("inner_spin")         # never returns to the stride pc
        program = a.build()
        regs = [0] * 32
        regs[1] = base
        config = DvrConfig(subthread_timeout=50)
        subthread, _, ports = make_env(program, mem, dvr_config=config)
        subthread.spawn(2, 8, base, regs, 8, flr_pc=-1,
                        terminate_at_stride=True)
        run_subthread(subthread, ports)
        assert subthread.stats.timeouts == 1
        assert subthread.stats.instructions <= 51

    def test_vrat_exhaustion_kills_invocation(self):
        """A chain with more than 8 distinct vector destinations exhausts
        the 128 vector physical registers (8 x 16)."""
        mem = GuestMemory(32 * 1024 * 1024)
        base = mem.alloc_array(list(range(4096)), "data")
        a = Assembler("wide")
        a.li("r1", base)
        a.li("r2", 0)
        a.label("loop")
        a.loadx("r3", "r1", "r2")         # striding; r3 vector (1)
        for k in range(9):                # r4..r12 all become vector
            a.addi(f"r{4 + k}", "r3", k)
        a.addi("r2", "r2", 1)
        a.jmp("loop")
        program = a.build()
        regs = [0] * 32
        regs[1] = base
        subthread, _, ports = make_env(program, mem)
        subthread.spawn(2, 8, base, regs, 16, flr_pc=-1,
                        terminate_at_stride=True)
        run_subthread(subthread, ports)
        assert subthread.stats.vrat_kills == 1
        assert subthread.done

    def test_issue_slots_respected(self):
        """With no spare slots the subthread makes no progress."""
        mem = GuestMemory(32 * 1024 * 1024)
        program, bases, regs = chain_program(mem)
        subthread, _, ports = make_env(program, mem)
        subthread.spawn(5, 8, bases[0] + 800, regs, 16, flr_pc=7)
        from repro.uarch.dynins import FU_ALU, FU_MEM
        for now in range(1, 50):
            ports.new_cycle()
            while ports.spare_slots > 0:  # main thread hogs everything
                ports.claim(FU_ALU if ports.can_issue(FU_ALU) else FU_MEM)
            subthread.step(now, ports)
        assert subthread.stats.lane_loads_issued == 0

    def test_release_allows_respawn(self):
        mem = GuestMemory(32 * 1024 * 1024)
        program, bases, regs = chain_program(mem)
        subthread, _, ports = make_env(program, mem)
        for _ in range(3):
            assert subthread.spawn(5, 8, bases[0] + 800, regs, 8, flr_pc=7)
            run_subthread(subthread, ports)
        assert subthread.stats.invocations == 3
