"""Tests for the TAGE-lite branch predictor."""

import random

from repro.branch.predictor import TagePredictor, _fold
from repro.config import BranchConfig


def make_predictor():
    return TagePredictor(BranchConfig())


def run_sequence(predictor, pc, outcomes):
    """Feed outcomes; return number of correct predictions."""
    correct = 0
    for taken in outcomes:
        prediction, info = predictor.predict(pc)
        if prediction == taken:
            correct += 1
        predictor.update(pc, taken, prediction, info)
    return correct


class TestFold:
    def test_fold_zero(self):
        assert _fold(0, 32, 10) == 0

    def test_fold_bounded(self):
        for history in (0x1234, 0xFFFFFFFF, 0xDEADBEEF):
            assert 0 <= _fold(history, 32, 10) < (1 << 10)

    def test_fold_depends_on_history(self):
        assert _fold(0b1010, 4, 10) != _fold(0b0101, 4, 10)


class TestLearning:
    def test_always_taken_branch(self):
        predictor = make_predictor()
        correct = run_sequence(predictor, 100, [True] * 200)
        assert correct >= 195

    def test_always_not_taken_branch(self):
        predictor = make_predictor()
        correct = run_sequence(predictor, 100, [False] * 200)
        assert correct >= 195

    def test_biased_branch(self):
        rng = random.Random(1)
        predictor = make_predictor()
        outcomes = [rng.random() < 0.9 for _ in range(2000)]
        correct = run_sequence(predictor, 100, outcomes)
        assert correct / len(outcomes) > 0.8

    def test_short_loop_pattern(self):
        """T T T N repeating (4-iteration loop) is TAGE's bread and
        butter: the tagged history tables should learn the loop exit."""
        predictor = make_predictor()
        outcomes = ([True, True, True, False] * 300)
        correct = run_sequence(predictor, 100, outcomes)
        assert correct / len(outcomes) > 0.9

    def test_alternating_pattern(self):
        predictor = make_predictor()
        outcomes = [bool(k % 2) for k in range(1000)]
        correct = run_sequence(predictor, 100, outcomes)
        assert correct / len(outcomes) > 0.9

    def test_random_branch_unlearnable(self):
        rng = random.Random(2)
        predictor = make_predictor()
        outcomes = [rng.random() < 0.5 for _ in range(2000)]
        correct = run_sequence(predictor, 100, outcomes)
        assert 0.35 < correct / len(outcomes) < 0.65

    def test_two_branches_do_not_destroy_each_other(self):
        predictor = make_predictor()
        for _ in range(300):
            for pc, taken in ((100, True), (104, False)):
                prediction, info = predictor.predict(pc)
                predictor.update(pc, taken, prediction, info)
        # Both should now predict correctly.
        for pc, taken in ((100, True), (104, False)):
            prediction, _ = predictor.predict(pc)
            assert prediction == taken


class TestBookkeeping:
    def test_counts(self):
        predictor = make_predictor()
        run_sequence(predictor, 100, [True, False, True])
        assert predictor.lookups == 3
        assert 0 <= predictor.mispredicts <= 3

    def test_mispredict_rate_zero_when_idle(self):
        assert make_predictor().mispredict_rate == 0.0
