"""Runtime sanitizer: bit-identical metrics, live assertions, wiring."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.analysis.sanitize import Sanitizer, SanitizerError
from repro.config import SimConfig, config_digest
from repro.harness.runner import build_sim, run_workload
from repro.workloads import make_workload


def _built(config, workload="bfs", **params):
    if workload == "bfs":
        params.setdefault("graph", "KR")
    return make_workload(workload, **params).build(
        memory_bytes=config.memsys.guest_memory_bytes, seed=12345)


def _measured_dict(metrics):
    """Metrics as a dict minus the config (which encodes the flag)."""
    data = metrics.to_dict()
    data.pop("config")
    return data


class TestBitIdenticalMetrics:
    @pytest.mark.parametrize("technique", ["ooo", "pre", "vr", "dvr"])
    def test_sanitize_does_not_change_metrics(self, technique):
        base = SimConfig(max_instructions=5_000).with_technique(technique)
        sanitized = SimConfig(max_instructions=5_000,
                              sanitize=True).with_technique(technique)
        workload = make_workload("bfs", graph="KR")
        plain = run_workload(workload, base)
        checked = run_workload(workload, sanitized)
        assert json.dumps(_measured_dict(plain), sort_keys=True) == \
            json.dumps(_measured_dict(checked), sort_keys=True)

    def test_sanitize_also_identical_without_fast_forward(self):
        workload = make_workload("camel")
        plain = run_workload(workload, SimConfig(
            max_instructions=4_000, fast_forward=False))
        checked = run_workload(workload, SimConfig(
            max_instructions=4_000, fast_forward=False, sanitize=True))
        assert _measured_dict(plain) == _measured_dict(checked)

    def test_sanitize_participates_in_config_digest(self):
        on = SimConfig(sanitize=True)
        off = SimConfig(sanitize=False)
        assert config_digest(on) != config_digest(off)


class TestWiring:
    def test_build_sim_attaches_sanitizer_everywhere(self):
        config = SimConfig(max_instructions=1_000,
                           sanitize=True).with_technique("dvr")
        core = build_sim(_built(config), config)
        assert isinstance(core.sanitizer, Sanitizer)
        assert core.hierarchy.sanitizer is core.sanitizer
        assert core.engine.subthread.sanitizer is core.sanitizer

    def test_build_sim_without_flag_has_no_sanitizer(self):
        config = SimConfig(max_instructions=1_000).with_technique("dvr")
        core = build_sim(_built(config), config)
        assert core.sanitizer is None
        assert core.hierarchy.sanitizer is None
        assert core.engine.subthread.sanitizer is None

    def test_hooks_actually_run(self):
        config = SimConfig(max_instructions=3_000,
                           sanitize=True).with_technique("dvr")
        core = build_sim(_built(config), config)
        core.run()
        assert core.sanitizer.checks > 1_000


class TestViolationsAreCaught:
    def _core(self, technique="ooo", **kwargs):
        config = SimConfig(max_instructions=3_000, sanitize=True,
                           **kwargs).with_technique(technique)
        return build_sim(_built(config), config)

    def test_mshr_leak(self):
        core = self._core()
        core.hierarchy.mshrs.allocations += 1
        with pytest.raises(SanitizerError, match="mshr.*leak"):
            core.run()

    def test_commit_monotonicity(self):
        core = self._core()
        # Rewind the sanitizer's view of commit order after some progress.
        core.run(max_instructions=100)
        core.sanitizer._last_commit_seq = 10 ** 9
        with pytest.raises(SanitizerError, match="commit order"):
            core.run(max_instructions=200)

    def test_rob_occupancy_bound(self):
        core = self._core()
        core.core_cfg.rob_size = -1     # any occupancy now violates
        with pytest.raises(SanitizerError, match="occupancy"):
            core.run()

    def test_queue_bound(self):
        core = self._core()
        core._iq_count = core.core_cfg.issue_queue_size + 1
        with pytest.raises(SanitizerError, match="issue-queue"):
            core.run(max_instructions=50)

    def test_fast_forward_hidden_writeback(self):
        core = self._core()
        # A jump target past the earliest scheduled writeback would
        # silently skip a completion event.
        core._writebacks = [(5, 0, None)]
        with pytest.raises(SanitizerError, match="writeback"):
            core.sanitizer.on_fast_forward(core, now=1, target=10)

    def test_fast_forward_over_ready_instruction(self):
        core = self._core()
        core._ready = [(0, object())]
        with pytest.raises(SanitizerError, match="ready"):
            core.sanitizer.on_fast_forward(core, now=1, target=10)

    def test_fast_forward_must_advance(self):
        core = self._core()
        with pytest.raises(SanitizerError, match="non-advancing"):
            core.sanitizer.on_fast_forward(core, now=10, target=10)

    def test_subthread_lane_bound(self):
        config = SimConfig(max_instructions=3_000,
                           sanitize=True).with_technique("dvr")
        core = build_sim(_built(config), config)
        sub = core.engine.subthread
        sub.active = list(range(sub.config.max_lanes + 1))
        with pytest.raises(SanitizerError, match="lanes"):
            core.sanitizer.on_subthread_step(sub)

    def test_vrat_free_list_bound(self):
        config = SimConfig(max_instructions=3_000,
                           sanitize=True).with_technique("dvr")
        core = build_sim(_built(config), config)
        core.engine.subthread.vrat._int_free = -1
        with pytest.raises(SanitizerError, match="vrat"):
            core.sanitizer.on_subthread_step(core.engine.subthread)


class TestSanitizeCli:
    def test_run_with_sanitize_flag(self, capsys):
        assert main(["run", "nas-is", "--instructions", "2000",
                     "--sanitize"]) == 0
        assert "IPC" in capsys.readouterr().out

    def test_bench_records_sanitize_overhead(self, tmp_path, monkeypatch,
                                             capsys):
        monkeypatch.setattr("repro.bench.harness.SCALE_INSTRUCTIONS",
                            {"smoke": 500, "small": 500, "full": 500})
        monkeypatch.setattr("repro.bench.harness.SMOKE_MATRIX",
                            (("nas-is", "ooo"),))
        # The full lanes sweep is its own (slow) benchmark; this test is
        # about the sanitize columns, so stub it out.
        monkeypatch.setattr(
            "repro.bench.harness.run_lanes_sweep",
            lambda **kwargs: {"lanes": kwargs.get("lanes"), "step": 2000,
                              "specs": 1, "templates": 1,
                              "wall_s_serial": 2.0, "wall_s_lanes": 1.0,
                              "lanes_speedup": 2.0, "identical": True})
        bench_dir = str(tmp_path / "benchmarks")
        assert main(["bench", "--scale", "smoke", "--repeats", "1",
                     "--label", "san", "--bench-dir", bench_dir]) == 0
        with open(f"{bench_dir}/BENCH_san.json") as handle:
            report = json.load(handle)
        assert report["schema"] == 3
        assert report["lanes_sweep"]["identical"] is True
        case = report["cases"][0]
        assert case["wall_s_sanitize"] > 0
        assert case["sanitize_overhead"] > 0
        assert report["totals"]["wall_s_sanitize"] > 0
        assert report["totals"]["sanitize_overhead"] > 0


class TestLedgerRecordsAnalysisFields:
    def test_ledger_entry_carries_sanitize_and_rules_version(self, tmp_path):
        from repro.analysis import ANALYSIS_VERSION
        from repro.jobs.ledger import RunLedger
        from repro.jobs.spec import JobSpec

        ledger = RunLedger(str(tmp_path / "runs.jsonl"))
        for sanitize in (False, True):
            spec = JobSpec(workload="nas-is", params={},
                           config=SimConfig(max_instructions=1_000,
                                            sanitize=sanitize),
                           seed=1, label="t")
            entry = ledger.record(spec, cache="miss", wall_s=0.1,
                                  worker="parent")
            assert entry["sanitize"] is sanitize
            assert entry["analysis_rules"] == ANALYSIS_VERSION
        records = RunLedger.read(str(tmp_path / "runs.jsonl"))
        assert [r["sanitize"] for r in records] == [False, True]
