"""Tests for graph generation and CSR construction."""

import numpy as np
import pytest

from repro.workloads.graphs import (GRAPH_INPUTS, GraphSpec, bfs_frontier,
                                    build_csr, degree_stats, pick_source,
                                    rmat_edges, uniform_edges)


class TestSpecs:
    def test_paper_inputs_present(self):
        for name in ("KR", "LJN", "ORK", "TW", "UR"):
            assert name in GRAPH_INPUTS

    def test_edge_counts(self):
        spec = GRAPH_INPUTS["KR"]
        assert spec.num_edges == spec.num_nodes * spec.avg_degree

    def test_ur_is_uniform_kr_is_rmat(self):
        assert GRAPH_INPUTS["UR"].kind == "uniform"
        assert GRAPH_INPUTS["KR"].kind == "rmat"


class TestCsr:
    def _csr(self, kind="rmat"):
        spec = GraphSpec("t", kind, 9, 8)
        return build_csr(spec, seed=99), spec

    @pytest.mark.parametrize("kind", ["rmat", "uniform"])
    def test_csr_well_formed(self, kind):
        (offsets, neighbors), spec = self._csr(kind)
        assert len(offsets) == spec.num_nodes + 1
        assert offsets[0] == 0
        assert offsets[-1] == len(neighbors) == spec.num_edges
        assert np.all(np.diff(offsets) >= 0)
        assert neighbors.min() >= 0
        assert neighbors.max() < spec.num_nodes

    def test_deterministic_per_seed(self):
        spec = GraphSpec("t2", "rmat", 9, 8)
        import repro.workloads.graphs as G
        G._csr_cache.clear()
        off1, ngh1 = build_csr(spec, seed=5)
        G._csr_cache.clear()
        off2, ngh2 = build_csr(spec, seed=5)
        assert np.array_equal(off1, off2)
        assert np.array_equal(ngh1, ngh2)

    def test_memoized(self):
        spec = GraphSpec("t3", "rmat", 9, 8)
        first = build_csr(spec, seed=6)
        second = build_csr(spec, seed=6)
        assert first[0] is second[0]

    def test_rmat_skewed_vs_uniform(self):
        """Power-law (RMAT) graphs have much larger max degree than
        uniform ones -- the property DVR's evaluation leans on."""
        rmat = degree_stats(build_csr(GraphSpec("s1", "rmat", 11, 16,
                                                a=0.6, b=0.17, c=0.17),
                                      seed=3)[0])
        uniform = degree_stats(build_csr(GraphSpec("s2", "uniform", 11, 16),
                                         seed=3)[0])
        assert rmat["max_degree"] > 4 * uniform["max_degree"]
        assert rmat["frac_small"] > uniform["frac_small"]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            build_csr(GraphSpec("bad", "mystery", 9, 8))


class TestGenerators:
    def test_uniform_edges_in_range(self):
        rng = np.random.default_rng(0)
        src, dst = uniform_edges(100, 1000, rng)
        assert src.max() < 100 and dst.max() < 100
        assert len(src) == len(dst) == 1000

    def test_rmat_edges_in_range(self):
        rng = np.random.default_rng(0)
        src, dst = rmat_edges(8, 1000, rng, 0.57, 0.19, 0.19)
        assert src.max() < 256 and dst.max() < 256


class TestRoiHelpers:
    def test_pick_source_has_degree(self):
        offsets, neighbors = build_csr(GraphSpec("t4", "rmat", 9, 8), seed=4)
        source = pick_source(offsets)
        assert offsets[source + 1] - offsets[source] >= 2

    def test_bfs_frontier_returns_unvisited_level(self):
        offsets, neighbors = build_csr(GraphSpec("t5", "rmat", 10, 8),
                                       seed=4)
        source = pick_source(offsets)
        visited, frontier = bfs_frontier(offsets, neighbors, source,
                                         min_frontier=32)
        visited_set = set(visited.tolist())
        # Frontier vertices are visited (discovered) and distinct.
        assert set(frontier.tolist()) <= visited_set
        assert len(set(frontier.tolist())) == len(frontier)

    def test_bfs_frontier_source_visited(self):
        offsets, neighbors = build_csr(GraphSpec("t6", "rmat", 9, 8), seed=4)
        visited, _ = bfs_frontier(offsets, neighbors, 0)
        assert 0 in set(visited.tolist())
