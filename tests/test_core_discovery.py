"""Tests for Discovery Mode driven by a real core on real kernels."""

import pytest

from repro.config import SimConfig
from repro.core.discovery import DiscoveryMode, DiscoveryResult
from repro.core.dvr import DvrEngine
from repro.harness.runner import run_built
from repro.memsys import MemoryHierarchy
from repro.uarch import OoOCore
from repro.workloads.gap import Bfs
from tests.conftest import build_chain_workload


class RecordingDvr(DvrEngine):
    """DVR engine that records discovery results and suppresses spawning
    (so Discovery Mode runs repeatedly for inspection)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.results = []

    def _spawn(self, result, dyn, core):
        self.results.append(result)


def discover(built, max_instructions=4000):
    config = SimConfig(max_instructions=max_instructions,
                       technique="dvr")
    hierarchy = MemoryHierarchy(config.memsys, config.stride_pf, config.imp,
                                built.memory)
    engine = RecordingDvr(config, built.program, built.memory, hierarchy)
    core = OoOCore(built.program, built.memory, config, hierarchy,
                   engine=engine)
    core.run()
    return engine


class TestDiscoveryOnChain:
    def test_discovers_dependent_chain(self, chain_workload):
        engine = discover(chain_workload)
        assert engine.results, "discovery never completed"
        result = engine.results[0]
        assert result.has_dependent_load
        assert result.flr_pc >= 0

    def test_flr_is_last_dependent_load(self, chain_workload):
        engine = discover(chain_workload)
        result = engine.results[0]
        program = chain_workload.program
        flr_ins = program.instructions[result.flr_pc]
        assert flr_ins.is_load
        # In the chain kernel, the FLR load is deeper than the stride load.
        assert result.flr_pc > result.stride_pc

    def test_loop_bound_inferred(self, chain_workload):
        engine = discover(chain_workload)
        result = engine.results[0]
        assert result.loop_bound.found
        assert result.loop_bound.increment == 1

    def test_stride_detected(self, chain_workload):
        engine = discover(chain_workload)
        result = engine.results[0]
        assert result.stride == 8  # A[i] walks 8 bytes per iteration

    def test_single_backward_branch_keeps_flr_termination(self,
                                                          chain_workload):
        engine = discover(chain_workload)
        result = engine.results[0]
        # The chain kernel's only branch is the loop branch, so the
        # footnote rule does not fire: terminate at the FLR.
        assert not result.terminate_at_stride


class TestDiscoveryOnBfs:
    def test_switches_to_innermost_stride(self, tiny_graph):
        built = Bfs(graph=tiny_graph).build(memory_bytes=64 * 1024 * 1024)
        engine = discover(built, max_instructions=6000)
        assert engine.results
        result = engine.results[0]
        # The inner striding load in the BFS kernel is neighbors[j]; the
        # worklist load is the outer one.  Find both loads' pcs.
        program = built.program
        loadx_pcs = [ins.pc for ins in program if ins.is_load]
        # neighbors[j] is the load at the "inner" label: it follows the
        # worklist/offsets loads in program order.
        assert result.stride_pc == max(
            pc for pc in loadx_pcs
            if program.instructions[pc].rs1 ==
            program.instructions[result.stride_pc].rs1)

    def test_divergence_forces_stride_termination(self, tiny_graph):
        """BFS has the visited[] branch between the FLR and the LCR, so
        the footnote rule applies: lanes run to the next stride PC."""
        built = Bfs(graph=tiny_graph).build(memory_bytes=64 * 1024 * 1024)
        engine = discover(built, max_instructions=6000)
        result = engine.results[0]
        assert result.terminate_at_stride

    def test_bound_registers_match_inner_loop(self, tiny_graph):
        built = Bfs(graph=tiny_graph).build(memory_bytes=64 * 1024 * 1024)
        engine = discover(built, max_instructions=6000)
        result = engine.results[0]
        assert result.loop_bound.found
        assert result.loop_bound.increment == 1


class TestDiscoveryLifecycle:
    def test_abort_on_runaway(self, chain_workload):
        """A 'loop' that never re-reaches the striding load aborts."""
        from repro.core.stride_detector import StrideDetector
        from repro.config import DvrConfig
        config = DvrConfig()
        detector = StrideDetector(config)
        for k in range(4):
            detector.observe(99, 0x1000 + 8 * k)

        class FakeCore:
            regs = [0] * 32

        discovery = DiscoveryMode(config, detector, target_pc=99,
                                  seed_reg=1, entry_regs=[0] * 32)
        from repro.isa.instructions import Instruction, Op

        class Dyn:
            ins = Instruction(Op.ADDI, rd=1, rs1=1, imm=1, pc=5)

        outcome = None
        for _ in range(10_000):
            outcome = discovery.observe(Dyn(), FakeCore())
            if outcome is not None:
                break
        assert outcome == "abort"

    def test_no_dependent_chain_skips_spawn(self):
        """A striding load with no dependent loads must not trigger DVR
        (the stride prefetcher already covers it)."""
        from repro.isa import Assembler, GuestMemory
        from repro.workloads.base import BuiltWorkload
        mem = GuestMemory(16 * 1024 * 1024)
        base = mem.alloc_array(list(range(8192)), "data")
        a = Assembler("streaming")
        a.li("r1", base)
        a.li("r2", 0)
        a.label("loop")
        a.loadx("r3", "r1", "r2")
        a.add("r4", "r4", "r3")
        a.addi("r2", "r2", 1)
        a.cmplti("r5", "r2", 8000)
        a.bnz("r5", "loop")
        a.halt()
        built = BuiltWorkload("streaming", a.build(), mem)
        config = SimConfig(max_instructions=3000, technique="dvr")
        metrics = run_built(built, config)
        assert metrics.engine_stats["dvr_no_dependent_chain"] > 0
        assert metrics.engine_stats["dvr_spawns"] == 0
