"""DAG execution tests: bit-identity vs the legacy figure pipelines,
artifact caching, subgraph invalidation, dry runs, ledger provenance.

These run real (tiny) simulations: two hpc-db kernels at a 1.5k-2k
instruction budget, so a whole figure DAG is a handful of seconds.
"""

import json
import os

import pytest

import repro.jobs as jobs
from repro.harness.experiments import (ExperimentScale, fig2_rob_sweep,
                                       fig7_performance, fig12_dvr_rob)
from repro.jobs.ledger import RunLedger
from repro.specs import DagRunner, concretize, run_spec_file

SPECS_DIR = os.path.join(os.path.dirname(__file__), "..", "specs")


@pytest.fixture(scope="module")
def tiny_scale():
    return ExperimentScale(gap_graphs=(), hpcdb=("kangaroo", "nas-is"),
                           max_instructions=1_500)


@pytest.fixture
def fresh_context(tmp_path):
    """A private cache/ledger/artifact root, installed process-wide."""
    context = jobs.ExecutionContext(cache_dir=str(tmp_path / "cache"),
                                    store="")
    jobs.set_context(context)
    yield context
    jobs.set_context(None)


def fig7_doc():
    """The fig7 spec as a dict (same content as specs/fig7.toml)."""
    return {
        "spec": {"name": "fig7"},
        "matrix": {"name": "grid", "workloads": "scale",
                   "techniques": ["ooo", "pre", "imp", "vr", "dvr",
                                  "oracle"]},
        "analysis": {"table": {
            "fn": "speedup_table", "needs": ["grid"],
            "args": {"baseline": "ooo",
                     "columns": ["pre", "imp", "vr", "dvr", "oracle"],
                     "title": "Figure 7: speedup over the baseline OoO core",
                     "headers": ["benchmark", "pre", "imp", "vr", "dvr",
                                 "oracle"],
                     "notes": "Paper: DVR 2.4x h-mean (up to 6.4x); "
                              "VR ~1.2x; PRE ~1x."}}},
    }


def assert_tables_equal(spec_table, legacy):
    assert spec_table.rows == [list(row) for row in legacy.rows]
    assert spec_table.headers == list(legacy.headers)
    assert spec_table.name == legacy.name
    assert spec_table.notes == legacy.notes


class TestBitIdentity:
    def test_fig7_spec_matches_legacy(self, tiny_scale, fresh_context):
        legacy = fig7_performance(tiny_scale)
        result = run_spec_file(fig7_doc(), scale=tiny_scale,
                               context=fresh_context)
        assert_tables_equal(result.tables["table"], legacy)

    def test_fig2_spec_matches_legacy(self, tiny_scale, fresh_context):
        legacy = fig2_rob_sweep(tiny_scale)
        result = run_spec_file(os.path.join(SPECS_DIR, "fig2.toml"),
                               scale=tiny_scale, context=fresh_context)
        assert_tables_equal(result.tables["table"], legacy)

    def test_fig12_spec_matches_legacy(self, tiny_scale, fresh_context):
        legacy = fig12_dvr_rob(tiny_scale)
        result = run_spec_file(os.path.join(SPECS_DIR, "fig12.toml"),
                               scale=tiny_scale, context=fresh_context)
        assert_tables_equal(result.tables["table"], legacy)


class TestArtifactCache:
    def test_second_run_serves_artifacts(self, tiny_scale, fresh_context):
        dag = concretize(fig7_doc(), scale=tiny_scale)
        first = DagRunner(dag, context=fresh_context).run()
        assert first.stats["analyses_computed"] == 1
        assert first.stats["artifact_hits"] == 0
        second = DagRunner(dag, context=fresh_context).run()
        assert second.stats["analyses_computed"] == 0
        assert second.stats["artifact_hits"] == 1
        assert second.tables["table"].rows == first.tables["table"].rows
        assert second.artifacts == first.artifacts

    def test_knob_edit_recomputes_only_affected(self, tiny_scale,
                                                fresh_context):
        def doc(mshrs):
            return {
                "spec": {"name": "local"},
                "matrix": [
                    {"name": "a", "workloads": "scale",
                     "techniques": ["ooo", "dvr"],
                     "knobs": {"memsys.l1d_mshrs": [mshrs]}},
                    {"name": "b", "workloads": "scale",
                     "techniques": ["ooo", "vr"]},
                ],
                "analysis": {
                    "ta": {"fn": "speedup_table", "needs": ["a"],
                           "args": {"columns": ["dvr"]}},
                    "tb": {"fn": "speedup_table", "needs": ["b"],
                           "args": {"columns": ["vr"]}},
                },
            }
        first = DagRunner(concretize(doc(8), scale=tiny_scale),
                          context=fresh_context).run()
        assert first.stats["analyses_computed"] == 2

        # Edit one knob: only group a's 4 sims and analysis ta re-run;
        # group b's sims are cache hits and tb is an artifact hit.
        edited = DagRunner(concretize(doc(4), scale=tiny_scale),
                           context=fresh_context).run()
        assert edited.stats["analyses_computed"] == 1
        assert edited.stats["artifact_hits"] == 1
        assert edited.tables["tb"].rows == first.tables["tb"].rows

        records = RunLedger.read(fresh_context.ledger_path)
        executed = [r for r in records if r.get("cache") in ("miss", "off")]
        hits = [r for r in records if r.get("cache") == "hit"]
        # 8 sims executed in the first run + the 4 re-keyed sims of
        # group a; group b's 4 sims are served from cache.
        assert len(executed) == 12
        assert len(hits) == 4

    def test_dry_run_executes_nothing(self, tiny_scale, fresh_context):
        dag = concretize(fig7_doc(), scale=tiny_scale)
        runner = DagRunner(dag, context=fresh_context)
        preview = runner.dry_run()
        assert preview["sim_total"] == 12 and preview["sim_cached"] == 0
        assert preview["analysis_total"] == 1
        assert preview["artifact_cached"] == 0
        assert not RunLedger.read(fresh_context.ledger_path)

        text = runner.render_dry_run(preview)
        assert "12 sim" in text and "dry run: nothing executed" in text
        assert "level 0" in text and "table" in text

        runner.run()
        warmed = DagRunner(dag, context=fresh_context).dry_run()
        assert warmed["sim_cached"] == 12
        assert warmed["artifact_cached"] == 1


class TestProvenance:
    def test_ledger_records_dag_meta_row(self, tiny_scale, fresh_context):
        dag = concretize(fig7_doc(), scale=tiny_scale)
        DagRunner(dag, context=fresh_context).run()
        meta = [record for record
                in RunLedger.read(fresh_context.ledger_path)
                if record.get("meta") == "dag"]
        assert len(meta) == 1
        row = meta[0]
        assert row["spec"] == "fig7"
        assert row["spec_sha256"] == dag.spec.digest
        assert row["dag_hash"] == dag.dag_hash
        assert row["concretizer_version"] == dag.stats()[
            "concretizer_version"]
        assert row["nodes"] == 13 and row["sim_nodes"] == 12
        assert sorted(row["sim_keys"]) == sorted(
            node.job.key for node in dag.sim_nodes.values())

    def test_report_attributes_jobs_to_dag(self, tiny_scale, fresh_context):
        from repro.harness.ledger_report import (render_ledger_report,
                                                 summarize_ledger)
        DagRunner(concretize(fig7_doc(), scale=tiny_scale),
                  context=fresh_context).run()
        summary = summarize_ledger(fresh_context.ledger_path)
        assert len(summary["dags"]) == 1
        assert summary["dags"][0]["spec"] == "fig7"
        assert summary["dags"][0]["completed"] == 12
        text = render_ledger_report(summary)
        assert "dag fig7" in text and "12/12 sim(s) completed" in text


class TestScenarioSpec:
    def test_mere_style_sweep_without_engine_code(self, fresh_context):
        doc = {
            "spec": {"name": "mini-mere"},
            "matrix": {
                "name": "grid",
                "workloads": [{"workload": "kangaroo"}],
                "techniques": ["ooo", "dvr"],
                "knobs": {"core.rob_size": [16, 32],
                          "memsys.l1d_mshrs": [4, 8]},
                "exclude": [{"core.rob_size": 16,
                             "memsys.l1d_mshrs": 8}],
            },
            "analysis": {
                "speedup": {"fn": "knob_sweep", "needs": ["grid"],
                            "args": {"knobs": ["core.rob_size",
                                               "memsys.l1d_mshrs"],
                                     "techniques": ["dvr"]}},
                "mlp": {"fn": "knob_sweep", "needs": ["grid"],
                        "args": {"knobs": ["core.rob_size",
                                           "memsys.l1d_mshrs"],
                                 "techniques": ["ooo", "dvr"],
                                 "mode": "mean", "metric": "mlp"}},
            },
        }
        scale = ExperimentScale(max_instructions=1_500)
        result = run_spec_file(doc, scale=scale, context=fresh_context)
        speedup = result.tables["speedup"]
        # 2x2 combos minus the excluded corner.
        assert len(speedup.rows) == 3
        assert [row[:2] for row in speedup.rows] == [[16, 4], [32, 4],
                                                     [32, 8]]
        assert all(row[2] > 0 for row in speedup.rows)
        mlp = result.tables["mlp"]
        assert len(mlp.rows) == 3
        assert all(value > 0 for row in mlp.rows for value in row[2:])
        assert "mini-mere" not in result.render()   # titles, not spec name
        assert speedup.name in result.render()


class TestOutputs:
    def test_artifacts_are_json_clean(self, tiny_scale, fresh_context):
        result = run_spec_file(fig7_doc(), scale=tiny_scale,
                               context=fresh_context)
        artifact = result.artifacts["table"]
        assert json.loads(json.dumps(artifact)) == artifact
        assert set(artifact) == {"title", "headers", "rows", "notes"}

    def test_render_joins_tables_in_topological_order(self, tiny_scale,
                                                      fresh_context):
        result = run_spec_file(fig7_doc(), scale=tiny_scale,
                               context=fresh_context)
        assert result.render().startswith(
            "Figure 7: speedup over the baseline OoO core")
