"""Tests for the ``repro.jobs`` execution engine.

Covers: JobSpec content hashing, Metrics serialization round-trips, the
disk result cache (including byte-identical hits), the JSONL run ledger,
executor deduplication and crash retry, and the determinism guarantee --
the same spec run serially, on a process pool, or from cache yields
identical metrics.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.config import (SimConfig, TECH_DVR, TECH_OOO, config_digest,
                          config_from_dict, config_to_dict)
from repro.harness.metrics import Metrics
from repro.harness.runner import run_spec
from repro.jobs import (ExecutionContext, Executor, JobError, JobSpec,
                        NullCache, ResultCache, RunLedger, code_salt,
                        run_specs)


def _spec(workload="nas-is", technique=TECH_OOO, seed=12345,
          max_instructions=2_000, **params):
    config = SimConfig(max_instructions=max_instructions
                       ).with_technique(technique)
    return JobSpec(workload=workload, params=params, config=config,
                   seed=seed)


class TestConfigHashing:
    def test_digest_stable_for_equal_configs(self):
        assert config_digest(SimConfig()) == config_digest(SimConfig())

    def test_digest_sensitive_to_any_field(self):
        base = SimConfig()
        assert config_digest(base) != config_digest(base.with_rob(128))
        assert config_digest(base) != config_digest(
            base.with_technique(TECH_DVR))

    def test_round_trip(self):
        config = SimConfig(max_instructions=123).with_technique(TECH_DVR)
        rebuilt = config_from_dict(
            SimConfig, json.loads(json.dumps(config_to_dict(config))))
        assert rebuilt == config
        assert config_digest(rebuilt) == config_digest(config)

    def test_tuple_fields_survive_json(self):
        config = SimConfig()
        rebuilt = config_from_dict(
            SimConfig, json.loads(json.dumps(config_to_dict(config))))
        assert rebuilt.branch.history_lengths == (4, 8, 16, 32)


class TestJobSpec:
    def test_equal_specs_share_key(self):
        assert _spec().key == _spec().key

    def test_key_ignores_label(self):
        a, b = _spec(), _spec()
        object.__setattr__(b, "label", "renamed")
        assert a.key == b.key

    def test_key_varies_with_seed_config_params_workload(self):
        keys = {_spec().key, _spec(seed=99).key,
                _spec(technique=TECH_DVR).key, _spec(workload="camel").key,
                _spec(max_instructions=999).key}
        assert len(keys) == 5

    def test_graph_params_fingerprinted(self):
        from repro.workloads.graphs import GRAPH_INPUTS, GraphSpec
        name = "JOBSG"
        GRAPH_INPUTS[name] = GraphSpec(name, "rmat", 9, 8)
        try:
            small = _spec(workload="bfs", graph=name)
            GRAPH_INPUTS[name] = GraphSpec(name, "rmat", 10, 8)
            big = _spec(workload="bfs", graph=name)
        finally:
            GRAPH_INPUTS.pop(name, None)
        assert small.inputs["graph"]["log2_nodes"] == 9
        assert small.key != big.key

    def test_dict_round_trip(self):
        spec = _spec(technique=TECH_DVR, seed=7)
        rebuilt = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt.key == spec.key
        assert rebuilt.config == spec.config
        assert rebuilt.label == spec.label


class TestMetricsRoundTrip:
    @pytest.fixture(scope="class")
    def metrics(self):
        return run_spec(_spec(technique=TECH_DVR))

    def test_to_dict_is_json_serializable(self, metrics):
        json.dumps(metrics.to_dict())

    def test_round_trip_preserves_everything(self, metrics):
        rebuilt = Metrics.from_dict(
            json.loads(json.dumps(metrics.to_dict())))
        assert rebuilt.cycles == metrics.cycles
        assert rebuilt.ipc == metrics.ipc
        assert rebuilt.mpki == metrics.mpki
        assert rebuilt.dram_accesses == metrics.dram_accesses
        assert rebuilt.timeliness == metrics.timeliness
        assert rebuilt.engine_stats == metrics.engine_stats
        assert rebuilt.cpi_stack == metrics.cpi_stack
        assert rebuilt.config == metrics.config
        # Derived methods keep working on the rebuilt object.
        assert rebuilt.speedup_over(metrics) == 1.0
        assert rebuilt.dram_split() == metrics.dram_split()

    def test_round_trip_is_lossless_fixpoint(self, metrics):
        once = metrics.to_dict()
        twice = Metrics.from_dict(once).to_dict()
        assert json.dumps(once, sort_keys=True) == \
            json.dumps(twice, sort_keys=True)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = _spec()
        assert cache.get(spec) is None
        metrics = run_spec(spec)
        cache.put(spec, metrics)
        assert cache.get(spec).cycles == metrics.cycles
        assert cache.hits == 1 and cache.misses == 1

    def test_hit_is_byte_identical(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = _spec()
        metrics = run_spec(spec)
        cache.put(spec, metrics)
        original = json.dumps(metrics.to_dict(), sort_keys=True)
        cached = json.dumps(cache.get(spec).to_dict(), sort_keys=True)
        assert cached == original

    def _entry_path(self, cache, spec):
        return os.path.join(cache.results_dir, f"{spec.key}.json")

    def test_garbage_bytes_degrade_to_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = _spec()
        cache.put(spec, run_spec(spec))
        with open(self._entry_path(cache, spec), "wb") as handle:
            handle.write(b"\xff\x00 not json")
        with pytest.warns(RuntimeWarning, match="undecodable JSON"):
            assert cache.get(spec) is None
        assert cache.corrupt == 1
        # The damaged file is discarded so the next put replaces it.
        assert not os.path.exists(self._entry_path(cache, spec))

    def test_checksum_mismatch_degrades_to_miss(self, tmp_path):
        """Edited metrics under valid JSON must never be served."""
        cache = ResultCache(str(tmp_path))
        spec = _spec()
        cache.put(spec, run_spec(spec))
        path = self._entry_path(cache, spec)
        with open(path) as handle:
            payload = json.load(handle)
        payload["metrics"]["cycles"] += 1       # silently-wrong-data bait
        with open(path, "w") as handle:
            json.dump(payload, handle)
        with pytest.warns(RuntimeWarning, match="checksum mismatch"):
            assert cache.get(spec) is None
        assert cache.corrupt == 1

    def test_unrebuildable_metrics_degrade_to_miss(self, tmp_path):
        """A correct checksum over a bogus schema still ends in a miss."""
        from repro.jobs import metrics_checksum
        cache = ResultCache(str(tmp_path))
        spec = _spec()
        cache.put(spec, run_spec(spec))
        bogus = {"nope": True}
        with open(self._entry_path(cache, spec), "w") as handle:
            json.dump({"spec": spec.to_dict(), "metrics": bogus,
                       "sha256": metrics_checksum(bogus)}, handle)
        with pytest.warns(RuntimeWarning, match="schema mismatch"):
            assert cache.get(spec) is None
        assert cache.corrupt == 1

    def test_salt_partitions_generations(self, tmp_path):
        spec = _spec()
        metrics = run_spec(spec)
        old = ResultCache(str(tmp_path), salt="oldcode")
        old.put(spec, metrics)
        new = ResultCache(str(tmp_path), salt="newcode")
        assert new.get(spec) is None

    def test_stats_and_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path), salt="s1")
        spec = _spec()
        cache.put(spec, run_spec(spec))
        stats = cache.stats()
        assert stats["generations"]["s1"]["entries"] == 1
        assert stats["generations"]["s1"]["bytes"] > 0
        assert cache.clear() == 1
        assert cache.stats()["generations"] == {}

    def test_code_salt_stable_in_process(self):
        assert code_salt() == code_salt()
        assert len(code_salt()) == 12

    def test_prune_drops_only_stale_generations(self, tmp_path):
        spec = _spec()
        metrics = run_spec(spec)
        stale = ResultCache(str(tmp_path), salt="oldcode")
        stale.put(spec, metrics)
        current = ResultCache(str(tmp_path), salt="newcode")
        current.put(spec, metrics)
        assert current.prune() == 1
        stats = current.stats()
        assert list(stats["generations"]) == ["newcode"]
        assert current.get(spec).cycles == metrics.cycles

    def test_prune_empty_cache_is_noop(self, tmp_path):
        cache = ResultCache(str(tmp_path), salt="s1")
        assert cache.prune() == 0
        assert cache.prune_to_bytes(0) == 0

    def _aged_entries(self, tmp_path, seeds):
        """A cache with one entry per seed, mtimes increasing with seed."""
        cache = ResultCache(str(tmp_path), salt="s1")
        for age, seed in enumerate(seeds):
            spec = _spec(seed=seed)
            cache.put(spec, run_spec(spec))
            os.utime(os.path.join(cache.results_dir, f"{spec.key}.json"),
                     (1_000 + age, 1_000 + age))
        return cache

    def test_prune_to_bytes_evicts_oldest_first(self, tmp_path):
        cache = self._aged_entries(tmp_path, seeds=(1, 2, 3))
        sizes = {name: os.path.getsize(os.path.join(cache.results_dir, name))
                 for name in os.listdir(cache.results_dir)}
        budget = sum(sizes.values()) - 1          # force exactly one eviction
        assert cache.prune_to_bytes(budget) == 1
        survivors = os.listdir(cache.results_dir)
        assert len(survivors) == 2
        # The evicted entry is the oldest one (mtime 1000): seed 1.
        evicted_key = _spec(seed=1).key
        assert f"{evicted_key}.json" not in survivors
        assert cache.get(_spec(seed=3)) is not None

    def test_prune_to_bytes_zero_budget_clears_generation(self, tmp_path):
        cache = self._aged_entries(tmp_path, seeds=(1, 2))
        assert cache.prune_to_bytes(0) == 2
        assert os.listdir(cache.results_dir) == []

    def test_prune_to_bytes_under_budget_is_noop(self, tmp_path):
        cache = self._aged_entries(tmp_path, seeds=(1, 2))
        assert cache.prune_to_bytes(10 * 1024 * 1024) == 0
        assert len(os.listdir(cache.results_dir)) == 2

    def test_prune_to_bytes_ignores_stale_generations(self, tmp_path):
        spec = _spec()
        metrics = run_spec(spec)
        stale = ResultCache(str(tmp_path), salt="oldcode")
        stale.put(spec, metrics)
        current = ResultCache(str(tmp_path), salt="newcode")
        current.put(spec, metrics)
        assert current.prune_to_bytes(0) == 1     # current entry only
        assert stale.get(spec) is not None        # stale gen untouched


class TestRunLedger:
    def test_records_round_trip(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        ledger = RunLedger(path)
        spec = _spec()
        metrics = run_spec(spec)
        ledger.record(spec, cache="miss", wall_s=1.5, worker=123,
                      metrics=metrics)
        ledger.record(spec, cache="hit", wall_s=0.001, worker="parent")
        records = RunLedger.read(path)
        assert len(records) == 2
        assert records[0]["key"] == spec.key
        assert records[0]["cache"] == "miss"
        assert records[0]["ipc"] == pytest.approx(metrics.ipc, abs=1e-5)
        assert records[0]["worker"] == 123
        assert records[1]["cache"] == "hit"
        assert [r["seq"] for r in records] == [0, 1]

    def test_read_missing_file(self, tmp_path):
        assert RunLedger.read(str(tmp_path / "nope.jsonl")) == []

    def test_read_skips_truncated_trailing_line(self, tmp_path):
        """A crash mid-append must not make the whole ledger unreadable."""
        path = str(tmp_path / "runs.jsonl")
        ledger = RunLedger(path)
        spec = _spec()
        ledger.record(spec, cache="miss", wall_s=1.0, worker=1)
        ledger.record(spec, cache="hit", wall_s=0.001, worker="parent")
        with open(path) as handle:
            intact = handle.read()
        with open(path, "w") as handle:
            handle.write(intact + intact.splitlines()[0][:37])  # torn append
        with pytest.warns(RuntimeWarning, match="corrupt ledger record"):
            records = RunLedger.read(path)
        assert len(records) == 2
        assert [record["cache"] for record in records] == ["miss", "hit"]

    def test_meta_records_are_invisible_to_job_readers(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        ledger = RunLedger(path)
        spec = _spec()
        ledger.record_meta("chaos-plan", seed=7, plan={"rules": []})
        ledger.record(spec, cache="miss", wall_s=1.0, worker=1,
                      metrics=run_spec(spec))
        records = RunLedger.read(path)
        assert records[0]["meta"] == "chaos-plan"
        assert "key" not in records[0] and "status" not in records[0]
        assert list(RunLedger.completed_index(path)) == [spec.key]

    def test_completed_index_tracks_latest_status(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        ledger = RunLedger(path)
        done, flaky = _spec(seed=1), _spec(seed=2)
        metrics = run_spec(done)
        ledger.record(done, cache="miss", wall_s=1.0, worker=1,
                      metrics=metrics)
        ledger.record(flaky, cache="miss", wall_s=1.0, worker=1,
                      metrics=metrics)
        ledger.record(flaky, cache="miss", wall_s=1.0, worker=1,
                      status="failed", error="boom")
        completed = RunLedger.completed_index(path)
        assert set(completed) == {done.key}     # later failure pops the key
        assert completed[done.key]["ipc"] == pytest.approx(metrics.ipc,
                                                           abs=1e-5)

    def test_record_carries_cost_model_features(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        spec = _spec()
        RunLedger(path).record(spec, cache="miss", wall_s=1.0, worker=1,
                               retries=2)
        record = RunLedger.read(path)[0]
        assert record["retries"] == 2
        assert record["max_instructions"] == spec.config.max_instructions
        assert record["config_digest"] == config_digest(spec.config)


class TestExecutor:
    def _executor(self, tmp_path, jobs=1):
        return Executor(jobs=jobs, cache=ResultCache(str(tmp_path)),
                        ledger=RunLedger(str(tmp_path / "runs.jsonl")))

    def test_results_align_with_input_order(self, tmp_path):
        specs = [_spec(workload="nas-is"), _spec(workload="kangaroo"),
                 _spec(workload="nas-is", technique=TECH_DVR)]
        results = self._executor(tmp_path).run(specs)
        assert [m.workload for m in results] == ["nas-is", "kangaroo",
                                                 "nas-is"]
        assert results[2].technique == TECH_DVR

    def test_duplicate_specs_simulated_once(self, tmp_path):
        specs = [_spec(), _spec(), _spec()]
        results = self._executor(tmp_path).run(specs)
        ledger = RunLedger.read(str(tmp_path / "runs.jsonl"))
        assert len(ledger) == 1          # one simulation for three requests
        assert len({id(m) for m in results}) == 1  # repro: allow(nondet-id)

    def test_second_run_all_cache_hits(self, tmp_path):
        specs = [_spec(), _spec(technique=TECH_DVR)]
        executor = self._executor(tmp_path)
        cold = executor.run(specs)
        warm = self._executor(tmp_path).run(specs)
        ledger = RunLedger.read(str(tmp_path / "runs.jsonl"))
        assert [r["cache"] for r in ledger] == ["miss", "miss", "hit", "hit"]
        for before, after in zip(cold, warm):
            assert after.cycles == before.cycles
            assert after.ipc == before.ipc

    def test_crash_retries_once_then_succeeds(self, tmp_path, monkeypatch):
        import repro.harness.runner as runner_mod
        real = runner_mod.run_spec
        calls = {"n": 0}

        def flaky(spec):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("simulated worker crash")
            return real(spec)

        monkeypatch.setattr(runner_mod, "run_spec", flaky)
        results = self._executor(tmp_path).run([_spec()])
        assert results[0].cycles > 0
        ledger = RunLedger.read(str(tmp_path / "runs.jsonl"))
        assert ledger[-1]["status"] == "retried"

    def test_persistent_crash_raises_job_error(self, tmp_path, monkeypatch):
        import repro.harness.runner as runner_mod

        def broken(spec):
            raise RuntimeError("always broken")

        monkeypatch.setattr(runner_mod, "run_spec", broken)
        with pytest.raises(JobError):
            self._executor(tmp_path).run([_spec()])
        ledger = RunLedger.read(str(tmp_path / "runs.jsonl"))
        assert ledger[-1]["status"] == "failed"
        assert "always broken" in ledger[-1]["error"]

    def test_on_failure_report_returns_partial_results(self, tmp_path,
                                                       monkeypatch):
        import repro.harness.runner as runner_mod
        real = runner_mod.run_spec

        def broken_for_kangaroo(spec):
            if spec.workload == "kangaroo":
                raise RuntimeError("always broken")
            return real(spec)

        monkeypatch.setattr(runner_mod, "run_spec", broken_for_kangaroo)
        executor = Executor(jobs=1, cache=NullCache(),
                            ledger=RunLedger(str(tmp_path / "runs.jsonl")),
                            on_failure="report")
        results = executor.run([_spec(), _spec(workload="kangaroo")])
        assert results[0] is not None and results[0].cycles > 0
        assert results[1] is None               # the hole, not an exception
        report = executor.failure_report
        assert len(report) == 1 and not report.ok
        failure = report.to_dict()["failures"][0]
        assert failure["workload"] == "kangaroo"
        assert failure["stage"] == "parent"
        assert "always broken" in failure["error"]
        assert "exhausted" in report.render()

    def test_on_failure_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="on_failure"):
            Executor(jobs=1, cache=NullCache(), on_failure="shrug")


class TestDeterminism:
    """Same JobSpec -> identical Metrics, no matter how it executes."""

    SPECS = [_spec(workload="nas-is", technique=TECH_DVR),
             _spec(workload="kangaroo"),
             _spec(workload="randomaccess", technique=TECH_DVR)]

    @pytest.fixture(scope="class")
    def serial_results(self):
        return Executor(jobs=1, cache=NullCache()).run(self.SPECS)

    @pytest.mark.parametrize("jobs", [2, 3])
    def test_pool_matches_serial(self, serial_results, jobs):
        pool_results = Executor(jobs=jobs, cache=NullCache()).run(self.SPECS)
        for serial, pooled in zip(serial_results, pool_results):
            assert pooled.cycles == serial.cycles
            assert pooled.ipc == serial.ipc
            assert pooled.dram_accesses == serial.dram_accesses
            assert pooled.engine_stats == serial.engine_stats

    def test_cache_hit_matches_fresh_run(self, tmp_path, serial_results):
        cache = ResultCache(str(tmp_path))
        executor = Executor(jobs=1, cache=cache)
        executor.run(self.SPECS)
        hits = Executor(jobs=1, cache=cache).run(self.SPECS)
        for fresh, hit in zip(serial_results, hits):
            assert json.dumps(hit.to_dict(), sort_keys=True) == \
                json.dumps(fresh.to_dict(), sort_keys=True)

    def test_gap_graph_build_is_process_stable(self):
        # Guards the PYTHONHASHSEED fix in workloads.graphs: a graph built
        # in a pool worker must equal one built in this process.
        spec = _spec(workload="bfs", graph="KR", max_instructions=1_000)
        serial = Executor(jobs=1, cache=NullCache()).run([spec, spec])
        pooled = Executor(jobs=2, cache=NullCache()).run(
            [spec, _spec(workload="cc", graph="KR",
                         max_instructions=1_000)])
        assert pooled[0].cycles == serial[0].cycles
        assert pooled[0].dram_accesses == serial[0].dram_accesses


class TestExecutionContext:
    def test_env_configuration(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_JOBS", "3")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        ctx = ExecutionContext.from_env()
        assert ctx.jobs == 3
        assert ctx.cache_dir == str(tmp_path)
        assert isinstance(ctx.cache, NullCache)

    def test_no_cache_still_keeps_ledger(self, tmp_path):
        ctx = ExecutionContext(cache_dir=str(tmp_path), no_cache=True)
        run_specs([_spec()], context=ctx)
        records = RunLedger.read(os.path.join(str(tmp_path), "runs.jsonl"))
        assert len(records) == 1
        assert records[0]["cache"] == "off"

    def test_run_specs_uses_default_context(self):
        # The session fixture points REPRO_CACHE_DIR at a scratch dir.
        results = run_specs([_spec()])
        assert results[0].cycles > 0
