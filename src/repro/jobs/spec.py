"""Canonical description of one simulation: the unit of work.

A :class:`JobSpec` pins down everything that determines a simulation's
result -- workload name and parameters, the full :class:`SimConfig`, the
build seed, and a fingerprint of any named input (graph specs) -- and
hashes all of it into a stable content key.  Two specs with the same key
are guaranteed to produce the same :class:`~repro.harness.metrics.Metrics`
(the simulator is deterministic), which is what makes the result cache
and cross-figure deduplication sound.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from ..config import SimConfig, config_from_dict, config_to_dict


def _input_fingerprint(workload, params):
    """Content identity of named inputs the workload name doesn't pin down.

    GAP kernels take a ``graph`` parameter naming an entry of
    ``GRAPH_INPUTS``; the registry entry can differ between sessions (tests
    register scaled-down inputs under fresh names), so the generator
    parameters must be part of the job identity, not just the name.
    """
    graph = params.get("graph")
    if graph is None:
        return {}
    from ..workloads.graphs import GRAPH_INPUTS
    spec = GRAPH_INPUTS.get(graph)
    if spec is None:
        return {}
    return {"graph": asdict(spec)}


@dataclass(frozen=True)
class JobSpec:
    """One simulation, ready to run anywhere (including a worker process)."""

    workload: str                     # name in repro.workloads.ALL_WORKLOADS
    config: SimConfig
    params: dict = field(default_factory=dict)   # workload kwargs (graph=...)
    seed: int = 12345
    label: str = ""                   # display label, e.g. "bfs_KR"
    inputs: dict = field(default_factory=dict)   # named-input fingerprint

    def __post_init__(self):
        if not self.label:
            object.__setattr__(self, "label", self.workload)
        if not self.inputs:
            object.__setattr__(
                self, "inputs", _input_fingerprint(self.workload, self.params))

    @property
    def technique(self):
        return self.config.technique

    # ------------------------------------------------------------------
    def canonical(self):
        """JSON-stable dict of everything that determines the result.

        ``label`` is presentation-only and deliberately excluded.
        """
        return {
            "workload": self.workload,
            "params": self.params,
            "seed": self.seed,
            "inputs": self.inputs,
            "config": config_to_dict(self.config),
        }

    @property
    def key(self):
        """Stable content hash -- the cache / dedup identity."""
        canonical = json.dumps(self.canonical(), sort_keys=True, default=list)
        return hashlib.sha256(canonical.encode()).hexdigest()[:24]

    # ------------------------------------------------------------------
    def to_dict(self):
        data = self.canonical()
        data["label"] = self.label
        return data

    @classmethod
    def from_dict(cls, data):
        return cls(workload=data["workload"],
                   config=config_from_dict(SimConfig, data["config"]),
                   params=dict(data.get("params", {})),
                   seed=data.get("seed", 12345),
                   label=data.get("label", ""),
                   inputs=dict(data.get("inputs", {})))

    def __repr__(self):
        return (f"<JobSpec {self.label}/{self.technique} seed={self.seed} "
                f"key={self.key[:8]}>")
