"""Process-wide execution defaults: worker count, cache, ledger.

The CLI (``--jobs/--no-cache/--cache-dir``) and the environment
(``REPRO_JOBS``, ``REPRO_NO_CACHE``, ``REPRO_CACHE_DIR``) configure one
shared context; experiment code just calls :func:`run_specs` and inherits
it.  Tests can install a scratch context with :func:`configure` /
:func:`set_context`.
"""

from __future__ import annotations

import os

from .cache import NullCache, ResultCache, default_cache_dir
from .executor import Executor
from .ledger import NullLedger, RunLedger

_context = None


class ExecutionContext:
    """Everything an :class:`Executor` needs, built once per process."""

    def __init__(self, jobs=1, cache_dir=None, no_cache=False, timeout=None,
                 ledger_path=None):
        self.jobs = max(1, int(jobs))
        self.cache_dir = cache_dir or default_cache_dir()
        self.no_cache = bool(no_cache)
        self.timeout = timeout
        self.cache = NullCache() if no_cache else ResultCache(self.cache_dir)
        # The ledger records runs even when result reuse is off.
        if ledger_path is None:
            ledger_path = os.path.join(self.cache_dir, "runs.jsonl")
        self.ledger_path = ledger_path
        self.ledger = (RunLedger(ledger_path) if ledger_path
                       else NullLedger())

    def executor(self):
        return Executor(jobs=self.jobs, cache=self.cache, ledger=self.ledger,
                        timeout=self.timeout)

    @classmethod
    def from_env(cls):
        return cls(jobs=int(os.environ.get("REPRO_JOBS", "1")),
                   cache_dir=os.environ.get("REPRO_CACHE_DIR"),
                   no_cache=os.environ.get("REPRO_NO_CACHE", "") not in
                   ("", "0"))


def get_context():
    """The current process-wide context (created from env on first use)."""
    global _context
    if _context is None:
        _context = ExecutionContext.from_env()
    return _context


def set_context(context):
    """Install ``context`` (or ``None`` to fall back to env defaults)."""
    global _context
    _context = context
    return context


def configure(**kwargs):
    """Build + install a context from keyword overrides (CLI entry)."""
    return set_context(ExecutionContext(**kwargs))


def run_specs(specs, context=None):
    """Run JobSpecs under ``context`` (default: the process-wide one).

    Returns a list of Metrics aligned with ``specs``.
    """
    context = context or get_context()
    return context.executor().run(specs)
