"""Process-wide execution defaults: worker count, cache, ledger.

The CLI (``--jobs/--no-cache/--cache-dir``) and the environment
(``REPRO_JOBS``, ``REPRO_NO_CACHE``, ``REPRO_CACHE_DIR``) configure one
shared context; experiment code just calls :func:`run_specs` and inherits
it.  Tests can install a scratch context with :func:`configure` /
:func:`set_context`.
"""

from __future__ import annotations

import os

from .cache import NullCache, ResultCache, default_cache_dir
from .executor import Executor, SweepFailureReport
from .ledger import NullLedger, RunLedger

_context = None


class ExecutionContext:
    """Everything an :class:`Executor` needs, built once per process."""

    def __init__(self, jobs=1, cache_dir=None, no_cache=False, timeout=None,
                 ledger_path=None, backend="local", cluster=None,
                 serve=None, store=None, resume=False, on_failure="raise",
                 lanes=0):
        self.jobs = max(1, int(jobs))
        #: Batch-lane width for the "lanes" backend (``--lanes N``).  0
        #: means "default" (8 when the lanes backend is selected).
        self.lanes = max(0, int(lanes))
        self.cache_dir = cache_dir or default_cache_dir()
        self.no_cache = bool(no_cache)
        self.timeout = timeout
        #: Shared-store root (``--store`` / $REPRO_STORE_DIR): when set,
        #: the local per-machine cache is stacked over the fleet-wide
        #: content-addressed store, so independent sweeps (and the serve
        #: daemon) share hits through one path.
        if store is None:
            from ..serve.store import default_store_dir
            store = default_store_dir()
        self.store_dir = store
        if no_cache:
            self.cache = NullCache()
        elif self.store_dir:
            from ..serve.store import CacheStack, SharedStore
            self.cache = CacheStack(ResultCache(self.cache_dir),
                                    SharedStore(self.store_dir))
        else:
            self.cache = ResultCache(self.cache_dir)
        # The ledger records runs even when result reuse is off.
        if ledger_path is None:
            ledger_path = os.path.join(self.cache_dir, "runs.jsonl")
        self.ledger_path = ledger_path
        self.ledger = (RunLedger(ledger_path) if ledger_path
                       else NullLedger())
        if backend not in ("local", "lanes", "cluster", "serve"):
            raise ValueError(f"unknown executor backend {backend!r} "
                             f"(expected 'local', 'lanes', 'cluster' or "
                             f"'serve')")
        self.backend = backend
        #: Cluster options: ``bind`` ("HOST:PORT", port 0 = ephemeral),
        #: ``workers`` (loopback subprocesses to spawn; 0 = wait for
        #: external ``repro cluster worker --connect`` processes),
        #: ``connect_timeout`` (seconds to wait for the first worker),
        #: ``secret`` (shared handshake secret; default
        #: ``$REPRO_CLUSTER_SECRET``).
        self.cluster_options = dict(cluster or {})
        #: Serve-backend options: ``connect`` ("HOST:PORT" of a running
        #: `repro serve` daemon), ``secret``, ``tls`` (a client
        #: TLSConfig; None = $REPRO_TLS_* environment).
        self.serve_options = dict(serve or {})
        self._serve_client = None
        #: ``repro sweep --resume``: replay specs the ledger already
        #: records as completed, dispatching only the remainder.  The
        #: index is snapshotted once per context so mid-sweep appends
        #: don't shift the baseline.
        self.resume = bool(resume)
        self._resume_index = None
        #: Failure policy shared by every executor this context builds:
        #: "report" collects exhausted jobs in ``failure_report`` and
        #: returns partial results instead of raising mid-sweep.
        self.on_failure = on_failure
        self.failure_report = SweepFailureReport()
        self._coordinator = None

    def resume_index(self):
        if not self.resume:
            return None
        if self._resume_index is None:
            self._resume_index = RunLedger.completed_index(self.ledger_path)
        return self._resume_index

    def executor(self):
        if self.backend == "cluster":
            from ..cluster import ClusterExecutor
            return ClusterExecutor(self._ensure_coordinator(),
                                   cache=self.cache, ledger=self.ledger,
                                   timeout=self.timeout,
                                   on_failure=self.on_failure,
                                   resume_index=self.resume_index(),
                                   failure_report=self.failure_report)
        if self.backend == "serve":
            from ..serve import ServeExecutor
            return ServeExecutor(self._ensure_serve_client(),
                                 cache=self.cache, ledger=self.ledger,
                                 timeout=self.timeout,
                                 on_failure=self.on_failure,
                                 resume_index=self.resume_index(),
                                 failure_report=self.failure_report)
        if self.backend == "lanes" or self.lanes:
            from ..lanes import BatchExecutor
            return BatchExecutor(lanes=self.lanes or 8,
                                 cache=self.cache, ledger=self.ledger,
                                 timeout=self.timeout,
                                 on_failure=self.on_failure,
                                 resume_index=self.resume_index(),
                                 failure_report=self.failure_report)
        return Executor(jobs=self.jobs, cache=self.cache, ledger=self.ledger,
                        timeout=self.timeout, on_failure=self.on_failure,
                        resume_index=self.resume_index(),
                        failure_report=self.failure_report)

    def _ensure_serve_client(self):
        """Connect to the serve daemon on first use."""
        if self._serve_client is None:
            from ..serve import ServeClient
            connect = self.serve_options.get("connect")
            if not connect:
                raise ValueError("serve backend needs a daemon address "
                                 "(--connect HOST:PORT)")
            kwargs = {}
            if "secret" in self.serve_options:
                kwargs["secret"] = self.serve_options["secret"]
            if "tls" in self.serve_options:
                kwargs["tls"] = self.serve_options["tls"]
            client = ServeClient(connect, **kwargs)
            client.connect()
            self._serve_client = client
        return self._serve_client

    def _ensure_coordinator(self):
        """Start the coordinator (and loopback workers) on first use."""
        if self._coordinator is None:
            import sys

            from ..cluster import Coordinator
            from ..cluster.protocol import parse_address
            host, port = parse_address(
                self.cluster_options.get("bind") or "127.0.0.1:0")
            kwargs = {}
            if "secret" in self.cluster_options:
                kwargs["secret"] = self.cluster_options["secret"]
            coordinator = Coordinator(host=host, port=port,
                                      job_timeout=self.timeout, **kwargs)
            coordinator.start()
            workers = int(self.cluster_options.get("workers", 0))
            if workers:
                extra = ("--lanes", str(self.lanes)) if self.lanes else ()
                coordinator.spawn_local_workers(workers, extra_args=extra)
                print(f"[cluster] coordinator on {coordinator.address}, "
                      f"spawned {workers} loopback worker(s)",
                      file=sys.stderr)
                coordinator.wait_for_workers(
                    1, timeout=self.cluster_options.get(
                        "connect_timeout", 60.0))
            else:
                print(f"[cluster] coordinator on {coordinator.address}, "
                      f"waiting for workers (`repro cluster worker "
                      f"--connect {coordinator.address}`)", file=sys.stderr)
            self._coordinator = coordinator
        return self._coordinator

    def close(self):
        """Release cluster/serve resources (no-op for the local backend)."""
        if self._coordinator is not None:
            self._coordinator.close()
            self._coordinator = None
        if self._serve_client is not None:
            self._serve_client.close()
            self._serve_client = None

    @classmethod
    def from_env(cls):
        return cls(jobs=int(os.environ.get("REPRO_JOBS", "1")),
                   cache_dir=os.environ.get("REPRO_CACHE_DIR"),
                   no_cache=os.environ.get("REPRO_NO_CACHE", "") not in
                   ("", "0"))


def get_context():
    """The current process-wide context (created from env on first use)."""
    global _context
    if _context is None:
        _context = ExecutionContext.from_env()
    return _context


def set_context(context):
    """Install ``context`` (or ``None`` to fall back to env defaults).

    The previous context's cluster resources (if any) are released.
    """
    global _context
    if _context is not None and _context is not context:
        _context.close()
    _context = context
    return context


def close_context():
    """Release the current context's resources without replacing it."""
    if _context is not None:
        _context.close()


def configure(**kwargs):
    """Build + install a context from keyword overrides (CLI entry)."""
    return set_context(ExecutionContext(**kwargs))


def run_specs(specs, context=None):
    """Run JobSpecs under ``context`` (default: the process-wide one).

    Returns a list of Metrics aligned with ``specs``.
    """
    context = context or get_context()
    return context.executor().run(specs)
