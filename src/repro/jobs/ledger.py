"""JSONL run ledger: one line per executed (or cache-served) job.

Every record carries the spec hash, timing, cache disposition, worker id
and headline metrics, so a sweep's full history can be replayed or audited
with nothing but ``jq``::

    {"seq": 3, "key": "9f2c...", "workload": "bfs", "params": {"graph": "KR"},
     "technique": "dvr", "cache": "hit", "wall_s": 0.002, "worker": 41782,
     "status": "ok", "ipc": 1.91, "cycles": 10483, "mpki": 18.2}
"""

from __future__ import annotations

import json
import os
import time
import warnings


def _analysis_version():
    """Rule-catalogue version stamped into every record.

    Imported lazily (and defensively) so ledger writes keep working even
    if the analysis package is unavailable in a stripped deployment.
    """
    try:
        from ..analysis import ANALYSIS_VERSION
        return ANALYSIS_VERSION
    except ImportError:  # pragma: no cover - stripped installs only
        return None


def _config_digest(config):
    """Stable digest of the spec's SimConfig (cost-model feature key)."""
    try:
        from ..config import config_digest
        return config_digest(config)
    except Exception:  # pragma: no cover - defensive: never block a record
        return None


class RunLedger:
    """Append-only JSONL log of every job an executor processed."""

    def __init__(self, path):
        self.path = path
        self._seq = 0

    def record(self, spec, *, cache, wall_s, worker, status="ok",
               metrics=None, error=None, retries=0):
        entry = {
            "seq": self._seq,
            "ts": time.time(),
            "key": spec.key,
            "workload": spec.workload,
            "params": spec.params,
            "technique": spec.technique,
            "seed": spec.seed,
            "label": spec.label,
            "cache": cache,            # "hit" | "miss" | "off"
            "wall_s": round(wall_s, 6),
            # Worker identity: a pid for pool workers, "parent" for
            # in-process runs, or a "<host>-<pid>" id for cluster workers.
            "worker": worker,
            "status": status,          # "ok" | "retried" | "failed"
            # Lease/crash retries this result took (0 = first attempt).
            "retries": retries,
            # Cost-model features: the scheduler learns seconds-per-
            # instruction per (workload, graph, technique) from these.
            "config_digest": _config_digest(spec.config),
            "max_instructions": getattr(spec.config, "max_instructions",
                                        None),
            # Analysis provenance: whether the run had the runtime
            # sanitizer enabled, and which rule catalogue vetted the
            # tree -- results from a pre-sanitizer tree stay
            # distinguishable from sanitized ones.
            "sanitize": bool(getattr(spec.config, "sanitize", False)),
            "analysis_rules": _analysis_version(),
        }
        if metrics is not None:
            entry.update(ipc=round(metrics.ipc, 6),
                         cycles=metrics.cycles,
                         committed=metrics.committed,
                         mpki=round(metrics.mpki, 6),
                         mlp=round(metrics.mlp, 6))
        if error is not None:
            entry["error"] = error
        self._seq += 1
        self._append(entry)
        return entry

    def record_meta(self, kind, **payload):
        """Append a non-job *meta* record (e.g. a chaos run's FaultPlan).

        Meta records carry ``{"meta": kind}`` and deliberately no
        ``key``/``cache``/``status`` fields, so every job-record consumer
        (cost model, ledger reports, resume) skips them structurally.
        """
        entry = {"meta": kind, "ts": time.time()}
        entry.update(payload)
        self._append(entry)
        return entry

    def _append(self, entry):
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(json.dumps(entry) + "\n")

    @staticmethod
    def completed_index(path):
        """``key -> latest completed record`` for resumable sweeps.

        A spec counts as completed when its most recent record carries
        headline metrics (``ipc``) and a non-failed status -- exactly the
        records :meth:`record` writes after a successful simulation or
        cache hit.  Later failures override earlier successes record-by-
        record, so a key that succeeded once and was never re-run stays
        completed.
        """
        completed = {}
        for record in RunLedger.read(path):
            key = record.get("key")
            if not key:
                continue                    # meta or malformed record
            if record.get("status") != "failed" and "ipc" in record:
                completed[key] = record
            else:
                completed.pop(key, None)
        return completed

    @staticmethod
    def read(path):
        """All intact records of a ledger file (missing file -> empty).

        A crash mid-append (power loss, SIGKILL) can leave a truncated
        trailing line; corrupt lines are skipped with a warning instead
        of making the whole ledger unreadable.
        """
        if not os.path.exists(path):
            return []
        records = []
        with open(path) as handle:
            for lineno, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    warnings.warn(
                        f"{path}:{lineno}: skipping corrupt ledger record "
                        f"(truncated append?)", RuntimeWarning,
                        stacklevel=2)
        return records


class NullLedger:
    """Ledger stand-in when no ledger path is configured."""

    def record(self, spec, **kwargs):
        return None

    def record_meta(self, kind, **payload):
        return None
