"""Fan jobs out over worker processes, with caching and a run ledger.

The :class:`Executor` is the one place simulations get launched from:
it deduplicates specs by content key, serves repeats from the
:class:`~repro.jobs.cache.ResultCache`, runs the misses either in-process
(``jobs=1`` -- exercised by pytest/coverage and debugging) or on a
``ProcessPoolExecutor``, retries once on a worker crash or timeout by
re-running the job in the parent, and logs every job to the JSONL ledger.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor

from .cache import NullCache
from .ledger import NullLedger
from .spec import JobSpec


def _execute_payload(payload):
    """Worker entry point: run one serialized JobSpec, return plain dicts.

    Module-level so it pickles; takes/returns dicts so workers never ship
    live simulator objects across the process boundary.
    """
    from ..harness.runner import run_spec
    spec = JobSpec.from_dict(payload)
    start = time.perf_counter()
    metrics = run_spec(spec)
    return {"metrics": metrics.to_dict(),
            "wall_s": time.perf_counter() - start,
            "worker": os.getpid()}


def _spec_config_digest(spec):
    """Stable SimConfig digest for resume matching (None = unavailable)."""
    try:
        from ..config import config_digest
        return config_digest(spec.config)
    except Exception:
        return None


class ProgressLine:
    """Live ``[12/60] bfs_KR dvr ... 3 cached`` line on stderr.

    On a TTY the line redraws in place; otherwise (pipes, CI) it stays
    silent per-job and prints one summary at the end.  ``REPRO_PROGRESS=0``
    silences it entirely, ``=1`` forces per-job lines even when piped.
    """

    def __init__(self, stream=None):
        self.stream = stream if stream is not None else sys.stderr
        mode = os.environ.get("REPRO_PROGRESS", "")
        self.enabled = mode != "0"
        self.per_job = self.enabled and (
            mode == "1" or getattr(self.stream, "isatty", lambda: False)())
        self.live = self.per_job and mode != "1"
        self._dirty = False

    def update(self, done, total, spec, cached):
        if not self.per_job:
            return
        text = f"[{done}/{total}] {spec.label} {spec.technique} " \
               f"... {cached} cached"
        if self.live:
            self.stream.write("\r" + text.ljust(60))
            self._dirty = True
        else:
            self.stream.write(text + "\n")
        self.stream.flush()

    def finish(self, total, cached, wall_s):
        if not self.enabled:
            return
        if self._dirty:
            self.stream.write("\n")
        self.stream.write(f"[jobs] {total} job(s), {cached} cache hit(s), "
                          f"{wall_s:.2f}s\n")
        self.stream.flush()


class JobError(RuntimeError):
    """A job failed twice (initial attempt + one retry)."""


class SweepFailureReport:
    """Structured record of every job a sweep gave up on.

    With ``on_failure="report"`` an executor appends one entry per
    exhausted job -- spec identity, the final error, and how many
    attempts it took -- instead of raising mid-sweep, so a long sweep
    returns its partial results plus an auditable account of the holes.
    """

    def __init__(self):
        self.failures = []

    def add(self, spec, error, attempts, stage):
        self.failures.append({
            "key": spec.key,
            "label": spec.label,
            "workload": spec.workload,
            "technique": spec.technique,
            "error": str(error),
            "attempts": int(attempts),
            # Where the sweep gave up: "parent" (the in-process retry
            # also failed) or "cluster" (retry budget / workers gone).
            "stage": stage,
        })

    def __len__(self):
        return len(self.failures)

    def __bool__(self):
        return bool(self.failures)

    @property
    def ok(self):
        return not self.failures

    def to_dict(self):
        return {"failed_jobs": len(self.failures),
                "failures": list(self.failures)}

    def render(self):
        if not self.failures:
            return "sweep failure report: all jobs completed"
        lines = [f"sweep failure report: {len(self.failures)} job(s) "
                 f"exhausted their retry budget"]
        for failure in self.failures:
            lines.append(
                f"  {failure['label']}/{failure['technique']} "
                f"[{failure['key'][:8]}] after {failure['attempts']} "
                f"attempt(s) ({failure['stage']}): {failure['error']}")
        return "\n".join(lines)


class Executor:
    """Run JobSpecs: dedup -> cache -> (pool | serial) -> ledger."""

    def __init__(self, jobs=1, cache=None, ledger=None, timeout=None,
                 progress=None, cost_model=None, on_failure="raise",
                 resume_index=None, failure_report=None):
        self.jobs = max(1, int(jobs))
        self.cache = cache if cache is not None else NullCache()
        self.ledger = ledger if ledger is not None else NullLedger()
        self.timeout = timeout        # per-job seconds, None = unlimited
        self.progress = progress if progress is not None else ProgressLine()
        self.cost_model = cost_model  # None = learn from the ledger lazily
        if on_failure not in ("raise", "report"):
            raise ValueError(f"on_failure must be 'raise' or 'report', "
                             f"got {on_failure!r}")
        #: "raise": a twice-failed job aborts the sweep with JobError
        #: (the historical contract).  "report": the job's result slot
        #: becomes None and the failure lands in ``failure_report``.
        self.on_failure = on_failure
        #: ``key -> ledger record`` of already-completed specs (from
        #: ``RunLedger.completed_index``); their cached metrics are
        #: replayed without dispatch (``repro sweep --resume``).
        self.resume_index = resume_index or {}
        self.failure_report = (failure_report if failure_report is not None
                               else SweepFailureReport())

    # ------------------------------------------------------------------
    def run(self, specs):
        """Execute ``specs``; returns Metrics aligned with the input order.

        Specs sharing a content key are simulated once.  With
        ``on_failure="report"``, a job that exhausts its retries yields
        ``None`` in its result slot(s) and an entry in
        ``self.failure_report`` instead of raising.
        """
        start = time.perf_counter()
        unique = {}
        for spec in specs:
            unique.setdefault(spec.key, spec)

        results = {}                  # key -> Metrics (None = gave up)
        cached = 0
        pending = []
        for key, spec in unique.items():
            lookup_start = time.perf_counter()
            metrics, disposition = self._lookup(spec)
            if metrics is not None:
                results[key] = metrics
                cached += 1
                self.ledger.record(
                    spec, cache=disposition, worker="parent",
                    wall_s=time.perf_counter() - lookup_start,
                    metrics=metrics)
                self.progress.update(len(results), len(unique), spec, cached)
            else:
                pending.append(spec)

        if pending:
            self._run_pending(pending, unique, results, cached)

        self.progress.finish(len(unique), cached,
                             time.perf_counter() - start)
        return [results[spec.key] for spec in specs]

    def _lookup(self, spec):
        """Cache lookup for one spec -> (metrics, ledger disposition).

        A spec the resume index marks as completed is replayed from the
        cache with disposition ``"resume"`` so ledger inspection can
        prove an interrupted sweep only dispatched the remainder.  A
        resume entry whose bytes are gone (pruned or corrupt cache)
        degrades to a normal re-dispatch with a warning.
        """
        record = self.resume_index.get(spec.key)
        if record is not None:
            digest = _spec_config_digest(spec)
            if digest is None or record.get("config_digest") == digest:
                metrics = self.cache.get(spec)
                if metrics is not None:
                    return metrics, "resume"
                import warnings
                warnings.warn(
                    f"resume: {spec.label}/{spec.technique} "
                    f"[{spec.key[:8]}] is completed in the ledger but "
                    f"missing from the result cache; re-dispatching",
                    RuntimeWarning, stacklevel=3)
                return None, "hit"
        return self.cache.get(spec), "hit"

    # ------------------------------------------------------------------
    def _run_pending(self, pending, unique, results, cached):
        """Execute the cache misses (backend hook point)."""
        if self.jobs == 1 or len(pending) == 1:
            self._run_serial(pending, unique, results, cached)
        else:
            self._run_pool(self._schedule(pending), unique, results, cached)

    def _schedule(self, pending):
        """Longest-expected-first order, learned from the run ledger.

        Minimizes tail latency whenever jobs run concurrently (process
        pool or cluster): the slowest points start first instead of
        straggling at the end of the sweep.
        """
        from ..cluster.scheduler import cost_model_for, longest_first
        if self.cost_model is None:
            self.cost_model = cost_model_for(self.ledger)
        return longest_first(pending, self.cost_model)

    def _finish_job(self, spec, metrics, unique, results, cached, *,
                    wall_s, worker, status, retries=0, disposition=None):
        """Record one completed job (cache + ledger + progress).

        ``disposition`` overrides the ledger's cache column: remote
        backends pass ``"hit"`` for results a daemon served from its
        shared store, so the cost model never learns a zero-second
        rate from them.  ``None`` means this process ran the job.
        """
        self.cache.put(spec, metrics)
        results[spec.key] = metrics
        if disposition is None:
            disposition = ("off" if isinstance(self.cache, NullCache)
                           else "miss")
        self.ledger.record(spec, cache=disposition, wall_s=wall_s,
                           worker=worker, status=status, metrics=metrics,
                           retries=retries)
        self.progress.update(len(results), len(unique), spec, cached)

    def _retry_in_parent(self, spec, error):
        """One in-process retry after a worker crash/timeout."""
        from ..harness.runner import run_spec
        start = time.perf_counter()
        try:
            metrics = run_spec(spec)
        except Exception as retry_error:
            self.ledger.record(spec, cache="miss", worker="parent",
                               wall_s=time.perf_counter() - start,
                               status="failed", error=repr(retry_error),
                               retries=1)
            raise JobError(
                f"job {spec.label}/{spec.technique} failed twice: "
                f"{error!r}, then {retry_error!r}") from retry_error
        return metrics, time.perf_counter() - start

    def _give_up(self, spec, error, attempts, unique, results, cached, *,
                 stage="parent"):
        """A job exhausted every retry.  Raise or report, per policy.

        The ledger already carries the final ``status="failed"`` record
        (written by :meth:`_retry_in_parent`); this only decides whether
        the sweep dies or degrades to a partial result.
        """
        if self.on_failure == "raise":
            raise error
        self.failure_report.add(spec, error, attempts, stage)
        results[spec.key] = None
        self.progress.update(len(results), len(unique), spec, cached)

    def _run_serial(self, pending, unique, results, cached):
        from ..harness.runner import run_spec
        for spec in pending:
            start = time.perf_counter()
            try:
                metrics = run_spec(spec)
                status = "ok"
                retries = 0
            except Exception as error:
                try:
                    metrics, _ = self._retry_in_parent(spec, error)
                except JobError as failure:
                    self._give_up(spec, failure, 2, unique, results, cached)
                    continue
                status = "retried"
                retries = 1
            self._finish_job(spec, metrics, unique, results, cached,
                             wall_s=time.perf_counter() - start,
                             worker="parent", status=status, retries=retries)

    def _run_pool(self, pending, unique, results, cached):
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [(spec, pool.submit(_execute_payload, spec.to_dict()))
                       for spec in pending]
            # Collect in submission order: per-future result(timeout) keeps
            # the per-job timeout simple while the pool runs everything
            # concurrently behind it.
            from ..harness.metrics import Metrics
            for spec, future in futures:
                try:
                    payload = future.result(timeout=self.timeout)
                    metrics = Metrics.from_dict(payload["metrics"])
                    self._finish_job(spec, metrics, unique, results, cached,
                                     wall_s=payload["wall_s"],
                                     worker=payload["worker"], status="ok")
                except Exception as error:
                    # Worker crash (BrokenProcessPool), timeout, or an
                    # exception raised inside the job: one retry, in the
                    # parent so a poisoned pool can't eat it too.
                    future.cancel()
                    try:
                        metrics, wall_s = self._retry_in_parent(spec, error)
                    except JobError as failure:
                        self._give_up(spec, failure, 2, unique, results,
                                      cached)
                        continue
                    self._finish_job(spec, metrics, unique, results, cached,
                                     wall_s=wall_s, worker="parent",
                                     status="retried", retries=1)
