"""Fan jobs out over worker processes, with caching and a run ledger.

The :class:`Executor` is the one place simulations get launched from:
it deduplicates specs by content key, serves repeats from the
:class:`~repro.jobs.cache.ResultCache`, runs the misses either in-process
(``jobs=1`` -- exercised by pytest/coverage and debugging) or on a
``ProcessPoolExecutor``, retries once on a worker crash or timeout by
re-running the job in the parent, and logs every job to the JSONL ledger.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor

from .cache import NullCache
from .ledger import NullLedger
from .spec import JobSpec


def _execute_payload(payload):
    """Worker entry point: run one serialized JobSpec, return plain dicts.

    Module-level so it pickles; takes/returns dicts so workers never ship
    live simulator objects across the process boundary.
    """
    from ..harness.runner import run_spec
    spec = JobSpec.from_dict(payload)
    start = time.perf_counter()
    metrics = run_spec(spec)
    return {"metrics": metrics.to_dict(),
            "wall_s": time.perf_counter() - start,
            "worker": os.getpid()}


class ProgressLine:
    """Live ``[12/60] bfs_KR dvr ... 3 cached`` line on stderr.

    On a TTY the line redraws in place; otherwise (pipes, CI) it stays
    silent per-job and prints one summary at the end.  ``REPRO_PROGRESS=0``
    silences it entirely, ``=1`` forces per-job lines even when piped.
    """

    def __init__(self, stream=None):
        self.stream = stream if stream is not None else sys.stderr
        mode = os.environ.get("REPRO_PROGRESS", "")
        self.enabled = mode != "0"
        self.per_job = self.enabled and (
            mode == "1" or getattr(self.stream, "isatty", lambda: False)())
        self.live = self.per_job and mode != "1"
        self._dirty = False

    def update(self, done, total, spec, cached):
        if not self.per_job:
            return
        text = f"[{done}/{total}] {spec.label} {spec.technique} " \
               f"... {cached} cached"
        if self.live:
            self.stream.write("\r" + text.ljust(60))
            self._dirty = True
        else:
            self.stream.write(text + "\n")
        self.stream.flush()

    def finish(self, total, cached, wall_s):
        if not self.enabled:
            return
        if self._dirty:
            self.stream.write("\n")
        self.stream.write(f"[jobs] {total} job(s), {cached} cache hit(s), "
                          f"{wall_s:.2f}s\n")
        self.stream.flush()


class JobError(RuntimeError):
    """A job failed twice (initial attempt + one retry)."""


class Executor:
    """Run JobSpecs: dedup -> cache -> (pool | serial) -> ledger."""

    def __init__(self, jobs=1, cache=None, ledger=None, timeout=None,
                 progress=None, cost_model=None):
        self.jobs = max(1, int(jobs))
        self.cache = cache if cache is not None else NullCache()
        self.ledger = ledger if ledger is not None else NullLedger()
        self.timeout = timeout        # per-job seconds, None = unlimited
        self.progress = progress if progress is not None else ProgressLine()
        self.cost_model = cost_model  # None = learn from the ledger lazily

    # ------------------------------------------------------------------
    def run(self, specs):
        """Execute ``specs``; returns Metrics aligned with the input order.

        Specs sharing a content key are simulated once.
        """
        start = time.perf_counter()
        unique = {}
        for spec in specs:
            unique.setdefault(spec.key, spec)

        results = {}                  # key -> Metrics
        cached = 0
        pending = []
        for key, spec in unique.items():
            lookup_start = time.perf_counter()
            metrics = self.cache.get(spec)
            if metrics is not None:
                results[key] = metrics
                cached += 1
                self.ledger.record(
                    spec, cache="hit", worker="parent",
                    wall_s=time.perf_counter() - lookup_start,
                    metrics=metrics)
                self.progress.update(len(results), len(unique), spec, cached)
            else:
                pending.append(spec)

        if pending:
            self._run_pending(pending, unique, results, cached)

        self.progress.finish(len(unique), cached,
                             time.perf_counter() - start)
        return [results[spec.key] for spec in specs]

    # ------------------------------------------------------------------
    def _run_pending(self, pending, unique, results, cached):
        """Execute the cache misses (backend hook point)."""
        if self.jobs == 1 or len(pending) == 1:
            self._run_serial(pending, unique, results, cached)
        else:
            self._run_pool(self._schedule(pending), unique, results, cached)

    def _schedule(self, pending):
        """Longest-expected-first order, learned from the run ledger.

        Minimizes tail latency whenever jobs run concurrently (process
        pool or cluster): the slowest points start first instead of
        straggling at the end of the sweep.
        """
        from ..cluster.scheduler import cost_model_for, longest_first
        if self.cost_model is None:
            self.cost_model = cost_model_for(self.ledger)
        return longest_first(pending, self.cost_model)

    def _finish_job(self, spec, metrics, unique, results, cached, *,
                    wall_s, worker, status, retries=0):
        self.cache.put(spec, metrics)
        results[spec.key] = metrics
        miss = "off" if isinstance(self.cache, NullCache) else "miss"
        self.ledger.record(spec, cache=miss, wall_s=wall_s, worker=worker,
                           status=status, metrics=metrics, retries=retries)
        self.progress.update(len(results), len(unique), spec, cached)

    def _retry_in_parent(self, spec, error):
        """One in-process retry after a worker crash/timeout."""
        from ..harness.runner import run_spec
        start = time.perf_counter()
        try:
            metrics = run_spec(spec)
        except Exception as retry_error:
            self.ledger.record(spec, cache="miss", worker="parent",
                               wall_s=time.perf_counter() - start,
                               status="failed", error=repr(retry_error),
                               retries=1)
            raise JobError(
                f"job {spec.label}/{spec.technique} failed twice: "
                f"{error!r}, then {retry_error!r}") from retry_error
        return metrics, time.perf_counter() - start

    def _run_serial(self, pending, unique, results, cached):
        from ..harness.runner import run_spec
        for spec in pending:
            start = time.perf_counter()
            try:
                metrics = run_spec(spec)
                status = "ok"
                retries = 0
            except Exception as error:
                metrics, _ = self._retry_in_parent(spec, error)
                status = "retried"
                retries = 1
            self._finish_job(spec, metrics, unique, results, cached,
                             wall_s=time.perf_counter() - start,
                             worker="parent", status=status, retries=retries)

    def _run_pool(self, pending, unique, results, cached):
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [(spec, pool.submit(_execute_payload, spec.to_dict()))
                       for spec in pending]
            # Collect in submission order: per-future result(timeout) keeps
            # the per-job timeout simple while the pool runs everything
            # concurrently behind it.
            from ..harness.metrics import Metrics
            for spec, future in futures:
                try:
                    payload = future.result(timeout=self.timeout)
                    metrics = Metrics.from_dict(payload["metrics"])
                    self._finish_job(spec, metrics, unique, results, cached,
                                     wall_s=payload["wall_s"],
                                     worker=payload["worker"], status="ok")
                except Exception as error:
                    # Worker crash (BrokenProcessPool), timeout, or an
                    # exception raised inside the job: one retry, in the
                    # parent so a poisoned pool can't eat it too.
                    future.cancel()
                    metrics, wall_s = self._retry_in_parent(spec, error)
                    self._finish_job(spec, metrics, unique, results, cached,
                                     wall_s=wall_s, worker="parent",
                                     status="retried", retries=1)
