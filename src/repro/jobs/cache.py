"""Disk-backed result cache keyed by JobSpec content hash + code version.

Layout::

    <cache_dir>/results/<salt>/<spec-key>.json    # one Metrics per file
    <cache_dir>/runs.jsonl                        # run ledger (see ledger.py)

The *salt* is a hash over every ``repro`` source file, so any code change
invalidates previous results wholesale -- stale entries from older builds
can never satisfy a lookup.  Entries are written atomically (temp file +
rename) so concurrent executors on the same cache directory are safe.

Every entry carries a sha256 checksum over its canonical metrics JSON:
a torn write, bit rot, or a hand-edited file degrades to a cache *miss*
(the spec is simply re-simulated) instead of crashing the executor or
silently feeding a sweep wrong ``Metrics``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from contextlib import contextmanager

try:
    import fcntl
except ImportError:              # non-POSIX: degrade to unlocked behaviour
    fcntl = None

_ENV_DIR = "REPRO_CACHE_DIR"
_code_salt = None


@contextmanager
def generation_lock(root_dir, *, exclusive=False):
    """Advisory file lock over a result-store root (``<root>/.lock``).

    Writers take the lock *shared* (atomic temp-file + rename already
    makes them safe against each other) and pruners take it *exclusive*,
    so a prune scan can never interleave with an in-flight ``put`` --
    previously a prune racing a concurrent writer could delete the
    writer's temp file between its write and its rename, turning the
    ``put`` into an ``os.replace`` crash, or evict an entry the writer
    had just published.  ``flock`` is advisory and per-open-file, so
    every acquisition opens the lock file fresh (thread- and
    process-safe); on platforms without ``fcntl`` this degrades to the
    historical unlocked behaviour.
    """
    if fcntl is None:
        yield
        return
    os.makedirs(root_dir, exist_ok=True)
    fd = os.open(os.path.join(root_dir, ".lock"),
                 os.O_RDWR | os.O_CREAT, 0o644)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)
        yield
    finally:
        os.close(fd)             # releases the flock


def default_cache_dir():
    """``$REPRO_CACHE_DIR`` > ``$XDG_CACHE_HOME/repro`` > ``~/.cache/repro``."""
    explicit = os.environ.get(_ENV_DIR)
    if explicit:
        return explicit
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")


def code_salt():
    """Hash of the whole ``repro`` package source (cached per process)."""
    global _code_salt
    if _code_salt is None:
        package_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        digest = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(package_dir)):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                digest.update(os.path.relpath(path, package_dir).encode())
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _code_salt = digest.hexdigest()[:12]
    return _code_salt


def metrics_checksum(metrics_dict):
    """sha256 over the canonical JSON form of a metrics dict."""
    blob = json.dumps(metrics_dict, sort_keys=True,
                      separators=(",", ":"), default=list)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Maps :class:`~repro.jobs.spec.JobSpec` -> cached ``Metrics``."""

    def __init__(self, cache_dir=None, salt=None):
        self.cache_dir = cache_dir or default_cache_dir()
        self.salt = salt or code_salt()
        self.results_dir = os.path.join(self.cache_dir, "results", self.salt)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0             # entries rejected by checksum/schema

    def _path(self, spec):
        return os.path.join(self.results_dir, f"{spec.key}.json")

    def _reject(self, spec, reason):
        """Corrupt entry: count it, warn, drop the file, miss."""
        self.corrupt += 1
        self.misses += 1
        warnings.warn(f"cache entry {spec.key}.json is corrupt ({reason}); "
                      f"treating as a miss and re-simulating",
                      RuntimeWarning, stacklevel=3)
        try:
            os.unlink(self._path(spec))
        except OSError:
            pass                     # concurrent eviction, read-only dir
        return None

    def get(self, spec):
        """Cached :class:`Metrics` for ``spec``, or ``None``.

        Any defect -- unreadable JSON, a missing or mismatching
        checksum, or a payload ``Metrics.from_dict`` cannot rebuild --
        degrades to a miss (the entry is discarded so the next ``put``
        replaces it), never an exception and never wrong metrics.
        """
        # Lazy import: repro.harness pulls in this package at import time.
        from ..harness.metrics import Metrics
        try:
            with open(self._path(spec)) as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            return self._reject(spec, "undecodable JSON")
        if not isinstance(payload, dict) or "metrics" not in payload:
            return self._reject(spec, "no metrics payload")
        recorded = payload.get("sha256")
        actual = metrics_checksum(payload["metrics"])
        if recorded != actual:
            return self._reject(
                spec, "checksum mismatch" if recorded else "no checksum")
        try:
            metrics = Metrics.from_dict(payload["metrics"])
        except Exception as error:
            # Valid JSON, right checksum, but a schema the current code
            # cannot rebuild (should be impossible within one salt
            # generation -- defend anyway).
            return self._reject(spec, f"schema mismatch: {error!r}")
        self.hits += 1
        return metrics

    def _lock_root(self):
        return os.path.join(self.cache_dir, "results")

    def put(self, spec, metrics):
        """Persist ``metrics`` atomically; concurrent writers are safe.

        The generation lock is held *shared* across the temp-file write
        and the rename, so a concurrent prune (which takes it exclusive)
        can never evict the entry -- or delete the temp file -- between
        the two steps.
        """
        os.makedirs(self.results_dir, exist_ok=True)
        metrics_dict = metrics.to_dict()
        payload = {"spec": spec.to_dict(), "metrics": metrics_dict,
                   "sha256": metrics_checksum(metrics_dict)}
        with generation_lock(self._lock_root()):
            fd, tmp_path = tempfile.mkstemp(dir=self.results_dir,
                                            suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(payload, handle)
                os.replace(tmp_path, self._path(spec))
            except BaseException:
                if os.path.exists(tmp_path):
                    os.unlink(tmp_path)
                raise

    # ------------------------------------------------------------------
    def stats(self):
        """Whole-directory view: entries/bytes per salt generation."""
        results_root = os.path.join(self.cache_dir, "results")
        generations = {}
        if os.path.isdir(results_root):
            for salt in sorted(os.listdir(results_root)):
                gen_dir = os.path.join(results_root, salt)
                if not os.path.isdir(gen_dir):
                    continue
                entries = [name for name in os.listdir(gen_dir)
                           if name.endswith(".json")]
                total = sum(
                    os.path.getsize(os.path.join(gen_dir, name))
                    for name in entries)
                generations[salt] = {"entries": len(entries), "bytes": total}
        return {
            "cache_dir": self.cache_dir,
            "current_salt": self.salt,
            "generations": generations,
            "session_hits": self.hits,
            "session_misses": self.misses,
            "session_corrupt": self.corrupt,
        }

    def prune(self):
        """Delete every *stale* generation (salt != current). Returns count.

        Any source change re-salts the cache, so old generations can
        never be read again; pruning reclaims their disk without losing
        results the current build could still reuse.
        """
        results_root = os.path.join(self.cache_dir, "results")
        removed = 0
        if not os.path.isdir(results_root):
            return removed
        # Exclusive generation lock across the whole scan: a concurrent
        # writer (shared lock) can never lose an entry -- or its
        # in-flight temp file -- to a racing prune.
        with generation_lock(self._lock_root(), exclusive=True):
            for salt in os.listdir(results_root):
                gen_dir = os.path.join(results_root, salt)
                if salt == self.salt or not os.path.isdir(gen_dir):
                    continue
                for dirpath, _dirnames, filenames in os.walk(gen_dir,
                                                             topdown=False):
                    for filename in filenames:
                        os.unlink(os.path.join(dirpath, filename))
                        removed += 1
                    os.rmdir(dirpath)
        return removed

    def prune_to_bytes(self, max_bytes):
        """Evict oldest-mtime entries of the *current* generation until it
        fits in ``max_bytes``.  Returns the number of entries removed.

        Stale generations are the business of :meth:`prune`; the size
        budget applies to results the current build could still reuse,
        trading the least-recently-written ones for disk space.
        """
        if not os.path.isdir(self.results_dir):
            return 0
        with generation_lock(self._lock_root(), exclusive=True):
            entries = []
            for name in sorted(os.listdir(self.results_dir)):
                if not name.endswith(".json"):
                    continue
                path = os.path.join(self.results_dir, name)
                try:
                    stat = os.stat(path)
                except FileNotFoundError:      # concurrent eviction
                    continue
                entries.append((stat.st_mtime, name, path, stat.st_size))
            entries.sort()                     # oldest first, name tie-break
            total = sum(size for _mtime, _name, _path, size in entries)
            removed = 0
            for _mtime, _name, path, size in entries:
                if total <= max_bytes:
                    break
                try:
                    os.unlink(path)
                except FileNotFoundError:
                    continue
                total -= size
                removed += 1
        return removed

    def clear(self):
        """Delete every cached result (all generations). Returns count."""
        results_root = os.path.join(self.cache_dir, "results")
        removed = 0
        if os.path.isdir(results_root):
            with generation_lock(self._lock_root(), exclusive=True):
                for dirpath, _dirnames, filenames in os.walk(results_root,
                                                             topdown=False):
                    for filename in filenames:
                        if filename == ".lock":
                            continue     # the generation-lock file itself
                        os.unlink(os.path.join(dirpath, filename))
                        removed += 1
                    if dirpath != results_root:
                        os.rmdir(dirpath)
        return removed


class NullCache:
    """Cache stand-in when caching is disabled (``--no-cache``)."""

    def __init__(self):
        self.hits = 0
        self.misses = 0

    def get(self, spec):
        self.misses += 1
        return None

    def put(self, spec, metrics):
        pass
