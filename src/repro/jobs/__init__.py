"""Experiment-execution engine: parallel runs, result cache, run ledger.

The paper's figures are cross-product sweeps (workloads x inputs x
techniques x ROB sizes); this package turns each point into a content-
addressed :class:`JobSpec`, executes batches of them on a process pool,
caches results on disk keyed by spec hash + code version, and logs every
job to a JSONL run ledger.  The figure code in
:mod:`repro.harness.experiments` only *enumerates* specs and joins the
returned metrics.
"""

from .cache import (NullCache, ResultCache, code_salt, default_cache_dir,
                    generation_lock, metrics_checksum)
from .context import (ExecutionContext, close_context, configure,
                      get_context, run_specs, set_context)
from .executor import Executor, JobError, ProgressLine, SweepFailureReport
from .ledger import NullLedger, RunLedger
from .spec import JobSpec

__all__ = [
    "ExecutionContext",
    "Executor",
    "JobError",
    "JobSpec",
    "NullCache",
    "NullLedger",
    "ProgressLine",
    "ResultCache",
    "RunLedger",
    "SweepFailureReport",
    "close_context",
    "code_salt",
    "configure",
    "default_cache_dir",
    "generation_lock",
    "get_context",
    "metrics_checksum",
    "run_specs",
    "set_context",
]
