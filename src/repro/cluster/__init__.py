"""Distributed sweep execution over a TCP worker protocol.

``repro.cluster`` scales the ``repro.jobs`` execution engine past one
machine: a :class:`Coordinator` leases content-addressed ``JobSpec``s to
workers over a length-prefixed JSON-over-TCP protocol
(:mod:`.protocol`), with heartbeat liveness, per-job lease timeouts,
bounded exponential-backoff reassignment, and code-salt verification at
handshake.  Workers are plain ``repro cluster worker --connect
HOST:PORT`` processes -- loopback subprocesses for tests and CI, remote
hosts for full-scale sweeps.  :class:`ClusterExecutor` plugs the whole
thing in behind the same ``Executor.run(specs)`` contract the local
process pool implements, and the ledger-learned :class:`CostModel`
orders dispatch longest-expected-first for both backends.
"""

from .coordinator import ClusterError, Coordinator, WorkerHandle
from .costmodel import CostModel
from .executor import ClusterExecutor
from .protocol import (AuthenticationError, Connection, MAX_MESSAGE_BYTES,
                       PROTOCOL_VERSION, ProtocolError, authenticate_client,
                       compute_mac, default_secret, dial, parse_address,
                       query_status)
from .scheduler import cost_model_for, longest_first
from .tls import (PinnedCertificateError, TLSConfig, TLSConfigError,
                  certificate_fingerprint)
from .worker import Worker, WorkerRejected

__all__ = [
    "AuthenticationError",
    "ClusterError",
    "ClusterExecutor",
    "Connection",
    "Coordinator",
    "CostModel",
    "MAX_MESSAGE_BYTES",
    "PROTOCOL_VERSION",
    "PinnedCertificateError",
    "ProtocolError",
    "TLSConfig",
    "TLSConfigError",
    "Worker",
    "WorkerHandle",
    "WorkerRejected",
    "authenticate_client",
    "certificate_fingerprint",
    "compute_mac",
    "cost_model_for",
    "default_secret",
    "dial",
    "longest_first",
    "parse_address",
    "query_status",
]
