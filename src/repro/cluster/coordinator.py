"""Cluster coordinator: worker registry, job leases, fault tolerance.

The coordinator owns the TCP listening socket.  Workers dial in (local
subprocesses spawned by :meth:`Coordinator.spawn_local_workers`, or
remote hosts running ``repro cluster worker --connect``), handshake with
their code salt -- a worker built from a different source tree is
rejected, so it can never serve results the cache would mis-attribute --
and then hold at most one *lease* at a time.

Fault model (see DESIGN.md for the full matrix):

* worker crash / SIGKILL mid-job: the reader thread sees EOF, the lease
  is reassigned to another worker after a bounded exponential backoff;
* network partition (no FIN): the worker misses heartbeats, the
  coordinator declares it dead after ``heartbeat_timeout`` and reassigns;
* stuck job: the lease's ``job_timeout`` deadline expires, the worker is
  disconnected and the job reassigned;
* job exception on a healthy worker: ``RESULT {ok: false}`` comes back
  and the job is requeued (the worker stays in the pool);
* all workers gone: after ``worker_grace`` seconds with an empty
  registry the remaining jobs are reported as failures so the executor
  can fall back to running them in the parent process.

A job that fails ``max_attempts`` times is handed back as failed rather
than retried forever.  Results are streamed to the caller via a callback
on the *coordinator's* thread, so the run ledger and result cache stay
single-writer.
"""

from __future__ import annotations

import os
import queue
import socket
import subprocess
import sys
import threading
import time

from ..analysis.threadsan import make_lock
from .protocol import (AUTH, CHALLENGE, Connection, DRAIN, GOODBYE,
                       HEARTBEAT, HELLO, JOB, PROTOCOL_VERSION,
                       ProtocolError, REJECT, RESULT, SESSION, STATUS,
                       STATUS_REPLY, WELCOME, default_secret, verify_mac)


class ClusterError(RuntimeError):
    """Cluster-level failure (no workers, bad bind, handshake trouble)."""


class WorkerHandle:
    """Coordinator-side state for one connected worker.

    A worker holds up to ``lanes`` concurrent leases (it declared the
    capacity in its HELLO; plain workers say 1, batch-lane workers more).
    The lease ``deadline`` is per-worker, not per-job: it is armed when a
    job is leased and refreshed every time a result lands, so it bounds
    *time without progress* -- the natural generalization of the old
    one-lease expiry, which a lockstep batch (where every job's wall
    clock covers the whole batch) would otherwise trip constantly.
    """

    def __init__(self, connection, name, host=None, pid=None, lanes=1):
        self.connection = connection
        self.name = name
        self.host = host
        self.pid = pid
        self.lanes = max(1, int(lanes or 1))
        self.last_seen = time.monotonic()
        self.alive = True
        self.killing = False         # close() issued, death event pending
        self.jobs = {}               # job key -> leased _Job
        self.deadline = None         # monotonic progress expiry, or None
        self.done = 0

    @property
    def label(self):
        return self.name or self.connection.peer


class _Job:
    """Scheduling record for one spec inside ``execute``."""

    __slots__ = ("spec", "attempts", "not_before", "last_error")

    def __init__(self, spec):
        self.spec = spec
        self.attempts = 0            # completed lease attempts that failed
        self.not_before = 0.0        # backoff gate (monotonic seconds)
        self.last_error = None

    @property
    def key(self):
        return self.spec.key


class Coordinator:
    """Accepts workers, leases jobs, reassigns on failure."""

    #: Sentinel: "no secret passed, fall back to $REPRO_CLUSTER_SECRET".
    _SECRET_FROM_ENV = object()

    def __init__(self, host="127.0.0.1", port=0, *, job_timeout=None,
                 heartbeat_timeout=15.0, retry_base=0.25, retry_cap=5.0,
                 max_attempts=3, worker_grace=60.0, poll_interval=0.05,
                 secret=_SECRET_FROM_ENV, tls=None):
        self.host = host
        self.port = port
        self.job_timeout = job_timeout
        # Shared handshake secret: every dialer (worker or status client)
        # must answer a CHALLENGE with HMAC-SHA256(secret, nonce) before
        # any other frame is processed.  None disables authentication.
        if secret is Coordinator._SECRET_FROM_ENV:
            secret = default_secret()
        self.secret = secret or None
        # Server-side TLSConfig, or None for plaintext.  Accepted sockets
        # are wrapped before any frame is read, so the HMAC handshake
        # (and everything after it) runs inside the encrypted channel.
        self.tls = tls
        #: Serve-daemon hook: a callable ``(connection, session_frame)``
        #: that takes ownership of a client connection whose first frame
        #: is SESSION; None (per-sweep coordinators) closes such dialers.
        self.client_handler = None
        #: Serve-daemon hook: extra fields merged into :meth:`status`
        #: replies (uptime, sessions, fleet) for `repro cluster status`.
        self.status_extra = None
        self.heartbeat_timeout = heartbeat_timeout
        self.retry_base = retry_base
        self.retry_cap = retry_cap
        self.max_attempts = max(1, int(max_attempts))
        self.worker_grace = worker_grace
        self.poll_interval = poll_interval
        self._events = queue.Queue()
        # Guards _workers (accept/reader/serve threads) and _progress
        # (updated by execute(), read by status() on connection threads).
        self._lock = make_lock("Coordinator._lock")
        self._workers = []
        self._spawned = []
        self._server = None
        self._accept_thread = None
        self._closing = False
        self._progress = {"total": 0, "done": 0, "failed": 0, "running": 0,
                          "queued": 0}

    # -- lifecycle -----------------------------------------------------
    @property
    def address(self):
        return f"{self.host}:{self.port}"

    def start(self):
        """Bind + listen; returns the (host, port) actually bound."""
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            server.bind((self.host, self.port))
        except OSError as error:
            server.close()
            raise ClusterError(
                f"cannot bind coordinator to {self.address}: {error}"
            ) from error
        server.listen(64)
        self.port = server.getsockname()[1]
        self._server = server
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="cluster-accept", daemon=True)
        self._accept_thread.start()
        return self.host, self.port

    def close(self):
        """Drain workers, stop the server, reap spawned subprocesses."""
        if self._closing:
            return
        self._closing = True
        self.drain()
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
        for process in self._spawned:
            try:
                process.wait(timeout=5)
            except subprocess.TimeoutExpired:
                process.terminate()
                try:
                    process.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait()
        self._spawned = []
        with self._lock:
            workers = list(self._workers)
            self._workers = []
        for worker in workers:
            worker.connection.close()

    def drain(self):
        """Ask every connected worker to finish its job and exit."""
        with self._lock:
            workers = [w for w in self._workers if w.alive]
        for worker in workers:
            try:
                worker.connection.send(DRAIN)
            except OSError:
                pass

    # -- worker management ---------------------------------------------
    def spawn_local_workers(self, count, extra_args=()):
        """Start ``count`` loopback worker subprocesses; returns Popens."""
        package_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        env = os.environ.copy()
        existing = env.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = package_root + (
                os.pathsep + existing if existing else "")
        if self.secret:
            # Hand the handshake secret to loopback workers via the
            # environment, never argv (argv is world-readable in ps).
            env["REPRO_CLUSTER_SECRET"] = self.secret
        if self.tls is not None:
            # Children pin our certificate fingerprint -- trust without
            # distributing any file.
            env.update(self.tls.child_environment())
        command = [sys.executable, "-m", "repro", "cluster", "worker",
                   "--connect", f"{self.host}:{self.port}"]
        command.extend(extra_args)
        processes = [subprocess.Popen(command, env=env)
                     for _ in range(count)]
        self._spawned.extend(processes)
        return processes

    def live_workers(self):
        with self._lock:
            return [w for w in self._workers if w.alive]

    def wait_for_workers(self, count, timeout=60.0):
        """Block until ``count`` workers are registered (or raise)."""
        deadline = time.monotonic() + timeout
        while True:
            live = len(self.live_workers())
            if live >= count:
                return live
            if time.monotonic() >= deadline:
                raise ClusterError(
                    f"only {live} of {count} worker(s) connected to "
                    f"{self.address} within {timeout:.0f}s")
            time.sleep(0.02)

    # -- accept / reader threads ---------------------------------------
    def _accept_loop(self):
        while not self._closing:
            try:
                sock, _addr = self._server.accept()
            except OSError:
                return                     # server socket closed
            thread = threading.Thread(target=self._serve_connection,
                                      args=(sock,), daemon=True)
            thread.start()

    def _serve_connection(self, sock):
        try:
            sock.settimeout(10.0)
            if self.tls is not None:
                # Handshake failures (plaintext dialer, bad client cert)
                # are OSErrors; the dialer is dropped before any frame.
                sock = self.tls.wrap(sock)
        except (OSError, ValueError):
            try:
                sock.close()
            except OSError:
                pass
            return
        connection = Connection(sock)
        try:
            if not self._authenticate(connection):
                # Drain until the dialer has read the REJECT and closed:
                # closing first can RST away the queued REJECT while the
                # dialer's HELLO is still in flight, and it would see a
                # reset instead of the rejection reason.
                try:
                    while connection.recv() is not None:
                        pass
                except (OSError, ProtocolError):
                    pass
                connection.close()
                return
            message = connection.recv()
            sock.settimeout(None)
        except (OSError, ProtocolError):
            connection.close()
            return
        if message is None:
            connection.close()
            return
        kind = message.get("type")
        if kind == STATUS:
            try:
                connection.send(STATUS_REPLY, **self.status())
            except OSError:
                pass
            connection.close()
            return
        if kind == SESSION and self.client_handler is not None:
            # Serve daemon: this thread becomes the session's reader
            # loop; the handler owns the connection from here on.
            self.client_handler(connection, message)
            return
        if kind != HELLO:
            connection.close()
            return
        self._register_worker(connection, message)

    def _authenticate(self, connection):
        """Shared-secret gate, before HELLO/STATUS is even read.

        With no secret configured this is a no-op.  Otherwise the dialer
        must answer a fresh-nonce CHALLENGE with the right HMAC; anything
        else (a HELLO from an unauthenticated worker, a bad MAC) is
        rejected here, so an untrusted dialer never reaches registration.
        """
        if not self.secret:
            return True
        nonce = os.urandom(16).hex()
        connection.send(CHALLENGE, nonce=nonce)
        answer = connection.recv()
        if answer is None:
            return False
        if answer.get("type") != AUTH:
            reason = (f"authentication required (got {answer.get('type')!r} "
                      f"before auth); dial with --secret")
        elif not verify_mac(self.secret, nonce, answer.get("mac")):
            reason = "authentication failed: wrong shared secret"
        else:
            return True
        print(f"[cluster] rejecting unauthenticated dialer "
              f"{connection.peer}: {reason}", file=sys.stderr)
        try:
            connection.send(REJECT, reason=reason)
        except OSError:
            pass
        return False

    def _expected_salt(self):
        from ..jobs.cache import code_salt
        return code_salt()

    def _register_worker(self, connection, hello):
        expected = self._expected_salt()
        offered = hello.get("salt")
        if hello.get("version") != PROTOCOL_VERSION:
            reason = (f"protocol version mismatch (coordinator "
                      f"{PROTOCOL_VERSION}, worker {hello.get('version')})")
        elif offered != expected:
            reason = (f"code salt mismatch (coordinator {expected}, worker "
                      f"{offered}): update the worker's source tree")
        else:
            reason = None
        if reason is not None:
            print(f"[cluster] rejecting worker "
                  f"{hello.get('worker')}: {reason}", file=sys.stderr)
            try:
                connection.send(REJECT, reason=reason)
            except OSError:
                pass
            connection.close()
            return
        worker = WorkerHandle(connection, name=hello.get("worker"),
                              host=hello.get("host"), pid=hello.get("pid"),
                              lanes=hello.get("lanes", 1))
        with self._lock:
            self._workers.append(worker)
        try:
            connection.send(WELCOME, coordinator=self.address,
                            version=PROTOCOL_VERSION)
        except OSError:
            self._events.put(("dead", worker, "welcome send failed"))
            return
        self._events.put(("join", worker, None))
        self._reader_loop(worker)

    def _reader_loop(self, worker):
        connection = worker.connection
        while True:
            try:
                message = connection.recv()
            except (OSError, ProtocolError) as error:
                self._events.put(("dead", worker, repr(error)))
                return
            if message is None:
                self._events.put(("dead", worker, "connection closed"))
                return
            kind = message.get("type")
            worker.last_seen = time.monotonic()
            if kind == RESULT:
                self._events.put(("result", worker, message))
            elif kind == GOODBYE:
                self._events.put(
                    ("left", worker, message.get("reason", "goodbye")))
                return
            elif kind == HEARTBEAT:
                # Echo heartbeats so the worker sees periodic traffic and
                # can bound its recv timeout: a partitioned coordinator
                # stops echoing, which is how the worker tells "idle"
                # from "dead" instead of blocking on recv forever.
                try:
                    connection.send(HEARTBEAT)
                except OSError:
                    pass             # death surfaces via recv shortly
            # Unknown types only refresh last_seen (forward compat).

    # -- scheduling ----------------------------------------------------
    def execute(self, specs, on_result):
        """Run ``specs`` (already deduplicated, in dispatch-priority order).

        ``on_result(spec, metrics, worker=..., retries=..., wall_s=...)``
        is invoked on this thread as each job completes.  Returns a dict
        ``key -> (spec, error, attempts)`` for jobs that exhausted their
        retry budget or ran out of workers.
        """
        from ..harness.metrics import Metrics
        jobs = [_Job(spec) for spec in specs]
        by_key = {job.key: job for job in jobs}
        ready = list(jobs)
        completed = set()
        failed = {}
        with self._lock:
            self._progress.update(total=len(jobs), done=0, failed=0)
        last_live = time.monotonic()

        def settle(job, error, now):
            """A lease attempt failed: back off + requeue, or give up."""
            job.attempts += 1
            job.last_error = error
            if job.attempts >= self.max_attempts:
                failed[job.key] = (job.spec, error, job.attempts)
            else:
                backoff = min(self.retry_cap,
                              self.retry_base * (2 ** (job.attempts - 1)))
                job.not_before = now + backoff
                ready.append(job)

        while len(completed) + len(failed) < len(jobs):
            now = time.monotonic()
            for worker, reason in self._expired_workers(now):
                worker.killing = True
                worker.connection.close()   # reader thread emits "dead"
                print(f"[cluster] disconnecting worker {worker.label}: "
                      f"{reason}", file=sys.stderr)
            self._dispatch(ready, now)
            with self._lock:
                self._progress.update(
                    done=len(completed), failed=len(failed),
                    running=sum(1 for j in jobs
                                if j.key not in completed
                                and j.key not in failed) - len(ready),
                    queued=len(ready))
            if self.live_workers():
                last_live = now
            elif ready and now - last_live > self.worker_grace:
                for job in ready:
                    failed[job.key] = (
                        job.spec,
                        f"no live workers for {self.worker_grace:.0f}s",
                        job.attempts)
                ready.clear()
                continue
            try:
                kind, worker, payload = self._events.get(
                    timeout=self.poll_interval)
            except queue.Empty:
                continue
            if kind == "join":
                continue
            if kind == "result":
                key = payload.get("job_id")
                job = worker.jobs.pop(key, None)
                worker.deadline = (time.monotonic() + self.job_timeout
                                   if worker.jobs and self.job_timeout
                                   else None)
                worker.done += 1
                if job is None or key in completed \
                        or key in failed or key not in by_key:
                    continue               # stale result from a prior run
                if payload.get("ok"):
                    completed.add(key)
                    on_result(job.spec,
                              Metrics.from_dict(payload["metrics"]),
                              worker=worker.label, retries=job.attempts,
                              wall_s=payload.get("wall_s", 0.0))
                else:
                    settle(job, payload.get("error", "worker error"),
                           time.monotonic())
            elif kind in ("dead", "left"):
                with self._lock:
                    worker.alive = False
                    if worker in self._workers:
                        self._workers.remove(worker)
                worker.connection.close()
                lost = list(worker.jobs.values())
                worker.jobs.clear()
                worker.deadline = None
                for job in lost:
                    if job.key not in completed and job.key not in failed \
                            and job.key in by_key:
                        settle(job,
                               f"worker {worker.label} {kind}: {payload}",
                               time.monotonic())
        with self._lock:
            self._progress.update(done=len(completed), failed=len(failed),
                                  running=0, queued=0)
        return failed

    def _expired_workers(self, now):
        expired = []
        with self._lock:
            workers = [w for w in self._workers if w.alive and not w.killing]
        for worker in workers:
            if worker.deadline is not None and now > worker.deadline:
                expired.append((worker, "job lease timed out"))
            elif now - worker.last_seen > self.heartbeat_timeout:
                expired.append((worker, "heartbeat timeout"))
        return expired

    def _dispatch(self, ready, now):
        """Lease highest-priority eligible jobs onto free worker lanes.

        Breadth-first: one job per worker per pass, so a sweep smaller
        than the fleet's total lane count spreads across workers instead
        of filling the first batch worker's lanes end-to-end.
        """
        leased = True
        while leased:
            leased = False
            for worker in self.live_workers():
                if worker.killing or len(worker.jobs) >= worker.lanes:
                    continue
                job = None
                for candidate in ready:
                    if candidate.not_before <= now:
                        job = candidate
                        break
                if job is None:
                    return
                try:
                    worker.connection.send(JOB, job_id=job.key,
                                           spec=job.spec.to_dict())
                except OSError as error:
                    worker.killing = True
                    worker.connection.close()
                    self._events.put(("dead", worker,
                                      f"send failed: {error}"))
                    continue
                ready.remove(job)
                worker.jobs[job.key] = job
                worker.deadline = (now + self.job_timeout
                                   if self.job_timeout else None)
                leased = True

    # -- introspection -------------------------------------------------
    def status(self):
        now = time.monotonic()
        with self._lock:
            workers = [{
                "name": worker.label,
                "host": worker.host,
                "pid": worker.pid,
                "state": "busy" if worker.jobs else "idle",
                "lanes": worker.lanes,
                "active_jobs": len(worker.jobs),
                "jobs_done": worker.done,
                "last_seen_s": round(now - worker.last_seen, 3),
            } for worker in self._workers if worker.alive]
            progress = dict(self._progress)
        info = {"address": self.address,
                "workers": workers,
                "jobs": progress}
        if self.status_extra is not None:
            info.update(self.status_extra())
        return info
