"""Ledger-learned per-spec wall-time model for sweep scheduling.

Historical run-ledger records carry the wall time, workload, technique,
graph parameter, config digest and instruction budget of every executed
job.  The model learns a *seconds-per-instruction rate* at four levels
of specificity::

    (workload, graph, technique, config_digest)   exact configuration
    (workload, graph, technique)                  same point, any config
    (technique,)                   same engine, different workload/input
    ()                             global mean over everything observed

and predicts ``rate * max_instructions`` for a new spec using the most
specific level with data.  The digest level matters for uarch-parameter
sweeps: a 192-entry-ROB dvr run and a 512-entry one share a (workload,
graph, technique) point but not a wall-time rate.  Rates (rather than
raw wall times) transfer across instruction budgets, so a smoke-scale
ledger still orders a full-scale sweep sensibly.  With no history at
all every spec gets the same default cost and scheduling degrades to
the enumeration order.

Fitted rates can be persisted to a JSON sidecar (:meth:`CostModel.save`
/ :meth:`CostModel.load`, normally ``costmodel.json`` next to the run
ledger) so a fresh coordinator or serve daemon starts warm instead of
re-reading -- or, after a ledger prune, losing -- the whole history.
"""

from __future__ import annotations

import json
import os


class CostModel:
    """Predicts wall-clock seconds for a :class:`JobSpec`."""

    #: Cost assigned when no ledger history matches at any level.
    DEFAULT_COST = 1.0

    #: Sidecar file format version.
    SIDECAR_VERSION = 1

    def __init__(self):
        self._sums = {}              # feature key -> summed rate
        self._counts = {}            # feature key -> observation count

    def __len__(self):
        """Number of distinct exact (workload, graph, technique) points."""
        return sum(1 for key in self._counts if len(key) == 3)

    # ------------------------------------------------------------------
    @staticmethod
    def _keys(workload, graph, technique, digest=None):
        keys = ((workload, graph, technique), (technique,), ())
        if digest is not None:
            return ((workload, graph, technique, digest),) + keys
        return keys

    def observe(self, workload, graph, technique, rate, digest=None):
        """Fold one seconds-per-instruction observation into the model."""
        for key in self._keys(workload, graph, technique, digest):
            self._sums[key] = self._sums.get(key, 0.0) + rate
            self._counts[key] = self._counts.get(key, 0) + 1

    @classmethod
    def from_records(cls, records):
        """Build a model from run-ledger record dicts.

        Only executed records count -- cache hits measure lookup time,
        not simulation time -- and records from ledgers predating the
        ``max_instructions`` field are skipped.
        """
        model = cls()
        for record in records:
            if record.get("cache") not in ("miss", "off"):
                continue
            if record.get("status") == "failed":
                continue
            wall_s = record.get("wall_s")
            instructions = record.get("max_instructions")
            if not wall_s or not instructions:
                continue
            params = record.get("params") or {}
            model.observe(record.get("workload"), params.get("graph"),
                          record.get("technique"), wall_s / instructions,
                          digest=record.get("config_digest"))
        return model

    def fold_records(self, records):
        """Fold more ledger records into this (possibly loaded) model."""
        extra = type(self).from_records(records)
        for key, total in extra._sums.items():
            self._sums[key] = self._sums.get(key, 0.0) + total
            self._counts[key] = self._counts.get(key, 0) \
                + extra._counts[key]
        return self

    @classmethod
    def from_ledger(cls, path):
        from ..jobs.ledger import RunLedger
        return cls.from_records(RunLedger.read(path))

    # ------------------------------------------------------------------
    def predict(self, spec):
        """Expected wall seconds for ``spec`` (most specific level wins)."""
        from ..config import config_digest
        instructions = getattr(spec.config, "max_instructions", 0) or 0
        for key in self._keys(spec.workload, spec.params.get("graph"),
                              spec.technique, config_digest(spec.config)):
            count = self._counts.get(key)
            if count:
                return (self._sums[key] / count) * instructions
        return self.DEFAULT_COST

    # ------------------------------------------------------------------
    # Sidecar persistence
    # ------------------------------------------------------------------
    def save(self, path, ledger_path=None, ledger_rows=0):
        """Write fitted rates to a JSON sidecar (atomically).

        ``ledger_path``/``ledger_rows`` record how much of which run
        ledger is already folded in, so the next load can fold only the
        ledger's new suffix instead of double-counting history.
        """
        payload = {
            "version": self.SIDECAR_VERSION,
            "ledger": {"path": ledger_path, "rows": int(ledger_rows)},
            "rates": [[list(key), self._sums[key], self._counts[key]]
                      for key in sorted(self._sums)],
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(payload, handle)
            handle.write("\n")
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path):
        """Read a sidecar -> ``(model, ledger_state)``.

        A missing, corrupt or future-versioned sidecar yields
        ``(None, None)`` -- the caller refits from the ledger; the model
        is a scheduling hint, never worth failing a sweep over.
        """
        try:
            with open(path) as handle:
                payload = json.load(handle)
            if payload.get("version") != cls.SIDECAR_VERSION:
                return None, None
            model = cls()
            for key, total, count in payload["rates"]:
                model._sums[tuple(key)] = float(total)
                model._counts[tuple(key)] = int(count)
            state = payload.get("ledger") or {}
            return model, {"path": state.get("path"),
                           "rows": int(state.get("rows") or 0)}
        except (OSError, ValueError, TypeError, KeyError):
            return None, None
