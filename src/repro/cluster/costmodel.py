"""Ledger-learned per-spec wall-time model for sweep scheduling.

Historical run-ledger records carry the wall time, workload, technique,
graph parameter and instruction budget of every executed job.  The model
learns a *seconds-per-instruction rate* at three levels of specificity::

    (workload, graph, technique)   exact point measured before
    (technique,)                   same engine, different workload/input
    ()                             global mean over everything observed

and predicts ``rate * max_instructions`` for a new spec using the most
specific level with data.  Rates (rather than raw wall times) transfer
across instruction budgets, so a smoke-scale ledger still orders a
full-scale sweep sensibly.  With no history at all every spec gets the
same default cost and scheduling degrades to the enumeration order.
"""

from __future__ import annotations


class CostModel:
    """Predicts wall-clock seconds for a :class:`JobSpec`."""

    #: Cost assigned when no ledger history matches at any level.
    DEFAULT_COST = 1.0

    def __init__(self):
        self._sums = {}              # feature key -> summed rate
        self._counts = {}            # feature key -> observation count

    def __len__(self):
        """Number of distinct exact (workload, graph, technique) points."""
        return sum(1 for key in self._counts if len(key) == 3)

    # ------------------------------------------------------------------
    @staticmethod
    def _keys(workload, graph, technique):
        return ((workload, graph, technique), (technique,), ())

    def observe(self, workload, graph, technique, rate):
        """Fold one seconds-per-instruction observation into the model."""
        for key in self._keys(workload, graph, technique):
            self._sums[key] = self._sums.get(key, 0.0) + rate
            self._counts[key] = self._counts.get(key, 0) + 1

    @classmethod
    def from_records(cls, records):
        """Build a model from run-ledger record dicts.

        Only executed records count -- cache hits measure lookup time,
        not simulation time -- and records from ledgers predating the
        ``max_instructions`` field are skipped.
        """
        model = cls()
        for record in records:
            if record.get("cache") not in ("miss", "off"):
                continue
            if record.get("status") == "failed":
                continue
            wall_s = record.get("wall_s")
            instructions = record.get("max_instructions")
            if not wall_s or not instructions:
                continue
            params = record.get("params") or {}
            model.observe(record.get("workload"), params.get("graph"),
                          record.get("technique"), wall_s / instructions)
        return model

    @classmethod
    def from_ledger(cls, path):
        from ..jobs.ledger import RunLedger
        return cls.from_records(RunLedger.read(path))

    # ------------------------------------------------------------------
    def predict(self, spec):
        """Expected wall seconds for ``spec`` (most specific level wins)."""
        instructions = getattr(spec.config, "max_instructions", 0) or 0
        for key in self._keys(spec.workload, spec.params.get("graph"),
                              spec.technique):
            count = self._counts.get(key)
            if count:
                return (self._sums[key] / count) * instructions
        return self.DEFAULT_COST
