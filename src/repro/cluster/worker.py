"""Cluster worker: dial a coordinator, run leased jobs, stream results.

A worker owns no cache and no ledger -- it connects to the coordinator
(``repro cluster worker --connect HOST:PORT``), authenticates its source
tree via the code salt, then loops: receive a ``JOB`` frame, simulate it
with :func:`repro.harness.runner.run_spec`, send the ``RESULT`` back.
A daemon thread heartbeats while a simulation runs (CPython's preemptive
thread switching guarantees it gets scheduled), so the coordinator can
tell a busy worker from a dead one.

Job exceptions are reported as ``RESULT {ok: false}`` and never kill the
worker; a lost connection triggers bounded reconnect attempts
(``--reconnect N``), which is also how a drained worker rejoins a new
sweep on the same coordinator address.

The socket always carries a bounded timeout: the coordinator echoes
every heartbeat, so a healthy connection sees traffic at least every
``heartbeat_interval`` seconds even when the worker is idle.  If no
frame arrives for ``coordinator_timeout`` seconds the coordinator is
declared dead (crashed mid-job, or a one-way partition swallowed its
frames) and the worker exits nonzero with a one-line message instead of
hanging on recv forever.

With ``--lanes N`` (N > 1) the worker advertises N concurrent leases in
its HELLO and runs them as one lockstep
:class:`~repro.lanes.batch.LaneBatch` instead of one ``run_spec`` call
per frame: the coordinator's lease burst is gathered into a batch,
specs sharing a build template are cloned instead of rebuilt, and a
``RESULT`` streams back the moment each lane retires -- the wire
protocol is unchanged, there are just several jobs in flight per
connection.
"""

from __future__ import annotations

import os
import socket
import sys
import threading
import time

from ..analysis.threadsan import make_lock
from .protocol import (AuthenticationError, CHALLENGE, Connection, DRAIN,
                       GOODBYE, HEARTBEAT, HELLO, JOB, PROTOCOL_VERSION,
                       ProtocolError, REJECT, RESULT, WELCOME,
                       authenticate_client, default_secret, parse_address)


class WorkerRejected(RuntimeError):
    """The coordinator refused the handshake (auth/salt/version mismatch)."""


def _default_run_job(spec):
    from ..harness.runner import run_spec
    return run_spec(spec)


class Worker:
    """One worker loop; ``serve()`` blocks until drained or disconnected."""

    #: Sentinel: "no secret passed, fall back to $REPRO_CLUSTER_SECRET".
    _SECRET_FROM_ENV = object()
    #: Sentinel: "no TLS config passed, fall back to $REPRO_TLS_*".
    _TLS_FROM_ENV = object()

    def __init__(self, address, worker_id=None, max_jobs=None, reconnect=0,
                 reconnect_delay=0.5, heartbeat_interval=2.0, run_job=None,
                 salt=None, quiet=None, secret=_SECRET_FROM_ENV,
                 socket_timeout=5.0, coordinator_timeout=20.0,
                 injector=None, tls=_TLS_FROM_ENV, lanes=1,
                 gather_window=0.25):
        self.host, self.port = parse_address(address)
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.max_jobs = max_jobs
        self.reconnect = max(0, int(reconnect))
        self.reconnect_delay = reconnect_delay
        self.heartbeat_interval = heartbeat_interval
        # Bounded recv timeout + the staleness window after which a
        # silent coordinator (no frames, not even heartbeat echoes) is
        # declared dead.  The window must comfortably exceed one
        # heartbeat round-trip; the job runner never blocks recv, so a
        # busy worker is unaffected.
        self.socket_timeout = socket_timeout
        self.coordinator_timeout = max(coordinator_timeout,
                                       3 * heartbeat_interval)
        self._run_job = run_job or _default_run_job
        self._salt = salt            # tests override; None = real code_salt()
        if secret is Worker._SECRET_FROM_ENV:
            secret = default_secret()
        self.secret = secret or None
        # Client-side TLSConfig (CA verify or fingerprint pinning), or
        # None for plaintext.  Spawned loopback workers inherit the
        # coordinator's trust material through $REPRO_TLS_*.
        if tls is Worker._TLS_FROM_ENV:
            from .tls import TLSConfig
            tls = TLSConfig.from_env()
        self.tls = tls or None
        # Optional repro.faults.FaultInjector wrapping this worker's
        # connection (frame drop/delay/corruption/partition injection).
        self.injector = injector
        if quiet is None:
            quiet = os.environ.get("REPRO_PROGRESS", "") == "0"
        self.quiet = quiet
        # Lane capacity advertised in HELLO.  1 = classic one-job-at-a-
        # time worker; > 1 switches the JOB path to gather-and-batch.
        # ``gather_window`` bounds how long the worker waits for the
        # rest of a lease burst before running a partial batch.
        self.lanes = max(1, int(lanes or 1))
        self.gather_window = gather_window
        # Guards jobs_done: bumped on the serve loop, read by the
        # heartbeat thread for HEARTBEAT frames.
        self._lock = make_lock("Worker._lock")
        self.jobs_done = 0

    # ------------------------------------------------------------------
    def _log(self, text):
        if not self.quiet:
            print(f"[worker {self.worker_id}] {text}", file=sys.stderr,
                  flush=True)

    def _code_salt(self):
        if self._salt is not None:
            return self._salt
        from ..jobs.cache import code_salt
        return code_salt()

    # ------------------------------------------------------------------
    def serve(self):
        """Run until drained (0), rejected (2), or connection lost (1)."""
        attempts = self.reconnect
        while True:
            try:
                return self._serve_once()
            except WorkerRejected as error:
                self._log(f"rejected by coordinator: {error}")
                return 2
            except AuthenticationError as error:
                # Wrong/missing secret is a config problem, not a flaky
                # network: retrying would spam the coordinator's log.
                self._log(f"authentication failed: {error}")
                return 2
            except (OSError, ProtocolError) as error:
                if attempts <= 0:
                    self._log(f"connection lost: {error}")
                    return 1
                attempts -= 1
                self._log(f"reconnecting after error ({error}); "
                          f"{attempts} attempt(s) left")
                time.sleep(self.reconnect_delay)

    def _serve_once(self):
        sock = socket.create_connection((self.host, self.port), timeout=10)
        # Keep a bounded timeout for the whole session (not settimeout
        # (None)): a coordinator that dies mid-job or gets partitioned
        # away must not hang this worker on send/recv forever.
        sock.settimeout(self.socket_timeout)
        if self.tls is not None:
            # TLS first, so the HMAC handshake (and every frame after)
            # runs inside the encrypted channel.  A pinning mismatch is
            # a PinnedCertificateError (an SSLError/OSError) and lands
            # in serve()'s reconnect path like any dead connection.
            sock = self.tls.wrap(sock)
        connection = Connection(sock)
        if self.injector is not None:
            connection = self.injector.wrap_connection(
                connection, scope=self.worker_id)
        try:
            authenticate_client(connection, self.secret)
        except socket.timeout:
            # A coordinator running *without* a secret never challenges:
            # it is silently waiting for our HELLO while we wait for its
            # CHALLENGE.  Surface the config mismatch instead of retrying.
            raise WorkerRejected(
                f"no auth challenge within {self.socket_timeout:.0f}s -- "
                f"a secret is configured here but the coordinator appears "
                f"to run without one") from None
        connection.send(HELLO, worker=self.worker_id,
                        host=socket.gethostname(), pid=os.getpid(),
                        salt=self._code_salt(), version=PROTOCOL_VERSION,
                        lanes=self.lanes)
        reply = self._recv_bounded(connection)
        if reply is None:
            raise ProtocolError("coordinator closed during handshake")
        if reply.get("type") == REJECT:
            raise WorkerRejected(reply.get("reason", "no reason given"))
        if reply.get("type") == CHALLENGE:
            # We dialed without a secret and the coordinator wants one.
            raise WorkerRejected(
                "coordinator requires a shared secret "
                "(--secret / $REPRO_CLUSTER_SECRET)")
        if reply.get("type") != WELCOME:
            raise ProtocolError(f"expected welcome, got {reply.get('type')!r}")
        self._log(f"connected to {self.host}:{self.port}")
        stop = threading.Event()
        beat = threading.Thread(target=self._heartbeat_loop,
                                args=(connection, stop), daemon=True)
        beat.start()
        try:
            while True:
                message = self._recv_bounded(connection)
                if message is None:
                    raise ProtocolError("coordinator closed the connection")
                kind = message.get("type")
                if kind == JOB:
                    drained = False
                    if self.lanes > 1:
                        batch, drained = self._gather_batch(connection,
                                                            message)
                        self._run_batch(connection, batch)
                        with self._lock:
                            self.jobs_done += len(batch)
                    else:
                        self._run_one(connection, message)
                        with self._lock:
                            self.jobs_done += 1
                    if self.max_jobs is not None \
                            and self.jobs_done >= self.max_jobs:
                        connection.send(GOODBYE, reason="max-jobs")
                        self._log(f"served {self.jobs_done} job(s); leaving")
                        return 0
                    if drained:
                        connection.send(GOODBYE, reason="drained")
                        self._log("drained")
                        return 0
                elif kind == DRAIN:
                    connection.send(GOODBYE, reason="drained")
                    self._log("drained")
                    return 0
                # Unknown frame types are ignored for forward compatibility.
        finally:
            stop.set()
            connection.close()

    def _recv_bounded(self, connection):
        """``recv`` that tolerates idle timeouts but not a dead peer.

        An idle ``socket.timeout`` at a frame boundary is normal (no
        lease right now); but the coordinator echoes every heartbeat, so
        going ``coordinator_timeout`` seconds without a single frame
        means it is gone -- raise and let ``serve`` reconnect or exit
        with a one-line message instead of blocking forever.
        """
        last_frame = time.monotonic()
        while True:
            try:
                return connection.recv()
            except socket.timeout:
                quiet_s = time.monotonic() - last_frame
                if quiet_s >= self.coordinator_timeout:
                    raise ProtocolError(
                        f"no traffic from coordinator for {quiet_s:.0f}s "
                        f"(dead or partitioned)") from None

    # ------------------------------------------------------------------
    def _gather_batch(self, connection, first_message):
        """Collect the coordinator's lease burst into one batch.

        The coordinator leases breadth-first up to this worker's lane
        capacity, so the frames of one burst arrive back-to-back.
        Gather with short recvs until the batch is full, the burst goes
        quiet for ``gather_window`` seconds, or a ``DRAIN`` arrives
        (remembered and honored after the batch runs).  A timeout at a
        frame boundary consumes no bytes (``_recv_exactly`` re-raises
        resumably there), so giving up mid-gather never corrupts the
        stream; heartbeat echoes don't end the gather.
        """
        batch = [first_message]
        drained = False
        sock = connection.sock
        deadline = time.monotonic() + self.gather_window
        try:
            while len(batch) < self.lanes:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                sock.settimeout(remaining)
                try:
                    message = connection.recv()
                except socket.timeout:
                    break            # burst over; run what we have
                if message is None:
                    raise ProtocolError(
                        "coordinator closed during a lease burst")
                kind = message.get("type")
                if kind == JOB:
                    batch.append(message)
                elif kind == DRAIN:
                    drained = True
                    break
        finally:
            sock.settimeout(self.socket_timeout)
        return batch, drained

    def _run_batch(self, connection, batch):
        """Run a leased batch as one lockstep LaneBatch.

        Results stream back per retirement via the batch's
        ``on_finish`` hook, so the coordinator can settle (and re-lease
        against) early finishers while slower lanes are still running.
        A frame whose spec doesn't decode fails *that job* immediately;
        a lane that raises mid-flight fails only its own job -- exactly
        the per-job error contract of :meth:`_run_one`.
        """
        from ..jobs.spec import JobSpec
        from ..lanes import LaneBatch
        job_ids = []
        specs = []
        for message in batch:
            job_id = message.get("job_id")
            try:
                specs.append(JobSpec.from_dict(message["spec"]))
            except Exception as error:
                connection.send(RESULT, job_id=job_id, ok=False,
                                error=repr(error), wall_s=0.0)
                continue
            job_ids.append(job_id)
        if not specs:
            return
        self._log(f"running batch of {len(specs)} job(s) "
                  f"on {self.lanes} lane(s)")

        def on_finish(lane):
            job_id = job_ids[lane.index]
            if lane.status == "done":
                connection.send(RESULT, job_id=job_id, ok=True,
                                metrics=lane.metrics.to_dict(),
                                wall_s=lane.wall_s)
            else:
                connection.send(RESULT, job_id=job_id, ok=False,
                                error=repr(lane.error), wall_s=lane.wall_s)

        LaneBatch(specs, lanes=self.lanes).run(on_finish)

    # ------------------------------------------------------------------
    def _heartbeat_loop(self, connection, stop):
        while not stop.wait(self.heartbeat_interval):
            try:
                with self._lock:
                    done = self.jobs_done
                connection.send(HEARTBEAT, jobs_done=done)
            except OSError:
                return

    def _run_one(self, connection, message):
        from ..jobs.spec import JobSpec
        job_id = message.get("job_id")
        if self.injector is not None:
            # May stall past the lease timeout or raise WorkerCrash -- a
            # BaseException, so the `except Exception` below cannot turn
            # a simulated hard crash into a polite failure report.
            self.injector.worker_enter(job_id)
        start = time.perf_counter()
        try:
            metrics = self._run_job(JobSpec.from_dict(message["spec"]))
            connection.send(RESULT, job_id=job_id, ok=True,
                            metrics=metrics.to_dict(),
                            wall_s=time.perf_counter() - start)
        except Exception as error:
            # The job failed, not the worker: report and stay available.
            connection.send(RESULT, job_id=job_id, ok=False,
                            error=repr(error),
                            wall_s=time.perf_counter() - start)
        if self.injector is not None:
            self.injector.worker_exit(job_id)
