"""Distributed executor backend: same contract, remote workers.

:class:`ClusterExecutor` satisfies the exact ``Executor.run(specs) ->
[Metrics]`` contract of the local backend -- deduplication, cache
lookups, ledger records, progress line, input-order results -- but
executes the cache misses by leasing them to a :class:`Coordinator`'s
workers instead of a local process pool.  Because results are streamed
back on the coordinator's thread and written to the cache/ledger here,
the parent's JSONL ledger and :class:`ResultCache` remain the single
source of truth: workers never touch disk state.

Jobs the cluster gives up on (retry budget exhausted, no workers left)
fall back to one in-parent attempt, the same last-resort path the local
pool uses, so a sweep degrades to serial execution rather than failing.
"""

from __future__ import annotations

from ..jobs.executor import Executor, JobError


class ClusterExecutor(Executor):
    """Run JobSpecs: dedup -> cache -> cluster workers -> ledger."""

    def __init__(self, coordinator, cache=None, ledger=None, timeout=None,
                 progress=None, cost_model=None, on_failure="raise",
                 resume_index=None, failure_report=None):
        super().__init__(jobs=1, cache=cache, ledger=ledger, timeout=timeout,
                         progress=progress, cost_model=cost_model,
                         on_failure=on_failure, resume_index=resume_index,
                         failure_report=failure_report)
        self.coordinator = coordinator
        if self.coordinator.job_timeout is None:
            self.coordinator.job_timeout = timeout

    def _run_pending(self, pending, unique, results, cached):
        def finish(spec, metrics, *, worker, retries, wall_s):
            self._finish_job(spec, metrics, unique, results, cached,
                             wall_s=wall_s, worker=worker,
                             status="ok" if retries == 0 else "retried",
                             retries=retries)

        failed = self.coordinator.execute(self._schedule(pending), finish)
        # Last resort, in input order for determinism: one in-parent
        # attempt per given-up job, mirroring the local backend's retry.
        for spec in pending:
            failure = failed.get(spec.key)
            if failure is None:
                continue
            _spec, error, attempts = failure
            try:
                metrics, wall_s = self._retry_in_parent(
                    spec, RuntimeError(f"cluster gave up after {attempts} "
                                       f"attempt(s): {error}"))
            except JobError as exhausted:
                # Retry budget spent everywhere (workers + parent):
                # abort or degrade to a partial result, per policy.
                self._give_up(spec, exhausted, attempts + 1, unique,
                              results, cached, stage="cluster")
                continue
            self._finish_job(spec, metrics, unique, results, cached,
                             wall_s=wall_s, worker="parent",
                             status="retried", retries=attempts + 1)
