"""Length-prefixed JSON-over-TCP framing for the cluster protocol.

Every message on the wire is one *frame*: a 4-byte big-endian length
header followed by that many bytes of UTF-8 JSON.  A message is a JSON
object whose ``type`` field names one of the constants below; all other
fields are message-specific.  The framing is symmetric -- coordinator
and workers use the same :class:`Connection` wrapper -- and
version-checked at handshake time (``HELLO`` carries
``PROTOCOL_VERSION`` plus the sender's code salt, so a worker running a
different source tree is rejected before it can serve stale results).

Message flow::

    worker                         coordinator
      | <-- CHALLENGE {nonce} ------- |        only with a shared secret
      | -- AUTH {mac} --------------> |        HMAC-SHA256(secret, nonce)
      | -- HELLO {worker,salt,..} --> |        register (or REJECT)
      | <-- WELCOME ----------------- |
      | -- HEARTBEAT (periodic) ----> |        liveness (echoed back)
      | <-- JOB {job_id, spec} ------ |        lease
      | -- RESULT {job_id, ok, ..} -> |        lease complete
      | <-- DRAIN ------------------- |        finish + exit
      | -- GOODBYE -----------------> |

    status client                  coordinator
      | <-- CHALLENGE / -- AUTH ----- |        same gate as workers
      | -- STATUS ------------------> |
      | <-- STATUS_REPLY {...} ------ |

When the coordinator holds a shared secret (``--secret`` /
``$REPRO_CLUSTER_SECRET``) it speaks first: every accepted connection
gets a ``CHALLENGE`` carrying a fresh nonce and must answer with the
HMAC-SHA256 of that nonce under the secret before *any* other frame is
processed -- an unauthenticated or wrong-secret dialer is rejected
before its HELLO is even read.  The comparison is constant-time
(:func:`hmac.compare_digest`); the secret itself never crosses the wire.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import os
import socket
import struct
import threading

# Version 2: CHALLENGE/AUTH handshake frames + coordinator-side
# heartbeat echo (workers use the echo to detect a dead/partitioned
# coordinator instead of blocking forever on recv).
# Version 3: optional TLS under the HMAC handshake, plus the serve-daemon
# client frames (SESSION/SUBMIT/JOB_DONE/SWEEP_DONE) multiplexed on the
# same listening socket as worker HELLOs.
PROTOCOL_VERSION = 3

#: Hard ceiling on one frame; a Metrics payload is a few KB, so anything
#: near this is a corrupt or hostile stream, not a big result.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")

# -- message types ----------------------------------------------------------
CHALLENGE = "challenge"      # coordinator -> dialer: prove the shared secret
AUTH = "auth"                # dialer -> coordinator: HMAC over the nonce
HELLO = "hello"              # worker -> coordinator: join the registry
WELCOME = "welcome"          # coordinator -> worker: registered
REJECT = "reject"            # coordinator -> worker: refused (salt/version)
JOB = "job"                  # coordinator -> worker: run this JobSpec
RESULT = "result"            # worker -> coordinator: metrics or error
HEARTBEAT = "heartbeat"      # worker -> coordinator: still alive
DRAIN = "drain"              # coordinator -> worker: finish + exit
GOODBYE = "goodbye"          # worker -> coordinator: clean departure
STATUS = "status"            # client -> coordinator: registry snapshot?
STATUS_REPLY = "status-reply"

# -- serve-daemon client frames (protocol v3) -------------------------------
SESSION = "session"          # client -> daemon: open a sweep session
SESSION_OK = "session-ok"    # daemon -> client: session registered
SUBMIT = "submit"            # client -> daemon: one sweep of JobSpecs
SWEEP_ACCEPTED = "sweep-accepted"   # daemon -> client: sweep queued
JOB_DONE = "job-done"        # daemon -> client: one job's result (streamed)
SWEEP_DONE = "sweep-done"    # daemon -> client: sweep fully settled


class ProtocolError(RuntimeError):
    """Framing violation: truncated frame, oversized frame, bad JSON."""


class AuthenticationError(ProtocolError):
    """Handshake authentication failed (missing or wrong shared secret)."""


_ENV_SECRET = "REPRO_CLUSTER_SECRET"


def default_secret():
    """``$REPRO_CLUSTER_SECRET``, or ``None`` when auth is not configured."""
    return os.environ.get(_ENV_SECRET) or None


def compute_mac(secret, nonce):
    """HMAC-SHA256 proof-of-secret over a handshake nonce (hex digest)."""
    return hmac.new(str(secret).encode("utf-8"), str(nonce).encode("utf-8"),
                    hashlib.sha256).hexdigest()


def verify_mac(secret, nonce, offered):
    """Constant-time check of an offered handshake MAC."""
    if not isinstance(offered, str):
        return False
    return hmac.compare_digest(compute_mac(secret, nonce), offered)


def authenticate_client(connection, secret):
    """Dialer side of the shared-secret gate, before any other frame.

    With a secret configured the coordinator speaks first: wait for its
    ``CHALLENGE`` and answer with the MAC.  Raises
    :class:`AuthenticationError` if the coordinator never challenges
    (it is running without a secret) -- a configuration mismatch is an
    error, not something to silently paper over.
    """
    if not secret:
        return
    challenge = connection.recv()
    if challenge is None:
        raise AuthenticationError(
            "coordinator closed the connection before the auth challenge "
            "(wrong address, or it rejected an earlier frame)")
    if challenge.get("type") != CHALLENGE:
        raise AuthenticationError(
            f"a secret is configured but the coordinator sent "
            f"{challenge.get('type')!r} instead of an auth challenge "
            f"(is it running with --secret?)")
    connection.send(AUTH, mac=compute_mac(secret, challenge.get("nonce")))


def parse_address(address):
    """``"host:port"`` -> ``(host, port)``; bare ``":port"`` means loopback."""
    if isinstance(address, (tuple, list)):
        host, port = address
        return host, int(port)
    host, sep, port = str(address).rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"address must look like HOST:PORT, got {address!r}")
    return host or "127.0.0.1", int(port)


def encode(message):
    """One wire frame (header + JSON payload) for ``message``."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message of {len(payload)} bytes exceeds the "
                            f"{MAX_MESSAGE_BYTES}-byte frame limit")
    return _HEADER.pack(len(payload)) + payload


def _recv_exactly(sock, count, *, at_boundary):
    """Read exactly ``count`` bytes; ``None`` on clean EOF at a boundary.

    On a socket with a bounded timeout, an idle timeout (no bytes read
    yet, waiting at a frame boundary) re-raises ``socket.timeout`` so the
    caller can decide whether the peer is merely quiet or dead; a timeout
    *mid-frame* means the stream is desynchronized (the partial bytes are
    lost) and is promoted to :class:`ProtocolError`.
    """
    chunks = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except socket.timeout:
            if at_boundary and remaining == count:
                raise
            raise ProtocolError(
                f"timed out mid-frame ({count - remaining} of {count} "
                f"bytes received); stream desynchronized") from None
        if not chunk:
            if at_boundary and remaining == count:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining} of "
                f"{count} bytes received)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_message(sock, message):
    sock.sendall(encode(message))


def recv_message(sock):
    """Next message from ``sock``; ``None`` on clean EOF between frames."""
    header = _recv_exactly(sock, _HEADER.size, at_boundary=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the "
                            f"{MAX_MESSAGE_BYTES}-byte limit")
    payload = _recv_exactly(sock, length, at_boundary=False)
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable frame: {error}") from error


class Connection:
    """A socket plus a send lock (heartbeat threads share the socket)."""

    def __init__(self, sock):
        self.sock = sock
        self._send_lock = threading.Lock()
        try:
            self.peer = "%s:%d" % sock.getpeername()[:2]
        except OSError:
            self.peer = "?"

    def send(self, message_type, **fields):
        message = {"type": message_type}
        message.update(fields)
        with self._send_lock:
            send_message(self.sock, message)

    def recv(self):
        return recv_message(self.sock)

    def close(self):
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


def dial(address, *, timeout=10.0, tls=None, secret=None):
    """Connect + (optional) TLS wrap + (optional) HMAC auth, in order.

    The shared dialer for workers, status queries, and serve clients:
    TLS is the transport (wrapped first, so the HMAC handshake runs
    inside the encrypted channel), the shared secret is the
    authentication.  ``tls`` defaults to the environment
    (``$REPRO_TLS_CA`` / ``$REPRO_TLS_FINGERPRINT``); pass ``False`` to
    force plaintext.  Returns an authenticated :class:`Connection`.
    """
    if tls is None:
        from .tls import TLSConfig
        tls = TLSConfig.from_env()
    sock = socket.create_connection(parse_address(address), timeout=timeout)
    try:
        if tls:
            sock = tls.wrap(sock)
        connection = Connection(sock)
        authenticate_client(connection, secret)
    except BaseException:
        sock.close()
        raise
    return connection


def query_status(address, timeout=5.0, secret=None, tls=None):
    """One-shot status query against a running coordinator or daemon.

    ``secret`` defaults to ``$REPRO_CLUSTER_SECRET`` and ``tls`` to the
    ``$REPRO_TLS_*`` environment; when the coordinator requires
    authentication the challenge is answered before the ``STATUS``
    frame is sent.
    """
    if secret is None:
        secret = default_secret()
    connection = dial(address, timeout=timeout, tls=tls, secret=secret)
    try:
        connection.send(STATUS)
        reply = connection.recv()
    finally:
        connection.close()
    if reply is not None and reply.get("type") == CHALLENGE:
        raise AuthenticationError(
            "coordinator requires a shared secret "
            "(--secret / $REPRO_CLUSTER_SECRET)")
    if reply is not None and reply.get("type") == REJECT:
        raise AuthenticationError(
            f"coordinator rejected the status query: "
            f"{reply.get('reason', 'no reason given')}")
    if reply is None or reply.get("type") != STATUS_REPLY:
        raise ProtocolError(f"unexpected status reply: {reply!r}")
    reply.pop("type", None)
    return reply
