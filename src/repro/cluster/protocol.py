"""Length-prefixed JSON-over-TCP framing for the cluster protocol.

Every message on the wire is one *frame*: a 4-byte big-endian length
header followed by that many bytes of UTF-8 JSON.  A message is a JSON
object whose ``type`` field names one of the constants below; all other
fields are message-specific.  The framing is symmetric -- coordinator
and workers use the same :class:`Connection` wrapper -- and
version-checked at handshake time (``HELLO`` carries
``PROTOCOL_VERSION`` plus the sender's code salt, so a worker running a
different source tree is rejected before it can serve stale results).

Message flow::

    worker                         coordinator
      | -- HELLO {worker,salt,..} --> |        register (or REJECT)
      | <-- WELCOME ----------------- |
      | -- HEARTBEAT (periodic) ----> |        liveness
      | <-- JOB {job_id, spec} ------ |        lease
      | -- RESULT {job_id, ok, ..} -> |        lease complete
      | <-- DRAIN ------------------- |        finish + exit
      | -- GOODBYE -----------------> |

    status client                  coordinator
      | -- STATUS ------------------> |
      | <-- STATUS_REPLY {...} ------ |
"""

from __future__ import annotations

import json
import socket
import struct
import threading

PROTOCOL_VERSION = 1

#: Hard ceiling on one frame; a Metrics payload is a few KB, so anything
#: near this is a corrupt or hostile stream, not a big result.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")

# -- message types ----------------------------------------------------------
HELLO = "hello"              # worker -> coordinator: join the registry
WELCOME = "welcome"          # coordinator -> worker: registered
REJECT = "reject"            # coordinator -> worker: refused (salt/version)
JOB = "job"                  # coordinator -> worker: run this JobSpec
RESULT = "result"            # worker -> coordinator: metrics or error
HEARTBEAT = "heartbeat"      # worker -> coordinator: still alive
DRAIN = "drain"              # coordinator -> worker: finish + exit
GOODBYE = "goodbye"          # worker -> coordinator: clean departure
STATUS = "status"            # client -> coordinator: registry snapshot?
STATUS_REPLY = "status-reply"


class ProtocolError(RuntimeError):
    """Framing violation: truncated frame, oversized frame, bad JSON."""


def parse_address(address):
    """``"host:port"`` -> ``(host, port)``; bare ``":port"`` means loopback."""
    if isinstance(address, (tuple, list)):
        host, port = address
        return host, int(port)
    host, sep, port = str(address).rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"address must look like HOST:PORT, got {address!r}")
    return host or "127.0.0.1", int(port)


def encode(message):
    """One wire frame (header + JSON payload) for ``message``."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message of {len(payload)} bytes exceeds the "
                            f"{MAX_MESSAGE_BYTES}-byte frame limit")
    return _HEADER.pack(len(payload)) + payload


def _recv_exactly(sock, count, *, at_boundary):
    """Read exactly ``count`` bytes; ``None`` on clean EOF at a boundary."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if at_boundary and remaining == count:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining} of "
                f"{count} bytes received)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_message(sock, message):
    sock.sendall(encode(message))


def recv_message(sock):
    """Next message from ``sock``; ``None`` on clean EOF between frames."""
    header = _recv_exactly(sock, _HEADER.size, at_boundary=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the "
                            f"{MAX_MESSAGE_BYTES}-byte limit")
    payload = _recv_exactly(sock, length, at_boundary=False)
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable frame: {error}") from error


class Connection:
    """A socket plus a send lock (heartbeat threads share the socket)."""

    def __init__(self, sock):
        self.sock = sock
        self._send_lock = threading.Lock()
        try:
            self.peer = "%s:%d" % sock.getpeername()[:2]
        except OSError:
            self.peer = "?"

    def send(self, message_type, **fields):
        message = {"type": message_type}
        message.update(fields)
        with self._send_lock:
            send_message(self.sock, message)

    def recv(self):
        return recv_message(self.sock)

    def close(self):
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


def query_status(address, timeout=5.0):
    """One-shot status query against a running coordinator."""
    sock = socket.create_connection(parse_address(address), timeout=timeout)
    try:
        connection = Connection(sock)
        connection.send(STATUS)
        reply = connection.recv()
    finally:
        sock.close()
    if reply is None or reply.get("type") != STATUS_REPLY:
        raise ProtocolError(f"unexpected status reply: {reply!r}")
    reply.pop("type", None)
    return reply
