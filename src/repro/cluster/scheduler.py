"""Dispatch-order policy: longest-expected-job-first.

Sweep tail latency is dominated by whichever long job starts last; with
per-job costs known (even approximately), dispatching the longest
expected jobs first is the classic LPT heuristic and keeps every backend
busy until the end.  Both executors use this: the local process pool
reorders its submission queue, and the cluster coordinator leases jobs
to idle workers in this order.
"""

from __future__ import annotations

import os


def longest_first(specs, cost_model):
    """``specs`` reordered longest-expected-first.

    The sort is stable with the original position as tie-break, so specs
    the model can't tell apart (including the no-history case, where all
    costs are the default) keep their enumeration order and scheduling
    stays deterministic.
    """
    if cost_model is None or not len(cost_model):
        return list(specs)
    indexed = list(enumerate(specs))
    indexed.sort(key=lambda pair: (-cost_model.predict(pair[1]), pair[0]))
    return [spec for _position, spec in indexed]


def cost_model_for(ledger):
    """A :class:`CostModel` learned from an executor's ledger, if any.

    ``NullLedger`` (no path) or a ledger file that does not exist yet
    yields ``None``: scheduling falls back to enumeration order.
    """
    from .costmodel import CostModel
    path = getattr(ledger, "path", None)
    if not path or not os.path.exists(path):
        return None
    return CostModel.from_ledger(path)
