"""Dispatch-order policy: longest-expected-job-first.

Sweep tail latency is dominated by whichever long job starts last; with
per-job costs known (even approximately), dispatching the longest
expected jobs first is the classic LPT heuristic and keeps every backend
busy until the end.  Both executors use this: the local process pool
reorders its submission queue, and the cluster coordinator leases jobs
to idle workers in this order.
"""

from __future__ import annotations

import os


def longest_first(specs, cost_model):
    """``specs`` reordered longest-expected-first.

    The sort is stable with the original position as tie-break, so specs
    the model can't tell apart (including the no-history case, where all
    costs are the default) keep their enumeration order and scheduling
    stays deterministic.
    """
    if cost_model is None or not len(cost_model):
        return list(specs)
    indexed = list(enumerate(specs))
    indexed.sort(key=lambda pair: (-cost_model.predict(pair[1]), pair[0]))
    return [spec for _position, spec in indexed]


def cost_model_for(ledger):
    """A :class:`CostModel` learned from an executor's ledger, if any.

    The fitted rates are persisted to a ``costmodel.json`` sidecar next
    to the ledger, and a fresh fit starts from that sidecar -- so a new
    coordinator or daemon process (or one whose ledger was pruned)
    starts warm.  The sidecar records how many ledger rows it has
    folded; only the ledger's new suffix is folded on top, never the
    already-counted history.  ``NullLedger`` (no path) with no sidecar
    yields ``None``: scheduling falls back to enumeration order.
    """
    from ..jobs.ledger import RunLedger
    from .costmodel import CostModel
    path = getattr(ledger, "path", None)
    if not path:
        return None
    sidecar = os.path.join(os.path.dirname(path) or ".", "costmodel.json")
    model, seen = CostModel.load(sidecar)
    records = RunLedger.read(path) if os.path.exists(path) else []
    if model is None:
        if not records:
            return None
        model = CostModel.from_records(records)
    else:
        folded = (seen["rows"] if seen and seen.get("path") == path
                  and seen["rows"] <= len(records) else 0)
        model.fold_records(records[folded:])
    try:
        model.save(sidecar, ledger_path=path, ledger_rows=len(records))
    except OSError:
        pass                         # read-only cache dir: hint only
    return model
