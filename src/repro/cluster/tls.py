"""TLS transport for cluster and serve sockets (``ssl`` stdlib only).

The HMAC challenge/response handshake (protocol v2) authenticates peers
but leaves every frame cleartext; off-LAN that exposes job specs,
metrics, and the handshake traffic itself.  :class:`TLSConfig` closes
that gap by wrapping the raw TCP socket in TLS *before* the first frame,
so the HMAC handshake -- still the authentication layer -- runs inside
the encrypted channel.

Two trust models, because sweep fleets rarely have a real PKI:

* **CA verification** (``--tls-ca``): the client loads the CA (usually
  the server's own self-signed certificate) and the ``ssl`` module
  verifies the chain.  Hostname checking is deliberately off -- fleets
  dial coordinators by IP and the certificate subject is not part of
  the trust decision; the CA file is.
* **Fingerprint pinning** (``--tls-fingerprint``): no CA file to
  distribute -- the client accepts any certificate during the TLS
  handshake, then compares the SHA-256 of the peer's DER certificate
  against the pinned value with a constant-time compare and aborts on
  mismatch.  This is how spawned loopback workers trust their parent
  coordinator: the coordinator exports its own fingerprint through the
  child environment, never a file.

Server side always needs ``--tls-cert`` + ``--tls-key``.  A server
configured with a CA additionally *requires* client certificates
(mutual TLS); without one, any client that trusts the server may
connect -- the HMAC secret remains the client-auth gate.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import ssl

_ENV_CA = "REPRO_TLS_CA"
_ENV_FINGERPRINT = "REPRO_TLS_FINGERPRINT"


class TLSConfigError(ValueError):
    """Inconsistent TLS configuration (missing cert/key, bad files)."""


def certificate_fingerprint(certfile):
    """``sha256:<hex>`` fingerprint of the first certificate in a PEM file."""
    with open(certfile) as handle:
        der = ssl.PEM_cert_to_DER_cert(handle.read())
    return "sha256:" + hashlib.sha256(der).hexdigest()


def _normalize_fingerprint(fingerprint):
    value = str(fingerprint).strip().lower()
    if value.startswith("sha256:"):
        value = value[len("sha256:"):]
    return value.replace(":", "")


class TLSConfig:
    """One side's TLS posture; :meth:`wrap` turns a TCP socket into TLS.

    Build with :meth:`server` or :meth:`client` (or :meth:`from_args`
    for CLI plumbing); ``None`` everywhere means "no TLS", which callers
    represent as a ``None`` config, not an empty one.
    """

    def __init__(self, *, server_side, certfile=None, keyfile=None,
                 cafile=None, fingerprint=None):
        self.server_side = bool(server_side)
        self.certfile = certfile
        self.keyfile = keyfile
        self.cafile = cafile
        self.fingerprint = (_normalize_fingerprint(fingerprint)
                            if fingerprint else None)
        self._context = None
        if self.server_side:
            if not certfile or not keyfile:
                raise TLSConfigError(
                    "server-side TLS needs both --tls-cert and --tls-key")
        elif not cafile and not self.fingerprint:
            raise TLSConfigError(
                "client-side TLS needs --tls-ca (CA verification) or "
                "--tls-fingerprint (certificate pinning)")

    # ------------------------------------------------------------------
    @classmethod
    def server(cls, certfile, keyfile, cafile=None):
        return cls(server_side=True, certfile=certfile, keyfile=keyfile,
                   cafile=cafile)

    @classmethod
    def client(cls, cafile=None, fingerprint=None):
        return cls(server_side=False, cafile=cafile, fingerprint=fingerprint)

    @classmethod
    def from_env(cls):
        """Client config from ``$REPRO_TLS_CA`` / ``$REPRO_TLS_FINGERPRINT``.

        ``None`` when neither is set -- the no-TLS default.  This is how
        spawned loopback workers inherit the coordinator's transport.
        """
        cafile = os.environ.get(_ENV_CA) or None
        fingerprint = os.environ.get(_ENV_FINGERPRINT) or None
        if not cafile and not fingerprint:
            return None
        return cls.client(cafile=cafile, fingerprint=fingerprint)

    @classmethod
    def from_args(cls, args, *, server_side):
        """CLI plumbing: a config from ``--tls-*`` flags, or ``None``.

        Server side activates on ``--tls-cert``; client side on
        ``--tls-ca`` / ``--tls-fingerprint``, falling back to the
        environment so worker subprocesses need no extra flags.
        """
        cert = getattr(args, "tls_cert", None)
        key = getattr(args, "tls_key", None)
        ca = getattr(args, "tls_ca", None)
        pin = getattr(args, "tls_fingerprint", None)
        if server_side:
            if not cert and not key:
                return None
            return cls.server(cert, key, cafile=ca)
        if not ca and not pin:
            return cls.from_env()
        return cls.client(cafile=ca, fingerprint=pin)

    # ------------------------------------------------------------------
    def own_fingerprint(self):
        """``sha256:...`` of our own certificate (server side only)."""
        if not self.certfile:
            return None
        return certificate_fingerprint(self.certfile)

    def _build_context(self):
        if self.server_side:
            context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
            context.load_cert_chain(self.certfile, self.keyfile)
            if self.cafile:
                # Mutual TLS: demand a client certificate we can verify.
                context.load_verify_locations(self.cafile)
                context.verify_mode = ssl.CERT_REQUIRED
            return context
        context = ssl.SSLContext(ssl.PROTOCOL_TLS_CLIENT)
        # Fleets dial by IP; the trust anchor is the CA file or the
        # pinned fingerprint, not the certificate's subject name.
        context.check_hostname = False
        if self.cafile:
            context.load_verify_locations(self.cafile)
            context.verify_mode = ssl.CERT_REQUIRED
        else:
            # Pinning: accept the handshake, verify the certificate hash
            # ourselves in wrap() below.
            context.verify_mode = ssl.CERT_NONE
        if self.certfile:
            context.load_cert_chain(self.certfile, self.keyfile)
        return context

    def wrap(self, sock):
        """TLS-wrap ``sock`` (handshake included); returns the SSL socket.

        Raises :class:`ssl.SSLError` (an ``OSError``) on handshake
        failure and :class:`PinnedCertificateError` when fingerprint
        pinning rejects the peer -- in both cases the caller must treat
        the connection as dead.
        """
        if self._context is None:
            self._context = self._build_context()
        wrapped = self._context.wrap_socket(sock,
                                            server_side=self.server_side)
        if not self.server_side and self.fingerprint:
            der = wrapped.getpeercert(binary_form=True)
            offered = hashlib.sha256(der or b"").hexdigest()
            if not hmac.compare_digest(offered, self.fingerprint):
                try:
                    wrapped.close()
                except OSError:
                    pass
                raise PinnedCertificateError(
                    f"peer certificate sha256:{offered} does not match the "
                    f"pinned fingerprint sha256:{self.fingerprint}")
        return wrapped

    def child_environment(self):
        """Env vars a spawned loopback worker needs to dial us back.

        Server side exports its own certificate fingerprint so children
        pin it without any file distribution; client side re-exports
        whatever trust material it holds.
        """
        if self.server_side:
            return {_ENV_FINGERPRINT: self.own_fingerprint()}
        env = {}
        if self.cafile:
            env[_ENV_CA] = self.cafile
        if self.fingerprint:
            env[_ENV_FINGERPRINT] = "sha256:" + self.fingerprint
        return env

    def __repr__(self):
        side = "server" if self.server_side else "client"
        trust = ("ca" if self.cafile else
                 "pinned" if self.fingerprint else "cert")
        return f"TLSConfig({side}, trust={trust})"


class PinnedCertificateError(ssl.SSLError):
    """Fingerprint pinning rejected the peer certificate.

    An ``ssl.SSLError`` subclass (hence ``OSError``) so every existing
    connection-failure path treats it as a dead connection, while
    callers that care (the worker CLI) can still name it.
    """
