"""Memory system: caches, MSHRs, DRAM, prefetchers, and the hierarchy."""

from .cache import (Cache, CacheLine, LINE_BYTES, LINE_SHIFT,
                    PREFETCH_SOURCES, RUNAHEAD_SOURCES, SRC_DEMAND, SRC_DVR,
                    SRC_IMP, SRC_ORACLE, SRC_PRE, SRC_STRIDE, SRC_VR)
from .dram import Dram
from .hierarchy import (AccessResult, LEVEL_L1, LEVEL_L2, LEVEL_L3,
                        LEVEL_OFFCHIP, LEVELS, MemoryHierarchy, MemStats)
from .imp import IndirectMemoryPrefetcher
from .mshr import MshrFile
from .stride_prefetcher import StridePrefetcher

__all__ = [
    "AccessResult",
    "Cache",
    "CacheLine",
    "Dram",
    "IndirectMemoryPrefetcher",
    "LEVEL_L1",
    "LEVEL_L2",
    "LEVEL_L3",
    "LEVEL_OFFCHIP",
    "LEVELS",
    "LINE_BYTES",
    "LINE_SHIFT",
    "MemStats",
    "MemoryHierarchy",
    "MshrFile",
    "PREFETCH_SOURCES",
    "RUNAHEAD_SOURCES",
    "SRC_DEMAND",
    "SRC_DVR",
    "SRC_IMP",
    "SRC_ORACLE",
    "SRC_PRE",
    "SRC_STRIDE",
    "SRC_VR",
    "StridePrefetcher",
]
