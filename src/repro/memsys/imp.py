"""Indirect Memory Prefetcher (IMP), after Yu et al., MICRO 2015.

IMP sits at the L1-D.  It watches loads that belong to a trained striding
stream (the *index* loads, e.g. ``A[i]``), pairs their returned values with
subsequent cache-miss addresses, and solves for an indirect pattern
``miss_addr = base + (index_value << shift)``.  Once a (base, shift)
candidate has been confirmed ``confidence_threshold`` times, IMP reads
index values ahead of the demand stream and prefetches the corresponding
indirect lines.

As in the original proposal, IMP handles a *single* level of indirection
with a simple affine address function; multi-level chains and hashed
indices defeat it (which is exactly the behaviour the paper relies on).
"""

from __future__ import annotations

from collections import deque

from .cache import LINE_SHIFT

_SHIFT_CANDIDATES = (3, 2, 0)  # 8-byte, 4-byte, 1-byte element scaling


class ImpEntry:
    __slots__ = ("candidates", "base", "shift", "confirmed")

    def __init__(self):
        self.candidates = {}   # (base, shift) -> hit count
        self.base = 0
        self.shift = 0
        self.confirmed = False


class IndirectMemoryPrefetcher:
    def __init__(self, config, guest_memory, l1_cache=None):
        self.config = config
        self.enabled = config.enabled
        self._mem = guest_memory
        self._l1 = l1_cache           # index values are read from the L1-D
        self._entries = {}            # index-load pc -> ImpEntry
        self._recent = deque(maxlen=4)  # (pc, value) of recent index loads
        self.patterns_confirmed = 0
        self.index_reads_blocked = 0  # lookahead index line not cached

    def observe_index_load(self, pc, addr, value, stride):
        """An index (striding) load returned ``value``.

        Returns byte addresses to prefetch, or ().
        """
        if not self.enabled:
            return ()
        self._recent.append((pc, value))
        entry = self._entries.get(pc)
        if entry is None or not entry.confirmed or stride == 0:
            return ()
        prefetches = []
        mem = self._mem
        lookahead = self.config.distance
        for k in range(lookahead, lookahead + self.config.degree):
            index_addr = addr + stride * k
            if not 0 <= index_addr < mem.size_bytes:
                break
            if self._l1 is not None:
                # IMP reads ahead in the *cached* index stream; if the
                # stride prefetcher has not brought the future index line
                # in yet, the value is not available to it.
                line = self._l1.peek(index_addr >> 6)
                if line is None:
                    self.index_reads_blocked += 1
                    break
            future_value = mem.words[index_addr >> 3]
            target = entry.base + (future_value << entry.shift)
            if 0 <= target < mem.size_bytes:
                prefetches.append(target)
        return prefetches

    def observe_miss(self, miss_addr):
        """Correlate a demand L1 miss address with recent index values."""
        if not self.enabled:
            return
        for pc, value in self._recent:
            entry = self._entries.get(pc)
            if entry is None:
                if len(self._entries) >= self.config.table_entries:
                    self._entries.pop(next(iter(self._entries)))
                entry = ImpEntry()
                self._entries[pc] = entry
            if entry.confirmed:
                # Keep confirming / decay on systematic mismatch.
                predicted = entry.base + (value << entry.shift)
                if (predicted >> LINE_SHIFT) != (miss_addr >> LINE_SHIFT):
                    continue
            for shift in _SHIFT_CANDIDATES:
                base = miss_addr - (value << shift)
                key = (base, shift)
                count = entry.candidates.get(key, 0) + 1
                entry.candidates[key] = count
                if count >= self.config.confidence_threshold and not entry.confirmed:
                    entry.base, entry.shift = base, shift
                    entry.confirmed = True
                    self.patterns_confirmed += 1
            if len(entry.candidates) > self.config.candidates * 8:
                # Bound the candidate pool: keep the strongest few.
                strongest = sorted(entry.candidates.items(),
                                   key=lambda item: -item[1])
                entry.candidates = dict(strongest[:self.config.candidates])
