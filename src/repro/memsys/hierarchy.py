"""The three-level memory hierarchy with MSHRs, DRAM and prefetchers.

Timing model
------------
An access checks L1 -> L2 -> L3 -> DRAM, accumulating the per-level access
latencies (4 + 8 + 30 cycles) before the 200-cycle, bandwidth-contended
DRAM fetch.  Fills are installed into every level immediately but carry a
``ready_at`` cycle; accesses that arrive before the data does merge with
the in-flight fill (the MSHR secondary-miss case).  Every L1-D miss holds
one of the 24 MSHRs until its fill arrives; demand *and* runahead accesses
return ``None`` when no MSHR is free so the caller retries, while
fire-and-forget prefetches are simply dropped.

Provenance statistics
---------------------
Every line remembers which agent fetched it.  The hierarchy records, per
source: DRAM fetches (Fig 10), lines prefetched and later used by the main
thread, and the level at which the main thread found each prefetched line
(Fig 11 timeliness: L1 / L2 / L3 / off-chip).
"""

from __future__ import annotations

from .cache import (Cache, CacheLine, LINE_SHIFT, PREFETCH_SOURCES,
                    SRC_DEMAND, SRC_ORACLE)
from .dram import Dram
from .imp import IndirectMemoryPrefetcher
from .mshr import MshrFile
from .stride_prefetcher import StridePrefetcher

LEVEL_L1 = "L1"
LEVEL_L2 = "L2"
LEVEL_L3 = "L3"
LEVEL_OFFCHIP = "Off-chip"
LEVELS = (LEVEL_L1, LEVEL_L2, LEVEL_L3, LEVEL_OFFCHIP)


class AccessResult:
    __slots__ = ("complete_cycle", "level", "line_source", "merged")

    def __init__(self, complete_cycle, level, line_source, merged=False):
        self.complete_cycle = complete_cycle
        self.level = level          # where the data was found
        self.line_source = line_source
        self.merged = merged        # joined an in-flight fill

    def __repr__(self):
        return (f"AccessResult(t={self.complete_cycle}, level={self.level}, "
                f"src={self.line_source}, merged={self.merged})")


class MemStats:
    """Counters the harness turns into the paper's figures."""

    def __init__(self):
        self.demand_loads = 0
        self.demand_stores = 0
        self.demand_hits = {level: 0 for level in LEVELS}
        self.dram_accesses = {}        # source -> count   (Fig 10)
        self.prefetch_issued = {}      # source -> line fills started
        self.prefetch_used = {}        # source -> lines later demand-hit
        self.prefetch_evicted_unused = {}
        self.timeliness = {}           # source -> {level: count}  (Fig 11)
        self.mshr_blocked = 0          # demand accesses refused (MSHR full)

    def _bump(self, table, source, amount=1):
        table[source] = table.get(source, 0) + amount

    def record_dram(self, source):
        self._bump(self.dram_accesses, source)

    def record_prefetch_issued(self, source):
        self._bump(self.prefetch_issued, source)

    def record_prefetch_used(self, source, level):
        self._bump(self.prefetch_used, source)
        per_level = self.timeliness.setdefault(
            source, {level_name: 0 for level_name in LEVELS})
        per_level[level] += 1

    def record_prefetch_evicted_unused(self, source):
        self._bump(self.prefetch_evicted_unused, source)

    def total_dram_accesses(self):
        return sum(self.dram_accesses.values())

    def accuracy(self, source):
        """Fraction of ``source``'s prefetched lines the main thread used."""
        issued = self.prefetch_issued.get(source, 0)
        if issued == 0:
            return 0.0
        return self.prefetch_used.get(source, 0) / issued


class MemoryHierarchy:
    def __init__(self, config, stride_config, imp_config, guest_memory):
        self.config = config
        self.guest_memory = guest_memory
        self.l1d = Cache(config.l1d, "L1-D")
        self.l2 = Cache(config.l2, "L2")
        self.l3 = Cache(config.l3, "L3")
        self.mshrs = MshrFile(config.l1d_mshrs)
        self.dram = Dram(config)
        self.stride_pf = StridePrefetcher(stride_config)
        self.imp = IndirectMemoryPrefetcher(imp_config, guest_memory,
                                            l1_cache=self.l1d)
        self.stats = MemStats()
        self.sanitizer = None       # attached by the harness (--sanitize)
        self._l12_latency = config.l1d.latency + config.l2.latency
        self._l123_latency = self._l12_latency + config.l3.latency

    # ------------------------------------------------------------------
    # Core access machinery
    # ------------------------------------------------------------------
    def _found(self, line, level, complete, now, demand):
        """Common bookkeeping when an access finds a (possibly in-flight) line."""
        if line.ready_at > complete:
            # Data still in transit: merge with the in-flight fill.
            merged = True
            complete = line.ready_at
            found_level = (LEVEL_OFFCHIP if line.origin_level == LEVEL_OFFCHIP
                           else line.origin_level)
        else:
            merged = False
            found_level = level
        if demand:
            self.stats.demand_hits[found_level] += 1
            if line.source != SRC_DEMAND and not line.used:
                line.used = True
                self.stats.record_prefetch_used(line.source, found_level)
        return AccessResult(complete, found_level, line.source, merged)

    def _evict(self, evicted, level):
        if evicted is None:
            return
        _, line = evicted
        # A prefetched line leaving the last-level cache without ever being
        # demand-touched counts as an inaccurate prefetch.
        if level is self.l3 and line.source != SRC_DEMAND and not line.used:
            self.stats.record_prefetch_evicted_unused(line.source)

    def _install_all(self, line_addr, line, into_l1=True):
        self._evict(self.l3.install(line_addr, line), self.l3)
        self._evict(self.l2.install(line_addr, line), self.l2)
        if into_l1:
            self._evict(self.l1d.install(line_addr, line), self.l1d)

    def access(self, addr, now, source, demand):
        """Timed load access.  Returns an AccessResult, or None when the
        access needs an MSHR and none is free (caller must retry)."""
        line_addr = addr >> LINE_SHIFT
        l1_complete = now + self.l1d.latency

        line = self.l1d.lookup(line_addr)
        if line is not None:
            return self._found(line, LEVEL_L1, l1_complete, now, demand)

        line = self.l2.lookup(line_addr)
        if line is not None:
            complete = now + self._l12_latency
            if not self.mshrs.allocate(line_addr, complete, now):
                if demand:
                    self.stats.mshr_blocked += 1
                return None
            result = self._found(line, LEVEL_L2, complete, now, demand)
            self._evict(self.l1d.install(line_addr, line), self.l1d)
            return result

        line = self.l3.lookup(line_addr)
        if line is not None:
            complete = now + self._l123_latency
            if not self.mshrs.allocate(line_addr, complete, now):
                if demand:
                    self.stats.mshr_blocked += 1
                return None
            result = self._found(line, LEVEL_L3, complete, now, demand)
            self._evict(self.l2.install(line_addr, line), self.l2)
            self._evict(self.l1d.install(line_addr, line), self.l1d)
            return result

        # Full miss: fetch from DRAM.
        if self.mshrs.available(now) <= 0:
            if demand:
                self.stats.mshr_blocked += 1
            return None
        fill_cycle = self.dram.request(now + self._l123_latency)
        self.mshrs.allocate(line_addr, fill_cycle, now)
        self.stats.record_dram(source)
        if source in PREFETCH_SOURCES:
            self.stats.record_prefetch_issued(source)
        new_line = CacheLine(source, fill_cycle, LEVEL_OFFCHIP)
        if demand:
            new_line.source = SRC_DEMAND  # demand fills carry no provenance
            self.stats.demand_hits[LEVEL_OFFCHIP] += 1
        self._install_all(line_addr, new_line)
        return AccessResult(fill_cycle, LEVEL_OFFCHIP, new_line.source)

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def demand_load(self, addr, pc, value, now):
        """Main-thread load.  Trains the prefetchers.  May return None
        when blocked on a full MSHR file (retry next cycle)."""
        result = self.access(addr, now, SRC_DEMAND, demand=True)
        if result is None:
            return None
        self.stats.demand_loads += 1
        self._train_prefetchers(pc, addr, value, result, now)
        return result

    def demand_store(self, addr, now):
        """Main-thread store (write-allocate, store buffer hides latency)."""
        self.stats.demand_stores += 1
        line_addr = addr >> LINE_SHIFT
        line = self.l1d.lookup(line_addr)
        if line is not None:
            return now + self.l1d.latency
        result = self.access(addr, now, SRC_DEMAND, demand=False)
        if result is None:
            # MSHR-full write miss: the store buffer would retry; we let the
            # store complete without filling the line.
            return now + self.l1d.latency
        return now + self.l1d.latency

    def runahead_load(self, addr, now, source):
        """Timed load from a runahead engine (PRE chain walk, VR/DVR lanes).

        Counts as a prefetch for provenance but returns real completion
        timing, because dependent indirect levels must wait for the value.
        Returns None when no MSHR is free.
        """
        return self.access(addr, now, source, demand=False)

    def prefetch(self, addr, now, source):
        """Fire-and-forget prefetch into the L1-D.  Dropped when the line
        is already resident/in-flight or no MSHR is free."""
        if not (0 <= addr < self.guest_memory.size_bytes):
            return False
        line_addr = addr >> LINE_SHIFT
        if self.l1d.contains(line_addr):
            return False
        result = self.access(addr, now, source, demand=False)
        return result is not None

    def oracle_load(self, addr, now):
        """Perfect-prefetch load: latency is fully hidden (L1 hit) but a
        first touch of a line still spends one DRAM line-transfer slot --
        the Oracle cannot exceed memory bandwidth."""
        line_addr = addr >> LINE_SHIFT
        line = self.l1d.lookup(line_addr)
        if line is not None:
            self.stats.demand_hits[LEVEL_L1] += 1
            return now + self.l1d.latency
        line = self.l2.lookup(line_addr) or self.l3.lookup(line_addr)
        if line is not None:
            self._evict(self.l1d.install(line_addr, line), self.l1d)
            self.stats.demand_hits[LEVEL_L1] += 1
            return now + self.l1d.latency
        slot = self.dram.occupy()
        self.stats.record_dram(SRC_ORACLE)
        self.stats.demand_hits[LEVEL_L1] += 1
        new_line = CacheLine(SRC_DEMAND, 0, LEVEL_L1)
        self._install_all(line_addr, new_line)
        return max(now + self.l1d.latency, slot)

    def tick(self, now):
        self.mshrs.drain(now)
        if self.sanitizer is not None:
            self.sanitizer.on_mem_tick(self, now)

    # ------------------------------------------------------------------
    def _train_prefetchers(self, pc, addr, value, result, now):
        stride_entry_existed = self.stride_pf.is_striding(pc)
        for target in self.stride_pf.observe(pc, addr):
            if 0 <= target < self.guest_memory.size_bytes:
                self.prefetch(target, now, "stride")
        if not self.imp.enabled:
            return
        if result.level != LEVEL_L1:
            self.imp.observe_miss(addr)
        if stride_entry_existed or self.stride_pf.is_striding(pc):
            entry = self.stride_pf.entry(pc)
            stride = entry.stride if entry is not None else 0
            for target in self.imp.observe_index_load(pc, addr, value, stride):
                self.prefetch(target, now, "imp")

    def mlp(self, now):
        """Average MSHRs occupied per cycle (Fig 9)."""
        return self.mshrs.average_occupancy(now)
