"""Set-associative cache with LRU replacement and line provenance.

Each line remembers *who* brought it into the hierarchy (demand access,
stride prefetcher, IMP, PRE, VR, DVR, ...) and whether a demand access has
touched it since, which feeds the paper's accuracy (Fig 10) and timeliness
(Fig 11) statistics.
"""

from __future__ import annotations

LINE_BYTES = 64
LINE_SHIFT = 6

# Provenance of a cache line / memory request.
SRC_DEMAND = "demand"
SRC_STRIDE = "stride"
SRC_IMP = "imp"
SRC_PRE = "pre"
SRC_VR = "vr"
SRC_DVR = "dvr"
SRC_ORACLE = "oracle"

RUNAHEAD_SOURCES = frozenset({SRC_PRE, SRC_VR, SRC_DVR})
PREFETCH_SOURCES = frozenset(
    {SRC_STRIDE, SRC_IMP, SRC_PRE, SRC_VR, SRC_DVR, SRC_ORACLE})


class CacheLine:
    """Metadata for one resident line (the tag is the dict key)."""

    __slots__ = ("source", "used", "ready_at", "origin_level")

    def __init__(self, source, ready_at, origin_level):
        self.source = source
        self.used = False
        self.ready_at = ready_at          # cycle the fill data arrives
        self.origin_level = origin_level  # where the fill came from


class Cache:
    """One cache level.  Sets are dicts ordered by recency (LRU first)."""

    def __init__(self, config, name):
        self.config = config
        self.name = name
        self.num_sets = config.num_sets
        if self.num_sets <= 0 or self.num_sets & (self.num_sets - 1):
            raise ValueError(
                f"{name}: number of sets must be a positive power of two, "
                f"got {self.num_sets}")
        self.assoc = config.assoc
        self.latency = config.latency
        self._set_mask = self.num_sets - 1
        self._sets = [dict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def lookup(self, line_addr, update_lru=True):
        """Return the :class:`CacheLine` if resident (refreshing LRU)."""
        cache_set = self._sets[line_addr & self._set_mask]
        line = cache_set.get(line_addr)
        if line is None:
            self.misses += 1
            return None
        self.hits += 1
        if update_lru:
            del cache_set[line_addr]
            cache_set[line_addr] = line
        return line

    def contains(self, line_addr):
        """Presence check without touching LRU state or hit counters."""
        return line_addr in self._sets[line_addr & self._set_mask]

    def peek(self, line_addr):
        """Return line metadata without LRU/stat side effects."""
        return self._sets[line_addr & self._set_mask].get(line_addr)

    def install(self, line_addr, line):
        """Insert a :class:`CacheLine`; returns (evicted_addr, line) or None.

        The same ``CacheLine`` object may be installed into several levels
        so that its ``used``/``ready_at`` metadata stays coherent across
        the hierarchy.
        """
        cache_set = self._sets[line_addr & self._set_mask]
        evicted = None
        if line_addr in cache_set:
            # Refill of a resident line: keep the existing metadata object,
            # refreshing readiness if the new fill arrives sooner.
            existing = cache_set.pop(line_addr)
            existing.ready_at = min(existing.ready_at, line.ready_at)
            cache_set[line_addr] = existing
            return None
        if len(cache_set) >= self.assoc:
            victim_addr = next(iter(cache_set))
            evicted = (victim_addr, cache_set.pop(victim_addr))
        cache_set[line_addr] = line
        return evicted

    def invalidate(self, line_addr):
        self._sets[line_addr & self._set_mask].pop(line_addr, None)

    @property
    def accesses(self):
        return self.hits + self.misses

    def reset_stats(self):
        self.hits = 0
        self.misses = 0
