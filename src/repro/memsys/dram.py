"""DRAM model: fixed minimum latency plus request-based bandwidth contention.

Matches the paper's Table 1 memory: 50 ns minimum latency (200 cycles at
4 GHz) and 51.2 GB/s of bandwidth, i.e. one 64-byte line every 5 cycles.
Requests that arrive faster than the line interval queue up, so heavy
prefetching sees growing latency -- the "request-based contention model".
"""

from __future__ import annotations


class Dram:
    def __init__(self, config):
        self.latency = config.dram_latency_cycles
        self.line_interval = config.dram_line_interval
        self._channel_free = 0
        self.requests = 0
        self.total_queue_delay = 0

    def request(self, now):
        """Issue a line fetch at cycle ``now``; returns the fill cycle."""
        start = now if now >= self._channel_free else self._channel_free
        self._channel_free = start + self.line_interval
        self.requests += 1
        self.total_queue_delay += start - now
        return start + self.latency

    def occupy(self):
        """Claim one line-transfer slot at the earliest channel opening,
        with no latency added.  Used by the Oracle model, which is assumed
        to have issued its fetch early enough to hide the latency but must
        still spend the bandwidth."""
        start = self._channel_free
        self._channel_free = start + self.line_interval
        self.requests += 1
        return start

    def queue_delay_estimate(self, now):
        """Cycles a request issued now would wait before starting."""
        return max(0, self._channel_free - now)

    @property
    def average_queue_delay(self):
        if self.requests == 0:
            return 0.0
        return self.total_queue_delay / self.requests
