"""Always-on L1-D stride prefetcher (16 streams), paper Table 1.

A classic per-PC reference prediction table: once a load PC has produced
the same address delta ``train_threshold`` times, the prefetcher issues
``degree`` line fetches ``distance`` strides ahead of the demand stream.
"""

from __future__ import annotations

from .cache import LINE_SHIFT


class StrideEntry:
    __slots__ = ("last_addr", "stride", "confidence")

    def __init__(self, last_addr):
        self.last_addr = last_addr
        self.stride = 0
        self.confidence = 0


class StridePrefetcher:
    def __init__(self, config):
        self.config = config
        self.enabled = config.enabled
        self._table = {}  # pc -> StrideEntry, dict order = LRU
        self.trained_triggers = 0

    def entry(self, pc):
        return self._table.get(pc)

    def is_striding(self, pc):
        """Is this load PC currently a confident striding stream?"""
        entry = self._table.get(pc)
        return (entry is not None and entry.stride != 0 and
                entry.confidence >= self.config.train_threshold)

    def observe(self, pc, addr):
        """Train on a demand load; return byte addresses worth prefetching."""
        if not self.enabled:
            return ()
        table = self._table
        entry = table.get(pc)
        if entry is None:
            if len(table) >= self.config.streams:
                del table[next(iter(table))]  # evict LRU stream
            table[pc] = StrideEntry(addr)
            return ()
        # LRU refresh
        del table[pc]
        table[pc] = entry
        stride = addr - entry.last_addr
        if stride != 0 and stride == entry.stride:
            if entry.confidence < 3:
                entry.confidence += 1
        else:
            entry.stride = stride
            entry.confidence = 1 if stride != 0 else 0
        entry.last_addr = addr
        if entry.confidence < self.config.train_threshold or entry.stride == 0:
            return ()
        self.trained_triggers += 1
        base = addr + entry.stride * self.config.distance
        step = entry.stride
        # Only prefetch distinct lines: small strides hit the same line.
        line_step = max(abs(step), 1 << LINE_SHIFT) * (1 if step > 0 else -1)
        if abs(step) >= (1 << LINE_SHIFT):
            line_step = step
        return tuple(base + line_step * k for k in range(self.config.degree))
