"""Miss status holding registers (MSHRs) for the L1-D cache.

The paper's MLP figure (Fig 9) is "MSHRs used per cycle on average", so the
file tracks an exact occupancy integral: ``occupancy * elapsed`` is
accumulated on every allocate/release transition.
"""

from __future__ import annotations

import heapq


class MshrFile:
    def __init__(self, num_entries):
        self.num_entries = num_entries
        # line_addr -> fill cycle, for outstanding misses
        self._outstanding = {}
        self._release_heap = []  # (fill_cycle, line_addr)
        self.occupancy_integral = 0
        self._last_change = 0
        self.peak_occupancy = 0
        self.allocations = 0
        self.releases = 0
        self.full_rejections = 0

    def _advance(self, now):
        self.occupancy_integral += len(self._outstanding) * (now - self._last_change)
        self._last_change = now

    def drain(self, now):
        """Release every MSHR whose fill has arrived by ``now``."""
        heap = self._release_heap
        while heap and heap[0][0] <= now:
            fill_cycle, line_addr = heapq.heappop(heap)
            current = self._outstanding.get(line_addr)
            if current is not None and current <= now:
                self._advance(fill_cycle)
                del self._outstanding[line_addr]
                self.releases += 1

    def lookup(self, line_addr):
        """Fill cycle of an in-flight miss to this line, or None."""
        return self._outstanding.get(line_addr)

    def next_fill(self):
        """Cycle of the earliest outstanding fill, or None.

        Used by the core's event-driven fast-forward: an arriving fill is
        the only spontaneous memory-system event, so it bounds how far the
        simulator may jump.  The occupancy integral needs no span fix-up --
        :meth:`drain` already advances it exactly, fill by fill, no matter
        how coarsely ``now`` moves.
        """
        heap = self._release_heap
        return heap[0][0] if heap else None

    def available(self, now):
        self.drain(now)
        return self.num_entries - len(self._outstanding)

    def allocate(self, line_addr, fill_cycle, now):
        """Track a new outstanding miss.  Returns False if the file is full."""
        self.drain(now)
        if line_addr in self._outstanding:
            return True
        if len(self._outstanding) >= self.num_entries:
            self.full_rejections += 1
            return False
        self._advance(now)
        self._outstanding[line_addr] = fill_cycle
        heapq.heappush(self._release_heap, (fill_cycle, line_addr))
        self.allocations += 1
        if len(self._outstanding) > self.peak_occupancy:
            self.peak_occupancy = len(self._outstanding)
        return True

    def occupancy(self):
        return len(self._outstanding)

    def average_occupancy(self, now):
        """Average MSHRs in use per cycle over [0, now]."""
        if now <= 0:
            return 0.0
        self.drain(now)
        self._advance(now)
        return self.occupancy_integral / now
