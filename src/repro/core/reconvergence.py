"""GPU-style reconvergence stack (paper Section 4.2.3, Fig 6).

Each entry stores a PC and a lane mask.  On branch divergence the lanes
are split by their next PC; one group continues, the others are pushed.
The reconvergence point is the subthread termination point, so when the
running group terminates we pop the stack and resume the next group.
An 8-entry stack; overflowing groups are dropped (their lanes masked off).
"""

from __future__ import annotations


class ReconvergenceStack:
    def __init__(self, depth):
        self.depth = depth
        self._stack = []  # list of (pc, lane index tuple)
        self.pushes = 0
        self.overflows = 0

    def push(self, pc, lanes):
        if len(self._stack) >= self.depth:
            self.overflows += 1
            return False
        self._stack.append((pc, tuple(lanes)))
        self.pushes += 1
        return True

    def pop(self):
        return self._stack.pop() if self._stack else None

    def __len__(self):
        return len(self._stack)

    @property
    def empty(self):
        return not self._stack
