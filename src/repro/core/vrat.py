"""Vector Register Allocation Table (paper Section 4.2.1, Fig 4).

The subthread shares the core's physical register files, so although it
executes in order it still renames: each architectural integer register
maps either to one scalar physical register (shared across lanes) or to
``vector_copies`` vector physical registers (one per AVX-512-style copy).

Lane *values* live in the subthread's interpreter; the VRAT here enforces
the paper's structural constraints -- finite free lists (256 int / 128
vector physical registers shared with the main thread), allocation of 16
vector registers on first vectorization of a destination, and freeing on
overwrite -- and exposes exhaustion to the subthread, which must stall.
"""

from __future__ import annotations

from ..isa.instructions import NUM_REGS

KIND_SCALAR = "scalar"
KIND_VECTOR = "vector"


class VratExhausted(Exception):
    """No free physical registers for the requested mapping."""


class Vrat:
    def __init__(self, core_config, dvr_config, main_thread_int_regs_in_use=64):
        # The main thread owns a share of the physical register files; the
        # subthread allocates from what is left.
        self._int_free = core_config.phys_int_regs - main_thread_int_regs_in_use
        self._vec_free = core_config.phys_vec_regs
        # Free-list ceilings, for the runtime sanitizer's bound checks.
        self.int_capacity = self._int_free
        self.vec_capacity = self._vec_free
        self._copies = dvr_config.vector_copies
        self._kind = [None] * NUM_REGS
        self.vector_allocs = 0
        self.scalar_allocs = 0
        self.exhaustions = 0

    def initialize_from_main(self):
        """Map every architectural register to a fresh scalar physical
        register, decoupling the subthread from the main thread."""
        needed = NUM_REGS
        if self._int_free < needed:
            self.exhaustions += 1
            raise VratExhausted("not enough int physical registers to spawn")
        self._int_free -= needed
        self.scalar_allocs += needed
        for reg in range(NUM_REGS):
            self._kind[reg] = KIND_SCALAR

    def kind(self, reg):
        return self._kind[reg]

    def make_vector(self, reg):
        """Remap ``reg`` to vector physical registers (first vectorization)."""
        if self._kind[reg] == KIND_VECTOR:
            return
        if self._vec_free < self._copies:
            self.exhaustions += 1
            raise VratExhausted("vector physical registers exhausted")
        self._vec_free -= self._copies
        self.vector_allocs += self._copies
        self._release_scalar(reg)
        self._kind[reg] = KIND_VECTOR

    def make_scalar(self, reg):
        """Remap ``reg`` back to one scalar physical register (a scalar
        instruction overwrites a vectorized destination -- WAW in the
        original code)."""
        if self._kind[reg] == KIND_SCALAR:
            return
        if self._int_free < 1:
            self.exhaustions += 1
            raise VratExhausted("int physical registers exhausted")
        self._release_vector(reg)
        self._int_free -= 1
        self.scalar_allocs += 1
        self._kind[reg] = KIND_SCALAR

    def _release_scalar(self, reg):
        if self._kind[reg] == KIND_SCALAR:
            self._int_free += 1
        self._kind[reg] = None

    def _release_vector(self, reg):
        if self._kind[reg] == KIND_VECTOR:
            self._vec_free += self._copies
        self._kind[reg] = None

    def release_all(self):
        """Subthread termination: return every mapping to the free lists."""
        for reg in range(NUM_REGS):
            if self._kind[reg] == KIND_SCALAR:
                self._int_free += 1
            elif self._kind[reg] == KIND_VECTOR:
                self._vec_free += self._copies
            self._kind[reg] = None

    @property
    def free_vector_regs(self):
        return self._vec_free

    @property
    def free_int_regs(self):
        return self._int_free
