"""Stride detector / Reference Prediction Table (paper Section 4.1.1).

A 32-entry RPT tracking load PCs, their last addresses, stride and a 2-bit
saturating confidence counter, plus the "innermost" bit used by Discovery
Mode's innermost-striding-load selection.  The detector observes loads
from the dispatch/execute stages of the main pipeline (Fig 3).
"""

from __future__ import annotations


class RptEntry:
    __slots__ = ("pc", "last_addr", "stride", "confidence", "innermost")

    def __init__(self, pc, addr):
        self.pc = pc
        self.last_addr = addr
        self.stride = 0
        self.confidence = 0   # 2-bit saturating counter
        self.innermost = False


class StrideDetector:
    def __init__(self, config):
        self.entries = config.stride_detector_entries
        self.threshold = config.stride_confidence
        self._table = {}  # pc -> RptEntry (dict order approximates LRU)

    def observe(self, pc, addr):
        """Train on a load; returns the entry (confident or not)."""
        table = self._table
        entry = table.get(pc)
        if entry is None:
            if len(table) >= self.entries:
                del table[next(iter(table))]
            entry = RptEntry(pc, addr)
            table[pc] = entry
            return entry
        del table[pc]
        table[pc] = entry  # LRU refresh
        stride = addr - entry.last_addr
        if stride == entry.stride and stride != 0:
            if entry.confidence < 3:
                entry.confidence += 1
        else:
            entry.stride = stride
            entry.confidence = 1 if stride != 0 else 0
        entry.last_addr = addr
        return entry

    def get(self, pc):
        return self._table.get(pc)

    def is_confident(self, pc):
        entry = self._table.get(pc)
        return (entry is not None and entry.stride != 0 and
                entry.confidence >= self.threshold)

    def confident_entries(self):
        return [entry for entry in self._table.values()
                if entry.stride != 0 and entry.confidence >= self.threshold]

    def __len__(self):
        return len(self._table)
