"""Nested Discovery Mode (paper Section 4.3).

When Discovery Mode finds fewer than 64 upcoming iterations of the inner
loop, the spawned subthread does not vectorize immediately.  Instead it:

1. starts on the *not-taken* path of the loop's backward branch (skipping
   the remaining inner-loop iterations) and executes scalar operations;
2. when it finds an **outer striding load** (a confident RPT entry whose
   PC is smaller than the Inner Load Register), vectorizes it by 16 and
   follows its dependents as 16-lane vector code;
3. on reaching the inner striding load, reads the vectorized LCR source
   registers and the Increment Register to compute each outer lane's
   number of inner-loop invocations, collects up to 128 inner striding
   addresses, and expands vectorization to cover all of them;
4. if no outer striding load appears within 200 instructions, falls back
   to vectorizing the inner load by the originally discovered loop bound.

The state machine lives here; the subthread calls its hooks.
"""

from __future__ import annotations


class NestedState:
    PHASE_SCAN = "scan"        # scalar execution, hunting the outer stride
    PHASE_VECTOR = "vector"    # 16 outer lanes, heading to the inner load

    def __init__(self, dvr_config, stride_detector, discovery,
                 inner_last_addr):
        self.config = dvr_config
        self.detector = stride_detector
        # Inner-loop facts from Discovery Mode:
        self.inner_stride_pc = discovery.stride_pc   # ILR (inner load)
        self.inner_stride = discovery.stride         # inner stride
        self.inner_last_addr = inner_last_addr       # its address at spawn
        self.increment = discovery.loop_bound.increment or 1  # IR
        self.bound = discovery.loop_bound            # LCR registers
        self.flr_pc = discovery.flr_pc
        self.terminate_at_stride = discovery.terminate_at_stride
        self.fallback_lanes = discovery.remaining    # loop-bound fallback
        self.phase = self.PHASE_SCAN
        self.scanned = 0
        self.outer_pc = -1

    def budget_exceeded(self):
        self.scanned += 1
        return self.scanned > self.config.ndm_scan_limit

    def outer_stride_entry(self, pc):
        """Is the load at ``pc`` the outer striding load we are after?

        The paper's test: a confident striding load whose address (PC) is
        smaller than the inner striding load's (ILR) -- i.e. from an
        enclosing loop.
        """
        if self.phase != self.PHASE_SCAN or pc == self.inner_stride_pc:
            return None
        if pc >= self.inner_stride_pc:
            return None
        entry = self.detector.get(pc)
        if (entry is not None and entry.stride != 0 and
                entry.confidence >= self.detector.threshold):
            return entry
        return None

    def on_outer_vectorized(self, pc):
        self.phase = self.PHASE_VECTOR
        self.outer_pc = pc

    def on_vector_load(self, ins, subthread):
        """Hook after any vector gather completes issue (unused for now;
        kept for symmetry/extension)."""

    def inner_iterations(self, subthread, lane):
        """Inner-loop invocation count for one outer lane, from the
        vectorized LCR registers and the Increment Register."""
        bound = self.bound
        if not bound.found or self.increment == 0:
            return 0
        bound_val = subthread._value(bound.bound_reg, lane)
        start_val = subthread._value(bound.induction_reg, lane)
        from .subthread import _INVALID
        if bound_val is _INVALID or start_val is _INVALID:
            return 0
        if self.increment > 0:
            iters = (bound_val - start_val + self.increment - 1) // self.increment
        else:
            iters = (start_val - bound_val + (-self.increment) - 1) // (-self.increment)
        if iters < 0:
            return 0
        return min(iters, self.config.max_lanes)
