"""Vector Taint Tracker (VTT), paper Section 4.1.2.

One bit per architectural integer register.  The destination of the
initiating striding load is seeded; taint propagates transitively through
instructions whose sources are tainted.  An instruction overwriting a
tainted register from untainted sources clears the bit.  Whenever a
*load*'s address inputs are tainted, the Final-Load Register (FLR) is
updated with that load's PC -- identifying the end of the indirect chain.
"""

from __future__ import annotations

from ..isa.instructions import NUM_REGS


class TaintTracker:
    def __init__(self):
        self.bits = 0          # bitmask over the 32 architectural registers
        self.flr_pc = -1       # Final-Load Register (0/-1 == empty)
        self.chain_pcs = []    # tainted instruction PCs (for stats/tests)

    def reset(self, seed_reg=None):
        self.bits = 0
        self.flr_pc = -1
        self.chain_pcs = []
        if seed_reg is not None:
            self.bits = 1 << seed_reg

    def is_tainted(self, reg):
        return bool(self.bits & (1 << reg))

    def observe(self, ins):
        """Propagate taint through one instruction (in program order).

        Returns True if the instruction is part of the dependence chain
        (i.e. any of its sources is tainted).
        """
        bits = self.bits
        src_tainted = False
        for reg in ins.srcs:
            if bits & (1 << reg):
                src_tainted = True
                break
        if src_tainted:
            if ins.is_load:
                self.flr_pc = ins.pc
            self.chain_pcs.append(ins.pc)
        if ins.rd >= 0:
            if src_tainted:
                self.bits |= 1 << ins.rd
            else:
                self.bits &= ~(1 << ins.rd)
        return src_tainted

    @property
    def has_dependent_load(self):
        return self.flr_pc >= 0

    def tainted_regs(self):
        return [reg for reg in range(NUM_REGS) if self.bits & (1 << reg)]
