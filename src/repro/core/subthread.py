"""The decoupled vector-runahead subthread (paper Sections 4.2 and 4.3).

An in-order, speculative, SIMT interpreter over the guest program.  It is
spawned at a striding load, vectorizes that load across up to 128 future
loop iterations (``max_lanes``), and follows the dependent instruction
chain with per-lane register values, issuing every lane's loads to the
memory hierarchy as prefetches.

Structure mirrors the paper's hardware:

* the **VRAT** (:class:`~repro.core.vrat.Vrat`) maps each architectural
  register to a shared scalar physical register or to 16 vector physical
  registers; exhaustion kills the invocation;
* the **VIR** discipline: one instruction is in flight at a time; its 16
  vector copies (8 lanes each) issue over spare issue slots -- possibly
  across several cycles -- and the next instruction is fetched only when
  all copies have issued and executed;
* the **reconvergence stack** splits lanes on divergent branches and
  resumes deferred groups when the running group terminates;
* termination at the Final-Load-Register PC, at the next occurrence of
  the striding load (when divergent paths must be explored), or after a
  200-instruction timeout.

The same machinery, parameterized, also implements Vector Runahead's
vectorized chain following (first-lane control flow, no loop bounds) and
DVR's Nested Discovery Mode (scalar scan on the not-taken path, outer
striding load vectorized by 16, inner-loop expansion to 128 lanes).

Instruction lifecycle (phases)::

    fetch -> exec_issue -> (wait) -> fetch          ALU / branches
    fetch -> mem_issue  ->  wait  -> fetch          loads (scalar & gather)

``fetch`` classifies the instruction exactly once (termination checks,
timeout accounting); the issue phases then consume spare issue slots
across as many cycles as needed, so a 16-copy vector op on a 5-wide core
takes several cycles to issue, as in the paper.
"""

from __future__ import annotations

from ..isa.instructions import NUM_REGS, Op, hash64, to_signed64
from ..uarch.dynins import FU_ALU, FU_MEM, fu_class
from .reconvergence import ReconvergenceStack
from .vrat import Vrat, VratExhausted

# Control-flow handling across lanes
FLOW_RECONVERGE = "reconverge"   # DVR: GPU-style divergence/reconvergence
FLOW_FIRST_LANE = "first-lane"   # VR: follow lane 0, invalidate divergers

_INVALID = object()  # sentinel for lanes with no defined value


def _alu_value(ins, a, b):
    """Compute an ALU/compare result from operand values (timing-free)."""
    op = ins.op
    if op == Op.ADD:
        return a + b
    if op == Op.ADDI:
        return a + ins.imm
    if op == Op.SUB:
        return a - b
    if op == Op.MUL:
        return to_signed64(a * b)
    if op == Op.MULI:
        return to_signed64(a * ins.imm)
    if op == Op.DIV:
        return 0 if b == 0 else a // b
    if op == Op.AND:
        return a & b
    if op == Op.ANDI:
        return a & ins.imm
    if op == Op.OR:
        return a | b
    if op == Op.XOR:
        return a ^ b
    if op == Op.SHL:
        return to_signed64(a << (b & 63))
    if op == Op.SHLI:
        return to_signed64(a << (ins.imm & 63))
    if op == Op.SHR:
        return (a & ((1 << 64) - 1)) >> (b & 63)
    if op == Op.SHRI:
        return (a & ((1 << 64) - 1)) >> (ins.imm & 63)
    if op == Op.CMPLT:
        return 1 if a < b else 0
    if op == Op.CMPLE:
        return 1 if a <= b else 0
    if op == Op.CMPEQ:
        return 1 if a == b else 0
    if op == Op.CMPNE:
        return 1 if a != b else 0
    if op == Op.CMPLTI:
        return 1 if a < ins.imm else 0
    if op == Op.CMPEQI:
        return 1 if a == ins.imm else 0
    if op == Op.LI:
        return ins.imm
    if op == Op.MOV:
        return a
    if op == Op.HASH:
        return hash64(a)
    raise ValueError(f"not an ALU op: {ins}")


def _safe_alu(ins, a, b):
    try:
        return _alu_value(ins, a, b)
    except (ValueError, ZeroDivisionError):  # pragma: no cover - defensive
        return 0


class SubthreadStats:
    def __init__(self):
        self.invocations = 0
        self.instructions = 0
        self.vector_instructions = 0
        self.lane_loads_issued = 0
        self.timeouts = 0
        self.vrat_kills = 0
        self.divergences = 0
        self.lanes_spawned = 0
        self.ndm_entries = 0
        self.ndm_fallbacks = 0
        self.ndm_inner_lanes = 0


class VectorSubthread:
    """One invocation of the vector-runahead subthread."""

    def __init__(self, program, guest_memory, hierarchy, core_config,
                 dvr_config, source, flow=FLOW_RECONVERGE, stats=None):
        self.program = program
        self.mem = guest_memory
        self.hierarchy = hierarchy
        self.config = dvr_config
        self.source = source            # cache-line provenance tag
        self.flow = flow
        self.stats = stats or SubthreadStats()
        self.core_config = core_config
        self.vector_width = dvr_config.vector_width

        self.vrat = Vrat(core_config, dvr_config)
        self.reconv = ReconvergenceStack(dvr_config.reconvergence_depth)
        self.sanitizer = None           # attached by the harness (--sanitize)

        self.active = []                # active lane ids
        self.svals = [0] * NUM_REGS     # scalar register values
        self.vvals = [None] * NUM_REGS  # per-lane values for vector regs
        self.is_vec = [False] * NUM_REGS

        self.pc = -1
        self.done = True
        self.executed = 0               # instructions this invocation
        self.flr_pc = -1
        self.stride_pc = -1
        self.stride = 0
        self._stride_base = 0
        self.terminate_at_stride = False
        self._spawn_regs = [0] * NUM_REGS
        self._nested = None             # NestedState while in NDM

        self._phase = "fetch"           # fetch | exec_issue | mem_issue | wait
        self._wait_until = 0
        self._cur_ins = None
        self._cost_left = 0
        self._cur_fu = FU_ALU
        self._mem_pending = []          # (lane, addr) still to issue
        self._mem_done = {}             # lane -> loaded value
        self._mem_max_complete = 0
        self._mem_is_vector = False

    # ------------------------------------------------------------------
    # Spawning
    # ------------------------------------------------------------------
    def spawn(self, stride_pc, stride, last_addr, main_regs, num_lanes,
              flr_pc=-1, terminate_at_stride=False):
        """Start a regular (non-nested) invocation at the striding load.

        Lane ``k`` represents loop iteration ``k+1`` into the future: its
        striding-load address is ``last_addr + stride * (k + 1)``.
        """
        self.stats.invocations += 1
        self.stats.lanes_spawned += num_lanes
        if not self._init_context(main_regs):
            return False
        self.active = list(range(num_lanes))
        self.pc = stride_pc
        self.stride_pc = stride_pc
        self.stride = stride
        self._stride_base = last_addr
        self.flr_pc = flr_pc
        self.terminate_at_stride = terminate_at_stride or flr_pc < 0
        self.done = num_lanes == 0
        self._nested = None
        return not self.done

    def spawn_nested(self, nested_state, main_regs):
        """Start in Nested Discovery Mode (paper Section 4.3.1): execution
        begins on the not-taken path of the inner loop's backward branch,
        skipping its remaining iterations, and proceeds scalar until an
        outer striding load is found."""
        self.stats.invocations += 1
        self.stats.ndm_entries += 1
        if not self._init_context(main_regs):
            return False
        self.active = [0]  # scalar phase: a single lane
        self._nested = nested_state
        self.pc = nested_state.bound.branch_pc + 1  # not-taken path
        self.stride_pc = nested_state.inner_stride_pc
        self.stride = nested_state.inner_stride
        self._stride_base = nested_state.inner_last_addr
        self.flr_pc = nested_state.flr_pc
        self.terminate_at_stride = nested_state.terminate_at_stride
        self.done = False
        return True

    def _init_context(self, main_regs):
        try:
            self.vrat.initialize_from_main()
        except VratExhausted:
            self.stats.vrat_kills += 1
            self.done = True
            return False
        self.svals = list(main_regs)
        self._spawn_regs = list(main_regs)
        self.vvals = [None] * NUM_REGS
        self.is_vec = [False] * NUM_REGS
        while not self.reconv.empty:
            self.reconv.pop()
        self.executed = 0
        self._phase = "fetch"
        self._wait_until = 0
        self._cur_ins = None
        self._mem_pending = []
        self._mem_done = {}
        return True

    # ------------------------------------------------------------------
    # Nested Discovery Mode transitions
    # ------------------------------------------------------------------
    def _ndm_fallback(self):
        """No outer striding load found: vectorize the inner load by the
        loop bound discovered originally (paper Section 4.3.1, last rule)."""
        nested = self._nested
        self._nested = None
        self.stats.ndm_fallbacks += 1
        self.vrat.release_all()
        lanes = max(1, nested.fallback_lanes)
        spawn_regs = self._spawn_regs
        self.stats.invocations -= 1  # the re-spawn below recounts it
        self.spawn(nested.inner_stride_pc, nested.inner_stride,
                   nested.inner_last_addr, spawn_regs, lanes,
                   flr_pc=nested.flr_pc,
                   terminate_at_stride=nested.terminate_at_stride)

    def _ndm_expand(self, ins):
        """Reached the inner striding load with 16 vectorized outer lanes:
        compute per-outer-lane inner-loop bounds and expand vectorization
        to up to 128 inner lanes (paper Section 4.3.2)."""
        nested = self._nested
        specs = []  # (owner outer lane, inner address)
        cap = self.config.max_lanes
        for lane in self.active:
            iters = nested.inner_iterations(self, lane)
            if iters <= 0:
                continue
            base = self._value(ins.rs1, lane)
            if base is _INVALID:
                continue
            if ins.op == Op.LOADX:
                index = self._value(ins.rs2, lane)
                if index is _INVALID:
                    continue
                addr = base + index * ins.imm
            else:
                addr = base + ins.imm
            for k in range(iters):
                specs.append((lane, addr + nested.inner_stride * k))
                if len(specs) >= cap:
                    break
            if len(specs) >= cap:
                break
        if not specs:
            self._ndm_fallback()
            return
        # Re-map vector registers: inner lane i inherits its outer lane's
        # values; untainted registers stay scalar.
        for reg in range(NUM_REGS):
            if self.is_vec[reg]:
                old = self.vvals[reg]
                self.vvals[reg] = {
                    i: old[owner] for i, (owner, _) in enumerate(specs)
                    if owner in old}
        self.active = list(range(len(specs)))
        self.stats.ndm_inner_lanes += len(specs)
        # Deferred divergent groups refer to outer lane ids; drop them.
        while not self.reconv.empty:
            self.reconv.pop()
        self._nested = None
        self.executed = 1
        self.stats.vector_instructions += 1
        self._cur_ins = ins
        self._mem_pending = [(i, addr) for i, (_, addr) in enumerate(specs)
                             if 0 <= addr < self.mem.size_bytes]
        self._mem_done = {}
        self._mem_max_complete = 0
        self._mem_is_vector = True
        self._phase = "mem_issue"

    # ------------------------------------------------------------------
    # Quiescence (event-driven fast-forward)
    # ------------------------------------------------------------------
    def quiescent(self, now):
        """True when :meth:`step` is a guaranteed no-op until
        :meth:`next_event` -- the subthread is finished, or parked in the
        ``wait`` phase for a fill/FU latency that has not elapsed."""
        return self.done or (self._phase == "wait" and now < self._wait_until)

    def next_event(self, now):
        """Cycle at which the subthread wakes from ``wait``, or None."""
        if self.done or self._phase != "wait":
            return None
        return self._wait_until

    # ------------------------------------------------------------------
    # Per-cycle stepping
    # ------------------------------------------------------------------
    def step(self, now, ports):
        """Advance the subthread using spare issue slots at cycle ``now``."""
        if self.sanitizer is not None and not self.done:
            self.sanitizer.on_subthread_step(self)
        guard = 0
        while not self.done and guard < 64:
            guard += 1
            phase = self._phase
            if phase == "wait":
                if now < self._wait_until:
                    return
                self._phase = "fetch"
            elif phase == "fetch":
                self._fetch()
            elif phase == "exec_issue":
                if not self._exec_issue(now, ports):
                    return
            elif phase == "mem_issue":
                if not self._mem_issue(now, ports):
                    return

    # ------------------------------------------------------------------
    # Fetch: classify one instruction (exactly once)
    # ------------------------------------------------------------------
    def _fetch(self):
        if self.executed >= self.config.subthread_timeout:
            self.stats.timeouts += 1
            self._group_done(timeout=True)
            return
        ins = self.program.instructions[self.pc]
        self.executed += 1
        self.stats.instructions += 1

        if self._nested is not None:
            if self._nested.budget_exceeded():
                self._ndm_fallback()
                return
            if self.pc == self._nested.inner_stride_pc:
                if self._nested.phase == self._nested.PHASE_VECTOR:
                    self._ndm_expand(ins)
                else:
                    # Looped back to the inner load without finding an
                    # outer striding load.
                    self._ndm_fallback()
                return

        # Termination point: the next iteration of the striding load.
        if (self.pc == self.stride_pc and self.executed > 1
                and self._nested is None):
            self._group_done()
            return

        op = ins.op
        if op == Op.HALT:
            self._group_done()
            return
        if op == Op.JMP:
            self.pc = ins.target
            return
        if op == Op.NOP:
            self.pc += 1
            return
        if ins.is_store:
            # Runahead never commits stores; drop them.
            self.pc += 1
            return
        if ins.is_load:
            self._classify_load(ins)
            return
        # ALU / compare / conditional branch: issue over spare slots.
        self._cur_ins = ins
        self._cur_fu = FU_ALU if ins.is_cond_branch else fu_class(op)
        if self._vectorized(ins):
            self._cost_left = self._vector_cost()
            self.stats.vector_instructions += 1
        else:
            self._cost_left = 1
        self._phase = "exec_issue"

    def _vectorized(self, ins):
        if ins.is_cond_branch:
            return self.is_vec[ins.rs1]
        for reg in ins.srcs:
            if self.is_vec[reg]:
                return True
        return False

    def _vector_cost(self):
        """Issue slots for one vector instruction: one per AVX-512-style
        copy of ``vector_width`` lanes."""
        return max(1, -(-len(self.active) // self.vector_width))

    # ------------------------------------------------------------------
    # Execution-issue phase (ALU ops and branches)
    # ------------------------------------------------------------------
    def _exec_issue(self, now, ports):
        """Claim slots; when fully issued, perform the operation.  Returns
        False when out of slots this cycle."""
        fu = self._cur_fu
        while self._cost_left > 0:
            if not ports.can_issue(fu):
                return False
            ports.claim(fu)
            self._cost_left -= 1
        ins = self._cur_ins
        self._cur_ins = None
        if ins.is_cond_branch:
            self._do_branch(ins)
            return True
        self._do_alu(ins, now, ports)
        return True

    def _do_alu(self, ins, now, ports):
        if not self._vectorized(ins):
            src_a = self.svals[ins.srcs[0]] if ins.srcs else 0
            src_b = self.svals[ins.srcs[1]] if len(ins.srcs) > 1 else 0
            if ins.rd >= 0 and not self._write_scalar(
                    ins.rd, _safe_alu(ins, src_a, src_b)):
                return
        else:
            values = {}
            dead = []
            for lane in self.active:
                src_a = self._value(ins.srcs[0], lane) if ins.srcs else 0
                src_b = (self._value(ins.srcs[1], lane)
                         if len(ins.srcs) > 1 else 0)
                if src_a is _INVALID or src_b is _INVALID:
                    dead.append(lane)
                    continue
                values[lane] = _safe_alu(ins, src_a, src_b)
            if dead:
                self._kill_lanes(dead)
                if self.done or not self.active:
                    return
            if ins.rd >= 0 and not self._write_vector(ins.rd, values):
                return
        latency = ports.latency.get(self._cur_fu, 1)
        self.pc += 1
        if latency > 1:
            self._wait_until = now + latency
            self._phase = "wait"
        else:
            self._phase = "fetch"

    def _do_branch(self, ins):
        self._phase = "fetch"
        reg = ins.rs1
        if not self.is_vec[reg]:
            value = self.svals[reg]
            taken = (value != 0) if ins.op == Op.BNZ else (value == 0)
            self.pc = ins.target if taken else self.pc + 1
            return
        taken_lanes, fall_lanes, dead = [], [], []
        for lane in self.active:
            value = self._value(reg, lane)
            if value is _INVALID:
                dead.append(lane)
                continue
            taken = (value != 0) if ins.op == Op.BNZ else (value == 0)
            (taken_lanes if taken else fall_lanes).append(lane)
        if dead:
            self._kill_lanes(dead)
            if self.done:
                return
        if not taken_lanes or not fall_lanes:
            self.pc = ins.target if taken_lanes else self.pc + 1
            return
        # Divergence.
        self.stats.divergences += 1
        if self.flow == FLOW_FIRST_LANE:
            # VR: follow the first lane's path; divergent lanes invalidated.
            first = self.active[0]
            if first in taken_lanes:
                self.active, self.pc = taken_lanes, ins.target
            else:
                self.active, self.pc = fall_lanes, self.pc + 1
            return
        # DVR: split via the reconvergence stack; continue with the group
        # containing the first (oldest) lane, defer the other.
        first = self.active[0]
        if first in taken_lanes:
            run_lanes, run_pc = taken_lanes, ins.target
            defer_lanes, defer_pc = fall_lanes, self.pc + 1
        else:
            run_lanes, run_pc = fall_lanes, self.pc + 1
            defer_lanes, defer_pc = taken_lanes, ins.target
        self.reconv.push(defer_pc, defer_lanes)
        self.active = run_lanes
        self.pc = run_pc

    # ------------------------------------------------------------------
    # Loads
    # ------------------------------------------------------------------
    def _classify_load(self, ins):
        is_stride_load = (self.pc == self.stride_pc and
                          self._nested is None and self.executed == 1)
        if is_stride_load:
            # The Vectorizer replaces the striding load with vectorized
            # copies generated from its predicted stride.
            addrs = [(lane, self._stride_base + self.stride * (lane + 1))
                     for lane in self.active]
        elif self._vectorized(ins):
            addrs = []
            dead = []
            for lane in self.active:
                base = self._value(ins.rs1, lane)
                if base is _INVALID:
                    dead.append(lane)
                    continue
                if ins.op == Op.LOADX:
                    index = self._value(ins.rs2, lane)
                    if index is _INVALID:
                        dead.append(lane)
                        continue
                    addrs.append((lane, base + index * ins.imm))
                else:
                    addrs.append((lane, base + ins.imm))
            if dead:
                self._kill_lanes(dead)
                if self.done:
                    return
        else:
            nested = self._nested
            if nested is not None:
                entry = nested.outer_stride_entry(self.pc)
                if entry is not None:
                    # NDM found the outer striding load: vectorize by 16.
                    lanes = self.config.ndm_outer_lanes
                    self.active = list(range(lanes))
                    nested.on_outer_vectorized(self.pc)
                    addrs = [(lane, entry.last_addr + entry.stride * (lane + 1))
                             for lane in range(lanes)]
                    self._setup_gather(ins, addrs)
                    return
            base = self.svals[ins.rs1]
            if ins.op == Op.LOADX:
                addr = base + self.svals[ins.rs2] * ins.imm
            else:
                addr = base + ins.imm
            if not 0 <= addr < self.mem.size_bytes:
                self._group_done()
                return
            self._cur_ins = ins
            self._mem_pending = [(self.active[0], addr)]
            self._mem_done = {}
            self._mem_max_complete = 0
            self._mem_is_vector = False
            self._phase = "mem_issue"
            return
        self._setup_gather(ins, addrs)

    def _setup_gather(self, ins, addrs):
        # Out-of-bounds lanes fault and are masked off.
        dead = [lane for lane, addr in addrs
                if not 0 <= addr < self.mem.size_bytes]
        if dead:
            self._kill_lanes(dead)
            if self.done:
                return
            dead_set = set(dead)
            addrs = [(lane, addr) for lane, addr in addrs
                     if lane not in dead_set]
        if not addrs:
            self._group_done()
            return
        self.stats.vector_instructions += 1
        self._cur_ins = ins
        self._mem_pending = addrs
        self._mem_done = {}
        self._mem_max_complete = 0
        self._mem_is_vector = True
        self._phase = "mem_issue"

    def _mem_issue(self, now, ports):
        """Issue pending lane loads.  One mem-port slot covers one vector
        copy (``vector_width`` lane accesses).  Returns False when out of
        slots or MSHR-blocked (retry next cycle)."""
        pending = self._mem_pending
        width = self.vector_width
        while pending:
            if not ports.can_issue(FU_MEM):
                return False
            ports.claim(FU_MEM)
            budget = width  # one copy's worth of lanes
            while pending and budget > 0:
                lane, addr = pending[-1]
                result = self.hierarchy.runahead_load(addr, now, self.source)
                if result is None:
                    return False  # MSHR full; retry next cycle
                pending.pop()
                budget -= 1
                self.stats.lane_loads_issued += 1
                self._mem_done[lane] = self.mem.words[addr >> 3]
                if result.complete_cycle > self._mem_max_complete:
                    self._mem_max_complete = result.complete_cycle
        # All lanes issued: write back, wait for the slowest fill.
        ins = self._cur_ins
        self._cur_ins = None
        values = self._mem_done
        self._mem_done = {}
        if ins.rd >= 0:
            if self._mem_is_vector:
                if not self._write_vector(ins.rd, values):
                    return True
            else:
                lane_value = next(iter(values.values()), 0)
                if not self._write_scalar(ins.rd, lane_value):
                    return True
        self._wait_until = self._mem_max_complete
        self._phase = "wait"
        self.pc += 1
        if self._nested is not None:
            self._nested.on_vector_load(ins, self)
        else:
            self._check_flr(ins)
        return True

    def _check_flr(self, ins):
        """Terminate the running group after the final indirect load
        (identified by the FLR) has generated its prefetches."""
        if (ins.pc == self.flr_pc and not self.terminate_at_stride
                and self._nested is None):
            self._group_done()

    # ------------------------------------------------------------------
    # Register writes (VRAT-mediated)
    # ------------------------------------------------------------------
    def _value(self, reg, lane):
        if self.is_vec[reg]:
            return self.vvals[reg].get(lane, _INVALID)
        return self.svals[reg]

    def _write_vector(self, reg, values):
        try:
            self.vrat.make_vector(reg)
        except VratExhausted:
            self.stats.vrat_kills += 1
            self._terminate()
            return False
        self.is_vec[reg] = True
        self.vvals[reg] = values
        return True

    def _write_scalar(self, reg, value):
        if not self.reconv.empty:
            # Paper Section 4.2.3, "divergence in scalar renaming": with
            # deferred lane groups outstanding, a scalar write from the
            # running group must not clobber the other groups' view -- the
            # destination is converted to a vector register, the running
            # group's lanes get the new value and deferred lanes keep what
            # they had.
            if self.is_vec[reg]:
                values = dict(self.vvals[reg])
            else:
                old = self.svals[reg]
                values = {lane: old for lane in self._all_lanes()}
            for lane in self.active:
                values[lane] = value
            return self._write_vector(reg, values)
        if self.is_vec[reg]:
            try:
                self.vrat.make_scalar(reg)
            except VratExhausted:
                self.stats.vrat_kills += 1
                self._terminate()
                return False
            self.is_vec[reg] = False
            self.vvals[reg] = None
        self.svals[reg] = value
        return True

    def _all_lanes(self):
        """Active lanes plus every lane deferred on the reconvergence
        stack (the lanes that still have a future in this invocation)."""
        lanes = list(self.active)
        for _, group in self.reconv._stack:
            lanes.extend(group)
        return lanes

    # ------------------------------------------------------------------
    # Lane / group lifecycle
    # ------------------------------------------------------------------
    def _kill_lanes(self, lanes):
        dead = set(lanes)
        self.active = [lane for lane in self.active if lane not in dead]
        if not self.active:
            self._group_done()

    def _group_done(self, timeout=False):
        """The running lane group reached its termination point."""
        if self._nested is not None:
            # Nested scan ran off the program (HALT, dead lanes, timeout):
            # fall back to loop-bound vectorization rather than give up.
            self._ndm_fallback()
            return
        if timeout or self.reconv.empty:
            self._terminate()
            return
        entry = self.reconv.pop()
        if entry is None:
            self._terminate()
            return
        pc, lanes = entry
        self.pc = pc
        self.active = list(lanes)
        self._phase = "fetch"

    def _terminate(self):
        self.done = True
        self.active = []
        self._cur_ins = None
        self._mem_pending = []
        self.vrat.release_all()
