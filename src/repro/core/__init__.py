"""Decoupled Vector Runahead -- the paper's contribution.

Contains the stride detector (RPT), Discovery Mode (taint tracker,
loop-bound detector, innermost-stride selection), the VRAT, the in-order
SIMT vector-runahead subthread with its VIR issue discipline and
reconvergence stack, Nested Discovery Mode, and the engine that wires it
all into the out-of-order core.
"""

from .discovery import DiscoveryMode, DiscoveryResult
from .dvr import DvrEngine
from .hw_cost import hardware_budget, total_bytes
from .loop_bounds import LoopBoundDetector, LoopBoundResult
from .nested import NestedState
from .reconvergence import ReconvergenceStack
from .stride_detector import RptEntry, StrideDetector
from .subthread import (FLOW_FIRST_LANE, FLOW_RECONVERGE, SubthreadStats,
                        VectorSubthread)
from .taint import TaintTracker
from .vrat import Vrat, VratExhausted

__all__ = [
    "DiscoveryMode",
    "DiscoveryResult",
    "DvrEngine",
    "FLOW_FIRST_LANE",
    "FLOW_RECONVERGE",
    "LoopBoundDetector",
    "LoopBoundResult",
    "NestedState",
    "ReconvergenceStack",
    "RptEntry",
    "StrideDetector",
    "SubthreadStats",
    "TaintTracker",
    "VectorSubthread",
    "Vrat",
    "VratExhausted",
    "hardware_budget",
    "total_bytes",
]
