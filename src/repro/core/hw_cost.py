"""Hardware overhead accounting (paper Section 4.4).

Reproduces the paper's bit-level budget for every DVR structure; with the
default configuration the total is exactly the paper's 1139 bytes.
"""

from __future__ import annotations

import math


def _bytes(bits):
    return math.ceil(bits / 8)


def hardware_budget(dvr_config, core_config):
    """Return an ordered list of (structure, bits, bytes) tuples."""
    copies = dvr_config.vector_copies
    rows = []

    # 32-entry stride detector: 48b PC + 48b prev addr + 16b stride +
    # 2b saturating counter + 1b innermost, per entry.
    entry_bits = 48 + 48 + 16 + 2 + 1
    rows.append(("Stride detector (RPT)",
                 dvr_config.stride_detector_entries * entry_bits))

    # VRAT: 16 entries x 16 register ids x 9 bits (selects one of 128
    # vector + 256 int physical registers).
    regid_bits = math.ceil(math.log2(
        core_config.phys_vec_regs + core_config.phys_int_regs))
    rows.append(("VRAT", 16 * copies * regid_bits))

    # VIR: 128b mask, 16b issued, 16b executed, 64b uop+imm,
    # 9x16b dest, 10x16b src1, 10x16b src2.
    rows.append(("VIR", dvr_config.max_lanes + copies + copies + 64 +
                 9 * copies + 10 * copies + 10 * copies))

    # Front-end buffer: 8 micro-ops x 8 bytes.
    rows.append(("Front-end buffer", 8 * 64))

    # Reconvergence stack: 8 x (48b PC + 128b mask), byte-padded per entry.
    rows.append(("Reconvergence stack",
                 dvr_config.reconvergence_depth * (_bytes(48 + 128) * 8)))

    rows.append(("FLR", 48))
    rows.append(("LCR", 16))

    # Loop-bound detector: 2 checkpoints x 16 x 8b register-id mappings,
    # plus the compare and branch registers -- 48 bytes total per paper.
    rows.append(("Loop-bound detector", 2 * 16 * 8 + 2 * 64))

    rows.append(("Taint tracker (VTT)", 16))
    # The SBB (1 bit) and the NDM Increment Register (7 bits, max loop
    # increment 128) pack into a single byte.
    rows.append(("SBB + NDM IR", 1 + 7))
    rows.append(("NDM ILR", 48))

    return [(name, bits, _bytes(bits)) for name, bits in rows]


def total_bytes(dvr_config, core_config):
    return sum(nbytes for _, _, nbytes in
               hardware_budget(dvr_config, core_config))
