"""The Decoupled Vector Runahead engine (paper Section 4).

Orchestrates the pieces: the stride detector watches every main-thread
load; a confident striding load engages Discovery Mode, which follows the
main thread through one loop iteration; when the main thread reaches the
striding load again, the decoupled in-order vector-runahead subthread is
spawned (possibly in Nested Discovery Mode for short inner loops) and
executes concurrently using spare issue slots.  It never blocks the main
thread's dispatch or commit -- that is the decoupling.

Ablation switches (``discovery_enabled``, ``nested_enabled``) implement
Fig 8's "Offload" and "+Discovery Mode" configurations: with discovery
off, a subthread is spawned directly at any confident striding load with
the full 128 lanes, VR-style first-lane control flow, and termination at
the next stride-PC occurrence.
"""

from __future__ import annotations

from ..memsys.cache import SRC_DVR
from .discovery import DiscoveryMode
from .nested import NestedState
from .stride_detector import StrideDetector
from .subthread import (FLOW_FIRST_LANE, FLOW_RECONVERGE, SubthreadStats,
                        VectorSubthread)


class DvrEngine:
    name = "dvr"

    def __init__(self, sim_config, program, guest_memory, hierarchy):
        self.config = sim_config.dvr
        self.detector = StrideDetector(self.config)
        self.subthread_stats = SubthreadStats()
        flow = (FLOW_RECONVERGE if self.config.discovery_enabled
                else FLOW_FIRST_LANE)
        self.subthread = VectorSubthread(
            program, guest_memory, hierarchy, sim_config.core, self.config,
            source=SRC_DVR, flow=flow, stats=self.subthread_stats)
        self.subthread.done = True
        self._discovery = None
        self._pending = None        # DiscoveryResult armed for spawn
        # Engine-level statistics
        self.discoveries_started = 0
        self.discoveries_completed = 0
        self.discoveries_aborted = 0
        self.no_dependent_chain = 0
        self.spawns = 0
        self.nested_spawns = 0

    # ------------------------------------------------------------------
    # Core hooks
    # ------------------------------------------------------------------
    def on_dispatch(self, dyn, core):
        ins = dyn.ins
        if ins.is_load:
            self.detector.observe(ins.pc, dyn.mem_addr)

        if self._discovery is not None:
            result = self._discovery.observe(dyn, core)
            if result == "abort":
                self._discovery = None
                self.discoveries_aborted += 1
            elif result is not None:
                self._discovery = None
                self.discoveries_completed += 1
                if result.has_dependent_load:
                    self._pending = result
                else:
                    # Just a stride: the L1-D stride prefetcher covers it.
                    self.no_dependent_chain += 1
            return

        if not self.subthread.done:
            return

        if self._pending is not None:
            if ins.is_load and ins.pc == self._pending.stride_pc:
                self._spawn(self._pending, dyn, core)
                self._pending = None
            return

        if ins.is_load and self.detector.is_confident(ins.pc):
            if self.config.discovery_enabled:
                self._discovery = DiscoveryMode(
                    self.config, self.detector, ins.pc, ins.rd,
                    list(core.regs))
                self.discoveries_started += 1
            else:
                self._spawn_offload(ins, dyn, core)

    def on_rob_stall(self, now, head):
        pass  # DVR is decoupled from full-ROB stalls.

    def tick(self, now, ports):
        if not self.subthread.done:
            self.subthread.step(now, ports)

    def blocks_dispatch(self, now):
        return False

    def blocks_commit(self, now):
        return False

    def quiescent(self, now):
        # Discovery Mode is driven purely by on_dispatch, so only the
        # subthread does per-cycle work; parked-on-a-fill counts as idle.
        return self.subthread.quiescent(now)

    def next_event(self, now):
        return self.subthread.next_event(now)

    # ------------------------------------------------------------------
    # Spawning
    # ------------------------------------------------------------------
    def _spawn(self, result, dyn, core):
        entry = self.detector.get(result.stride_pc)
        stride = entry.stride if entry is not None else result.stride
        if stride == 0:
            return
        cap = self.config.max_lanes
        remaining = result.loop_bound.remaining_iterations(core.regs, cap)
        result.remaining = remaining
        if remaining <= 0:
            return
        if (self.config.nested_enabled and result.loop_bound.found
                and remaining < self.config.ndm_threshold
                and result.loop_bound.branch_pc >= 0):
            nested = NestedState(self.config, self.detector, result,
                                 inner_last_addr=dyn.mem_addr)
            if self.subthread.spawn_nested(nested, core.regs):
                self.nested_spawns += 1
                self.spawns += 1
            return
        if self.subthread.spawn(result.stride_pc, stride, dyn.mem_addr,
                                core.regs, remaining,
                                flr_pc=result.flr_pc,
                                terminate_at_stride=result.terminate_at_stride):
            self.spawns += 1

    def _spawn_offload(self, ins, dyn, core):
        """Fig 8 "Offload" ablation: no Discovery Mode -- vectorize 128
        lanes straight from the striding load, VR-style."""
        entry = self.detector.get(ins.pc)
        if entry is None or entry.stride == 0:
            return
        if self.subthread.spawn(ins.pc, entry.stride, dyn.mem_addr,
                                core.regs, self.config.max_lanes,
                                flr_pc=-1, terminate_at_stride=True):
            self.spawns += 1

    # ------------------------------------------------------------------
    def stats(self):
        sub = self.subthread_stats
        return {
            "dvr_discoveries_started": self.discoveries_started,
            "dvr_discoveries_completed": self.discoveries_completed,
            "dvr_discoveries_aborted": self.discoveries_aborted,
            "dvr_no_dependent_chain": self.no_dependent_chain,
            "dvr_spawns": self.spawns,
            "dvr_nested_spawns": self.nested_spawns,
            "dvr_invocations": sub.invocations,
            "dvr_instructions": sub.instructions,
            "dvr_vector_instructions": sub.vector_instructions,
            "dvr_lane_loads": sub.lane_loads_issued,
            "dvr_lanes_spawned": sub.lanes_spawned,
            "dvr_timeouts": sub.timeouts,
            "dvr_divergences": sub.divergences,
            "dvr_vrat_kills": sub.vrat_kills,
            "dvr_ndm_entries": sub.ndm_entries,
            "dvr_ndm_fallbacks": sub.ndm_fallbacks,
            "dvr_ndm_inner_lanes": sub.ndm_inner_lanes,
        }
