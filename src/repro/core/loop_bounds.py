"""Loop-bound detector (paper Section 4.1.3).

During Discovery Mode we look for the loop's backward branch and the
compare feeding it, using the Last-Compare Register (LCR) and Seen-Branch
Bit (SBB) -- both zeroed whenever the Final-Load Register is updated.  Two
architectural-register-file checkpoints (entry/exit of Discovery Mode)
identify which compare input is the loop bound (constant) and which is the
induction variable (changing); the induction delta is the loop increment.

If inference fails the subthread falls back to the 128-element maximum
(runahead is transient execution; heuristics only reduce over/underfetch).
"""

from __future__ import annotations


class LoopBoundResult:
    """What Discovery Mode learned about the innermost loop."""

    __slots__ = ("found", "bound_reg", "induction_reg", "increment",
                 "compare_pc", "branch_pc", "exclusive")

    def __init__(self, found=False, bound_reg=-1, induction_reg=-1,
                 increment=0, compare_pc=-1, branch_pc=-1, exclusive=True):
        self.found = found
        self.bound_reg = bound_reg
        self.induction_reg = induction_reg
        self.increment = increment
        self.compare_pc = compare_pc
        self.branch_pc = branch_pc
        self.exclusive = exclusive  # cmplt-style (bound not executed)

    def remaining_iterations(self, regs, cap):
        """Iterations left, evaluated against current register values."""
        if not self.found or self.increment == 0:
            return cap
        bound = regs[self.bound_reg]
        current = regs[self.induction_reg]
        if self.increment > 0:
            remaining = (bound - current + self.increment - 1) // self.increment
        else:
            remaining = (current - bound + (-self.increment) - 1) // (-self.increment)
        if remaining < 0:
            return 0
        return min(remaining, cap)


class LoopBoundDetector:
    def __init__(self):
        self.lcr_srcs = ()     # source register IDs of the candidate compare
        self.lcr_dest = -1
        self.lcr_pc = -1
        self.sbb = False       # Seen-Branch Bit
        self.branch_pc = -1
        self._entry_regs = None
        self.other_branch_seen = False  # branches between FLR and LCR

    def checkpoint_entry(self, regs):
        self._entry_regs = list(regs)

    def on_flr_update(self):
        """FLR changed: restart compare/branch identification."""
        self.lcr_srcs = ()
        self.lcr_dest = -1
        self.lcr_pc = -1
        self.sbb = False
        self.branch_pc = -1

    def observe_compare(self, ins):
        if not self.sbb:
            self.lcr_srcs = ins.srcs
            self.lcr_dest = ins.rd
            self.lcr_pc = ins.pc

    def observe_branch(self, ins, stride_pc):
        """A conditional branch dispatched during Discovery Mode."""
        backward_into_loop = ins.target >= 0 and ins.target <= stride_pc
        if (not self.sbb and ins.rs1 == self.lcr_dest
                and self.lcr_dest >= 0 and backward_into_loop):
            self.sbb = True
            self.branch_pc = ins.pc
        elif not self.sbb:
            # Some other branch between the FLR and the loop branch: note it
            # (the footnote's divergence-exploration rule keys off this).
            self.other_branch_seen = True

    def finalize(self, exit_regs):
        """At Discovery Mode exit: classify the compare inputs."""
        if not self.sbb or self._entry_regs is None or len(self.lcr_srcs) < 2:
            return LoopBoundResult(found=False)
        reg_a, reg_b = self.lcr_srcs[0], self.lcr_srcs[1]
        delta_a = exit_regs[reg_a] - self._entry_regs[reg_a]
        delta_b = exit_regs[reg_b] - self._entry_regs[reg_b]
        if delta_a == 0 and delta_b != 0:
            bound_reg, induction_reg, increment = reg_a, reg_b, delta_b
        elif delta_b == 0 and delta_a != 0:
            bound_reg, induction_reg, increment = reg_b, reg_a, delta_a
        else:
            return LoopBoundResult(found=False)
        return LoopBoundResult(found=True, bound_reg=bound_reg,
                               induction_reg=induction_reg,
                               increment=increment, compare_pc=self.lcr_pc,
                               branch_pc=self.branch_pc)
