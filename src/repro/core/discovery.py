"""Discovery Mode (paper Section 4.1).

Engaged when a confident striding load dispatches.  Discovery Mode then
follows the main thread's execution through one iteration of the loop --
until the striding load is dispatched again -- and meanwhile:

* switches its target to a *more inner* striding load if one is seen
  twice first (Section 4.1.1, the per-RPT-entry seen-bit register);
* taint-tracks the striding load's dependence chain through the VTT and
  records the last dependent load in the FLR (Section 4.1.2);
* identifies the loop's compare + backward branch via the LCR/SBB and
  checkpoints the register file to infer the loop bound (Section 4.1.3).
"""

from __future__ import annotations

from .loop_bounds import LoopBoundDetector
from .taint import TaintTracker


class DiscoveryResult:
    """Everything the vector-runahead subthread needs to spawn."""

    __slots__ = ("stride_pc", "stride", "flr_pc", "has_dependent_load",
                 "loop_bound", "terminate_at_stride", "chain_pcs",
                 "remaining")

    def __init__(self, stride_pc, stride, flr_pc, has_dependent_load,
                 loop_bound, terminate_at_stride, chain_pcs):
        self.stride_pc = stride_pc
        self.stride = stride
        self.flr_pc = flr_pc
        self.has_dependent_load = has_dependent_load
        self.loop_bound = loop_bound
        self.terminate_at_stride = terminate_at_stride
        self.chain_pcs = chain_pcs
        self.remaining = 0  # filled in at spawn time


class DiscoveryMode:
    def __init__(self, dvr_config, detector, target_pc, seed_reg, entry_regs):
        self.config = dvr_config
        self.detector = detector
        self.target_pc = target_pc
        self.taint = TaintTracker()
        self.taint.reset(seed_reg)
        self.loop = LoopBoundDetector()
        self.loop.checkpoint_entry(entry_regs)
        self._seen = set()       # striding-load PCs seen once already
        self.switches = 0        # innermost-target switches
        self.observed = 0
        # Safety valve: a "loop" iteration that runs away means the trigger
        # was not really a loop; give up after this many instructions.
        self.budget = 4 * dvr_config.subthread_timeout

    def observe(self, dyn, core):
        """Feed one dispatched main-thread instruction.

        Returns a :class:`DiscoveryResult` when Discovery Mode exits
        (striding load reached again), the string ``"abort"`` when the
        budget is exhausted, or None while still discovering.
        """
        ins = dyn.ins
        self.observed += 1
        if self.observed > self.budget:
            return "abort"

        if ins.is_load:
            if ins.pc == self.target_pc:
                return self._finish(core)
            if self.detector.is_confident(ins.pc):
                if ins.pc in self._seen:
                    self._switch_target(ins, core)
                else:
                    self._seen.add(ins.pc)

        tainted = self.taint.observe(ins)
        if tainted and ins.is_load:
            self.loop.on_flr_update()
        if ins.is_compare:
            self.loop.observe_compare(ins)
        elif ins.is_cond_branch:
            self.loop.observe_branch(ins, self.target_pc)
        return None

    def _switch_target(self, ins, core):
        """A striding load seen twice before the target re-appeared: it is
        more inner, so restart Discovery Mode on it (Section 4.1.1)."""
        self.switches += 1
        self.target_pc = ins.pc
        self.taint.reset(ins.rd)
        self.loop = LoopBoundDetector()
        self.loop.checkpoint_entry(core.regs)
        self._seen.clear()

    def _finish(self, core):
        bound = self.loop.finalize(core.regs)
        entry = self.detector.get(self.target_pc)
        stride = entry.stride if entry is not None else 0
        flr_pc = self.taint.flr_pc
        # Footnote 1: if other branches were seen between the FLR and the
        # LCR, ignore the FLR and run each lane to the next stride PC so
        # divergent paths are fully explored.
        terminate_at_stride = self.loop.other_branch_seen or flr_pc < 0
        return DiscoveryResult(
            stride_pc=self.target_pc,
            stride=stride,
            flr_pc=flr_pc,
            has_dependent_load=self.taint.has_dependent_load,
            loop_bound=bound,
            terminate_at_stride=terminate_at_stride,
            chain_pcs=tuple(self.taint.chain_pcs),
        )
