"""Artifact cache: analysis results keyed by DAG node hash.

The sim half of a DAG is already cached by ``repro.jobs``
(:class:`ResultCache` locally, :class:`SharedStore` fleet-wide); this is
the matching store for the *analysis* half.  An artifact is the JSON
table an analysis node produced; its key is the node's content hash,
which covers the function, its args, and the full identity of every
upstream sim -- so a hit is sound by construction, and editing one knob
upstream re-keys (invalidates) exactly the affected subgraph.

Layout mirrors the result tiers so artifacts live next to the results
they derive from::

    <cache_dir>/artifacts/<code salt>/<hash[:2]>/<hash>.json   # local
    <store_dir>/artifacts/<code salt>/<hash[:2]>/<hash>.json   # shared

Entries carry a sha256 checksum over the canonical artifact JSON and
degrade to a miss on any defect (torn write, bit rot, hand edits),
exactly like the result caches.  Writes are atomic (temp file + rename)
under the shared generation lock, so concurrent DAG runs and cache
pruning stay safe.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings

from ..jobs.cache import code_salt, generation_lock, metrics_checksum

_SUBDIR = "artifacts"


def artifact_roots(context):
    """Artifact tiers for an execution context: local, then shared store."""
    roots = [os.path.join(context.cache_dir, _SUBDIR)]
    store_dir = getattr(context, "store_dir", None)
    if store_dir:
        roots.append(os.path.join(store_dir, _SUBDIR))
    return roots


class ArtifactStore:
    """Content-addressed ``node hash -> artifact dict`` store, tiered.

    ``get`` probes every root in order; ``put`` publishes to all of
    them, so a hit in the local tier and a miss in the shared one heals
    on the next write.  Session counters (`hits`/`misses`/`corrupt`)
    feed ``--dry-run`` previews and the invalidation tests.
    """

    def __init__(self, roots, salt=None):
        if isinstance(roots, str):
            roots = [roots]
        self.roots = list(roots)
        self.salt = salt or code_salt()
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    def _path(self, root, node_hash):
        return os.path.join(root, self.salt, node_hash[:2],
                            f"{node_hash}.json")

    def _reject(self, root, node_hash, reason):
        self.corrupt += 1
        warnings.warn(f"artifact entry {node_hash[:8]} is corrupt "
                      f"({reason}); treating as a miss and recomputing",
                      RuntimeWarning, stacklevel=4)
        try:
            os.unlink(self._path(root, node_hash))
        except OSError:
            pass                     # concurrent eviction, read-only tier

    def get(self, node_hash):
        """The cached artifact for a node hash, or ``None``.

        Defective entries (undecodable, checksum mismatch) are dropped
        and skipped, never returned and never fatal.
        """
        for root in self.roots:
            try:
                with open(self._path(root, node_hash)) as handle:
                    payload = json.load(handle)
            except FileNotFoundError:
                continue
            except (json.JSONDecodeError, UnicodeDecodeError, OSError):
                self._reject(root, node_hash, "undecodable JSON")
                continue
            if not isinstance(payload, dict) or "artifact" not in payload:
                self._reject(root, node_hash, "no artifact payload")
                continue
            if payload.get("sha256") != metrics_checksum(payload["artifact"]):
                self._reject(root, node_hash, "checksum mismatch")
                continue
            self.hits += 1
            return payload["artifact"]
        self.misses += 1
        return None

    def contains(self, node_hash):
        """Existence probe (no counter bumps) -- the dry-run preview."""
        return any(os.path.exists(self._path(root, node_hash))
                   for root in self.roots)

    def put(self, node_hash, artifact, meta=None):
        """Publish ``artifact`` under ``node_hash`` in every tier."""
        payload = {"artifact": artifact,
                   "sha256": metrics_checksum(artifact)}
        if meta:
            payload["node"] = meta
        for root in self.roots:
            target = self._path(root, node_hash)
            directory = os.path.dirname(target)
            os.makedirs(directory, exist_ok=True)
            with generation_lock(root):
                fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
                try:
                    with os.fdopen(fd, "w") as handle:
                        json.dump(payload, handle)
                    os.replace(tmp_path, target)
                except BaseException:
                    if os.path.exists(tmp_path):
                        os.unlink(tmp_path)
                    raise

    def stats(self):
        return {"roots": list(self.roots), "salt": self.salt,
                "session_hits": self.hits, "session_misses": self.misses,
                "session_corrupt": self.corrupt}
