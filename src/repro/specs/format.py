"""Declarative experiment-spec format: load + validate TOML/JSON/dicts.

A spec file declares *what* to measure, not *how* to run it::

    [spec]
    name = "fig7"
    description = "per-benchmark speedups over the OoO baseline"

    [[matrix]]                       # one cross-product group of sims
    name = "grid"
    workloads = "scale"              # the ExperimentScale's benchmark set
    techniques = ["ooo", "pre", "imp", "vr", "dvr", "oracle"]

    [analysis.table]                 # derived artifact over the group
    fn = "speedup_table"
    needs = ["grid"]
    [analysis.table.args]
    baseline = "ooo"
    columns = ["pre", "imp", "vr", "dvr", "oracle"]

The loader accepts a ``.toml`` path, a ``.json`` path, or an
already-parsed dict, validates the whole document against the grammar
below, and returns a normalized :class:`Spec`.  Every validation failure
raises :class:`SpecError` whose message names the offending element and
what was expected -- specs are user-written data, so "good error
messages" is part of the format.

Grammar (all unknown keys are rejected)::

    spec        { name, description? }
    defaults?   { knobs? {path -> value} }          applied to every group
    matrix      table or array-of-tables, each:
                { name?, workloads, techniques, knobs? {path -> [values]},
                  exclude? [ {axis -> value, ...} ] }
    analysis    { <name> -> { fn, needs [group|analysis names], args? } }

``workloads`` is either the string ``"scale"`` (the active
:class:`~repro.harness.experiments.ExperimentScale`'s full benchmark
set), ``"scale-gap"`` (its GAP kernels only), or an explicit array of
``{workload, params?, label?}`` tables.  Knob paths are dotted
``SimConfig`` field paths (``core.rob_size``, ``memsys.l1d_mshrs``,
``max_instructions``); validity is checked at load time against the
dataclass fields.

TOML parsing uses :mod:`tomllib` when available (Python >= 3.11) and
falls back to a built-in parser of the TOML subset the grammar needs
(tables, arrays of tables, strings/ints/floats/bools, arrays, inline
tables, comments), so spec files work on 3.10 without any new
dependency.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field, fields, is_dataclass

try:
    import tomllib
except ImportError:                  # Python < 3.11: built-in subset parser
    tomllib = None


class SpecError(ValueError):
    """A spec document is malformed; the message says where and why."""


# ---------------------------------------------------------------------------
# Minimal TOML subset parser (3.10 fallback)
# ---------------------------------------------------------------------------
class _MiniTomlError(ValueError):
    pass


def _split_toml_key(text, lineno):
    """Split a dotted key, honouring quoted segments (``"core.rob_size"``)."""
    parts = []
    current = ""
    i = 0
    while i < len(text):
        ch = text[i]
        if ch in "\"'":
            end = text.find(ch, i + 1)
            if end < 0:
                raise _MiniTomlError(f"line {lineno}: unterminated quoted key")
            current += text[i + 1:end]
            i = end + 1
        elif ch == ".":
            parts.append(current.strip())
            current = ""
            i += 1
        else:
            current += ch
            i += 1
    parts.append(current.strip())
    if any(not part for part in parts):
        raise _MiniTomlError(f"line {lineno}: empty key segment in {text!r}")
    return parts


def _parse_toml_value(text, lineno):
    """One TOML value: string, number, bool, array, or inline table."""
    text = text.strip()
    if not text:
        raise _MiniTomlError(f"line {lineno}: missing value")
    if text[0] in "\"'":
        quote = text[0]
        end = text.find(quote, 1)
        if end < 0:
            raise _MiniTomlError(f"line {lineno}: unterminated string")
        rest = text[end + 1:].strip()
        if rest:
            raise _MiniTomlError(f"line {lineno}: trailing data {rest!r}")
        value = text[1:end]
        if quote == '"':
            value = value.replace("\\n", "\n").replace("\\t", "\t") \
                         .replace('\\"', '"').replace("\\\\", "\\")
        return value
    if text == "true":
        return True
    if text == "false":
        return False
    if text.startswith("["):
        return _parse_toml_array(text, lineno)
    if text.startswith("{"):
        return _parse_toml_inline_table(text, lineno)
    try:
        if any(ch in text for ch in ".eE") and not text.startswith("0x"):
            return float(text)
        return int(text, 0)
    except ValueError:
        raise _MiniTomlError(f"line {lineno}: cannot parse value {text!r}") \
            from None


def _split_top_level(body, lineno):
    """Split ``a, b, c`` at depth 0 (respects nested [] {} and strings)."""
    items = []
    depth = 0
    current = ""
    in_string = None
    for ch in body:
        if in_string:
            current += ch
            if ch == in_string:
                in_string = None
            continue
        if ch in "\"'":
            in_string = ch
            current += ch
        elif ch in "[{":
            depth += 1
            current += ch
        elif ch in "]}":
            depth -= 1
            current += ch
        elif ch == "," and depth == 0:
            items.append(current)
            current = ""
        else:
            current += ch
    if in_string or depth != 0:
        raise _MiniTomlError(f"line {lineno}: unbalanced value")
    if current.strip():
        items.append(current)
    return items


def _parse_toml_array(text, lineno):
    if not text.endswith("]"):
        raise _MiniTomlError(f"line {lineno}: unterminated array")
    body = text[1:-1].strip()
    if not body:
        return []
    return [_parse_toml_value(item, lineno)
            for item in _split_top_level(body, lineno)]


def _parse_toml_inline_table(text, lineno):
    if not text.endswith("}"):
        raise _MiniTomlError(f"line {lineno}: unterminated inline table")
    body = text[1:-1].strip()
    table = {}
    if not body:
        return table
    for item in _split_top_level(body, lineno):
        if "=" not in item:
            raise _MiniTomlError(f"line {lineno}: inline table entry "
                                 f"{item!r} has no '='")
        key_text, value_text = item.split("=", 1)
        target = table
        parts = _split_toml_key(key_text.strip(), lineno)
        for part in parts[:-1]:
            target = target.setdefault(part, {})
        target[parts[-1]] = _parse_toml_value(value_text, lineno)
    return table


def _strip_toml_comment(line, lineno):
    """Drop a trailing ``# comment`` (not inside a string)."""
    in_string = None
    for i, ch in enumerate(line):
        if in_string:
            if ch == in_string:
                in_string = None
        elif ch in "\"'":
            in_string = ch
        elif ch == "#":
            return line[:i]
    if in_string:
        raise _MiniTomlError(f"line {lineno}: unterminated string")
    return line


def _descend(document, parts, lineno):
    """Walk/create nested tables; an array-of-tables means its last entry."""
    target = document
    for part in parts:
        if isinstance(target, list):
            target = target[-1]
        nxt = target.setdefault(part, {})
        if isinstance(nxt, list):
            nxt = nxt[-1] if nxt else target[part]
        elif not isinstance(nxt, dict):
            raise _MiniTomlError(f"line {lineno}: {part!r} is already a "
                                 f"value, not a table")
        target = nxt
    return target


def parse_mini_toml(text):
    """Parse the TOML subset spec files use into plain dicts/lists.

    Used only when :mod:`tomllib` is unavailable (Python 3.10); on newer
    interpreters the stdlib parser is authoritative and the test suite
    pins both parsers equal over every checked-in spec file.
    """
    document = {}
    current = document
    lines = text.split("\n")
    lineno = 0
    while lineno < len(lines):
        raw = lines[lineno]
        lineno += 1
        line = _strip_toml_comment(raw, lineno).strip()
        if not line:
            continue
        if line.startswith("[["):
            if not line.endswith("]]"):
                raise _MiniTomlError(f"line {lineno}: malformed table array "
                                     f"header {line!r}")
            parts = _split_toml_key(line[2:-2].strip(), lineno)
            parent = _descend(document, parts[:-1], lineno)
            array = parent.setdefault(parts[-1], [])
            if not isinstance(array, list):
                raise _MiniTomlError(f"line {lineno}: {parts[-1]!r} is not "
                                     f"an array of tables")
            current = {}
            array.append(current)
            continue
        if line.startswith("["):
            if not line.endswith("]"):
                raise _MiniTomlError(f"line {lineno}: malformed table "
                                     f"header {line!r}")
            parts = _split_toml_key(line[1:-1].strip(), lineno)
            current = _descend(document, parts, lineno)
            continue
        if "=" not in line:
            raise _MiniTomlError(f"line {lineno}: expected 'key = value', "
                                 f"got {line!r}")
        key_text, value_text = line.split("=", 1)
        # Multi-line arrays: accumulate until brackets balance.
        while value_text.count("[") > value_text.count("]") \
                and lineno < len(lines):
            extra = _strip_toml_comment(lines[lineno], lineno + 1)
            lineno += 1
            value_text += " " + extra.strip()
        parts = _split_toml_key(key_text.strip(), lineno)
        target = _descend(current, parts[:-1], lineno)
        if parts[-1] in target:
            raise _MiniTomlError(f"line {lineno}: duplicate key "
                                 f"{'.'.join(parts)!r}")
        target[parts[-1]] = _parse_toml_value(value_text, lineno)
    return document


# ---------------------------------------------------------------------------
# Normalized spec structure
# ---------------------------------------------------------------------------
@dataclass
class MatrixGroup:
    """One cross-product of sims: workloads x techniques x knob values."""

    name: str
    workloads: object                # "scale" | "scale-gap" | [entry dicts]
    techniques: tuple
    knobs: dict = field(default_factory=dict)     # path -> [values]
    exclude: tuple = ()              # ({axis -> value}, ...)


@dataclass
class AnalysisDef:
    """One derived artifact: a registered pure function over its parents."""

    name: str
    fn: str
    needs: tuple                     # group and/or analysis names
    args: dict = field(default_factory=dict)


@dataclass
class Spec:
    """A validated spec document, ready to concretize."""

    name: str
    description: str = ""
    groups: tuple = ()               # (MatrixGroup, ...) in document order
    analyses: tuple = ()             # (AnalysisDef, ...) in document order
    defaults: dict = field(default_factory=dict)  # knob path -> value
    source: str = ""                 # file path ("" for dict specs)
    digest: str = ""                 # sha256 of the source document

    def group(self, name):
        for group in self.groups:
            if group.name == name:
                return group
        raise KeyError(name)


def _context(where):
    return f"{where}: " if where else ""


def _require_type(value, types, where, what):
    if not isinstance(value, types):
        names = "/".join(t.__name__ for t in
                         (types if isinstance(types, tuple) else (types,)))
        raise SpecError(f"{_context(where)}{what} must be {names}, "
                        f"got {type(value).__name__}")
    return value


def _reject_unknown_keys(data, allowed, where):
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise SpecError(f"{_context(where)}unknown key(s) "
                        f"{', '.join(repr(k) for k in unknown)} "
                        f"(expected: {', '.join(sorted(allowed))})")


# ---------------------------------------------------------------------------
# Knob-path validation against the SimConfig dataclass tree
# ---------------------------------------------------------------------------
def validate_knob_path(path, where=""):
    """Check a dotted knob path names a real ``SimConfig`` leaf field."""
    from ..config import SimConfig
    if str(path) == "technique":
        raise SpecError(f"{_context(where)}'technique' is a matrix axis "
                        f"('techniques = [...]'), not a knob")
    cls = SimConfig
    parts = str(path).split(".")
    hint = cls
    for i, part in enumerate(parts):
        matching = {f.name: f for f in fields(cls)}
        if part not in matching:
            prefix = ".".join(parts[:i]) or "SimConfig"
            options = ", ".join(sorted(matching))
            raise SpecError(
                f"{_context(where)}unknown knob {path!r}: field {part!r} "
                f"of {prefix} does not exist (known fields: {options})")
        hint = matching[part].type
        # Dataclass fields carry string annotations under
        # ``from __future__ import annotations``; resolve by name.
        if isinstance(hint, str):
            from .. import config as config_module
            hint = getattr(config_module, hint, None)
        if is_dataclass(hint):
            cls = hint
        elif i != len(parts) - 1:
            raise SpecError(
                f"{_context(where)}knob {path!r} descends into "
                f"{'.'.join(parts[:i + 1])!r}, which is a plain value, "
                f"not a config section")
    if is_dataclass(hint):
        options = ", ".join(f"{path}.{f.name}" for f in fields(hint))
        raise SpecError(
            f"{_context(where)}knob {path!r} names a whole config section, "
            f"not a value; pick one of its fields ({options})")
    return path


def _validate_knobs(knobs, where, *, values_are_lists):
    _require_type(knobs, dict, where, "'knobs'")
    validated = {}
    for path, values in knobs.items():
        validate_knob_path(path, where=where)
        if values_are_lists:
            _require_type(values, list, f"{where} knob {path!r}",
                          "the axis values")
            if not values:
                raise SpecError(f"{_context(where)}knob {path!r} has an "
                                f"empty value list: every axis needs at "
                                f"least one value")
            validated[str(path)] = list(values)
        else:
            validated[str(path)] = values
    return validated


def _validate_workloads(workloads, where):
    if isinstance(workloads, str):
        if workloads not in ("scale", "scale-gap"):
            raise SpecError(f"{_context(where)}'workloads' string must be "
                            f"'scale' or 'scale-gap', got {workloads!r}")
        return workloads
    _require_type(workloads, list, where, "'workloads'")
    if not workloads:
        raise SpecError(f"{_context(where)}'workloads' is an empty list: "
                        f"a matrix group needs at least one workload")
    from ..workloads import ALL_WORKLOADS
    entries = []
    for i, entry in enumerate(workloads):
        entry_where = f"{where} workloads[{i}]"
        _require_type(entry, dict, entry_where, "each workload entry")
        _reject_unknown_keys(entry, ("workload", "params", "label"),
                             entry_where)
        name = entry.get("workload")
        if not isinstance(name, str) or name not in ALL_WORKLOADS:
            raise SpecError(f"{_context(entry_where)}unknown workload "
                            f"{name!r} (known: "
                            f"{', '.join(sorted(ALL_WORKLOADS))})")
        params = dict(entry.get("params", {}))
        label = entry.get("label") or "_".join(
            [name] + [str(v) for _k, v in sorted(params.items())])
        entries.append({"workload": name, "params": params, "label": label})
    return entries


def _validate_techniques(techniques, where):
    from ..config import ALL_TECHNIQUES, DVR_BREAKDOWN
    known = tuple(ALL_TECHNIQUES) + tuple(DVR_BREAKDOWN)
    _require_type(techniques, list, where, "'techniques'")
    if not techniques:
        raise SpecError(f"{_context(where)}'techniques' is empty: a matrix "
                        f"group needs at least one technique")
    seen = []
    for technique in techniques:
        if technique not in known:
            raise SpecError(f"{_context(where)}unknown technique "
                            f"{technique!r} (known: "
                            f"{', '.join(sorted(set(known)))})")
        if technique in seen:
            raise SpecError(f"{_context(where)}technique {technique!r} is "
                            f"listed twice")
        seen.append(technique)
    return tuple(seen)


def _validate_exclusions(exclude, group, where):
    _require_type(exclude, list, where, "'exclude'")
    validated = []
    axes = {"workload", "label", "technique"} | set(group.get("knobs", {}))
    for i, clause in enumerate(exclude):
        clause_where = f"{where} exclude[{i}]"
        _require_type(clause, dict, clause_where, "each exclusion")
        if not clause:
            raise SpecError(f"{_context(clause_where)}an empty exclusion "
                            f"would eliminate every leaf; name at least "
                            f"one axis")
        for axis in clause:
            if axis not in axes:
                raise SpecError(
                    f"{_context(clause_where)}unknown axis {axis!r} "
                    f"(this group's axes: {', '.join(sorted(axes))})")
        validated.append(dict(clause))
    return tuple(validated)


def _validate_group(data, index, used_names):
    where = f"matrix group #{index + 1}"
    _require_type(data, dict, where, "each [[matrix]] entry")
    _reject_unknown_keys(
        data, ("name", "workloads", "techniques", "knobs", "exclude"), where)
    name = data.get("name", "matrix" if index == 0 else f"matrix{index + 1}")
    _require_type(name, str, where, "'name'")
    if name in used_names:
        raise SpecError(f"{_context(where)}duplicate group name {name!r}")
    where = f"matrix group {name!r}"
    if "workloads" not in data:
        raise SpecError(f"{_context(where)}missing 'workloads' "
                        f"(\"scale\", \"scale-gap\", or an explicit list)")
    if "techniques" not in data:
        raise SpecError(f"{_context(where)}missing 'techniques'")
    workloads = _validate_workloads(data["workloads"], where)
    techniques = _validate_techniques(data["techniques"], where)
    knobs = _validate_knobs(data.get("knobs", {}), where,
                            values_are_lists=True)
    exclude = _validate_exclusions(data.get("exclude", []),
                                   {"knobs": knobs}, where)
    return MatrixGroup(name=name, workloads=workloads, techniques=techniques,
                       knobs=knobs, exclude=exclude)


def _validate_analysis(name, data, known_parents):
    where = f"analysis {name!r}"
    from .registry import ANALYSES
    _require_type(data, dict, where, "the analysis definition")
    _reject_unknown_keys(data, ("fn", "needs", "args"), where)
    fn = data.get("fn")
    if not isinstance(fn, str) or fn not in ANALYSES:
        raise SpecError(f"{_context(where)}unknown analysis fn {fn!r} "
                        f"(registered: {', '.join(sorted(ANALYSES))})")
    needs = data.get("needs")
    _require_type(needs, list, where, "'needs'")
    if not needs:
        raise SpecError(f"{_context(where)}'needs' is empty: an analysis "
                        f"must consume at least one matrix group or "
                        f"upstream analysis")
    for need in needs:
        if need not in known_parents:
            raise SpecError(f"{_context(where)}'needs' references "
                            f"{need!r}, which is neither a matrix group "
                            f"nor an analysis defined in this spec "
                            f"(known: {', '.join(sorted(known_parents))})")
    args = data.get("args", {})
    _require_type(args, dict, where, "'args'")
    return AnalysisDef(name=name, fn=fn, needs=tuple(needs), args=dict(args))


# ---------------------------------------------------------------------------
# Document -> Spec
# ---------------------------------------------------------------------------
def spec_from_dict(document, source="", digest=""):
    """Validate a parsed spec document into a :class:`Spec`."""
    _require_type(document, dict, "", "a spec document")
    _reject_unknown_keys(document, ("spec", "defaults", "matrix", "analysis"),
                         "spec document")
    header = document.get("spec")
    if header is None:
        raise SpecError("spec document: missing the [spec] header table "
                        "(with at least 'name')")
    _require_type(header, dict, "[spec]", "the header")
    _reject_unknown_keys(header, ("name", "description"), "[spec]")
    name = header.get("name")
    if not isinstance(name, str) or not name:
        raise SpecError("[spec]: 'name' must be a non-empty string")
    description = header.get("description", "")
    _require_type(description, str, "[spec]", "'description'")

    defaults_data = document.get("defaults", {})
    _require_type(defaults_data, dict, "[defaults]", "the defaults table")
    _reject_unknown_keys(defaults_data, ("knobs",), "[defaults]")
    defaults = _validate_knobs(defaults_data.get("knobs", {}), "[defaults]",
                               values_are_lists=False)

    matrix = document.get("matrix")
    if matrix is None:
        raise SpecError("spec document: missing [[matrix]] -- a spec needs "
                        "at least one matrix group of simulations")
    if isinstance(matrix, dict):
        matrix = [matrix]
    _require_type(matrix, list, "", "'matrix'")
    if not matrix:
        raise SpecError("spec document: 'matrix' is empty -- a spec needs "
                        "at least one matrix group of simulations")
    groups = []
    for index, group_data in enumerate(matrix):
        groups.append(_validate_group(group_data,
                                      index, [g.name for g in groups]))

    analyses_data = document.get("analysis", {})
    _require_type(analyses_data, dict, "[analysis]", "the analysis table")
    known = {group.name for group in groups} | set(analyses_data)
    overlap = {group.name for group in groups} & set(analyses_data)
    if overlap:
        raise SpecError(f"analysis name(s) {', '.join(sorted(overlap))} "
                        f"collide with matrix group names; 'needs' edges "
                        f"would be ambiguous")
    analyses = tuple(_validate_analysis(analysis_name, data, known)
                     for analysis_name, data in analyses_data.items())

    return Spec(name=name, description=description, groups=tuple(groups),
                analyses=analyses, defaults=defaults, source=source,
                digest=digest)


def parse_toml(text):
    """Parse TOML text: stdlib tomllib when present, subset parser else."""
    if tomllib is not None:
        try:
            return tomllib.loads(text)
        except tomllib.TOMLDecodeError as error:
            raise SpecError(f"TOML parse error: {error}") from error
    try:
        return parse_mini_toml(text)
    except _MiniTomlError as error:
        raise SpecError(f"TOML parse error: {error}") from error


def load_spec(source):
    """Load + validate a spec from a path (.toml/.json) or a dict."""
    if isinstance(source, dict):
        digest = hashlib.sha256(
            json.dumps(source, sort_keys=True, default=list).encode()
        ).hexdigest()
        return spec_from_dict(source, source="", digest=digest)
    path = os.fspath(source)
    if not os.path.exists(path):
        raise SpecError(f"spec file {path!r} does not exist")
    with open(path, "rb") as handle:
        raw = handle.read()
    digest = hashlib.sha256(raw).hexdigest()
    text = raw.decode("utf-8")
    if path.endswith(".json"):
        try:
            document = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"{path}: JSON parse error: {error}") from error
    elif path.endswith(".toml"):
        try:
            document = parse_toml(text)
        except SpecError as error:
            raise SpecError(f"{path}: {error}") from None
    else:
        raise SpecError(f"spec file {path!r} must end in .toml or .json")
    try:
        return spec_from_dict(document, source=path, digest=digest)
    except SpecError as error:
        raise SpecError(f"{path}: {error}") from None
