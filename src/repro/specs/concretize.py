"""Concretizer: a validated :class:`Spec` -> normalized :class:`ConcreteDAG`.

Modeled on spack's concretization step: constraints in (workload set x
techniques x knob ranges, minus exclusions, plus defaults), a normalized
concrete dependency DAG out.  Concretization only *builds* -- no
simulation runs here -- so it is cheap enough for ``--dry-run`` and for
edge-case tests to call freely.

Every node is content-hashed:

- a **sim node** hashes as its :class:`~repro.jobs.spec.JobSpec` key --
  the exact cache/dedup identity the execution engine already uses, so
  two leaves that concretize to the same simulation (fig2's baseline
  point reappearing inside the sweep grid, two groups sharing an axis
  point) collapse into ONE node;
- an **analysis node** hashes over its function name, its args, and its
  parents' hashes (for group parents: every leaf's label/technique/knobs
  plus the underlying sim-node hash, in axis order).

Hashes therefore change exactly when a result could change: editing one
knob value re-keys the affected sim nodes and every analysis downstream
of them, while unrelated subgraphs keep their hashes -- which is what
lets the artifact cache re-serve the untouched subgraph on a re-run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from itertools import product

from ..jobs import JobSpec
from .format import Spec, SpecError, load_spec

#: Bumped when concretization semantics change (node identity, expansion
#: order, exclusion matching); recorded in the ledger's ``dag`` meta row.
CONCRETIZER_VERSION = 1


# ---------------------------------------------------------------------------
# Knob application
# ---------------------------------------------------------------------------
def apply_knob(config, path, value):
    """A copy of ``config`` with the dotted-path field replaced."""
    parts = str(path).split(".")

    def set_nested(obj, remaining):
        name = remaining[0]
        if not hasattr(obj, name):
            raise SpecError(f"unknown knob {path!r}: {type(obj).__name__} "
                            f"has no field {name!r}")
        if len(remaining) == 1:
            return replace(obj, **{name: value})
        return replace(obj, **{name: set_nested(getattr(obj, name),
                                                remaining[1:])})

    return set_nested(config, parts)


def apply_knobs(config, knobs):
    for path, value in knobs.items():
        config = apply_knob(config, path, value)
    return config


# ---------------------------------------------------------------------------
# Concrete nodes
# ---------------------------------------------------------------------------
@dataclass
class SimNode:
    """One deduplicated simulation: runs through the standard Executor."""

    node_id: str                     # "sim:<JobSpec key>"
    job: JobSpec
    hash: str                        # content hash (= derived from job key)
    leaves: int = 0                  # how many matrix leaves share this node


@dataclass
class Leaf:
    """One matrix point: (workload, technique, knob values) -> a sim node."""

    label: str
    workload: str
    params: dict
    technique: str
    knobs: dict                      # full knob assignment, axis order
    node_id: str
    job: object = None               # the concrete JobSpec


@dataclass
class ConcreteGroup:
    """One expanded matrix group: ordered axes + its leaves."""

    name: str
    labels: tuple                    # workload labels, scale/entry order
    techniques: tuple
    axes: dict                       # knob path -> ordered values
    leaves: tuple = ()               # (Leaf, ...), expansion order

    def leaf_key(self, label, technique, point=None):
        point = dict(point or {})
        for knob, values in self.axes.items():
            # A singleton axis (a knob pinned for the whole group) never
            # needs spelling out in lookups.
            if knob not in point and len(values) == 1:
                point[knob] = values[0]
        missing = [knob for knob in self.axes if knob not in point]
        if missing:
            raise SpecError(
                f"group {self.name!r} lookup for ({label}, {technique}) "
                f"must pin every knob axis; missing "
                f"{', '.join(repr(k) for k in missing)}")
        return (label, technique,
                tuple((knob, point[knob]) for knob in self.axes))

    def has_point(self, point):
        """Is any leaf left at this knob assignment (not all excluded)?"""
        items = tuple((knob, point[knob]) for knob in self.axes
                      if knob in point)
        return any(all(leaf.knobs.get(k) == v for k, v in items)
                   for leaf in self.leaves)


@dataclass
class AnalysisNode:
    """One derived artifact: a registered fn over finished parents."""

    node_id: str                     # "analysis:<name>"
    name: str
    fn: str
    args: dict
    needs: tuple                     # group/analysis names, spec order
    parents: tuple                   # parent node ids (sims + analyses)
    hash: str = ""


class GroupResult:
    """A finished group as analyses see it: axes + a Metrics lookup."""

    def __init__(self, group, metrics_by_leaf):
        self.name = group.name
        self.labels = group.labels
        self.techniques = group.techniques
        self.axes = group.axes
        self._group = group
        self._metrics = metrics_by_leaf   # leaf_key -> Metrics

    def metrics(self, label, technique, point=None):
        key = self._group.leaf_key(label, technique, point)
        try:
            return self._metrics[key]
        except KeyError:
            raise SpecError(
                f"group {self.name!r} has no leaf ({label}, {technique}"
                f"{', ' + repr(dict(point)) if point else ''}) -- "
                f"excluded by the matrix, or never part of it") from None

    def has_point(self, point):
        return self._group.has_point(point)


# ---------------------------------------------------------------------------
# Expansion
# ---------------------------------------------------------------------------
def _resolve_workloads(group, scale):
    """(label, workload, params) triples for a group at this scale."""
    if group.workloads == "scale":
        entries = scale.entries()
    elif group.workloads == "scale-gap":
        entries = scale.entries(gap_only=True)
    else:
        entries = [(entry["label"], entry["workload"], entry["params"])
                   for entry in group.workloads]
    if not entries:
        raise SpecError(
            f"matrix group {group.name!r} expanded to zero workloads: the "
            f"active ExperimentScale has an empty benchmark set "
            f"(gap_graphs={scale.gap_graphs!r}, hpcdb={scale.hpcdb!r})")
    return entries


def _excluded(clause, label, workload, technique, knobs):
    for axis, value in clause.items():
        if axis == "label":
            if label != value:
                return False
        elif axis == "workload":
            if workload != value:
                return False
        elif axis == "technique":
            if technique != value:
                return False
        elif knobs.get(axis) != value:
            return False
    return True


def _expand_group(group, scale, defaults):
    entries = _resolve_workloads(group, scale)
    knob_paths = list(group.knobs)
    combos = list(product(*(group.knobs[path] for path in knob_paths)))
    leaves = []
    excluded = 0
    for label, workload, params in entries:
        for technique in group.techniques:
            for combo in combos:
                knobs = dict(zip(knob_paths, combo))
                if any(_excluded(clause, label, workload, technique, knobs)
                       for clause in group.exclude):
                    excluded += 1
                    continue
                config = apply_knobs(
                    apply_knobs(scale.config(technique), defaults), knobs)
                job = JobSpec(workload=workload, params=dict(params),
                              config=config, seed=scale.seed, label=label)
                leaves.append(Leaf(label=label, workload=workload,
                                   params=dict(params), technique=technique,
                                   knobs=knobs, node_id=f"sim:{job.key}",
                                   job=job))
    if not leaves:
        if excluded:
            raise SpecError(
                f"matrix group {group.name!r} concretized to zero leaves: "
                f"the exclusions eliminate all {excluded} point(s) of the "
                f"{len(entries)} workload(s) x {len(group.techniques)} "
                f"technique(s) matrix")
        raise SpecError(f"matrix group {group.name!r} concretized to zero "
                        f"leaves: empty matrix")
    ordered_labels = []
    for label, _workload, _params in entries:
        if label not in ordered_labels:
            ordered_labels.append(label)
    return ConcreteGroup(name=group.name, labels=tuple(ordered_labels),
                         techniques=group.techniques,
                         axes={path: list(values)
                               for path, values in group.knobs.items()},
                         leaves=tuple(leaves))


def _canonical_hash(payload):
    blob = json.dumps(payload, sort_keys=True, default=list)
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


def _detect_cycles(analyses):
    """Reject ``needs`` cycles among analyses with the cycle spelled out."""
    edges = {a.name: [need for need in a.needs
                      if any(need == other.name for other in analyses)]
             for a in analyses}
    state = {}                       # name -> "visiting" | "done"
    stack = []

    def visit(name):
        if state.get(name) == "done":
            return
        if state.get(name) == "visiting":
            cycle = stack[stack.index(name):] + [name]
            raise SpecError(f"analysis 'needs' edges form a cycle: "
                            f"{' -> '.join(cycle)}")
        state[name] = "visiting"
        stack.append(name)
        for dep in edges[name]:
            visit(dep)
        stack.pop()
        state[name] = "done"

    for analysis in analyses:
        visit(analysis.name)


# ---------------------------------------------------------------------------
# The concrete DAG
# ---------------------------------------------------------------------------
@dataclass
class ConcreteDAG:
    """A spec, concretized: deduplicated sim nodes + ordered analyses."""

    name: str
    spec: Spec
    sim_nodes: dict                  # node_id -> SimNode
    groups: dict                     # group name -> ConcreteGroup
    analyses: tuple                  # (AnalysisNode, ...) topological order
    dag_hash: str = ""
    leaf_count: int = 0

    def node_count(self):
        return len(self.sim_nodes) + len(self.analyses)

    def levels(self):
        """Topological levels: [sim node ids], then analysis waves."""
        result = []
        if self.sim_nodes:
            result.append(sorted(self.sim_nodes))
        depth = {}                   # analysis node_id -> wave (1-based)
        for node in self.analyses:   # already topologically ordered
            parent_depths = [depth[p] for p in node.parents if p in depth]
            depth[node.node_id] = max(parent_depths, default=0) + 1
        waves = {}
        for node_id, level in depth.items():
            waves.setdefault(level, []).append(node_id)
        for level in sorted(waves):
            result.append(sorted(waves[level]))
        return result

    def stats(self):
        return {
            "spec": self.name,
            "spec_sha256": self.spec.digest,
            "concretizer_version": CONCRETIZER_VERSION,
            "leaves": self.leaf_count,
            "sim_nodes": len(self.sim_nodes),
            "analysis_nodes": len(self.analyses),
            "nodes": self.node_count(),
            "deduplicated": self.leaf_count - len(self.sim_nodes),
            "levels": len(self.levels()),
            "dag_hash": self.dag_hash,
        }


def concretize(source, scale=None):
    """Concretize a spec (path, dict, or :class:`Spec`) into a DAG.

    ``scale`` (an :class:`~repro.harness.experiments.ExperimentScale`)
    supplies the benchmark set, instruction budget and seed; default is
    the environment's scale.
    """
    from ..harness.experiments import ExperimentScale
    spec = source if isinstance(source, Spec) else load_spec(source)
    scale = scale or ExperimentScale.from_env()

    sim_nodes = {}
    groups = {}
    leaf_count = 0
    for group in spec.groups:
        concrete = _expand_group(group, scale, spec.defaults)
        groups[group.name] = concrete
        leaf_count += len(concrete.leaves)
        for leaf in concrete.leaves:
            node = sim_nodes.get(leaf.node_id)
            if node is None:
                node = SimNode(node_id=leaf.node_id, job=leaf.job,
                               hash=_canonical_hash(["sim", leaf.job.key]))
                sim_nodes[leaf.node_id] = node
            node.leaves += 1

    _detect_cycles(spec.analyses)

    # Topological order over analyses (groups are always ready), keeping
    # document order among simultaneously-ready nodes.
    ordered = []
    ready_names = set(groups)
    pending = list(spec.analyses)
    while pending:
        progressed = False
        for definition in list(pending):
            if all(need in ready_names for need in definition.needs):
                ordered.append(definition)
                ready_names.add(definition.name)
                pending.remove(definition)
                progressed = True
        if not progressed:           # unreachable: cycles already rejected
            raise SpecError("analysis dependencies cannot be ordered")

    analysis_nodes = {}
    nodes = []
    for definition in ordered:
        parents = []
        parent_payload = []
        for need in definition.needs:
            if need in groups:
                concrete = groups[need]
                parents.extend(leaf.node_id for leaf in concrete.leaves)
                parent_payload.append({
                    "group": need,
                    "leaves": [[leaf.label, leaf.technique,
                                sorted(leaf.knobs.items()),
                                sim_nodes[leaf.node_id].hash]
                               for leaf in concrete.leaves],
                })
            else:
                parent = analysis_nodes[need]
                parents.append(parent.node_id)
                parent_payload.append({"analysis": need,
                                       "hash": parent.hash})
        node = AnalysisNode(node_id=f"analysis:{definition.name}",
                            name=definition.name, fn=definition.fn,
                            args=dict(definition.args),
                            needs=definition.needs, parents=tuple(parents))
        node.hash = _canonical_hash(["analysis", definition.fn,
                                     definition.args, parent_payload])
        analysis_nodes[definition.name] = node
        nodes.append(node)

    dag_hash = _canonical_hash(
        ["dag", CONCRETIZER_VERSION,
         sorted(node.hash for node in sim_nodes.values()),
         [node.hash for node in nodes]])
    return ConcreteDAG(name=spec.name, spec=spec, sim_nodes=sim_nodes,
                       groups=groups, analyses=tuple(nodes),
                       dag_hash=dag_hash, leaf_count=leaf_count)
