"""repro.specs: declarative experiment specs -> artifact-passing job DAGs.

The pipeline has four layers, one module each:

- :mod:`.format` -- the declarative spec format (TOML or JSON/dict):
  matrix groups (workloads x techniques x knob ranges, minus
  exclusions) plus analysis nodes wired by ``needs`` edges, loaded and
  schema-validated with precise error messages.
- :mod:`.concretize` -- spack-style concretization: expand the matrix,
  apply defaults and constraints, deduplicate identical simulations by
  content hash, and emit a normalized :class:`ConcreteDAG`.
- :mod:`.registry` -- the registered pure analysis functions DAG nodes
  may call (``speedup_table``, ``rob_sweep``, ``knob_sweep``, ...).
- :mod:`.dag` / :mod:`.artifacts` -- execution: a topological frontier
  scheduler that pushes sim nodes through the standard Executor (any
  backend) and runs analyses in-process as artifacts arrive, cached by
  node hash in the tiered :class:`ArtifactStore`.

Checked-in specs live in ``specs/*.toml`` at the repo root; run them
with ``repro env run --spec specs/fig7.toml``.
"""

from .artifacts import ArtifactStore, artifact_roots
from .concretize import (CONCRETIZER_VERSION, AnalysisNode, ConcreteDAG,
                         ConcreteGroup, GroupResult, Leaf, SimNode,
                         apply_knob, apply_knobs, concretize)
from .dag import DagResult, DagRunner, run_spec_file
from .format import (AnalysisDef, MatrixGroup, Spec, SpecError, load_spec,
                     parse_mini_toml, parse_toml, spec_from_dict,
                     validate_knob_path)
from .registry import ANALYSES, AnalysisInputError, analysis

__all__ = [
    "ANALYSES",
    "AnalysisDef",
    "AnalysisInputError",
    "AnalysisNode",
    "ArtifactStore",
    "CONCRETIZER_VERSION",
    "ConcreteDAG",
    "ConcreteGroup",
    "DagResult",
    "DagRunner",
    "GroupResult",
    "Leaf",
    "MatrixGroup",
    "SimNode",
    "Spec",
    "SpecError",
    "analysis",
    "apply_knob",
    "apply_knobs",
    "artifact_roots",
    "concretize",
    "load_spec",
    "parse_mini_toml",
    "parse_toml",
    "run_spec_file",
    "spec_from_dict",
    "validate_knob_path",
]
