"""Execute a :class:`ConcreteDAG`: frontier scheduling over any backend.

The runner walks the DAG in topological waves.  Wave 0 is every sim
node, submitted as ONE batch through the standard
:class:`~repro.jobs.executor.Executor` contract -- so a spec DAG runs
unchanged on the serial executor, the process pool, the batch-lane
backend, a TCP cluster, or a `repro serve` daemon, inheriting dedup,
result caching, retries, cost-model scheduling and the run ledger.
Analysis nodes run *in the parent process* as their parents finish:
each wave's nodes are looked up in the :class:`ArtifactStore` by node
hash first (a hit re-serves the artifact without recomputing), and
computed + published on a miss.

Because sim results are cached by spec key and artifacts by node hash,
re-running a spec after editing one knob recomputes exactly the
affected subgraph: untouched sim nodes are cache hits, untouched
analyses are artifact hits, and only nodes downstream of the edit run.

Every run records a ``dag`` meta row in the run ledger (spec file hash,
node counts, concretizer version, the sim keys it will dispatch) so
``repro report --from-ledger`` can attribute jobs to the DAG that
spawned them.
"""

from __future__ import annotations

import json

from ..jobs.context import get_context, run_specs
from .artifacts import ArtifactStore, artifact_roots
from .concretize import (CONCRETIZER_VERSION, ConcreteDAG, GroupResult,
                         concretize)
from .format import SpecError
from .registry import ANALYSES


class DagResult:
    """Everything one DAG run produced: tables, artifacts, run stats."""

    def __init__(self, dag, tables, artifacts, stats):
        self.dag = dag
        self.tables = tables         # analysis name -> ExperimentResult
        self.artifacts = artifacts   # analysis name -> artifact dict
        self.stats = stats

    def render(self):
        """Every analysis table, in topological order."""
        return "\n\n".join(self.tables[node.name].render()
                           for node in self.dag.analyses
                           if node.name in self.tables)


def _experiment_result(artifact):
    from ..harness.experiments import ExperimentResult
    return ExperimentResult(artifact["title"], artifact["headers"],
                            artifact["rows"], artifact.get("notes", ""))


def _normalize(artifact):
    """JSON-roundtrip an artifact so computed and cache-served runs hand
    back identical Python structures (lists, not tuples; plain scalars)."""
    return json.loads(json.dumps(artifact, sort_keys=True, default=list))


class DagRunner:
    """Run one concretized DAG under an execution context."""

    def __init__(self, dag, context=None, artifacts=None):
        self.dag = dag
        self.context = context or get_context()
        self.artifacts = (artifacts if artifacts is not None
                          else ArtifactStore(artifact_roots(self.context)))

    # ------------------------------------------------------------------
    def dry_run(self):
        """Preview the run without executing anything.

        Returns the DAG stats plus the topological levels and a
        cache-hit preview: how many sim nodes the result cache already
        holds, and how many analyses the artifact store can re-serve.
        """
        dag = self.dag
        sim_cached = sum(
            1 for node_id in dag.sim_nodes
            if self.context.cache.get(dag.sim_nodes[node_id].job)
            is not None)
        artifact_cached = sum(1 for node in dag.analyses
                              if self.artifacts.contains(node.hash))
        return {
            "stats": dag.stats(),
            "levels": [len(level) for level in dag.levels()],
            "sim_total": len(dag.sim_nodes),
            "sim_cached": sim_cached,
            "analysis_total": len(dag.analyses),
            "artifact_cached": artifact_cached,
        }

    def render_dry_run(self, preview=None):
        preview = preview or self.dry_run()
        stats = preview["stats"]
        dag = self.dag
        lines = [
            f"DAG {stats['spec']} (spec {stats['spec_sha256'][:12] or '-'}, "
            f"concretizer v{stats['concretizer_version']}, "
            f"hash {stats['dag_hash'][:12]})",
            f"  nodes   {stats['nodes']} = {stats['sim_nodes']} sim "
            f"({stats['leaves']} leaves, {stats['deduplicated']} "
            f"deduplicated) + {stats['analysis_nodes']} analysis, "
            f"{stats['levels']} topological level(s)",
        ]
        levels = dag.levels()
        for index, level in enumerate(levels):
            kinds = ("sim" if level and level[0].startswith("sim:")
                     else "analysis")
            detail = ""
            if kinds == "analysis":
                names = [node_id.split(":", 1)[1] for node_id in level]
                detail = ": " + ", ".join(names)
            lines.append(f"  level {index}  {len(level)} {kinds} "
                         f"node(s){detail}")
        lines.append(
            f"  cache   {preview['sim_cached']}/{preview['sim_total']} sim "
            f"result(s) cached, {preview['artifact_cached']}/"
            f"{preview['analysis_total']} artifact(s) cached")
        lines.append("  dry run: nothing executed")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def _record_dag_meta(self):
        dag = self.dag
        self.context.ledger.record_meta(
            "dag",
            spec=dag.name,
            spec_source=dag.spec.source,
            spec_sha256=dag.spec.digest,
            dag_hash=dag.dag_hash,
            concretizer_version=CONCRETIZER_VERSION,
            nodes=dag.node_count(),
            sim_nodes=len(dag.sim_nodes),
            analysis_nodes=len(dag.analyses),
            leaves=dag.leaf_count,
            sim_keys=[dag.sim_nodes[node_id].job.key
                      for node_id in dag.sim_nodes],
        )

    def _group_result(self, group, done):
        metrics_by_leaf = {}
        for leaf in group.leaves:
            metrics = done.get(leaf.node_id)
            if metrics is None:
                return None          # a sim this group needs gave up
            key = group.leaf_key(leaf.label, leaf.technique, leaf.knobs)
            metrics_by_leaf[key] = metrics
        return GroupResult(group, metrics_by_leaf)

    def run(self):
        """Execute the DAG; returns a :class:`DagResult`.

        Sim nodes go through the context's executor (one batch -- the
        backend pipelines them); analyses run here as artifacts arrive,
        served from the artifact store when their node hash is cached.
        With the context's ``on_failure="report"`` policy, analyses
        whose upstream sims gave up are *skipped* (listed in
        ``stats["skipped"]``) instead of aborting the run.
        """
        dag = self.dag
        self._record_dag_meta()

        done = {}                    # node_id -> Metrics | artifact dict
        sim_ids = list(dag.sim_nodes)
        metrics_list = run_specs([dag.sim_nodes[nid].job for nid in sim_ids],
                                 context=self.context)
        for node_id, metrics in zip(sim_ids, metrics_list):
            done[node_id] = metrics

        group_results = {}
        for name, group in dag.groups.items():
            group_results[name] = self._group_result(group, done)

        tables = {}
        artifacts = {}
        computed = 0
        served = 0
        skipped = []
        pending = list(dag.analyses)
        while pending:
            ready = [node for node in pending
                     if all(parent in done or parent.startswith("sim:")
                            for parent in node.parents)]
            if not ready:            # unreachable: concretize rejects cycles
                raise SpecError(
                    f"DAG {dag.name!r}: analyses "
                    f"{', '.join(node.name for node in pending)} can never "
                    f"become ready")
            for node in ready:
                pending.remove(node)
                inputs = {}
                unavailable = None
                for need in node.needs:
                    if need in group_results:
                        if group_results[need] is None:
                            unavailable = f"matrix group {need!r}"
                            break
                        inputs[need] = group_results[need]
                    else:
                        parent_id = f"analysis:{need}"
                        if parent_id not in done:
                            unavailable = f"analysis {need!r}"
                            break
                        inputs[need] = done[parent_id]
                if unavailable is not None:
                    skipped.append({"analysis": node.name,
                                    "reason": f"{unavailable} is "
                                              f"incomplete (upstream "
                                              f"failures)"})
                    continue
                artifact = self.artifacts.get(node.hash)
                if artifact is None:
                    artifact = _normalize(ANALYSES[node.fn](inputs,
                                                            node.args))
                    self.artifacts.put(node.hash, artifact,
                                       meta={"spec": dag.name,
                                             "analysis": node.name,
                                             "fn": node.fn})
                    computed += 1
                else:
                    served += 1
                done[node.node_id] = artifact
                artifacts[node.name] = artifact
                tables[node.name] = _experiment_result(artifact)

        stats = dict(dag.stats())
        stats.update(analyses_computed=computed, artifact_hits=served,
                     skipped=skipped)
        return DagResult(dag, tables, artifacts, stats)


def run_spec_file(source, scale=None, context=None, artifacts=None):
    """Concretize + run a spec (path, dict, Spec, or ConcreteDAG)."""
    dag = (source if isinstance(source, ConcreteDAG)
           else concretize(source, scale=scale))
    return DagRunner(dag, context=context, artifacts=artifacts).run()
