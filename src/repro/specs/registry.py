"""Registered analysis functions: pure ``(inputs, args) -> artifact``.

An *analysis node* of a concretized DAG runs one of the functions in
``ANALYSES`` over its parents' results.  ``inputs`` maps each name in
the analysis's ``needs`` list to either

- a :class:`~repro.specs.concretize.GroupResult` (a matrix group whose
  sim nodes have all finished: ordered axes + a ``(label, technique,
  knob values) -> Metrics`` lookup), or
- the artifact dict a parent *analysis* produced.

The return value is a JSON-able artifact dict ``{"title", "headers",
"rows", "notes"}`` -- exactly the payload an
:class:`~repro.harness.experiments.ExperimentResult` renders, so spec
DAGs can reproduce the paper's tables bit-for-bit.  Functions must be
pure (same inputs -> same artifact): artifacts are cached by node hash
and re-served across runs.

The built-ins mirror the hand-coded figure pipelines in
:mod:`repro.harness.experiments` operation-for-operation (same float
arithmetic, same iteration order), which is what makes the
``specs/fig*.toml`` tables bit-identical to their legacy counterparts.
"""

from __future__ import annotations

from itertools import product

from ..harness.report import hmean

#: name -> analysis function; the spec loader validates ``fn`` against it.
ANALYSES = {}


def analysis(name):
    """Decorator: register an analysis function under ``name``."""
    def register(fn):
        ANALYSES[name] = fn
        return fn
    return register


class AnalysisInputError(ValueError):
    """An analysis got inputs its contract does not cover."""


def _single_group(inputs, fn_name):
    """The one GroupResult parent of a single-group analysis."""
    groups = [value for value in inputs.values() if hasattr(value, "axes")]
    if len(groups) != 1:
        raise AnalysisInputError(
            f"{fn_name} needs exactly one matrix group parent, "
            f"got {len(groups)}")
    return groups[0]


def _require_args(args, required, fn_name):
    missing = [key for key in required if key not in args]
    if missing:
        raise AnalysisInputError(
            f"{fn_name} needs args {', '.join(repr(k) for k in missing)}")


# ---------------------------------------------------------------------------
# speedup_table: fig7/fig8-style per-benchmark speedup columns + H-mean
# ---------------------------------------------------------------------------
@analysis("speedup_table")
def speedup_table(inputs, args):
    """Per-benchmark speedups of ``columns`` over ``baseline`` + H-mean row.

    Mirrors ``harness.experiments._speedup_table``: one row per workload
    label, one column per technique, a final harmonic-mean row.
    """
    _require_args(args, ("columns",), "speedup_table")
    group = _single_group(inputs, "speedup_table")
    baseline = args.get("baseline", "ooo")
    columns = list(args["columns"])
    rows = []
    per_tech = {tech: [] for tech in columns}
    for label in group.labels:
        base = group.metrics(label, baseline)
        row = [label]
        for tech in columns:
            speedup = group.metrics(label, tech).speedup_over(base)
            per_tech[tech].append(speedup)
            row.append(speedup)
        rows.append(row)
    rows.append(["H-mean"] + [hmean(per_tech[tech]) for tech in columns])
    return {"title": args.get("title", f"speedup over {baseline}"),
            "headers": args.get("headers", ["benchmark"] + columns),
            "rows": rows,
            "notes": args.get("notes", "")}


# ---------------------------------------------------------------------------
# rob_sweep: fig2/fig12-style ROB sweeps normalized to a baseline group
# ---------------------------------------------------------------------------
@analysis("rob_sweep")
def rob_sweep(inputs, args):
    """H-mean speedups vs ROB size, normalized to a separate baseline group.

    Needs two parents: a ``baseline`` group (one technique at the
    default ROB; the normalization denominator, per label) and a
    ``sweep`` group carrying a ROB knob axis and two techniques.  The
    ``extra`` column is either ``"stall_pct"`` (fig2: mean full-ROB
    stall time of the first technique, in percent) or ``"ratio"``
    (fig12: second technique's h-mean over the first's).
    """
    _require_args(args, ("techniques", "rob_knob"), "rob_sweep")
    groups = {name: value for name, value in inputs.items()
              if hasattr(value, "axes")}
    if len(groups) != 2:
        raise AnalysisInputError(
            f"rob_sweep needs exactly two matrix group parents "
            f"(baseline + sweep), got {len(groups)}")
    rob_knob = args["rob_knob"]
    sweep = next((g for g in groups.values() if rob_knob in g.axes), None)
    if sweep is None:
        raise AnalysisInputError(
            f"rob_sweep: no parent group carries the {rob_knob!r} knob axis")
    base = next(g for g in groups.values() if g is not sweep)
    tech_a, tech_b = args["techniques"]
    extra = args.get("extra")
    if extra not in (None, "stall_pct", "ratio"):
        raise AnalysisInputError(
            f"rob_sweep: 'extra' must be 'stall_pct' or 'ratio', "
            f"got {extra!r}")

    rows = []
    for rob in sweep.axes[rob_knob]:
        a_speedups, b_speedups, stall = [], [], []
        for label in base.labels:
            base_ipc = base.metrics(label, base.techniques[0]).ipc
            point_a = sweep.metrics(label, tech_a, {rob_knob: rob})
            point_b = sweep.metrics(label, tech_b, {rob_knob: rob})
            a_speedups.append(point_a.ipc / base_ipc)
            b_speedups.append(point_b.ipc / base_ipc)
            stall.append(point_a.rob_full_fraction)
        row = [rob, hmean(a_speedups), hmean(b_speedups)]
        if extra == "stall_pct":
            row.append(100.0 * sum(stall) / len(stall))
        elif extra == "ratio":
            row.append(hmean(b_speedups) / max(1e-9, hmean(a_speedups)))
        rows.append(row)
    return {"title": args.get("title", f"{tech_b} vs ROB size"),
            "headers": args.get(
                "headers", ["ROB", f"{tech_a} speedup", f"{tech_b} speedup"]),
            "rows": rows,
            "notes": args.get("notes", "")}


# ---------------------------------------------------------------------------
# knob_sweep: generic knob-combination table (new-scenario workhorse)
# ---------------------------------------------------------------------------
@analysis("knob_sweep")
def knob_sweep(inputs, args):
    """One row per knob combination, aggregated across the benchmark set.

    ``mode = "speedup"`` (default) reports each technique's h-mean
    speedup over ``baseline`` *at the same knob point* -- the right
    question for design-point sweeps ("does runahead still pay off at a
    16-entry ROB?").  ``mode = "mean"`` reports the arithmetic mean of
    ``metric`` (an attribute of ``Metrics``, e.g. ``mlp`` or ``ipc``)
    per technique instead.  Knob combinations a matrix exclusion removed
    are skipped, not zero-filled.
    """
    _require_args(args, ("knobs", "techniques"), "knob_sweep")
    group = _single_group(inputs, "knob_sweep")
    knobs = list(args["knobs"])
    techniques = list(args["techniques"])
    mode = args.get("mode", "speedup")
    if mode not in ("speedup", "mean"):
        raise AnalysisInputError(
            f"knob_sweep: 'mode' must be 'speedup' or 'mean', got {mode!r}")
    baseline = args.get("baseline", "ooo")
    metric = args.get("metric", "ipc")
    for knob in knobs:
        if knob not in group.axes:
            raise AnalysisInputError(
                f"knob_sweep: parent group has no {knob!r} axis "
                f"(axes: {', '.join(sorted(group.axes))})")

    rows = []
    for combo in product(*(group.axes[knob] for knob in knobs)):
        point = dict(zip(knobs, combo))
        if not group.has_point(point):
            continue                  # excluded combination
        row = list(combo)
        for tech in techniques:
            values = []
            for label in group.labels:
                metrics = group.metrics(label, tech, point)
                if mode == "speedup":
                    base = group.metrics(label, baseline, point)
                    values.append(metrics.speedup_over(base))
                else:
                    values.append(float(getattr(metrics, metric)))
            row.append(hmean(values) if mode == "speedup"
                       else sum(values) / len(values))
        rows.append(row)
    if mode == "speedup":
        default_headers = knobs + [f"{t} vs {baseline}" for t in techniques]
    else:
        default_headers = knobs + [f"{t} {metric}" for t in techniques]
    return {"title": args.get("title", f"{mode} across {', '.join(knobs)}"),
            "headers": args.get("headers", default_headers),
            "rows": rows,
            "notes": args.get("notes", "")}


# ---------------------------------------------------------------------------
# cpi_breakdown: per-benchmark CPI-stack components for one technique
# ---------------------------------------------------------------------------
@analysis("cpi_breakdown")
def cpi_breakdown(inputs, args):
    """CPI-stack components per benchmark for one technique."""
    group = _single_group(inputs, "cpi_breakdown")
    technique = args.get("technique", group.techniques[0])
    components = args.get("components")
    rows = []
    for label in group.labels:
        metrics = group.metrics(label, technique)
        if components is None:
            components = list(metrics.cpi_stack)
        rows.append([label] + [metrics.cpi_stack.get(component, 0.0)
                               for component in components])
    return {"title": args.get("title", f"CPI breakdown ({technique})"),
            "headers": args.get("headers",
                                ["benchmark"] + list(components or [])),
            "rows": rows,
            "notes": args.get("notes", "")}


# ---------------------------------------------------------------------------
# mlp_table: fig9-style average-MSHRs-per-cycle columns + mean row
# ---------------------------------------------------------------------------
@analysis("mlp_table")
def mlp_table(inputs, args):
    """MLP (average MSHRs per cycle) per benchmark and technique."""
    group = _single_group(inputs, "mlp_table")
    techniques = list(args.get("techniques", group.techniques))
    rows = []
    sums = {tech: [] for tech in techniques}
    for label in group.labels:
        row = [label]
        for tech in techniques:
            mlp = group.metrics(label, tech).mlp
            row.append(mlp)
            sums[tech].append(mlp)
        rows.append(row)
    rows.append(["Mean"] + [sum(sums[t]) / len(sums[t])
                            for t in techniques])
    return {"title": args.get("title", "MLP (MSHRs used per cycle, average)"),
            "headers": args.get("headers", ["benchmark"] + techniques),
            "rows": rows,
            "notes": args.get("notes", "")}
