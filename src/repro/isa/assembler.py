"""A tiny assembler DSL for building guest programs in Python.

Example::

    a = Assembler("sum_indirect")
    a.li("r1", 0)                       # i = 0
    a.label("loop")
    a.loadx("r2", "rA", "r1")           # x = A[i]
    a.loadx("r3", "rB", "r2")           # y = B[x]
    a.add("r4", "r4", "r3")             # sum += y
    a.addi("r1", "r1", 1)
    a.cmplt("r5", "r1", "rN")
    a.bnz("r5", "loop")
    a.halt()
    program = a.build()

Registers may be written ``"r7"`` or ``7``; named aliases can be declared
with :meth:`Assembler.alias` (``"rA"`` above).
"""

from __future__ import annotations

from .instructions import Instruction, Op, WORD_BYTES
from .program import Program


class AssemblyError(Exception):
    """Raised for malformed assembly (bad registers, unknown labels...)."""


class Assembler:
    def __init__(self, name="program"):
        self.name = name
        self._instructions = []
        self._labels = {}
        self._fixups = []  # (instruction index, label name)
        self._aliases = {}

    # ------------------------------------------------------------------
    # Registers and labels
    # ------------------------------------------------------------------
    def alias(self, name, reg):
        """Give register ``reg`` a readable alias, e.g. ``alias('rBase', 9)``."""
        self._aliases[name] = self._reg(reg)
        return self._aliases[name]

    def _reg(self, reg):
        if isinstance(reg, int):
            index = reg
        elif reg in self._aliases:
            index = self._aliases[reg]
        elif isinstance(reg, str) and reg.startswith("r") and reg[1:].isdigit():
            index = int(reg[1:])
        else:
            raise AssemblyError(f"unknown register {reg!r}")
        if not 0 <= index < 32:
            raise AssemblyError(f"register index out of range: {reg!r}")
        return index

    def label(self, name):
        if name in self._labels:
            raise AssemblyError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)

    def here(self):
        """Current pc (index of the next emitted instruction)."""
        return len(self._instructions)

    def _emit(self, op, rd=-1, rs1=-1, rs2=-1, rs3=-1, imm=0, target=-1,
              label=None):
        ins = Instruction(op, rd=rd, rs1=rs1, rs2=rs2, rs3=rs3, imm=imm,
                          target=target)
        if label is not None:
            self._fixups.append((len(self._instructions), label))
        self._instructions.append(ins)
        return ins

    # ------------------------------------------------------------------
    # ALU
    # ------------------------------------------------------------------
    def _rrr(self, op, rd, rs1, rs2):
        return self._emit(op, rd=self._reg(rd), rs1=self._reg(rs1),
                          rs2=self._reg(rs2))

    def _rri(self, op, rd, rs1, imm):
        return self._emit(op, rd=self._reg(rd), rs1=self._reg(rs1),
                          imm=int(imm))

    def add(self, rd, rs1, rs2):
        return self._rrr(Op.ADD, rd, rs1, rs2)

    def sub(self, rd, rs1, rs2):
        return self._rrr(Op.SUB, rd, rs1, rs2)

    def mul(self, rd, rs1, rs2):
        return self._rrr(Op.MUL, rd, rs1, rs2)

    def div(self, rd, rs1, rs2):
        return self._rrr(Op.DIV, rd, rs1, rs2)

    def and_(self, rd, rs1, rs2):
        return self._rrr(Op.AND, rd, rs1, rs2)

    def or_(self, rd, rs1, rs2):
        return self._rrr(Op.OR, rd, rs1, rs2)

    def xor(self, rd, rs1, rs2):
        return self._rrr(Op.XOR, rd, rs1, rs2)

    def shl(self, rd, rs1, rs2):
        return self._rrr(Op.SHL, rd, rs1, rs2)

    def shr(self, rd, rs1, rs2):
        return self._rrr(Op.SHR, rd, rs1, rs2)

    def addi(self, rd, rs1, imm):
        return self._rri(Op.ADDI, rd, rs1, imm)

    def muli(self, rd, rs1, imm):
        return self._rri(Op.MULI, rd, rs1, imm)

    def andi(self, rd, rs1, imm):
        return self._rri(Op.ANDI, rd, rs1, imm)

    def shli(self, rd, rs1, imm):
        return self._rri(Op.SHLI, rd, rs1, imm)

    def shri(self, rd, rs1, imm):
        return self._rri(Op.SHRI, rd, rs1, imm)

    def li(self, rd, imm):
        return self._emit(Op.LI, rd=self._reg(rd), imm=int(imm))

    def mov(self, rd, rs1):
        return self._emit(Op.MOV, rd=self._reg(rd), rs1=self._reg(rs1))

    def hash(self, rd, rs1):
        return self._emit(Op.HASH, rd=self._reg(rd), rs1=self._reg(rs1))

    # ------------------------------------------------------------------
    # Compares
    # ------------------------------------------------------------------
    def cmplt(self, rd, rs1, rs2):
        return self._rrr(Op.CMPLT, rd, rs1, rs2)

    def cmple(self, rd, rs1, rs2):
        return self._rrr(Op.CMPLE, rd, rs1, rs2)

    def cmpeq(self, rd, rs1, rs2):
        return self._rrr(Op.CMPEQ, rd, rs1, rs2)

    def cmpne(self, rd, rs1, rs2):
        return self._rrr(Op.CMPNE, rd, rs1, rs2)

    def cmplti(self, rd, rs1, imm):
        return self._rri(Op.CMPLTI, rd, rs1, imm)

    def cmpeqi(self, rd, rs1, imm):
        return self._rri(Op.CMPEQI, rd, rs1, imm)

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def load(self, rd, base, offset=0):
        return self._emit(Op.LOAD, rd=self._reg(rd), rs1=self._reg(base),
                          imm=int(offset))

    def loadx(self, rd, base, index, scale=WORD_BYTES):
        return self._emit(Op.LOADX, rd=self._reg(rd), rs1=self._reg(base),
                          rs2=self._reg(index), imm=int(scale))

    def store(self, value, base, offset=0):
        return self._emit(Op.STORE, rs1=self._reg(base),
                          rs3=self._reg(value), imm=int(offset))

    def storex(self, value, base, index, scale=WORD_BYTES):
        return self._emit(Op.STOREX, rs1=self._reg(base),
                          rs2=self._reg(index), rs3=self._reg(value),
                          imm=int(scale))

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def bnz(self, rs1, label):
        return self._emit(Op.BNZ, rs1=self._reg(rs1), label=label)

    def bez(self, rs1, label):
        return self._emit(Op.BEZ, rs1=self._reg(rs1), label=label)

    def jmp(self, label):
        return self._emit(Op.JMP, label=label)

    def nop(self):
        return self._emit(Op.NOP)

    def halt(self):
        return self._emit(Op.HALT)

    # ------------------------------------------------------------------
    def build(self):
        """Resolve labels and return the finished :class:`Program`."""
        for index, label in self._fixups:
            if label not in self._labels:
                raise AssemblyError(f"undefined label {label!r}")
            self._instructions[index].target = self._labels[label]
        return Program(self._instructions, self._labels, name=self.name)
