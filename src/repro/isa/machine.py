"""Guest memory and architectural (functional) execution semantics.

The timing model executes instructions *functionally* at dispatch on the
correct path; runahead engines reuse the same semantics speculatively.
Both go through :func:`execute`, which returns ``(next_pc, mem_addr)``.
"""

from __future__ import annotations

from .instructions import Op, WORD_BYTES, hash64, to_signed64


class GuestFault(Exception):
    """Raised when correct-path execution accesses memory out of bounds."""


class GuestMemory:
    """Flat, word-granular guest memory with a bump allocator.

    Addresses are byte addresses; all accesses are 8-byte aligned words.
    ``words`` is exposed directly so hot paths can index it without a
    method call.
    """

    LINE_BYTES = 64

    def __init__(self, size_bytes):
        if size_bytes % WORD_BYTES:
            raise ValueError("memory size must be a multiple of 8 bytes")
        self.size_bytes = size_bytes
        self.num_words = size_bytes // WORD_BYTES
        self.words = [0] * self.num_words
        # Allocation starts at one cache line to keep address 0 unmapped-ish
        # looking (helps catch uninitialized-pointer bugs in workloads).
        self._next_free = self.LINE_BYTES

    def alloc(self, num_words, name=None, align=LINE_BYTES):
        """Reserve ``num_words`` words, cache-line aligned; return base address."""
        base = (self._next_free + align - 1) // align * align
        end = base + num_words * WORD_BYTES
        if end > self.size_bytes:
            raise MemoryError(
                f"guest memory exhausted allocating {name or 'array'} "
                f"({num_words} words; {end} > {self.size_bytes} bytes)")
        self._next_free = end
        return base

    def alloc_array(self, values, name=None):
        """Allocate and initialize an array; return its base address."""
        if hasattr(values, "tolist"):  # numpy fast path
            values = values.tolist()
        else:
            values = [int(v) for v in values]
        base = self.alloc(len(values), name=name)
        start = base // WORD_BYTES
        self.words[start:start + len(values)] = values
        return base

    def read_word(self, addr):
        return self.words[addr >> 3]

    def write_word(self, addr, value):
        self.words[addr >> 3] = int(value)

    def read_array(self, base, count):
        start = base // WORD_BYTES
        return self.words[start:start + count]

    def in_bounds(self, addr):
        return 0 <= addr < self.size_bytes


def execute(ins, regs, mem):
    """Execute one instruction architecturally.

    ``regs`` is a 32-entry list of ints, ``mem`` a :class:`GuestMemory`.
    Returns ``(next_pc, mem_addr)``; ``mem_addr`` is -1 for non-memory ops.
    Raises :class:`GuestFault` on out-of-bounds memory access.
    """
    op = ins.op
    pc = ins.pc
    addr = -1

    if op == Op.LOADX:
        addr = regs[ins.rs1] + regs[ins.rs2] * ins.imm
        if not 0 <= addr < mem.size_bytes:
            raise GuestFault(f"load out of bounds at pc={pc}: addr={addr}")
        regs[ins.rd] = mem.words[addr >> 3]
    elif op == Op.LOAD:
        addr = regs[ins.rs1] + ins.imm
        if not 0 <= addr < mem.size_bytes:
            raise GuestFault(f"load out of bounds at pc={pc}: addr={addr}")
        regs[ins.rd] = mem.words[addr >> 3]
    elif op == Op.ADD:
        regs[ins.rd] = regs[ins.rs1] + regs[ins.rs2]
    elif op == Op.ADDI:
        regs[ins.rd] = regs[ins.rs1] + ins.imm
    elif op == Op.CMPLT:
        regs[ins.rd] = 1 if regs[ins.rs1] < regs[ins.rs2] else 0
    elif op == Op.BNZ:
        if regs[ins.rs1] != 0:
            return ins.target, -1
        return pc + 1, -1
    elif op == Op.BEZ:
        if regs[ins.rs1] == 0:
            return ins.target, -1
        return pc + 1, -1
    elif op == Op.STOREX:
        addr = regs[ins.rs1] + regs[ins.rs2] * ins.imm
        if not 0 <= addr < mem.size_bytes:
            raise GuestFault(f"store out of bounds at pc={pc}: addr={addr}")
        mem.words[addr >> 3] = regs[ins.rs3]
    elif op == Op.STORE:
        addr = regs[ins.rs1] + ins.imm
        if not 0 <= addr < mem.size_bytes:
            raise GuestFault(f"store out of bounds at pc={pc}: addr={addr}")
        mem.words[addr >> 3] = regs[ins.rs3]
    elif op == Op.HASH:
        regs[ins.rd] = hash64(regs[ins.rs1])
    elif op == Op.SUB:
        regs[ins.rd] = regs[ins.rs1] - regs[ins.rs2]
    elif op == Op.MUL:
        regs[ins.rd] = to_signed64(regs[ins.rs1] * regs[ins.rs2])
    elif op == Op.MULI:
        regs[ins.rd] = to_signed64(regs[ins.rs1] * ins.imm)
    elif op == Op.DIV:
        divisor = regs[ins.rs2]
        regs[ins.rd] = 0 if divisor == 0 else regs[ins.rs1] // divisor
    elif op == Op.AND:
        regs[ins.rd] = regs[ins.rs1] & regs[ins.rs2]
    elif op == Op.ANDI:
        regs[ins.rd] = regs[ins.rs1] & ins.imm
    elif op == Op.OR:
        regs[ins.rd] = regs[ins.rs1] | regs[ins.rs2]
    elif op == Op.XOR:
        regs[ins.rd] = regs[ins.rs1] ^ regs[ins.rs2]
    elif op == Op.SHL:
        regs[ins.rd] = to_signed64(regs[ins.rs1] << (regs[ins.rs2] & 63))
    elif op == Op.SHLI:
        regs[ins.rd] = to_signed64(regs[ins.rs1] << (ins.imm & 63))
    elif op == Op.SHR:
        regs[ins.rd] = (regs[ins.rs1] & ((1 << 64) - 1)) >> (regs[ins.rs2] & 63)
    elif op == Op.SHRI:
        regs[ins.rd] = (regs[ins.rs1] & ((1 << 64) - 1)) >> (ins.imm & 63)
    elif op == Op.CMPLE:
        regs[ins.rd] = 1 if regs[ins.rs1] <= regs[ins.rs2] else 0
    elif op == Op.CMPEQ:
        regs[ins.rd] = 1 if regs[ins.rs1] == regs[ins.rs2] else 0
    elif op == Op.CMPNE:
        regs[ins.rd] = 1 if regs[ins.rs1] != regs[ins.rs2] else 0
    elif op == Op.CMPLTI:
        regs[ins.rd] = 1 if regs[ins.rs1] < ins.imm else 0
    elif op == Op.CMPEQI:
        regs[ins.rd] = 1 if regs[ins.rs1] == ins.imm else 0
    elif op == Op.LI:
        regs[ins.rd] = ins.imm
    elif op == Op.MOV:
        regs[ins.rd] = regs[ins.rs1]
    elif op == Op.JMP:
        return ins.target, -1
    elif op == Op.NOP or op == Op.HALT:
        pass
    else:  # pragma: no cover - all opcodes handled above
        raise ValueError(f"unknown opcode {op}")
    return pc + 1, addr


def compute_mem_addr(ins, regs):
    """Address a memory instruction would access, without executing it."""
    if ins.op in (Op.LOADX, Op.STOREX):
        return regs[ins.rs1] + regs[ins.rs2] * ins.imm
    if ins.op in (Op.LOAD, Op.STORE):
        return regs[ins.rs1] + ins.imm
    return -1


def run_functional(program, mem, regs=None, max_instructions=10_000_000,
                   start_pc=0):
    """Pure functional execution (no timing).  Returns (regs, instr_count).

    Used by workload reference checks and by tests.  Stops at HALT or when
    ``max_instructions`` have executed.
    """
    regs = list(regs) if regs is not None else [0] * 32
    if len(regs) != 32:
        raise ValueError("regs must have 32 entries")
    pc = start_pc
    count = 0
    instructions = program.instructions
    while count < max_instructions:
        ins = instructions[pc]
        if ins.op == Op.HALT:
            count += 1
            break
        pc, _ = execute(ins, regs, mem)
        count += 1
    return regs, count
