"""Guest ISA: instructions, assembler, program container, functional machine."""

from .instructions import (Instruction, NUM_REGS, Op, OP_NAMES, WORD_BYTES,
                           hash64, to_signed64)
from .assembler import Assembler, AssemblyError
from .program import Program
from .machine import (GuestFault, GuestMemory, compute_mem_addr, execute,
                      run_functional)

__all__ = [
    "Assembler",
    "AssemblyError",
    "GuestFault",
    "GuestMemory",
    "Instruction",
    "NUM_REGS",
    "Op",
    "OP_NAMES",
    "Program",
    "WORD_BYTES",
    "compute_mem_addr",
    "execute",
    "hash64",
    "run_functional",
    "to_signed64",
]
