"""Program container for assembled guest code."""

from __future__ import annotations

from .instructions import OP_NAMES


class Program:
    """An assembled guest program: a flat list of instructions plus labels.

    PCs are instruction indices (the front end fetches by index; there is
    no variable-length encoding).  ``labels`` maps label name -> pc.
    """

    def __init__(self, instructions, labels=None, name="program"):
        self.instructions = list(instructions)
        self.labels = dict(labels or {})
        self.name = name
        for pc, ins in enumerate(self.instructions):
            ins.pc = pc

    def __len__(self):
        return len(self.instructions)

    def __getitem__(self, pc):
        return self.instructions[pc]

    def __iter__(self):
        return iter(self.instructions)

    def label_at(self, pc):
        """Return labels pointing at ``pc`` (for disassembly)."""
        return [name for name, target in self.labels.items() if target == pc]

    def disassemble(self):
        """Return a human-readable listing of the program."""
        lines = []
        for pc, ins in enumerate(self.instructions):
            for label in self.label_at(pc):
                lines.append(f"{label}:")
            lines.append(f"  {pc:4d}  {_format(ins)}")
        return "\n".join(lines)


def _format(ins):
    name = OP_NAMES[ins.op]
    fields = []
    if ins.rd >= 0:
        fields.append(f"r{ins.rd}")
    for reg in ins.srcs:
        fields.append(f"r{reg}")
    if ins.imm:
        fields.append(str(ins.imm))
    if ins.target >= 0:
        fields.append(f"-> {ins.target}")
    return f"{name} {', '.join(fields)}".rstrip()
