"""Guest instruction set for the DVR reproduction.

The simulator executes a small RISC-like register ISA.  It is deliberately
minimal but chosen so that the dynamic instruction streams of the paper's
workloads look the same to the microarchitecture: striding loads, chains of
dependent (indirect) loads, compare+backward-branch loops, and
data-dependent forward branches.

Registers are 64-bit integers ``r0`` .. ``r31`` (none are hardwired).
Memory is byte-addressed; all accesses are 8-byte words.
"""

from __future__ import annotations


class Op:
    """Opcode constants (plain ints for fast dispatch)."""

    NOP = 0
    # ALU register-register
    ADD = 1
    SUB = 2
    MUL = 3
    DIV = 4
    AND = 5
    OR = 6
    XOR = 7
    SHL = 8
    SHR = 9
    # ALU register-immediate
    ADDI = 10
    MULI = 11
    ANDI = 12
    SHLI = 13
    SHRI = 14
    LI = 15
    MOV = 16
    HASH = 17  # one-input integer mixing function (models hash computation)
    # Compares (write 0/1 to rd)
    CMPLT = 18
    CMPLE = 19
    CMPEQ = 20
    CMPNE = 21
    CMPLTI = 22
    CMPEQI = 23
    # Memory
    LOAD = 24    # rd <- mem[R[rs1] + imm]
    LOADX = 25   # rd <- mem[R[rs1] + R[rs2]*imm]   (imm = scale, usually 8)
    STORE = 26   # mem[R[rs1] + imm] <- R[rs3]
    STOREX = 27  # mem[R[rs1] + R[rs2]*imm] <- R[rs3]
    # Control
    BNZ = 28     # branch to target if R[rs1] != 0
    BEZ = 29     # branch to target if R[rs1] == 0
    JMP = 30
    HALT = 31

    COUNT = 32


OP_NAMES = {
    value: name.lower()
    for name, value in vars(Op).items()
    if not name.startswith("_") and name != "COUNT"
}

_LOADS = frozenset({Op.LOAD, Op.LOADX})
_STORES = frozenset({Op.STORE, Op.STOREX})
_BRANCHES = frozenset({Op.BNZ, Op.BEZ, Op.JMP})
_COND_BRANCHES = frozenset({Op.BNZ, Op.BEZ})
_COMPARES = frozenset(
    {Op.CMPLT, Op.CMPLE, Op.CMPEQ, Op.CMPNE, Op.CMPLTI, Op.CMPEQI}
)
_NO_DEST = _STORES | _BRANCHES | frozenset({Op.NOP, Op.HALT})

NUM_REGS = 32
WORD_BYTES = 8

_MASK64 = (1 << 64) - 1


def to_signed64(value):
    """Wrap an unbounded Python int to signed 64-bit two's complement."""
    value &= _MASK64
    if value >= 1 << 63:
        value -= 1 << 64
    return value


def hash64(value):
    """The guest ``hash`` primitive: a splitmix64-style integer mixer."""
    value = to_signed64(value)
    x = (value + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return to_signed64(x)


class Instruction:
    """One static guest instruction.

    Fields not used by an opcode are -1 (registers), 0 (imm) or -1
    (target).  ``pc`` is the instruction's index within its program.
    """

    __slots__ = ("op", "rd", "rs1", "rs2", "rs3", "imm", "target", "pc",
                 "is_load", "is_store", "is_branch", "is_cond_branch",
                 "is_compare", "srcs")

    def __init__(self, op, rd=-1, rs1=-1, rs2=-1, rs3=-1, imm=0, target=-1,
                 pc=-1):
        self.op = op
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.rs3 = rs3
        self.imm = imm
        self.target = target
        self.pc = pc
        self.is_load = op in _LOADS
        self.is_store = op in _STORES
        self.is_branch = op in _BRANCHES
        self.is_cond_branch = op in _COND_BRANCHES
        self.is_compare = op in _COMPARES
        self.srcs = tuple(r for r in (rs1, rs2, rs3) if r >= 0)

    @property
    def writes_reg(self):
        return self.rd >= 0

    @property
    def name(self):
        return OP_NAMES[self.op]

    def __repr__(self):
        parts = [f"{self.name}"]
        if self.rd >= 0:
            parts.append(f"r{self.rd}")
        for r in self.srcs:
            parts.append(f"r{r}")
        if self.imm:
            parts.append(f"#{self.imm}")
        if self.target >= 0:
            parts.append(f"@{self.target}")
        return f"<{self.pc}: {' '.join(parts)}>"
