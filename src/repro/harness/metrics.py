"""Simulation result container with the paper's derived metrics."""

from __future__ import annotations

from ..config import SimConfig, config_from_dict, config_to_dict
from ..memsys.hierarchy import LEVELS

#: Every attribute one simulation run produces, in serialization order.
#: ``config`` is handled separately (nested dataclasses).
_FIELDS = (
    "workload", "technique", "cycles", "committed", "ipc",
    "rob_full_fraction", "rob_full_cycles", "commit_blocked_runahead",
    "branch_mispredicts", "branch_lookups", "cpi_stack", "mlp",
    "dram_accesses", "demand_hits", "prefetch_issued", "prefetch_used",
    "timeliness", "mshr_blocked", "engine_stats",
)


class Metrics:
    """Everything one simulation run produces, figure-ready."""

    def __init__(self, workload, technique, core_stats, mem_stats, mlp,
                 engine_stats, config):
        self.workload = workload
        self.technique = technique
        self.cycles = core_stats.cycles
        self.committed = core_stats.committed
        self.ipc = core_stats.ipc
        self.rob_full_fraction = core_stats.rob_full_fraction
        self.rob_full_cycles = core_stats.rob_full_cycles
        self.commit_blocked_runahead = core_stats.commit_blocked_runahead
        self.branch_mispredicts = core_stats.branch_mispredicts
        self.branch_lookups = core_stats.branch_lookups
        self.cpi_stack = core_stats.cpi_stack()
        self.mlp = mlp                              # avg MSHRs/cycle (Fig 9)
        self.dram_accesses = dict(mem_stats.dram_accesses)   # Fig 10
        self.demand_hits = dict(mem_stats.demand_hits)
        self.prefetch_issued = dict(mem_stats.prefetch_issued)
        self.prefetch_used = dict(mem_stats.prefetch_used)
        self.timeliness = {source: dict(hist)
                           for source, hist in mem_stats.timeliness.items()}
        self.mshr_blocked = mem_stats.mshr_blocked
        self.engine_stats = dict(engine_stats)
        self.config = config

    # ------------------------------------------------------------------
    @property
    def mpki(self):
        """LLC misses (DRAM accesses) per kilo committed instruction."""
        if self.committed == 0:
            return 0.0
        return 1000.0 * sum(self.dram_accesses.values()) / self.committed

    @property
    def demand_mpki(self):
        if self.committed == 0:
            return 0.0
        return 1000.0 * self.dram_accesses.get("demand", 0) / self.committed

    @property
    def branch_mpki(self):
        if self.committed == 0:
            return 0.0
        return 1000.0 * self.branch_mispredicts / self.committed

    def speedup_over(self, baseline):
        """IPC ratio against a baseline run of the same workload."""
        if baseline.ipc == 0:
            return 0.0
        return self.ipc / baseline.ipc

    def dram_split(self):
        """(main-thread accesses, runahead/prefetch accesses) -- Fig 10."""
        main = self.dram_accesses.get("demand", 0)
        other = sum(count for source, count in self.dram_accesses.items()
                    if source != "demand")
        return main, other

    def timeliness_fractions(self, source):
        """Fraction of ``source``-prefetched lines the main thread found in
        each level (Fig 11)."""
        hist = self.timeliness.get(source)
        if not hist:
            return {level: 0.0 for level in LEVELS}
        total = sum(hist.values())
        if total == 0:
            return {level: 0.0 for level in LEVELS}
        return {level: hist.get(level, 0) / total for level in LEVELS}

    # ------------------------------------------------------------------
    # Serialization: a lossless round-trip used by the result cache, the
    # process-pool executor, and ``--out`` persistence (repro.jobs).
    # ------------------------------------------------------------------
    def to_dict(self):
        """Full, JSON-serializable state; inverse of :meth:`from_dict`."""
        data = {name: getattr(self, name) for name in _FIELDS}
        data["config"] = config_to_dict(self.config)
        return data

    @classmethod
    def from_dict(cls, data):
        """Rebuild a :class:`Metrics` from :meth:`to_dict` output."""
        metrics = cls.__new__(cls)
        for name in _FIELDS:
            setattr(metrics, name, data[name])
        metrics.config = config_from_dict(SimConfig, data["config"])
        return metrics

    def as_dict(self):
        return {
            "workload": self.workload,
            "technique": self.technique,
            "cycles": self.cycles,
            "committed": self.committed,
            "ipc": self.ipc,
            "mlp": self.mlp,
            "rob_full_fraction": self.rob_full_fraction,
            "mpki": self.mpki,
            "branch_mpki": self.branch_mpki,
            "dram_accesses": self.dram_accesses,
            "engine_stats": self.engine_stats,
        }

    def __repr__(self):
        return (f"<Metrics {self.workload}/{self.technique} "
                f"ipc={self.ipc:.3f} mlp={self.mlp:.1f}>")
