"""Experiment definitions: one function per paper table/figure.

Each ``fig*``/``table*`` function *enumerates* the simulations it needs as
:class:`~repro.jobs.spec.JobSpec`s, hands the batch to the ``repro.jobs``
execution engine (process-pool parallelism, disk result cache, JSONL run
ledger), then joins the returned metrics into a result object whose
``render()`` gives the same rows/series the paper reports.  The benchmark
harness (``benchmarks/``) calls these; so can users.

Because specs are content-hashed, points shared between figures (every
figure re-uses the OoO baseline, fig2/fig12 share ROB sweeps) are
simulated once and served from cache afterwards.

Workload scale is controlled by ``ExperimentScale``: the default "small"
scale runs the GAP kernels on two inputs and trims the instruction budget
so a full figure regenerates in minutes on a laptop; "full" runs every
benchmark-input combination of the paper.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..config import (DVR_BREAKDOWN, SimConfig, TECH_DVR, TECH_IMP, TECH_OOO,
                      TECH_ORACLE, TECH_PRE, TECH_VR)
from ..jobs import JobSpec, run_specs
from ..memsys.cache import SRC_DVR
from ..memsys.hierarchy import LEVELS
from ..workloads import GAP_WORKLOADS, GRAPH_INPUTS, HPCDB_WORKLOADS
from ..workloads.graphs import build_csr
from .report import format_table, hmean

ROB_SIZES = (128, 192, 224, 350, 512)


@dataclass
class ExperimentScale:
    """How big an experiment run should be."""

    gap_graphs: tuple = ("KR", "UR")
    hpcdb: tuple = ("camel", "hj2", "hj8", "kangaroo", "nas-cg", "nas-is",
                    "randomaccess", "graph500")
    max_instructions: int = 20_000
    seed: int = 12345
    #: Event-driven cycle skipping; off forces the pure per-cycle loop
    #: (results are bit-identical either way -- see DESIGN.md).
    fast_forward: bool = True
    #: Runtime sanitizer assertions (repro.analysis); also observation
    #: only -- metrics are bit-identical with it on or off.
    sanitize: bool = False

    @classmethod
    def from_env(cls):
        """REPRO_SCALE=full|paper for the paper's full matrix, else small.

        Unknown values raise instead of silently running the small
        matrix: a typo like ``REPRO_SCALE=ful`` used to burn hours
        producing tables at the wrong scale.
        """
        value = os.environ.get("REPRO_SCALE", "small")
        if value in ("full", "paper"):
            return cls.full()
        if value in ("", "small"):
            return cls()
        raise ValueError(
            f"unknown REPRO_SCALE value {value!r}: expected 'small' "
            f"(default), 'full', or 'paper' (alias for 'full')")

    @classmethod
    def full(cls):
        return cls(gap_graphs=tuple(GRAPH_INPUTS), max_instructions=50_000)

    def config(self, technique=TECH_OOO):
        return SimConfig(max_instructions=self.max_instructions,
                         fast_forward=self.fast_forward,
                         sanitize=self.sanitize,
                         ).with_technique(technique)

    def entries(self, gap_only=False):
        """(label, workload name, params) triples for this scale."""
        triples = []
        for kernel in GAP_WORKLOADS:
            for graph in self.gap_graphs:
                triples.append((f"{kernel}_{graph}", kernel,
                                {"graph": graph}))
        if not gap_only:
            for name in self.hpcdb:
                triples.append((name, name, {}))
        return triples

    def spec(self, label, workload, params, technique, rob=None,
             scale_backend=False):
        """One JobSpec at this scale's budget/seed."""
        config = self.config(technique)
        if rob is not None:
            config = config.with_rob(rob, scale_backend)
        return JobSpec(workload=workload, params=params, config=config,
                       seed=self.seed, label=label)

    def workloads(self, gap_only=False):
        """(label, factory) pairs for this scale (direct-run API)."""
        pairs = []
        for label, name, params in self.entries(gap_only):
            if name in GAP_WORKLOADS:
                pairs.append((label, GAP_WORKLOADS[name](**params)))
            else:
                pairs.append((label, HPCDB_WORKLOADS[name]()))
        return pairs


def _gather(items):
    """Run ``[(join_key, JobSpec), ...]`` and map join_key -> Metrics."""
    metrics = run_specs([spec for _key, spec in items])
    return {key: m for (key, _spec), m in zip(items, metrics)}


class ExperimentResult:
    """Generic container: per-cell values plus a renderer."""

    def __init__(self, name, headers, rows, notes=""):
        self.name = name
        self.headers = headers
        self.rows = rows
        self.notes = notes

    def render(self):
        text = format_table(self.headers, self.rows, title=self.name)
        if self.notes:
            text += f"\n{self.notes}"
        return text


# ---------------------------------------------------------------------------
# Figure 2: OoO & VR vs ROB size, + full-ROB stall time
# ---------------------------------------------------------------------------
def fig2_rob_sweep(scale=None, rob_sizes=ROB_SIZES):
    scale = scale or ExperimentScale.from_env()
    entries = scale.entries()

    items = [(("base", label), scale.spec(label, name, params, TECH_OOO))
             for label, name, params in entries]
    for rob in rob_sizes:
        for tech in (TECH_OOO, TECH_VR):
            items.extend(
                ((rob, tech, label),
                 scale.spec(label, name, params, tech, rob=rob))
                for label, name, params in entries)
    metrics = _gather(items)

    rows = []
    for rob in rob_sizes:
        ooo_speedups, vr_speedups, stall = [], [], []
        for label, _name, _params in entries:
            base_ipc = metrics[("base", label)].ipc
            ooo = metrics[(rob, TECH_OOO, label)]
            vr = metrics[(rob, TECH_VR, label)]
            ooo_speedups.append(ooo.ipc / base_ipc)
            vr_speedups.append(vr.ipc / base_ipc)
            stall.append(ooo.rob_full_fraction)
        rows.append([rob, hmean(ooo_speedups), hmean(vr_speedups),
                     100.0 * sum(stall) / len(stall)])
    return ExperimentResult(
        "Figure 2: performance vs ROB size (normalized to OoO-350)",
        ["ROB", "OoO speedup", "VR speedup", "full-ROB stall %"], rows,
        notes="Paper: VR's gain shrinks as the ROB grows; stall % falls.")


# ---------------------------------------------------------------------------
# Figure 7: per-benchmark speedups of PRE / IMP / VR / DVR / Oracle
# ---------------------------------------------------------------------------
FIG7_TECHNIQUES = (TECH_PRE, TECH_IMP, TECH_VR, TECH_DVR, TECH_ORACLE)


def _technique_grid(scale, techniques):
    """Metrics for every (workload, OoO-baseline + techniques) point."""
    entries = scale.entries()
    items = []
    for label, name, params in entries:
        for tech in (TECH_OOO,) + tuple(techniques):
            items.append(((label, tech),
                          scale.spec(label, name, params, tech)))
    return entries, _gather(items)


def _speedup_table(scale, techniques):
    entries, metrics = _technique_grid(scale, techniques)
    rows = []
    per_tech = {tech: [] for tech in techniques}
    for label, _name, _params in entries:
        base = metrics[(label, TECH_OOO)]
        row = [label]
        for tech in techniques:
            speedup = metrics[(label, tech)].speedup_over(base)
            per_tech[tech].append(speedup)
            row.append(speedup)
        rows.append(row)
    rows.append(["H-mean"] + [hmean(per_tech[tech]) for tech in techniques])
    return rows


def fig7_performance(scale=None, techniques=FIG7_TECHNIQUES):
    scale = scale or ExperimentScale.from_env()
    rows = _speedup_table(scale, tuple(techniques))
    return ExperimentResult(
        "Figure 7: speedup over the baseline OoO core",
        ["benchmark"] + list(techniques), rows,
        notes="Paper: DVR 2.4x h-mean (up to 6.4x); VR ~1.2x; PRE ~1x.")


# ---------------------------------------------------------------------------
# Figure 8: DVR performance breakdown (VR / Offload / +Discovery / +Nested)
# ---------------------------------------------------------------------------
def fig8_breakdown(scale=None):
    scale = scale or ExperimentScale.from_env()
    rows = _speedup_table(scale, DVR_BREAKDOWN)
    return ExperimentResult(
        "Figure 8: DVR breakdown (VR -> +Offload -> +Discovery -> +Nested)",
        ["benchmark"] + list(DVR_BREAKDOWN), rows,
        notes="Paper: offload alone lifts VR 1.2x -> ~1.5x; full DVR is "
              "uniformly best.")


# ---------------------------------------------------------------------------
# Figure 9: memory-level parallelism (average MSHRs per cycle)
# ---------------------------------------------------------------------------
def fig9_mlp(scale=None):
    scale = scale or ExperimentScale.from_env()
    techniques = (TECH_OOO, TECH_VR, TECH_DVR)
    entries, metrics = _technique_grid(scale, techniques[1:])
    rows = []
    sums = {tech: [] for tech in techniques}
    for label, _name, _params in entries:
        row = [label]
        for tech in techniques:
            mlp = metrics[(label, tech)].mlp
            row.append(mlp)
            sums[tech].append(mlp)
        rows.append(row)
    rows.append(["Mean"] + [sum(sums[t]) / len(sums[t]) for t in techniques])
    return ExperimentResult(
        "Figure 9: MLP (MSHRs used per cycle, average)",
        ["benchmark", "OoO", "VR", "DVR"], rows,
        notes="Paper: OoO <4 on average; DVR >10.")


# ---------------------------------------------------------------------------
# Figure 10: DRAM accesses, split main thread vs runahead, VR vs DVR
# ---------------------------------------------------------------------------
def fig10_accuracy(scale=None):
    scale = scale or ExperimentScale.from_env()
    entries, metrics = _technique_grid(scale, (TECH_VR, TECH_DVR))
    rows = []
    for label, _name, _params in entries:
        base = metrics[(label, TECH_OOO)]
        base_total = max(1, sum(base.dram_accesses.values()))
        row = [label]
        for tech in (TECH_VR, TECH_DVR):
            main, runahead = metrics[(label, tech)].dram_split()
            row.extend([main / base_total, runahead / base_total])
        rows.append(row)
    return ExperimentResult(
        "Figure 10: DRAM accesses normalized to baseline OoO",
        ["benchmark", "VR main", "VR runahead", "DVR main", "DVR runahead"],
        rows,
        notes="Paper: VR over-fetches (>2x total in places); DVR stays "
              "near 1x thanks to Discovery Mode.")


# ---------------------------------------------------------------------------
# Figure 11: timeliness of DVR prefetches
# ---------------------------------------------------------------------------
def fig11_timeliness(scale=None):
    scale = scale or ExperimentScale.from_env()
    entries = scale.entries()
    metrics = _gather([(label, scale.spec(label, name, params, TECH_DVR))
                       for label, name, params in entries])
    rows = []
    for label, _name, _params in entries:
        fractions = metrics[label].timeliness_fractions(SRC_DVR)
        rows.append([label] + [100.0 * fractions[level] for level in LEVELS])
    return ExperimentResult(
        "Figure 11: where the main thread finds DVR-prefetched lines (%)",
        ["benchmark"] + [f"{level} %" for level in LEVELS], rows,
        notes="Paper: most prefetched lines are found in the L1-D; a "
              "consistent 10-20% arrive late (off-chip).")


# ---------------------------------------------------------------------------
# Figure 12: DVR vs ROB size (gain holds up, unlike VR)
# ---------------------------------------------------------------------------
def fig12_dvr_rob(scale=None, rob_sizes=ROB_SIZES, scale_backend=False):
    scale = scale or ExperimentScale.from_env()
    entries = scale.entries()

    items = [(("base", label), scale.spec(label, name, params, TECH_OOO))
             for label, name, params in entries]
    for rob in rob_sizes:
        for tech in (TECH_OOO, TECH_DVR):
            items.extend(
                ((rob, tech, label),
                 scale.spec(label, name, params, tech, rob=rob,
                            scale_backend=scale_backend))
                for label, name, params in entries)
    metrics = _gather(items)

    rows = []
    for rob in rob_sizes:
        ooo_speedups, dvr_speedups = [], []
        for label, _name, _params in entries:
            base_ipc = metrics[("base", label)].ipc
            ooo_speedups.append(metrics[(rob, TECH_OOO, label)].ipc / base_ipc)
            dvr_speedups.append(metrics[(rob, TECH_DVR, label)].ipc / base_ipc)
        rows.append([rob, hmean(ooo_speedups), hmean(dvr_speedups),
                     hmean(dvr_speedups) / max(1e-9, hmean(ooo_speedups))])
    return ExperimentResult(
        "Figure 12: DVR vs ROB size (normalized to OoO-350)",
        ["ROB", "OoO speedup", "DVR speedup", "DVR/OoO"], rows,
        notes="Paper: DVR's relative gain *grows* with ROB size "
              "(1.9x at 128 to 2.5x at 512), unlike VR in Fig 2.")


# ---------------------------------------------------------------------------
# Table 1 and Table 2
# ---------------------------------------------------------------------------
def table1_config():
    from ..config import table1_rows
    rows = [[k, v] for k, v in table1_rows()]
    return ExperimentResult("Table 1: baseline OoO configuration",
                            ["parameter", "value"], rows)


def table2_graphs(scale=None):
    """Graph inputs + measured LLC MPKI aggregated over the GAP kernels."""
    scale = scale or ExperimentScale.from_env()
    items = [((graph, kernel),
              scale.spec(f"{kernel}_{graph}", kernel, {"graph": graph},
                         TECH_OOO))
             for graph in GRAPH_INPUTS
             for kernel in GAP_WORKLOADS]
    metrics = _gather(items)

    rows = []
    for name, spec in GRAPH_INPUTS.items():
        offsets, neighbors = build_csr(spec, seed=scale.seed)
        total_dram = 0
        total_instr = 0
        for kernel in GAP_WORKLOADS:
            point = metrics[(name, kernel)]
            total_dram += sum(point.dram_accesses.values())
            total_instr += point.committed
        mpki = 1000.0 * total_dram / max(1, total_instr)
        rows.append([name, (len(offsets) - 1) / 1e6, len(neighbors) / 1e6,
                     mpki])
    return ExperimentResult(
        "Table 2: graph inputs (scaled) + measured LLC MPKI over GAP",
        ["input", "nodes (M)", "edges (M)", "LLC MPKI"], rows,
        notes="Paper (full-scale): KR 134.2M/2111.6M/19, LJN 4.8/69/21, "
              "ORK 3.1/1930/18, TW 61.6/1468/61, UR 134.2/2147.4/32.")


ALL_EXPERIMENTS = {
    "table1": table1_config,
    "table2": table2_graphs,
    "fig2": fig2_rob_sweep,
    "fig7": fig7_performance,
    "fig8": fig8_breakdown,
    "fig9": fig9_mlp,
    "fig10": fig10_accuracy,
    "fig11": fig11_timeliness,
    "fig12": fig12_dvr_rob,
}
