"""Experiment definitions: one function per paper table/figure.

Each ``fig*``/``table*`` function runs the simulations it needs and
returns a result object with the raw numbers plus a ``render()`` giving
the same rows/series the paper reports.  The benchmark harness
(``benchmarks/``) calls these; so can users.

Workload scale is controlled by ``ExperimentScale``: the default "small"
scale runs the GAP kernels on two inputs and trims the instruction budget
so a full figure regenerates in minutes on a laptop; "full" runs every
benchmark-input combination of the paper.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..config import (DVR_BREAKDOWN, SimConfig, TECH_DVR, TECH_IMP, TECH_OOO,
                      TECH_ORACLE, TECH_PRE, TECH_VR)
from ..memsys.cache import SRC_DVR
from ..memsys.hierarchy import LEVELS
from ..workloads import GAP_WORKLOADS, GRAPH_INPUTS, HPCDB_WORKLOADS
from ..workloads.graphs import build_csr
from .report import format_table, hmean
from .runner import run_workload

ROB_SIZES = (128, 192, 224, 350, 512)


@dataclass
class ExperimentScale:
    """How big an experiment run should be."""

    gap_graphs: tuple = ("KR", "UR")
    hpcdb: tuple = ("camel", "hj2", "hj8", "kangaroo", "nas-cg", "nas-is",
                    "randomaccess", "graph500")
    max_instructions: int = 20_000
    seed: int = 12345

    @classmethod
    def from_env(cls):
        """REPRO_SCALE=full for the paper's full matrix, else small."""
        if os.environ.get("REPRO_SCALE", "small") == "full":
            return cls.full()
        return cls()

    @classmethod
    def full(cls):
        return cls(gap_graphs=tuple(GRAPH_INPUTS), max_instructions=50_000)

    def config(self, technique=TECH_OOO):
        return SimConfig(max_instructions=self.max_instructions
                         ).with_technique(technique)

    def workloads(self, gap_only=False):
        """(label, factory) pairs for this scale."""
        pairs = []
        for kernel, cls in GAP_WORKLOADS.items():
            for graph in self.gap_graphs:
                pairs.append((f"{kernel}_{graph}", cls(graph=graph)))
        if not gap_only:
            for name in self.hpcdb:
                pairs.append((name, HPCDB_WORKLOADS[name]()))
        return pairs


class ExperimentResult:
    """Generic container: per-cell values plus a renderer."""

    def __init__(self, name, headers, rows, notes=""):
        self.name = name
        self.headers = headers
        self.rows = rows
        self.notes = notes

    def render(self):
        text = format_table(self.headers, self.rows, title=self.name)
        if self.notes:
            text += f"\n{self.notes}"
        return text


# ---------------------------------------------------------------------------
# Figure 2: OoO & VR vs ROB size, + full-ROB stall time
# ---------------------------------------------------------------------------
def fig2_rob_sweep(scale=None, rob_sizes=ROB_SIZES):
    scale = scale or ExperimentScale.from_env()
    workloads = scale.workloads()
    base_cfg = scale.config(TECH_OOO)

    baseline_ipc = {}
    for label, factory in workloads:
        metrics = run_workload(factory, base_cfg, seed=scale.seed)
        baseline_ipc[label] = metrics.ipc

    rows = []
    for rob in rob_sizes:
        ooo_speedups, vr_speedups, stall = [], [], []
        for label, factory in workloads:
            cfg = scale.config(TECH_OOO).with_rob(rob)
            ooo = run_workload(factory, cfg, seed=scale.seed)
            cfg = scale.config(TECH_VR).with_rob(rob)
            vr = run_workload(factory, cfg, seed=scale.seed)
            ooo_speedups.append(ooo.ipc / baseline_ipc[label])
            vr_speedups.append(vr.ipc / baseline_ipc[label])
            stall.append(ooo.rob_full_fraction)
        rows.append([rob, hmean(ooo_speedups), hmean(vr_speedups),
                     100.0 * sum(stall) / len(stall)])
    return ExperimentResult(
        "Figure 2: performance vs ROB size (normalized to OoO-350)",
        ["ROB", "OoO speedup", "VR speedup", "full-ROB stall %"], rows,
        notes="Paper: VR's gain shrinks as the ROB grows; stall % falls.")


# ---------------------------------------------------------------------------
# Figure 7: per-benchmark speedups of PRE / IMP / VR / DVR / Oracle
# ---------------------------------------------------------------------------
FIG7_TECHNIQUES = (TECH_PRE, TECH_IMP, TECH_VR, TECH_DVR, TECH_ORACLE)


def fig7_performance(scale=None, techniques=FIG7_TECHNIQUES):
    scale = scale or ExperimentScale.from_env()
    rows = []
    per_tech = {tech: [] for tech in techniques}
    for label, factory in scale.workloads():
        base = run_workload(factory, scale.config(TECH_OOO), seed=scale.seed)
        row = [label]
        for tech in techniques:
            metrics = run_workload(factory, scale.config(tech),
                                   seed=scale.seed)
            speedup = metrics.speedup_over(base)
            per_tech[tech].append(speedup)
            row.append(speedup)
        rows.append(row)
    rows.append(["H-mean"] + [hmean(per_tech[tech]) for tech in techniques])
    return ExperimentResult(
        "Figure 7: speedup over the baseline OoO core",
        ["benchmark"] + list(techniques), rows,
        notes="Paper: DVR 2.4x h-mean (up to 6.4x); VR ~1.2x; PRE ~1x.")


# ---------------------------------------------------------------------------
# Figure 8: DVR performance breakdown (VR / Offload / +Discovery / +Nested)
# ---------------------------------------------------------------------------
def fig8_breakdown(scale=None):
    scale = scale or ExperimentScale.from_env()
    rows = []
    per_tech = {tech: [] for tech in DVR_BREAKDOWN}
    for label, factory in scale.workloads():
        base = run_workload(factory, scale.config(TECH_OOO), seed=scale.seed)
        row = [label]
        for tech in DVR_BREAKDOWN:
            metrics = run_workload(factory, scale.config(tech),
                                   seed=scale.seed)
            speedup = metrics.speedup_over(base)
            per_tech[tech].append(speedup)
            row.append(speedup)
        rows.append(row)
    rows.append(["H-mean"] + [hmean(per_tech[t]) for t in DVR_BREAKDOWN])
    return ExperimentResult(
        "Figure 8: DVR breakdown (VR -> +Offload -> +Discovery -> +Nested)",
        ["benchmark"] + list(DVR_BREAKDOWN), rows,
        notes="Paper: offload alone lifts VR 1.2x -> ~1.5x; full DVR is "
              "uniformly best.")


# ---------------------------------------------------------------------------
# Figure 9: memory-level parallelism (average MSHRs per cycle)
# ---------------------------------------------------------------------------
def fig9_mlp(scale=None):
    scale = scale or ExperimentScale.from_env()
    techniques = (TECH_OOO, TECH_VR, TECH_DVR)
    rows = []
    sums = {tech: [] for tech in techniques}
    for label, factory in scale.workloads():
        row = [label]
        for tech in techniques:
            metrics = run_workload(factory, scale.config(tech),
                                   seed=scale.seed)
            row.append(metrics.mlp)
            sums[tech].append(metrics.mlp)
        rows.append(row)
    rows.append(["Mean"] + [sum(sums[t]) / len(sums[t]) for t in techniques])
    return ExperimentResult(
        "Figure 9: MLP (MSHRs used per cycle, average)",
        ["benchmark", "OoO", "VR", "DVR"], rows,
        notes="Paper: OoO <4 on average; DVR >10.")


# ---------------------------------------------------------------------------
# Figure 10: DRAM accesses, split main thread vs runahead, VR vs DVR
# ---------------------------------------------------------------------------
def fig10_accuracy(scale=None):
    scale = scale or ExperimentScale.from_env()
    rows = []
    for label, factory in scale.workloads():
        base = run_workload(factory, scale.config(TECH_OOO), seed=scale.seed)
        base_total = max(1, sum(base.dram_accesses.values()))
        row = [label]
        for tech in (TECH_VR, TECH_DVR):
            metrics = run_workload(factory, scale.config(tech),
                                   seed=scale.seed)
            main, runahead = metrics.dram_split()
            row.extend([main / base_total, runahead / base_total])
        rows.append(row)
    return ExperimentResult(
        "Figure 10: DRAM accesses normalized to baseline OoO",
        ["benchmark", "VR main", "VR runahead", "DVR main", "DVR runahead"],
        rows,
        notes="Paper: VR over-fetches (>2x total in places); DVR stays "
              "near 1x thanks to Discovery Mode.")


# ---------------------------------------------------------------------------
# Figure 11: timeliness of DVR prefetches
# ---------------------------------------------------------------------------
def fig11_timeliness(scale=None):
    scale = scale or ExperimentScale.from_env()
    rows = []
    for label, factory in scale.workloads():
        metrics = run_workload(factory, scale.config(TECH_DVR),
                               seed=scale.seed)
        fractions = metrics.timeliness_fractions(SRC_DVR)
        rows.append([label] + [100.0 * fractions[level] for level in LEVELS])
    return ExperimentResult(
        "Figure 11: where the main thread finds DVR-prefetched lines (%)",
        ["benchmark"] + [f"{level} %" for level in LEVELS], rows,
        notes="Paper: most prefetched lines are found in the L1-D; a "
              "consistent 10-20% arrive late (off-chip).")


# ---------------------------------------------------------------------------
# Figure 12: DVR vs ROB size (gain holds up, unlike VR)
# ---------------------------------------------------------------------------
def fig12_dvr_rob(scale=None, rob_sizes=ROB_SIZES, scale_backend=False):
    scale = scale or ExperimentScale.from_env()
    workloads = scale.workloads()
    baseline_ipc = {}
    for label, factory in workloads:
        metrics = run_workload(factory, scale.config(TECH_OOO),
                               seed=scale.seed)
        baseline_ipc[label] = metrics.ipc
    rows = []
    for rob in rob_sizes:
        ooo_speedups, dvr_speedups = [], []
        for label, factory in workloads:
            ooo = run_workload(
                factory,
                scale.config(TECH_OOO).with_rob(rob, scale_backend),
                seed=scale.seed)
            dvr = run_workload(
                factory,
                scale.config(TECH_DVR).with_rob(rob, scale_backend),
                seed=scale.seed)
            ooo_speedups.append(ooo.ipc / baseline_ipc[label])
            dvr_speedups.append(dvr.ipc / baseline_ipc[label])
        rows.append([rob, hmean(ooo_speedups), hmean(dvr_speedups),
                     hmean(dvr_speedups) / max(1e-9, hmean(ooo_speedups))])
    return ExperimentResult(
        "Figure 12: DVR vs ROB size (normalized to OoO-350)",
        ["ROB", "OoO speedup", "DVR speedup", "DVR/OoO"], rows,
        notes="Paper: DVR's relative gain *grows* with ROB size "
              "(1.9x at 128 to 2.5x at 512), unlike VR in Fig 2.")


# ---------------------------------------------------------------------------
# Table 1 and Table 2
# ---------------------------------------------------------------------------
def table1_config():
    from ..config import table1_rows
    rows = [[k, v] for k, v in table1_rows()]
    return ExperimentResult("Table 1: baseline OoO configuration",
                            ["parameter", "value"], rows)


def table2_graphs(scale=None):
    """Graph inputs + measured LLC MPKI aggregated over the GAP kernels."""
    scale = scale or ExperimentScale.from_env()
    rows = []
    for name, spec in GRAPH_INPUTS.items():
        offsets, neighbors = build_csr(spec, seed=scale.seed)
        total_dram = 0
        total_instr = 0
        for kernel, cls in GAP_WORKLOADS.items():
            metrics = run_workload(cls(graph=name), scale.config(TECH_OOO),
                                   seed=scale.seed)
            total_dram += sum(metrics.dram_accesses.values())
            total_instr += metrics.committed
        mpki = 1000.0 * total_dram / max(1, total_instr)
        rows.append([name, (len(offsets) - 1) / 1e6, len(neighbors) / 1e6,
                     mpki])
    return ExperimentResult(
        "Table 2: graph inputs (scaled) + measured LLC MPKI over GAP",
        ["input", "nodes (M)", "edges (M)", "LLC MPKI"], rows,
        notes="Paper (full-scale): KR 134.2M/2111.6M/19, LJN 4.8/69/21, "
              "ORK 3.1/1930/18, TW 61.6/1468/61, UR 134.2/2147.4/32.")


ALL_EXPERIMENTS = {
    "table1": table1_config,
    "table2": table2_graphs,
    "fig2": fig2_rob_sweep,
    "fig7": fig7_performance,
    "fig8": fig8_breakdown,
    "fig9": fig9_mlp,
    "fig10": fig10_accuracy,
    "fig11": fig11_timeliness,
    "fig12": fig12_dvr_rob,
}
