"""Render sweep summaries straight from run-ledger records.

``repro report --from-ledger PATH`` answers "how far along is my sweep,
and what do the finished points look like?" without waiting for the
sweep to complete: every executed or cache-served job already has a
ledger record carrying its headline metrics, so whatever subset exists
can be tabulated mid-flight -- including while a cluster coordinator is
still dispatching on another host, as long as the ledger file is
visible.

The summary is computed from the *latest* record per spec key (a job
that was retried or re-served from cache appears once), with a
speedup-vs-OoO column whenever the matching baseline point has also
finished.

Spec-DAG runs (``repro env run``) additionally leave a ``dag`` meta row
listing the sim keys they dispatch; the report joins those against the
job records, so each DAG shows up with its spec name, file hash,
concretizer version and completion count ("which sweep do these 180
jobs belong to?").
"""

from __future__ import annotations

import os

from ..jobs.ledger import RunLedger
from .report import format_table, hmean

_TECH_BASELINE = "ooo"


def summarize_ledger(path, cache=None):
    """Structured summary of a (possibly in-flight) sweep ledger.

    Returns a dict with ``points`` (one entry per completed spec key,
    sorted by label then technique), ``failed`` (keys whose latest
    record is a failure), and ``totals``.  ``cache`` (a ``ResultCache``)
    adds a count of how many points are present in the current cache
    generation.
    """
    records = RunLedger.read(path)
    latest = {}
    for record in records:
        key = record.get("key")
        if key:
            latest[key] = record

    # Spec-DAG provenance: latest "dag" meta row per dag_hash, joined
    # against the job records it claims via sim_keys.
    dag_rows = {}
    for record in records:
        if record.get("meta") == "dag":
            dag_rows[record.get("dag_hash") or record.get("spec")] = record
    dags = []
    for record in dag_rows.values():
        sim_keys = record.get("sim_keys") or []
        completed = sum(1 for key in sim_keys
                        if key in latest and "ipc" in latest[key])
        dags.append({
            "spec": record.get("spec", "?"),
            "source": record.get("spec_source", ""),
            "spec_sha256": record.get("spec_sha256", ""),
            "dag_hash": record.get("dag_hash", ""),
            "concretizer_version": record.get("concretizer_version"),
            "nodes": record.get("nodes"),
            "sim_nodes": record.get("sim_nodes",
                                    len(sim_keys) or None),
            "analysis_nodes": record.get("analysis_nodes"),
            "completed": completed,
        })
    dags.sort(key=lambda d: (d["spec"], d["dag_hash"]))

    points = []
    failed = []
    for key, record in latest.items():
        if "ipc" in record:
            points.append(record)
        else:
            failed.append(record)
    points.sort(key=lambda r: (str(r.get("label", "")),
                               str(r.get("technique", "")),
                               str(r.get("key", ""))))
    failed.sort(key=lambda r: str(r.get("key", "")))

    # Baseline IPC per label, for the speedup column.
    baseline_ipc = {record["label"]: record["ipc"] for record in points
                    if record.get("technique") == _TECH_BASELINE}
    for record in points:
        base = baseline_ipc.get(record.get("label"))
        if base:
            record["_speedup"] = record["ipc"] / base

    workers = sorted({str(record.get("worker")) for record in records
                      if record.get("worker") is not None})
    cached_now = None
    if cache is not None:
        cached_now = sum(
            1 for record in points
            if os.path.exists(os.path.join(cache.results_dir,
                                           f"{record['key']}.json")))
    totals = {
        "records": len(records),
        "points": len(points),
        "failed": len(failed),
        "hits": sum(1 for r in records if r.get("cache") == "hit"),
        "executed": sum(1 for r in records
                        if r.get("cache") in ("miss", "off")),
        "retries": sum(r.get("retries") or 0 for r in records),
        "wall_s": sum(r.get("wall_s") or 0.0 for r in records),
        "workers": workers,
        "cached_now": cached_now,
    }
    return {"path": path, "points": points, "failed": failed,
            "totals": totals, "dags": dags}


def render_ledger_report(summary):
    """ASCII tables for :func:`summarize_ledger`'s output."""
    points = summary["points"]
    totals = summary["totals"]
    rows = []
    speedups = []
    for record in points:
        speedup = record.get("_speedup")
        if speedup is not None and record.get("technique") != _TECH_BASELINE:
            speedups.append(speedup)
        rows.append([
            record.get("label", "?"),
            record.get("technique", "?"),
            record.get("ipc", 0.0),
            f"{speedup:.2f}" if speedup is not None else "-",
            record.get("cycles", 0),
            record.get("mpki", 0.0),
            record.get("cache", "?"),
            str(record.get("worker", "?")),
            record.get("retries") or 0,
        ])
    lines = [format_table(
        ["benchmark", "technique", "IPC", "vs ooo", "cycles", "MPKI",
         "cache", "worker", "retries"],
        rows, title=f"Sweep progress from {summary['path']}")]
    if speedups:
        lines.append(f"h-mean speedup over {_TECH_BASELINE} "
                     f"(completed non-baseline points): "
                     f"{hmean(speedups):.2f}x")
    if summary["failed"]:
        lines.append(f"{len(summary['failed'])} point(s) currently failed: "
                     + ", ".join(
                         f"{r.get('label', '?')}/{r.get('technique', '?')}"
                         for r in summary["failed"]))
    cached_now = totals["cached_now"]
    cached_text = ("" if cached_now is None
                   else f", {cached_now} in current cache generation")
    lines.append(
        f"{totals['points']} completed point(s) from {totals['records']} "
        f"record(s): {totals['executed']} executed, {totals['hits']} cache "
        f"hit(s), {totals['retries']} retry(ies), "
        f"{totals['wall_s']:.2f}s total wall{cached_text}")
    if totals["workers"]:
        lines.append("workers: " + ", ".join(totals["workers"]))
    for dag in summary.get("dags", []):
        sims = dag["sim_nodes"]
        done = dag["completed"]
        progress = (f"{done}/{sims} sim(s) completed" if sims
                    else f"{done} sim(s) completed")
        lines.append(
            f"dag {dag['spec']} (spec {dag['spec_sha256'][:12] or '-'}, "
            f"concretizer v{dag['concretizer_version']}, hash "
            f"{dag['dag_hash'][:12] or '-'}): {progress}, "
            f"{dag['analysis_nodes'] or 0} analysis node(s)")
    return "\n".join(lines)
