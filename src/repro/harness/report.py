"""ASCII table/series rendering for experiment results."""

from __future__ import annotations


def hmean(values):
    """Harmonic mean (the paper's aggregate for speedups)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return len(values) / sum(1.0 / v for v in values)


def gmean(values):
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


def format_table(headers, rows, title=None):
    """Render a list-of-rows table with right-aligned numeric columns."""
    def fmt(cell):
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    str_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(w) if i == 0 else h.rjust(w)
                       for i, (h, w) in enumerate(zip(headers, widths)))
    lines.append(header)
    lines.append("-" * len(header))
    for row in str_rows:
        lines.append("  ".join(
            cell.ljust(w) if i == 0 else cell.rjust(w)
            for i, (cell, w) in enumerate(zip(row, widths))))
    return "\n".join(lines)


def format_kv(title, pairs):
    lines = [title]
    width = max(len(str(k)) for k, _ in pairs) if pairs else 0
    for key, value in pairs:
        lines.append(f"  {str(key).ljust(width)}  {value}")
    return "\n".join(lines)
