"""Experiment harness: runner, metrics, figure/table definitions."""

from .experiments import (ALL_EXPERIMENTS, ExperimentResult, ExperimentScale,
                          fig2_rob_sweep, fig7_performance, fig8_breakdown,
                          fig9_mlp, fig10_accuracy, fig11_timeliness,
                          fig12_dvr_rob, table1_config, table2_graphs)
from .metrics import Metrics
from .report import format_kv, format_table, gmean, hmean
from .runner import (build_engine, run_built, run_spec, run_techniques,
                     run_workload)

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "ExperimentScale",
    "Metrics",
    "build_engine",
    "fig2_rob_sweep",
    "fig7_performance",
    "fig8_breakdown",
    "fig9_mlp",
    "fig10_accuracy",
    "fig11_timeliness",
    "fig12_dvr_rob",
    "format_kv",
    "format_table",
    "gmean",
    "hmean",
    "run_built",
    "run_spec",
    "run_techniques",
    "run_workload",
    "table1_config",
    "table2_graphs",
]
