"""Run one (workload, technique, config) simulation and collect Metrics."""

from __future__ import annotations

from ..config import (SimConfig, TECH_DVR, TECH_DVR_DISCOVERY,
                      TECH_DVR_OFFLOAD, TECH_IMP, TECH_OOO, TECH_ORACLE,
                      TECH_PRE, TECH_VR)
from ..core.dvr import DvrEngine
from ..memsys.hierarchy import MemoryHierarchy
from ..runahead import OracleEngine, PreEngine, VrEngine
from ..uarch.core import NullEngine, OoOCore
from .metrics import Metrics

_DVR_TECHNIQUES = (TECH_DVR, TECH_DVR_OFFLOAD, TECH_DVR_DISCOVERY)


def build_engine(config, program, guest_memory, hierarchy):
    technique = config.technique
    if technique in (TECH_OOO, TECH_IMP):
        return NullEngine()
    if technique == TECH_PRE:
        return PreEngine(config, program, guest_memory, hierarchy)
    if technique == TECH_VR:
        return VrEngine(config, program, guest_memory, hierarchy)
    if technique in _DVR_TECHNIQUES:
        return DvrEngine(config, program, guest_memory, hierarchy)
    if technique == TECH_ORACLE:
        return OracleEngine()
    raise ValueError(f"unknown technique {technique!r}")


def build_sim(built, config):
    """Assemble the full simulator for a built workload: hierarchy, engine
    and core, with the runtime sanitizer attached when
    ``config.sanitize`` is set.  Returns the :class:`OoOCore` (engine and
    hierarchy hang off it)."""
    hierarchy = MemoryHierarchy(config.memsys, config.stride_pf, config.imp,
                                built.memory)
    engine = build_engine(config, built.program, built.memory, hierarchy)
    sanitizer = None
    if config.sanitize:
        from ..analysis.sanitize import Sanitizer
        sanitizer = Sanitizer(config)
        hierarchy.sanitizer = sanitizer
        subthread = getattr(engine, "subthread", None)
        if subthread is not None:
            subthread.sanitizer = sanitizer
    return OoOCore(built.program, built.memory, config, hierarchy,
                   engine=engine,
                   perfect_memory=config.technique == TECH_ORACLE,
                   sanitizer=sanitizer)


def collect_metrics(built, config, core):
    """Package a finished core (``run()`` or ``finish()`` done) as Metrics."""
    hierarchy = core.hierarchy
    core_stats = core.stats
    return Metrics(
        workload=built.name,
        technique=config.technique,
        core_stats=core_stats,
        mem_stats=hierarchy.stats,
        mlp=hierarchy.mlp(core_stats.cycles),
        engine_stats=core.engine.stats(),
        config=config,
    )


def run_built(built, config):
    """Simulate an already-built workload instance."""
    core = build_sim(built, config)
    core.run()
    return collect_metrics(built, config, core)


def run_workload(workload, config=None, technique=None, seed=12345):
    """Build and simulate ``workload``; the main public entry point.

    ``workload`` is a :class:`~repro.workloads.base.Workload` factory (or
    an already-built instance).  ``technique`` overrides the config's.
    """
    config = config or SimConfig()
    if technique is not None:
        config = config.with_technique(technique)
    if hasattr(workload, "build"):
        built = workload.build(
            memory_bytes=config.memsys.guest_memory_bytes, seed=seed)
    else:
        built = workload
    return run_built(built, config)


def build_spec_workload(spec):
    """Register inputs + build the workload for one spec (no simulation).

    The construction half of :func:`run_spec`, exposed separately so the
    batch-lane executor can build a spec's workload once and clone the
    result across lanes that share it.
    """
    from ..workloads import make_workload
    graph_data = spec.inputs.get("graph")
    if graph_data is not None:
        from ..workloads.graphs import GRAPH_INPUTS, GraphSpec
        if spec.params.get("graph") not in GRAPH_INPUTS:
            GRAPH_INPUTS[graph_data["name"]] = GraphSpec(**graph_data)
    workload = make_workload(spec.workload, **spec.params)
    return workload.build(
        memory_bytes=spec.config.memsys.guest_memory_bytes, seed=spec.seed)


def run_spec(spec):
    """Run one :class:`~repro.jobs.spec.JobSpec`; works in any process.

    This is the executor's (and worker processes') entry point: it
    re-registers named graph inputs from the spec's fingerprint when the
    worker's registry doesn't have them (e.g. inputs registered at runtime
    by tests or notebooks), rebuilds the workload by name, and simulates.
    """
    return run_built(build_spec_workload(spec), spec.config)


def run_techniques(workload, techniques, config=None, seed=12345):
    """Run the same workload under several techniques.

    Returns {technique: Metrics}.  The workload is re-built per run so
    techniques never share guest state.
    """
    config = config or SimConfig()
    return {tech: run_workload(workload, config, technique=tech, seed=seed)
            for tech in techniques}
