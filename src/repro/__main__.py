"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro list
    python -m repro table1
    python -m repro fig7 --instructions 20000 --graphs KR UR
    python -m repro fig7 --jobs 8          # process-pool parallel sweep
    python -m repro all --scale full --jobs 8
    python -m repro run bfs --graph KR --technique dvr
    python -m repro run bfs --graph KR --sanitize   # invariant assertions
    python -m repro lint                   # determinism/correctness linter
    python -m repro lint --json lint.json --fix
    python -m repro bench --scale smoke --label pr2
    python -m repro bench --baseline benchmarks/BENCH_pr2.json --threshold 25
    python -m repro cache stats
    python -m repro cache clear
    python -m repro cache prune --keep-current
    python -m repro cache prune --max-bytes 500000000
    python -m repro sweep fig7 --backend cluster --workers 4
    python -m repro sweep fig7 --resume --keep-going
    python -m repro cluster worker --connect 10.0.0.5:7077 --secret S
    python -m repro cluster status --connect 10.0.0.5:7077
    python -m repro serve --bind 0.0.0.0:7077 --workers 4 \
        --tls-cert serve.crt --tls-key serve.key --store /mnt/repro-store
    python -m repro submit fig7 --connect 10.0.0.5:7077 --tls-ca serve.crt
    python -m repro jobs --connect 10.0.0.5:7077 --tls-ca serve.crt
    python -m repro chaos --seed 7         # fault-injection matrix
    python -m repro report --from-ledger ~/.cache/repro/runs.jsonl
    python -m repro env show --spec specs/fig7.toml
    python -m repro env concretize --spec specs/mere_rob.toml
    python -m repro env run --spec specs/fig7.toml --dry-run
    python -m repro env run --spec specs/fig7.toml --jobs 8 --out out.jsonl

Experiment commands execute through the ``repro.jobs`` engine: results
are cached on disk (``--cache-dir``, default ``~/.cache/repro``) keyed by
simulation content + code version, every job is appended to the
``runs.jsonl`` ledger there, and ``--jobs N`` fans simulations out over N
worker processes.  ``--no-cache`` forces fresh simulation.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from . import jobs
from .config import ALL_TECHNIQUES, DVR_BREAKDOWN, SimConfig
from .harness.experiments import ALL_EXPERIMENTS, ExperimentScale
from .harness.runner import run_workload
from .workloads import ALL_WORKLOADS, GAP_WORKLOADS, make_workload


def _scale_from_args(args):
    if args.scale == "full":
        scale = ExperimentScale.full()
    else:
        scale = ExperimentScale()
    if args.graphs:
        scale.gap_graphs = tuple(args.graphs)
    if args.instructions:
        scale.max_instructions = args.instructions
    if args.no_fast_forward:
        scale.fast_forward = False
    if args.sanitize:
        scale.sanitize = True
    return scale


def cmd_list(_args):
    print("experiments:", ", ".join(sorted(ALL_EXPERIMENTS)))
    print("workloads:  ", ", ".join(sorted(ALL_WORKLOADS)))
    print("techniques: ", ", ".join(ALL_TECHNIQUES + DVR_BREAKDOWN[1:3]))
    return 0


def _maybe_save(result, args):
    if not args.out:
        return
    payload = {"name": result.name, "headers": result.headers,
               "rows": result.rows, "notes": result.notes}
    with open(args.out, "a") as handle:
        handle.write(json.dumps(payload) + "\n")
    print(f"[saved {result.name!r} -> {args.out}]")


def cmd_experiment(args):
    experiment = ALL_EXPERIMENTS[args.command]
    if args.command == "table1":
        result = experiment()
    else:
        result = experiment(_scale_from_args(args))
    print(result.render())
    _maybe_save(result, args)
    return 0


def cmd_all(args):
    scale = _scale_from_args(args)
    for name in ("table1", "table2", "fig2", "fig7", "fig8", "fig9",
                 "fig10", "fig11", "fig12"):
        experiment = ALL_EXPERIMENTS[name]
        result = experiment() if name == "table1" else experiment(scale)
        print(result.render())
        print()
        _maybe_save(result, args)
    return 0


def _print_tier_stats(stats, label):
    """One cache tier's generations, as `cache stats` has always shown."""
    root = stats.get("cache_dir") or stats.get("store_dir")
    print(f"{label:13s} {root}")
    print(f"current salt  {stats['current_salt']}")
    if not stats["generations"]:
        print("entries       0")
    for salt, info in stats["generations"].items():
        marker = " (current)" if salt == stats["current_salt"] else ""
        print(f"  {salt}{marker}: {info['entries']} entries, "
              f"{info['bytes']:,} bytes")


def cmd_cache(args):
    from .serve.store import CacheStack, SharedStore
    action = args.workload or "stats"
    context = jobs.get_context()
    cache = context.cache
    if isinstance(cache, jobs.NullCache):
        cache = jobs.ResultCache(context.cache_dir)
    if action == "stats":
        if isinstance(cache, CacheStack):
            for layer in cache.layers:
                label = ("shared store" if isinstance(layer, SharedStore)
                         else "cache dir")
                _print_tier_stats(layer.stats(), label)
        else:
            _print_tier_stats(cache.stats(), "cache dir")
        ledger = jobs.RunLedger.read(context.ledger_path)
        print(f"ledger        {len(ledger)} run(s) recorded")
        return 0
    # clear/prune operate on the machine-local tier; the shared store is
    # fleet-wide state and gets its own lifecycle (serve daemon GC).
    if isinstance(cache, CacheStack):
        cache = next((layer for layer in cache.layers
                      if isinstance(layer, jobs.ResultCache)), None) \
            or jobs.ResultCache(context.cache_dir)
    if action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s)")
        return 0
    if action == "prune":
        if not args.keep_current and args.max_bytes is None:
            print("cache prune needs a mode: --keep-current drops stale "
                  "salt generations, --max-bytes N evicts oldest current-"
                  "generation entries over the byte budget",
                  file=sys.stderr)
            return 2
        if args.keep_current:
            removed = cache.prune()
            print(f"pruned {removed} stale cached result(s); "
                  f"kept generation {cache.salt}")
        if args.max_bytes is not None:
            evicted = cache.prune_to_bytes(args.max_bytes)
            print(f"evicted {evicted} oldest result(s) to fit generation "
                  f"{cache.salt} in {args.max_bytes:,} bytes")
        return 0
    print(f"unknown cache action {action!r} (expected: stats, clear, prune)",
          file=sys.stderr)
    return 2


def cmd_bench(args):
    from .bench import compare_reports, load_report, render_report, \
        run_bench, write_report
    scale = args.scale if args.scale in ("smoke", "small", "full") else "smoke"
    report = run_bench(scale=scale,
                       repeats=args.repeats,
                       fast_forward=not args.no_fast_forward,
                       profile=args.profile,
                       progress=lambda line: print(line, file=sys.stderr),
                       lanes=args.lanes or 8)
    print(render_report(report))
    path = write_report(report, args.label, bench_dir=args.bench_dir)
    print(f"[saved -> {path}]")
    if args.baseline:
        baseline = load_report(args.baseline)
        ok, lines = compare_reports(report, baseline,
                                    threshold_pct=args.threshold)
        print("\n".join(lines))
        if not ok:
            return 1
    return 0


def cmd_lint(args):
    from .analysis import run_lint
    from .analysis.fixes import apply_fixes
    from .analysis.rules import ALL_RULE_NAMES
    rules = None
    if args.rules:
        rules = {name.strip() for name in args.rules.split(",")
                 if name.strip()}
        unknown = rules.difference(ALL_RULE_NAMES)
        if unknown:
            print(f"unknown rule(s): {', '.join(sorted(unknown))} "
                  f"(known: {', '.join(ALL_RULE_NAMES)})", file=sys.stderr)
            return 2
    paths = [args.workload] if args.workload else None
    report = run_lint(paths=paths, rules=rules)
    if args.fix:
        fixed = apply_fixes(report)
        for path, count in sorted(fixed.items()):
            print(f"[fixed {count} finding(s) in {path}]")
        if fixed:
            report = run_lint(paths=paths, rules=rules)
    print(report.render())
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(report.to_json())
        print(f"[saved -> {args.json}]")
    return 0 if report.ok else 1


def cmd_sweep(args):
    """Run experiment sweeps through a chosen executor backend."""
    name = args.workload
    if not name:
        print("sweep needs an experiment name, e.g. `repro sweep fig7 "
              "--backend cluster --workers 2` (or `all`)", file=sys.stderr)
        return 2
    names = ["table1", "table2", "fig2", "fig7", "fig8", "fig9",
             "fig10", "fig11", "fig12"] if name == "all" else [name]
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)} "
              f"(known: {', '.join(sorted(ALL_EXPERIMENTS))})",
              file=sys.stderr)
        return 2
    scale = _scale_from_args(args)
    broken = []
    for experiment_name in names:
        experiment = ALL_EXPERIMENTS[experiment_name]
        try:
            result = (experiment() if experiment_name == "table1"
                      else experiment(scale))
        except Exception as error:
            # --keep-going: an experiment whose jobs exhausted their
            # retry budget (or whose join choked on the resulting holes)
            # is reported, and the remaining experiments still run.
            if not args.keep_going:
                raise
            broken.append(experiment_name)
            print(f"[sweep] {experiment_name} failed: {error}",
                  file=sys.stderr)
            continue
        print(result.render())
        if len(names) > 1:
            print()
        _maybe_save(result, args)
    failures = jobs.get_context().failure_report
    if failures:
        print(failures.render(), file=sys.stderr)
    return 1 if (broken or failures) else 0


def cmd_chaos(args):
    """`repro chaos --seed S`: run the fault matrix over loopback."""
    from .faults import run_chaos
    report = run_chaos(args.seed, cache_dir=args.cache_dir,
                       workers=args.workers,
                       secret=args.secret or "chaos-secret")
    if args.out:
        with open(args.out, "a") as handle:
            handle.write(json.dumps(report) + "\n")
        print(f"[saved chaos report -> {args.out}]")
    print(json.dumps({key: report[key] for key in
                      ("seed", "ok", "specs", "faults_fired",
                       "chaos_identical", "resume_identical", "gave_up",
                       "stale_salt_rejected", "wrong_secret_rejected",
                       "resume_replayed")}, indent=2))
    return 0 if report["ok"] else 1


def _client_tls(args):
    """Client-side TLSConfig from --tls-ca/--tls-fingerprint (or env)."""
    from .cluster import TLSConfig
    return TLSConfig.from_args(args, server_side=False)


def _query_endpoint(args, label="coordinator", command="cluster status"):
    """STATUS-query a coordinator/daemon; returns info dict or None."""
    from .cluster import AuthenticationError, ProtocolError, query_status
    try:
        return query_status(args.connect, secret=args.secret or None,
                            tls=_client_tls(args))
    except AuthenticationError as error:
        print(f"{command}: {error}", file=sys.stderr)
    except (OSError, ProtocolError) as error:
        print(f"cannot reach {label} at {args.connect}: {error}",
              file=sys.stderr)
    return None


def _print_daemon_status(daemon):
    """The serve-daemon section of `cluster status` / `jobs` output."""
    print(f"daemon       up {daemon.get('uptime_s', 0.0):,.0f}s, protocol "
          f"v{daemon.get('protocol')}, "
          f"tls {'on' if daemon.get('tls') else 'off'}")
    print(f"fleet        {daemon.get('fleet', 0)} worker(s), "
          f"{daemon.get('active_jobs', 0)} active + "
          f"{daemon.get('queued_jobs', 0)} queued job(s); lifetime "
          f"{daemon.get('jobs_done', 0)} done, "
          f"{daemon.get('jobs_failed', 0)} failed, "
          f"{daemon.get('store_hits', 0)} store hit(s)")
    store = daemon.get("store")
    if store is not None:
        print(f"store        {store.get('hits', 0)} hit(s), "
              f"{store.get('misses', 0)} miss(es) this uptime")
    sessions = daemon.get("sessions", [])
    print(f"sessions     {len(sessions)} connected, "
          f"{daemon.get('sessions_served', 0)} served, "
          f"{daemon.get('sweeps_done', 0)} sweep(s) completed")
    for session in sessions:
        print(f"  {session.get('session')} ({session.get('client')}): "
              f"{session.get('active_sweeps', 0)} active sweep(s), "
              f"{session.get('sweeps_done', 0)} done, seen "
              f"{session.get('last_seen_s', 0.0):.1f}s ago")
        for sweep in session.get("sweeps", []):
            print(f"    {sweep.get('sweep')}: {sweep.get('done', 0)}/"
                  f"{sweep.get('total', 0)} done "
                  f"({sweep.get('cached', 0)} cached), "
                  f"{sweep.get('pending', 0)} pending, "
                  f"{sweep.get('failed', 0)} failed")


def cmd_cluster(args):
    """`repro cluster {worker,status}`: join or inspect a coordinator."""
    action = args.workload
    if action == "worker":
        if not args.connect:
            print("cluster worker needs --connect HOST:PORT",
                  file=sys.stderr)
            return 2
        from .cluster import Worker
        kwargs = {"max_jobs": args.max_jobs, "reconnect": args.reconnect}
        if args.lanes:
            kwargs["lanes"] = args.lanes
        if args.secret:              # else fall back to $REPRO_CLUSTER_SECRET
            kwargs["secret"] = args.secret
        tls = _client_tls(args)
        if tls is not None:
            kwargs["tls"] = tls
        worker = Worker(args.connect, **kwargs)
        return worker.serve()
    if action == "status":
        if not args.connect:
            print("cluster status needs --connect HOST:PORT",
                  file=sys.stderr)
            return 2
        info = _query_endpoint(args)
        if info is None:
            return 1
        jobs_info = info.get("jobs", {})
        print(f"coordinator  {info.get('address', args.connect)}")
        daemon = info.get("daemon")
        if daemon is not None:       # a `repro serve` endpoint
            _print_daemon_status(daemon)
        else:
            print(f"jobs         {jobs_info.get('done', 0)}/"
                  f"{jobs_info.get('total', 0)} done, "
                  f"{jobs_info.get('running', 0)} running, "
                  f"{jobs_info.get('queued', 0)} queued, "
                  f"{jobs_info.get('failed', 0)} failed")
        workers = info.get("workers", [])
        print(f"workers      {len(workers)}")
        for worker in workers:
            print(f"  {worker.get('name')}: {worker.get('state')}, "
                  f"{worker.get('jobs_done', 0)} job(s) done, seen "
                  f"{worker.get('last_seen_s', 0.0):.1f}s ago")
        return 0
    print(f"unknown cluster action {action!r} (expected: worker, status)",
          file=sys.stderr)
    return 2


def cmd_serve(args):
    """`repro serve`: run the always-on sweep daemon until interrupted."""
    from .cluster import TLSConfig
    from .cluster.protocol import parse_address
    from .serve import ServeDaemon, SharedStore, default_store_dir
    tls = TLSConfig.from_args(args, server_side=True)
    host, port = parse_address(args.bind)
    store_dir = args.store or default_store_dir()
    store = SharedStore(store_dir) if store_dir else None
    context = jobs.get_context()
    kwargs = {}
    if args.secret:                  # else fall back to $REPRO_CLUSTER_SECRET
        kwargs["secret"] = args.secret
    daemon = ServeDaemon(host=host, port=port, store=store,
                         ledger=context.ledger, tls=tls,
                         job_timeout=args.job_timeout, **kwargs)
    daemon.start(workers=args.workers, lanes=args.lanes)
    print(f"[serve] daemon on {daemon.address} "
          f"(tls={'on' if tls else 'off'}, "
          f"store={store_dir or 'disabled'}, "
          f"workers={args.workers}); clients: `repro submit <experiment> "
          f"--connect {daemon.address}`", file=sys.stderr, flush=True)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        print("[serve] interrupted; shutting down", file=sys.stderr)
    finally:
        daemon.close()
    return 0


def cmd_submit(args):
    """`repro submit`: run a sweep through a `repro serve` daemon."""
    if not args.connect:
        print("submit needs --connect HOST:PORT (a running `repro serve` "
              "daemon)", file=sys.stderr)
        return 2
    return cmd_sweep(args)


def cmd_jobs(args):
    """`repro jobs`: a serve daemon's live queue, session by session."""
    if not args.connect:
        print("jobs needs --connect HOST:PORT (a running `repro serve` "
              "daemon)", file=sys.stderr)
        return 2
    info = _query_endpoint(args, label="daemon", command="jobs")
    if info is None:
        return 1
    daemon = info.get("daemon")
    if daemon is None:
        print(f"{args.connect} is a per-sweep coordinator, not a `repro "
              f"serve` daemon; use `repro cluster status`", file=sys.stderr)
        return 1
    print(f"daemon       {info.get('address', args.connect)}")
    _print_daemon_status(daemon)
    return 0


def cmd_report(args):
    """Render sweep summary tables from a run ledger (mid-flight ok)."""
    from .harness.ledger_report import render_ledger_report, summarize_ledger
    context = jobs.get_context()
    path = args.from_ledger or context.ledger_path
    if not os.path.exists(path):
        print(f"no ledger at {path}", file=sys.stderr)
        return 1
    cache = context.cache
    if isinstance(cache, jobs.NullCache):
        cache = jobs.ResultCache(context.cache_dir)
    print(render_ledger_report(summarize_ledger(path, cache=cache)))
    return 0


def cmd_env(args):
    """`repro env {show,concretize,run}`: declarative spec DAGs."""
    from .specs import DagRunner, SpecError, concretize, load_spec
    action = args.workload or "show"
    if action not in ("show", "concretize", "run"):
        print(f"unknown env action {action!r} (expected: show, concretize, "
              f"run)", file=sys.stderr)
        return 2
    if not args.spec:
        print("env needs --spec PATH (a .toml/.json experiment spec, "
              "e.g. specs/fig7.toml)", file=sys.stderr)
        return 2
    try:
        spec = load_spec(args.spec)
        if action == "show":
            print(f"spec        {spec.name}")
            if spec.description:
                print(f"description {spec.description}")
            print(f"source      {spec.source or '(inline)'}")
            print(f"sha256      {spec.digest}")
            if spec.defaults:
                pairs = ", ".join(f"{path}={value}" for path, value
                                  in spec.defaults.items())
                print(f"defaults    {pairs}")
            for group in spec.groups:
                workloads = (group.workloads
                             if isinstance(group.workloads, str)
                             else f"{len(group.workloads)} explicit")
                print(f"matrix      {group.name}: workloads={workloads}, "
                      f"techniques={', '.join(group.techniques)}")
                for path, values in group.knobs.items():
                    print(f"              knob {path} = {values}")
                for clause in group.exclude:
                    print(f"              exclude {clause}")
            for analysis in spec.analyses:
                print(f"analysis    {analysis.name}: fn={analysis.fn}, "
                      f"needs={', '.join(analysis.needs)}")
            return 0
        dag = concretize(spec, scale=_scale_from_args(args))
        runner = DagRunner(dag)
        if action == "concretize" or args.dry_run:
            print(runner.render_dry_run())
            return 0
        result = runner.run()
        for node in dag.analyses:
            if node.name not in result.tables:
                continue
            print(result.tables[node.name].render())
            print()
            _maybe_save(result.tables[node.name], args)
        for skip in result.stats["skipped"]:
            print(f"[env] skipped analysis {skip['analysis']!r}: "
                  f"{skip['reason']}", file=sys.stderr)
        return 1 if result.stats["skipped"] else 0
    except SpecError as error:
        print(f"env: {error}", file=sys.stderr)
        return 2


def cmd_run(args):
    config = SimConfig(max_instructions=args.instructions or 20_000,
                       fast_forward=not args.no_fast_forward,
                       sanitize=args.sanitize)
    if args.workload in GAP_WORKLOADS:
        workload = make_workload(args.workload, graph=args.graph or "KR")
    else:
        workload = make_workload(args.workload)
    metrics = run_workload(workload, config, technique=args.technique)
    print(f"workload   {metrics.workload}")
    print(f"technique  {metrics.technique}")
    print(f"IPC        {metrics.ipc:.3f}")
    print(f"cycles     {metrics.cycles:,}")
    print(f"MLP        {metrics.mlp:.2f}")
    print(f"MPKI       {metrics.mpki:.1f}")
    print(f"ROB-full   {metrics.rob_full_fraction:.1%}")
    print(f"DRAM       main={metrics.dram_split()[0]:,} "
          f"runahead={metrics.dram_split()[1]:,}")
    stack = " ".join(f"{name}={value:.2f}"
                     for name, value in metrics.cpi_stack.items() if value)
    print(f"CPI stack  {stack}")
    for key, value in sorted(metrics.engine_stats.items()):
        if value:
            print(f"{key:28s} {value}")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Decoupled Vector Runahead reproduction harness")
    parser.add_argument("command",
                        choices=sorted(ALL_EXPERIMENTS) + ["all", "bench",
                                                           "cache", "chaos",
                                                           "cluster", "env",
                                                           "jobs", "lint",
                                                           "list", "report",
                                                           "run", "serve",
                                                           "submit", "sweep"])
    parser.add_argument("workload", nargs="?",
                        help="workload name (for `run`), cache action "
                             "(for `cache`: stats, clear, prune), cluster "
                             "action (for `cluster`: worker, status), "
                             "experiment name (for `sweep`/`submit`), env "
                             "action (for `env`: show, concretize, run), or "
                             "a path to lint (for `lint`)")
    parser.add_argument("--technique", default="dvr",
                        choices=ALL_TECHNIQUES + DVR_BREAKDOWN[1:3])
    parser.add_argument("--graph", default=None)
    parser.add_argument("--graphs", nargs="*", default=None,
                        help="GAP graph inputs for experiments")
    parser.add_argument("--instructions", type=int, default=None)
    parser.add_argument("--scale", choices=("smoke", "small", "full"),
                        default="small")
    parser.add_argument("--no-fast-forward", action="store_true",
                        help="disable event-driven cycle skipping (slower; "
                             "results are bit-identical either way)")
    parser.add_argument("--sanitize", action="store_true",
                        help="enable runtime invariant assertions "
                             "(repro.analysis; metrics are bit-identical "
                             "either way)")
    parser.add_argument("--sanitize-threads", action="store_true",
                        help="instrument cluster/serve locks: track the "
                             "held-lock set per thread, fail on lock-order "
                             "inversions and @guarded_by violations "
                             "(repro.analysis.threadsan; metrics are "
                             "bit-identical either way)")
    parser.add_argument("--fix", action="store_true",
                        help="lint: apply mechanical rewrites for fixable "
                             "findings, then re-lint")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="lint: write the machine-readable report here")
    parser.add_argument("--rules", default=None, metavar="NAMES",
                        help="lint: comma-separated rule names to run "
                             "(default: all)")
    parser.add_argument("--out", default=None,
                        help="append experiment results as JSON lines")
    parser.add_argument("--spec", default=None, metavar="PATH",
                        help="env: the declarative experiment spec to load "
                             "(.toml or .json, e.g. specs/fig7.toml)")
    parser.add_argument("--dry-run", action="store_true",
                        help="env run: print node counts, topological "
                             "levels and the cache-hit preview, execute "
                             "nothing")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for experiment sweeps "
                             "(default: $REPRO_JOBS or 1 = serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="always simulate; don't reuse cached results")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache directory "
                             "(default: $REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument("--job-timeout", type=float, default=None,
                        metavar="SECONDS", help="per-job timeout")
    parser.add_argument("--keep-current", action="store_true",
                        help="confirm `cache prune`: drop stale salt "
                             "generations, keep the current one")
    parser.add_argument("--max-bytes", type=int, default=None, metavar="N",
                        help="cache prune: evict oldest current-generation "
                             "entries until the generation fits in N bytes")
    parser.add_argument("--backend",
                        choices=("local", "lanes", "cluster", "serve"),
                        default="local",
                        help="executor backend for sweeps: `local` process "
                             "pool (default), `lanes` in-process batch "
                             "lanes (--lanes), `cluster` TCP workers, or "
                             "`serve` (submit to a running daemon; "
                             "--connect)")
    parser.add_argument("--lanes", type=int, default=0, metavar="N",
                        help="batch-lane width: run up to N sims in "
                             "lockstep inside one process (implies "
                             "--backend lanes; also sets a cluster "
                             "worker's lane capacity)")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="cluster backend / serve daemon: loopback "
                             "worker processes to spawn (0 = wait for "
                             "external workers)")
    parser.add_argument("--bind", default="127.0.0.1:0", metavar="HOST:PORT",
                        help="cluster backend / serve daemon: bind address "
                             "(port 0 = ephemeral)")
    parser.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="cluster worker/status, submit, jobs: the "
                             "coordinator/daemon address")
    parser.add_argument("--secret", default=None, metavar="SECRET",
                        help="cluster/serve shared handshake secret "
                             "(default: $REPRO_CLUSTER_SECRET; "
                             "unauthenticated dialers are rejected)")
    parser.add_argument("--tls-cert", default=None, metavar="PEM",
                        help="serve daemon / cluster coordinator: TLS "
                             "certificate (with --tls-key, enables TLS)")
    parser.add_argument("--tls-key", default=None, metavar="PEM",
                        help="server-side TLS private key")
    parser.add_argument("--tls-ca", default=None, metavar="PEM",
                        help="client side: CA file to verify the server "
                             "certificate against (default: $REPRO_TLS_CA); "
                             "on the server, demands client certificates "
                             "(mutual TLS)")
    parser.add_argument("--tls-fingerprint", default=None, metavar="SHA256",
                        help="client side: pin the server certificate's "
                             "sha256 fingerprint instead of a CA file "
                             "(default: $REPRO_TLS_FINGERPRINT)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="shared content-addressed result store "
                             "directory (default: $REPRO_STORE_DIR; sweeps "
                             "and the serve daemon share hits through it)")
    parser.add_argument("--resume", action="store_true",
                        help="sweep: replay specs the run ledger already "
                             "records as completed; dispatch only the "
                             "remainder")
    parser.add_argument("--keep-going", action="store_true",
                        help="sweep: report jobs that exhaust their retry "
                             "budget and continue instead of aborting")
    parser.add_argument("--seed", type=int, default=1234,
                        help="chaos: fault-plan seed (same seed = same "
                             "fault schedule, bit-identical)")
    parser.add_argument("--max-jobs", type=int, default=None, metavar="N",
                        help="cluster worker: exit after N jobs")
    parser.add_argument("--reconnect", type=int, default=3, metavar="N",
                        help="cluster worker: reconnection attempts after "
                             "a lost coordinator connection")
    parser.add_argument("--from-ledger", default=None, metavar="PATH",
                        help="report: run ledger to summarize (default: "
                             "the active cache dir's runs.jsonl)")
    parser.add_argument("--label", default="local",
                        help="bench report label (BENCH_<label>.json)")
    parser.add_argument("--profile", action="store_true",
                        help="bench: embed per-case cProfile top-N in the "
                             "report")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="bench: BENCH json to compare against")
    parser.add_argument("--threshold", type=float, default=25.0,
                        metavar="PCT", help="bench: max tolerated cycles/sec "
                                            "regression vs baseline")
    parser.add_argument("--bench-dir", default="benchmarks",
                        help="bench: directory for BENCH reports")
    parser.add_argument("--repeats", type=int, default=3,
                        help="bench: timing repetitions (best-of-N)")
    args = parser.parse_args(argv)

    if args.sanitize_threads:
        # Before any coordinator/daemon/worker constructs its locks.
        from .analysis import threadsan
        threadsan.enable()

    from .cluster import TLSConfig, TLSConfigError

    env = jobs.ExecutionContext.from_env()
    backend = "serve" if args.command == "submit" else args.backend
    cluster_options = {"bind": args.bind, "workers": args.workers}
    serve_options = {"connect": args.connect}
    if args.secret:
        cluster_options["secret"] = args.secret
        serve_options["secret"] = args.secret
    if backend == "serve":
        try:
            tls = TLSConfig.from_args(args, server_side=False)
        except TLSConfigError as error:
            parser.error(str(error))
        if tls is not None:
            serve_options["tls"] = tls
    jobs.configure(
        jobs=args.jobs if args.jobs is not None else env.jobs,
        cache_dir=args.cache_dir or env.cache_dir,
        no_cache=args.no_cache or env.no_cache,
        timeout=args.job_timeout,
        backend=backend,
        cluster=cluster_options,
        serve=serve_options,
        store=args.store,
        resume=args.resume,
        on_failure="report" if args.keep_going else "raise",
        lanes=args.lanes)

    try:
        if args.command == "list":
            return cmd_list(args)
        if args.command == "all":
            return cmd_all(args)
        if args.command == "bench":
            return cmd_bench(args)
        if args.command == "cache":
            return cmd_cache(args)
        if args.command == "chaos":
            return cmd_chaos(args)
        if args.command == "cluster":
            return cmd_cluster(args)
        if args.command == "env":
            return cmd_env(args)
        if args.command == "jobs":
            return cmd_jobs(args)
        if args.command == "serve":
            try:
                return cmd_serve(args)
            except TLSConfigError as error:
                print(f"serve: {error}", file=sys.stderr)
                return 2
        if args.command == "submit":
            return cmd_submit(args)
        if args.command == "lint":
            return cmd_lint(args)
        if args.command == "report":
            return cmd_report(args)
        if args.command == "sweep":
            return cmd_sweep(args)
        if args.command == "run":
            if not args.workload:
                parser.error("`run` needs a workload name")
            return cmd_run(args)
        return cmd_experiment(args)
    finally:
        # Drain cluster workers / stop the coordinator, if one was started.
        jobs.close_context()


if __name__ == "__main__":
    try:
        status = main()
    except BrokenPipeError:          # e.g. `python -m repro ... | head`
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        status = 141                 # 128 + SIGPIPE, shell convention
    sys.exit(status)
