"""Workloads: the paper's 13 benchmarks plus graph generation.

``GAP_WORKLOADS`` x ``GRAPH_INPUTS`` plus ``HPCDB_WORKLOADS`` gives every
benchmark-input combination in the paper's evaluation (Fig 7).
"""

from .base import BuiltWorkload, Workload
from .gap import (BetweennessCentrality, Bfs, ConnectedComponents, PageRank,
                  Sssp)
from .graphs import GRAPH_INPUTS, GraphSpec, build_csr, degree_stats
from .hpcdb import (Camel, Graph500, Hj2, Hj8, Kangaroo, NasCg, NasIs,
                    RandomAccess)

GAP_WORKLOADS = {
    "bc": BetweennessCentrality,
    "bfs": Bfs,
    "cc": ConnectedComponents,
    "pr": PageRank,
    "sssp": Sssp,
}

HPCDB_WORKLOADS = {
    "camel": Camel,
    "graph500": Graph500,
    "hj2": Hj2,
    "hj8": Hj8,
    "kangaroo": Kangaroo,
    "nas-cg": NasCg,
    "nas-is": NasIs,
    "randomaccess": RandomAccess,
}

ALL_WORKLOADS = {**GAP_WORKLOADS, **HPCDB_WORKLOADS}

GRAPH_NAMES = tuple(GRAPH_INPUTS)


def make_workload(name, graph=None, **params):
    """Instantiate a workload by name (GAP kernels take ``graph``)."""
    if name in GAP_WORKLOADS:
        return GAP_WORKLOADS[name](graph=graph, **params)
    if name in HPCDB_WORKLOADS:
        return HPCDB_WORKLOADS[name](**params)
    raise KeyError(f"unknown workload {name!r}")


def benchmark_matrix(graphs=GRAPH_NAMES, small=False):
    """Every (label, workload) pair of the paper's Fig 7.

    With ``small`` the GAP kernels run on a single input per kernel, for
    quick runs.
    """
    pairs = []
    for kernel, cls in GAP_WORKLOADS.items():
        use = graphs if not small else (graphs[0],)
        for graph in use:
            pairs.append((f"{kernel}_{graph}", cls(graph=graph)))
    for name, cls in HPCDB_WORKLOADS.items():
        pairs.append((name, cls()))
    return pairs


__all__ = [
    "ALL_WORKLOADS",
    "BetweennessCentrality",
    "Bfs",
    "BuiltWorkload",
    "Camel",
    "ConnectedComponents",
    "GAP_WORKLOADS",
    "GRAPH_INPUTS",
    "GRAPH_NAMES",
    "Graph500",
    "GraphSpec",
    "HPCDB_WORKLOADS",
    "Hj2",
    "Hj8",
    "Kangaroo",
    "NasCg",
    "NasIs",
    "PageRank",
    "RandomAccess",
    "Sssp",
    "Workload",
    "benchmark_matrix",
    "build_csr",
    "degree_stats",
    "make_workload",
]
