"""Graph generation for the GAP-suite workloads (paper Table 2).

The paper uses five inputs: Kron (Graph500 Kronecker), LiveJournal, Orkut,
Twitter, and Urand.  The three real social networks are not available
offline, so each is substituted by an RMAT graph whose skew and average
degree are matched to the original's published character (power-law degree
distribution for TW/LJN, dense community structure for ORK), scaled down
to simulator-friendly sizes.  What DVR's behaviour depends on -- the
distribution of inner-loop (adjacency-list) lengths and cache-defeating
neighbour access -- is preserved.

CSR layout: ``offsets`` (n+1 words) and ``neighbors`` (m words).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class GraphSpec:
    """Named graph input (one row of Table 2, scaled)."""

    name: str
    kind: str          # "rmat" or "uniform"
    log2_nodes: int
    avg_degree: int
    a: float = 0.57    # RMAT quadrant probabilities (Graph500 defaults)
    b: float = 0.19
    c: float = 0.19

    @property
    def num_nodes(self):
        return 1 << self.log2_nodes

    @property
    def num_edges(self):
        return self.num_nodes * self.avg_degree


# Scaled-down stand-ins for Table 2.  Skew (RMAT `a`) and density are
# matched to each input's character: Kron/Graph500 use the Graph500
# parameters, Twitter is the most skewed, Orkut the densest, Urand uniform.
GRAPH_INPUTS = {
    "KR": GraphSpec("KR", "rmat", 16, 16, a=0.57, b=0.19, c=0.19),
    "LJN": GraphSpec("LJN", "rmat", 14, 14, a=0.48, b=0.22, c=0.22),
    "ORK": GraphSpec("ORK", "rmat", 13, 38, a=0.45, b=0.22, c=0.22),
    "TW": GraphSpec("TW", "rmat", 15, 24, a=0.62, b=0.17, c=0.17),
    "UR": GraphSpec("UR", "uniform", 16, 16),
}

_csr_cache = {}


def uniform_edges(num_nodes, num_edges, rng):
    src = rng.integers(0, num_nodes, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, num_nodes, size=num_edges, dtype=np.int64)
    return src, dst


def rmat_edges(log2_nodes, num_edges, rng, a, b, c):
    """Vectorized RMAT generator (recursive quadrant descent)."""
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    ab = a + b
    a_norm = a / ab if ab > 0 else 0.5
    c_norm = c / (1.0 - ab) if ab < 1.0 else 0.5
    for _ in range(log2_nodes):
        src <<= 1
        dst <<= 1
        go_down = rng.random(num_edges) > ab        # bottom half (src bit 1)
        r2 = rng.random(num_edges)
        right_top = r2 > a_norm                      # dst bit within top
        right_bottom = r2 > c_norm                   # dst bit within bottom
        src += go_down
        dst += np.where(go_down, right_bottom, right_top)
    return src, dst


def build_csr(spec, seed=12345):
    """Build (offsets, neighbors) int64 numpy arrays for a GraphSpec.

    Results are memoized per (spec, seed): graph construction is pure, and
    every simulated technique re-builds its workload from scratch.
    """
    key = (spec, seed)
    cached = _csr_cache.get(key)
    if cached is not None:
        return cached
    # zlib.crc32, not hash(): str hashing is salted per process
    # (PYTHONHASHSEED), which would make the "same" graph differ between
    # runs and between pool workers -- breaking result caching and the
    # serial-vs-parallel determinism the jobs engine guarantees.
    rng = np.random.default_rng(seed ^ zlib.crc32(spec.name.encode()) & 0xFFFF)
    if spec.kind == "uniform":
        src, dst = uniform_edges(spec.num_nodes, spec.num_edges, rng)
    elif spec.kind == "rmat":
        src, dst = rmat_edges(spec.log2_nodes, spec.num_edges, rng,
                              spec.a, spec.b, spec.c)
    else:
        raise ValueError(f"unknown graph kind {spec.kind!r}")
    order = np.argsort(src, kind="stable")
    src = src[order]
    dst = dst[order]
    counts = np.bincount(src, minlength=spec.num_nodes)
    offsets = np.zeros(spec.num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    result = (offsets, dst.copy())
    _csr_cache[key] = result
    return result


def degree_stats(offsets):
    degrees = np.diff(offsets)
    return {
        "max_degree": int(degrees.max()) if len(degrees) else 0,
        "mean_degree": float(degrees.mean()) if len(degrees) else 0.0,
        "p99_degree": int(np.percentile(degrees, 99)) if len(degrees) else 0,
        "frac_small": float((degrees < 8).mean()) if len(degrees) else 0.0,
    }


def bfs_frontier(offsets, neighbors, source=0, min_frontier=64):
    """Host-side BFS used to skip the initialization phase (the paper's
    ROI marker): returns (visited_vertices, frontier) where ``frontier``
    is the first BFS level with at least ``min_frontier`` vertices."""
    offsets_list = offsets
    visited = np.zeros(len(offsets) - 1, dtype=bool)
    visited[source] = True
    frontier = np.array([source], dtype=np.int64)
    seen = [source]
    while len(frontier):
        starts = offsets_list[frontier]
        ends = offsets_list[frontier + 1]
        nxt = []
        for start, end in zip(starts, ends):
            nxt.append(neighbors[start:end])
        if not nxt:
            break
        candidates = np.unique(np.concatenate(nxt)) if nxt else frontier[:0]
        new = candidates[~visited[candidates]]
        if len(new) == 0:
            break
        visited[new] = True
        if len(new) >= min_frontier:
            return np.flatnonzero(visited), new
        seen.extend(new.tolist())
        frontier = new
    return np.flatnonzero(visited), frontier


def pick_source(offsets, rng_seed=7):
    """A source vertex with non-trivial degree (GAP picks random sources
    but rejects isolated ones)."""
    degrees = np.diff(offsets)
    candidates = np.flatnonzero(degrees >= max(2, degrees.mean()))
    if len(candidates) == 0:
        return int(np.argmax(degrees))
    rng = np.random.default_rng(rng_seed)
    return int(rng.choice(candidates))
