"""Workload abstraction.

A workload owns a guest program plus the guest memory image it runs on,
and (for correctness testing) a pure-Python reference implementation.
``build()`` is called fresh per simulation so runs never share state.
"""

from __future__ import annotations

from ..isa.machine import GuestMemory


class BuiltWorkload:
    """A ready-to-simulate instance: program + initialized memory."""

    def __init__(self, name, program, memory, metadata=None,
                 reference_check=None):
        self.name = name
        self.program = program
        self.memory = memory
        self.metadata = metadata or {}
        # Optional callable (memory) -> bool validating final guest state
        # after a *functional* run to completion.
        self.reference_check = reference_check


class Workload:
    """Factory for :class:`BuiltWorkload` instances."""

    name = "workload"
    #: domain tag: "gap" (graph analytics) or "hpc-db"
    domain = "hpc-db"

    def __init__(self, **params):
        self.params = params

    def build(self, memory_bytes=256 * 1024 * 1024, seed=12345):
        """Assemble the program and initialize guest memory."""
        raise NotImplementedError

    def _new_memory(self, memory_bytes):
        return GuestMemory(memory_bytes)

    def __repr__(self):
        return f"<{type(self).__name__} {self.params}>"
