"""GAP benchmark-suite kernels (paper Section 5): bc, bfs, cc, pr, sssp.

Each kernel is hand-written guest assembly whose dynamic instruction
stream matches the paper's description: an outer striding load over a
worklist / vertex range, an inner striding load over the adjacency list
(bottom-tested, as compilers emit for hot loops), and data-dependent
indirect loads and branches off the neighbour id.  Initialization phases
are skipped the way the paper uses Sniper's ROI markers: the builder runs
the algorithm host-side until the frontier is representative and starts
the guest mid-traversal.

Every workload carries a ``reference_check`` that re-runs the algorithm
in plain Python from the same initial state and compares final guest
memory -- an end-to-end correctness check of ISA, assembler and kernel.
"""

from __future__ import annotations

import numpy as np

from ..isa.assembler import Assembler
from .base import BuiltWorkload, Workload
from .graphs import GRAPH_INPUTS, bfs_frontier, build_csr, pick_source

_DIST_INF = 1 << 40


class GapWorkload(Workload):
    domain = "gap"
    graph_default = "KR"

    def __init__(self, graph=None, seed=12345):
        super().__init__(graph=graph or self.graph_default, seed=seed)
        self.graph = graph or self.graph_default
        self.seed = seed

    @property
    def spec(self):
        return GRAPH_INPUTS[self.graph]

    def _load_graph(self):
        return build_csr(self.spec, seed=self.seed)

    def _alloc_csr(self, mem, offsets, neighbors):
        base_off = mem.alloc_array(offsets, "offsets")
        base_ngh = mem.alloc_array(neighbors, "neighbors")
        return base_off, base_ngh


# ---------------------------------------------------------------------------
# Breadth-First Search (Algorithm 1 of the paper)
# ---------------------------------------------------------------------------
class Bfs(GapWorkload):
    name = "bfs"

    def build(self, memory_bytes=256 * 1024 * 1024, seed=12345):
        offsets, neighbors = self._load_graph()
        num_nodes = len(offsets) - 1
        source = pick_source(offsets, rng_seed=seed)
        visited_init, frontier = bfs_frontier(offsets, neighbors, source)

        mem = self._new_memory(memory_bytes)
        base_off, base_ngh = self._alloc_csr(mem, offsets, neighbors)
        visited = np.zeros(num_nodes, dtype=np.int64)
        visited[visited_init] = 1
        base_vis = mem.alloc_array(visited, "visited")
        base_par = mem.alloc_array(np.full(num_nodes, -1, dtype=np.int64),
                                   "parent")
        worklist = np.zeros(num_nodes + 64, dtype=np.int64)
        worklist[:len(frontier)] = frontier
        base_wl = mem.alloc_array(worklist, "worklist")

        program = _bfs_program(base_wl, base_vis, base_par, base_off,
                               base_ngh, tail=len(frontier))
        initial_visited = visited.copy()

        def reference_check(final_mem):
            expect_vis, _ = _ref_bfs(offsets, neighbors, initial_visited,
                                     list(frontier))
            got = final_mem.read_array(base_vis, num_nodes)
            return list(expect_vis) == got

        return BuiltWorkload(
            f"{self.name}_{self.graph}", program, mem,
            metadata={"graph": self.graph, "nodes": num_nodes,
                      "edges": len(neighbors), "frontier": len(frontier)},
            reference_check=reference_check)


def _bfs_program(base_wl, base_vis, base_par, base_off, base_ngh, tail):
    a = Assembler("bfs")
    wl, vis, par, off, ngh = (a.alias("rWl", 1), a.alias("rVis", 2),
                              a.alias("rPar", 3), a.alias("rOff", 4),
                              a.alias("rNgh", 5))
    for name, reg in [("rIdx", 6), ("rTail", 7), ("rU", 8), ("rS", 9),
                      ("rE", 10), ("rJ", 11), ("rV", 12), ("rT", 13),
                      ("rC", 14), ("rOne", 15)]:
        a.alias(name, reg)
    a.li("rWl", base_wl)
    a.li("rVis", base_vis)
    a.li("rPar", base_par)
    a.li("rOff", base_off)
    a.li("rNgh", base_ngh)
    a.li("rIdx", 0)
    a.li("rTail", tail)
    a.li("rOne", 1)
    a.label("outer")
    a.cmplt("rC", "rIdx", "rTail")
    a.bez("rC", "done")
    a.loadx("rU", "rWl", "rIdx")      # u = worklist[idx]   (outer stride)
    a.addi("rIdx", "rIdx", 1)
    a.loadx("rS", "rOff", "rU")       # s = offsets[u]
    a.addi("rT", "rU", 1)
    a.loadx("rE", "rOff", "rT")       # e = offsets[u+1]
    a.mov("rJ", "rS")
    a.cmplt("rC", "rJ", "rE")
    a.bez("rC", "outer")              # empty adjacency list
    a.label("inner")
    a.loadx("rV", "rNgh", "rJ")       # v = neighbors[j]    (inner stride)
    a.addi("rJ", "rJ", 1)
    a.loadx("rT", "rVis", "rV")       # visited[v]?
    a.bnz("rT", "skip")
    a.storex("rOne", "rVis", "rV")    # visited[v] = 1
    a.storex("rU", "rPar", "rV")      # parent[v] = u
    a.storex("rV", "rWl", "rTail")    # worklist[tail++] = v
    a.addi("rTail", "rTail", 1)
    a.label("skip")
    a.cmplt("rC", "rJ", "rE")
    a.bnz("rC", "inner")              # bottom-tested backward branch
    a.jmp("outer")
    a.label("done")
    a.halt()
    return a.build()


def _ref_bfs(offsets, neighbors, visited_init, frontier):
    visited = list(visited_init)
    parent = {}
    worklist = list(frontier)
    idx = 0
    while idx < len(worklist):
        u = worklist[idx]
        idx += 1
        for j in range(offsets[u], offsets[u + 1]):
            v = int(neighbors[j])
            if not visited[v]:
                visited[v] = 1
                parent[v] = u
                worklist.append(v)
    return visited, parent


# ---------------------------------------------------------------------------
# PageRank (pull-based, one iteration; contributions precomputed)
# ---------------------------------------------------------------------------
class PageRank(GapWorkload):
    name = "pr"

    def build(self, memory_bytes=256 * 1024 * 1024, seed=12345):
        offsets, neighbors = self._load_graph()
        num_nodes = len(offsets) - 1
        rng = np.random.default_rng(seed)
        contrib = rng.integers(1, 1000, size=num_nodes).astype(np.int64)

        mem = self._new_memory(memory_bytes)
        base_off, base_ngh = self._alloc_csr(mem, offsets, neighbors)
        base_contrib = mem.alloc_array(contrib, "contrib")
        base_rank = mem.alloc_array(np.zeros(num_nodes, dtype=np.int64),
                                    "rank")
        program = _pr_program(base_off, base_ngh, base_contrib, base_rank,
                              num_nodes)

        def reference_check(final_mem):
            expect = _ref_pr(offsets, neighbors, contrib)
            got = final_mem.read_array(base_rank, num_nodes)
            return expect == got

        return BuiltWorkload(
            f"{self.name}_{self.graph}", program, mem,
            metadata={"graph": self.graph, "nodes": num_nodes,
                      "edges": len(neighbors)},
            reference_check=reference_check)


def _pr_program(base_off, base_ngh, base_contrib, base_rank, num_nodes):
    a = Assembler("pr")
    for name, reg in [("rOff", 1), ("rNgh", 2), ("rCon", 3), ("rRank", 4),
                      ("rV", 5), ("rN", 6), ("rS", 7), ("rE", 8),
                      ("rSum", 9), ("rT", 10), ("rC", 11), ("rU", 12)]:
        a.alias(name, reg)
    a.li("rOff", base_off)
    a.li("rNgh", base_ngh)
    a.li("rCon", base_contrib)
    a.li("rRank", base_rank)
    a.li("rV", 0)
    a.li("rN", num_nodes)
    a.label("vloop")
    a.loadx("rS", "rOff", "rV")       # outer stride
    a.addi("rT", "rV", 1)
    a.loadx("rE", "rOff", "rT")
    a.li("rSum", 0)
    a.cmplt("rC", "rS", "rE")
    a.bez("rC", "vdone")
    a.label("inner")
    a.loadx("rU", "rNgh", "rS")       # inner stride
    a.addi("rS", "rS", 1)
    a.loadx("rT", "rCon", "rU")       # contrib[neighbor]
    a.add("rSum", "rSum", "rT")
    a.cmplt("rC", "rS", "rE")
    a.bnz("rC", "inner")
    a.label("vdone")
    a.muli("rSum", "rSum", 870)       # rank = base + 0.85 * sum
    a.shri("rSum", "rSum", 10)        # (fixed-point 870/1024)
    a.addi("rSum", "rSum", 150)
    a.storex("rSum", "rRank", "rV")
    a.addi("rV", "rV", 1)
    a.cmplt("rC", "rV", "rN")
    a.bnz("rC", "vloop")
    a.halt()
    return a.build()


def _ref_pr(offsets, neighbors, contrib):
    ranks = []
    for v in range(len(offsets) - 1):
        total = 0
        for j in range(offsets[v], offsets[v + 1]):
            total += int(contrib[neighbors[j]])
        ranks.append(((total * 870) >> 10) + 150)
    return ranks


# ---------------------------------------------------------------------------
# Connected Components (one label-propagation sweep)
# ---------------------------------------------------------------------------
class ConnectedComponents(GapWorkload):
    name = "cc"

    def build(self, memory_bytes=256 * 1024 * 1024, seed=12345):
        offsets, neighbors = self._load_graph()
        num_nodes = len(offsets) - 1
        mem = self._new_memory(memory_bytes)
        base_off, base_ngh = self._alloc_csr(mem, offsets, neighbors)
        base_comp = mem.alloc_array(np.arange(num_nodes, dtype=np.int64),
                                    "comp")
        program = _cc_program(base_off, base_ngh, base_comp, num_nodes)

        def reference_check(final_mem):
            expect = _ref_cc(offsets, neighbors)
            got = final_mem.read_array(base_comp, num_nodes)
            return expect == got

        return BuiltWorkload(
            f"{self.name}_{self.graph}", program, mem,
            metadata={"graph": self.graph, "nodes": num_nodes,
                      "edges": len(neighbors)},
            reference_check=reference_check)


def _cc_program(base_off, base_ngh, base_comp, num_nodes):
    a = Assembler("cc")
    for name, reg in [("rOff", 1), ("rNgh", 2), ("rComp", 3), ("rV", 4),
                      ("rN", 5), ("rS", 6), ("rE", 7), ("rLbl", 8),
                      ("rU", 9), ("rT", 10), ("rC", 11)]:
        a.alias(name, reg)
    a.li("rOff", base_off)
    a.li("rNgh", base_ngh)
    a.li("rComp", base_comp)
    a.li("rV", 0)
    a.li("rN", num_nodes)
    a.label("vloop")
    a.loadx("rS", "rOff", "rV")       # outer stride
    a.addi("rT", "rV", 1)
    a.loadx("rE", "rOff", "rT")
    a.loadx("rLbl", "rComp", "rV")
    a.cmplt("rC", "rS", "rE")
    a.bez("rC", "vdone")
    a.label("inner")
    a.loadx("rU", "rNgh", "rS")       # inner stride
    a.addi("rS", "rS", 1)
    a.loadx("rT", "rComp", "rU")      # neighbour's label (indirect)
    a.cmplt("rC", "rT", "rLbl")
    a.bez("rC", "cskip")
    a.mov("rLbl", "rT")               # adopt smaller label
    a.label("cskip")
    a.cmplt("rC", "rS", "rE")
    a.bnz("rC", "inner")
    a.label("vdone")
    a.storex("rLbl", "rComp", "rV")
    a.addi("rV", "rV", 1)
    a.cmplt("rC", "rV", "rN")
    a.bnz("rC", "vloop")
    a.halt()
    return a.build()


def _ref_cc(offsets, neighbors):
    num_nodes = len(offsets) - 1
    comp = list(range(num_nodes))
    for v in range(num_nodes):
        label = comp[v]
        for j in range(offsets[v], offsets[v + 1]):
            other = comp[int(neighbors[j])]
            if other < label:
                label = other
        comp[v] = label
    return comp


# ---------------------------------------------------------------------------
# Single-Source Shortest Path (label-correcting / Bellman-Ford queue)
# ---------------------------------------------------------------------------
class Sssp(GapWorkload):
    name = "sssp"

    def build(self, memory_bytes=256 * 1024 * 1024, seed=12345,
              worklist_slack=8):
        offsets, neighbors = self._load_graph()
        num_nodes = len(offsets) - 1
        rng = np.random.default_rng(seed + 1)
        weights = rng.integers(1, 64, size=len(neighbors)).astype(np.int64)
        source = pick_source(offsets, rng_seed=seed)
        visited_init, frontier = bfs_frontier(offsets, neighbors, source)

        # Mirror the paper's ROI skipping: host-side relaxation up to the
        # frontier level so the guest starts with a busy worklist.
        dist = np.full(num_nodes, _DIST_INF, dtype=np.int64)
        dist[source] = 0
        _ref_sssp_seed(offsets, neighbors, weights, dist, source,
                       set(int(v) for v in frontier))

        mem = self._new_memory(memory_bytes)
        base_off, base_ngh = self._alloc_csr(mem, offsets, neighbors)
        base_wgt = mem.alloc_array(weights, "weights")
        base_dist = mem.alloc_array(dist, "dist")
        capacity = num_nodes * worklist_slack + 64
        worklist = np.zeros(capacity, dtype=np.int64)
        worklist[:len(frontier)] = frontier
        base_wl = mem.alloc_array(worklist, "worklist")
        program = _sssp_program(base_wl, base_dist, base_off, base_ngh,
                                base_wgt, tail=len(frontier))
        dist_init = dist.copy()

        def reference_check(final_mem):
            expect = _ref_sssp(offsets, neighbors, weights, dist_init,
                               list(frontier))
            got = final_mem.read_array(base_dist, num_nodes)
            return expect == got

        return BuiltWorkload(
            f"{self.name}_{self.graph}", program, mem,
            metadata={"graph": self.graph, "nodes": num_nodes,
                      "edges": len(neighbors), "frontier": len(frontier)},
            reference_check=reference_check)


def _sssp_program(base_wl, base_dist, base_off, base_ngh, base_wgt, tail):
    a = Assembler("sssp")
    for name, reg in [("rWl", 1), ("rDist", 2), ("rOff", 3), ("rNgh", 4),
                      ("rWgt", 5), ("rIdx", 6), ("rTail", 7), ("rU", 8),
                      ("rDu", 9), ("rS", 10), ("rE", 11), ("rV", 12),
                      ("rW", 13), ("rDv", 14), ("rT", 15), ("rC", 16)]:
        a.alias(name, reg)
    a.li("rWl", base_wl)
    a.li("rDist", base_dist)
    a.li("rOff", base_off)
    a.li("rNgh", base_ngh)
    a.li("rWgt", base_wgt)
    a.li("rIdx", 0)
    a.li("rTail", tail)
    a.label("outer")
    a.cmplt("rC", "rIdx", "rTail")
    a.bez("rC", "done")
    a.loadx("rU", "rWl", "rIdx")      # outer stride
    a.addi("rIdx", "rIdx", 1)
    a.loadx("rDu", "rDist", "rU")
    a.loadx("rS", "rOff", "rU")
    a.addi("rT", "rU", 1)
    a.loadx("rE", "rOff", "rT")
    a.cmplt("rC", "rS", "rE")
    a.bez("rC", "outer")
    a.label("inner")
    a.loadx("rV", "rNgh", "rS")       # inner stride
    a.loadx("rW", "rWgt", "rS")
    a.addi("rS", "rS", 1)
    a.loadx("rDv", "rDist", "rV")     # indirect
    a.add("rT", "rDu", "rW")
    a.cmplt("rC", "rT", "rDv")
    a.bez("rC", "sskip")
    a.storex("rT", "rDist", "rV")     # relax
    a.storex("rV", "rWl", "rTail")
    a.addi("rTail", "rTail", 1)
    a.label("sskip")
    a.cmplt("rC", "rS", "rE")
    a.bnz("rC", "inner")
    a.jmp("outer")
    a.label("done")
    a.halt()
    return a.build()


def _ref_sssp_seed(offsets, neighbors, weights, dist, source, frontier_set):
    """Host-side relaxation of everything *before* the frontier so the
    guest's starting distances are consistent."""
    import heapq
    heap = [(0, source)]
    settled = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled or u in frontier_set:
            continue
        settled.add(u)
        for j in range(offsets[u], offsets[u + 1]):
            v = int(neighbors[j])
            nd = d + int(weights[j])
            if nd < dist[v]:
                dist[v] = nd
                if v not in frontier_set:
                    heapq.heappush(heap, (nd, v))


def _ref_sssp(offsets, neighbors, weights, dist_init, frontier):
    dist = list(dist_init)
    worklist = list(frontier)
    idx = 0
    while idx < len(worklist):
        u = worklist[idx]
        idx += 1
        du = dist[u]
        for j in range(offsets[u], offsets[u + 1]):
            v = int(neighbors[j])
            nd = du + int(weights[j])
            if nd < dist[v]:
                dist[v] = nd
                worklist.append(v)
    return dist


# ---------------------------------------------------------------------------
# Betweenness Centrality (Brandes forward phase: depths + path counts)
# ---------------------------------------------------------------------------
class BetweennessCentrality(GapWorkload):
    name = "bc"

    def build(self, memory_bytes=256 * 1024 * 1024, seed=12345):
        offsets, neighbors = self._load_graph()
        num_nodes = len(offsets) - 1
        source = pick_source(offsets, rng_seed=seed)
        depth, sigma, frontier = _ref_bc_seed(offsets, neighbors, source)

        mem = self._new_memory(memory_bytes)
        base_off, base_ngh = self._alloc_csr(mem, offsets, neighbors)
        base_dep = mem.alloc_array(depth, "depth")
        base_sig = mem.alloc_array(sigma, "sigma")
        worklist = np.zeros(num_nodes + 64, dtype=np.int64)
        worklist[:len(frontier)] = frontier
        base_wl = mem.alloc_array(worklist, "worklist")
        program = _bc_program(base_wl, base_sig, base_dep, base_off,
                              base_ngh, tail=len(frontier))
        depth_init, sigma_init = depth.copy(), sigma.copy()

        def reference_check(final_mem):
            exp_dep, exp_sig = _ref_bc(offsets, neighbors, depth_init,
                                       sigma_init, list(frontier))
            got_dep = final_mem.read_array(base_dep, num_nodes)
            got_sig = final_mem.read_array(base_sig, num_nodes)
            return exp_dep == got_dep and exp_sig == got_sig

        return BuiltWorkload(
            f"{self.name}_{self.graph}", program, mem,
            metadata={"graph": self.graph, "nodes": num_nodes,
                      "edges": len(neighbors), "frontier": len(frontier)},
            reference_check=reference_check)


def _bc_program(base_wl, base_sig, base_dep, base_off, base_ngh, tail):
    a = Assembler("bc")
    for name, reg in [("rWl", 1), ("rSig", 2), ("rDep", 3), ("rOff", 4),
                      ("rNgh", 5), ("rIdx", 6), ("rTail", 7), ("rU", 8),
                      ("rSu", 9), ("rDn", 10), ("rS", 11), ("rE", 12),
                      ("rV", 13), ("rT", 14), ("rC", 15), ("rT2", 16)]:
        a.alias(name, reg)
    a.li("rWl", base_wl)
    a.li("rSig", base_sig)
    a.li("rDep", base_dep)
    a.li("rOff", base_off)
    a.li("rNgh", base_ngh)
    a.li("rIdx", 0)
    a.li("rTail", tail)
    a.label("outer")
    a.cmplt("rC", "rIdx", "rTail")
    a.bez("rC", "done")
    a.loadx("rU", "rWl", "rIdx")      # outer stride
    a.addi("rIdx", "rIdx", 1)
    a.loadx("rSu", "rSig", "rU")      # sigma[u]
    a.loadx("rDn", "rDep", "rU")      # depth[u]
    a.addi("rDn", "rDn", 1)           # children's depth
    a.loadx("rS", "rOff", "rU")
    a.addi("rT", "rU", 1)
    a.loadx("rE", "rOff", "rT")
    a.cmplt("rC", "rS", "rE")
    a.bez("rC", "outer")
    a.label("inner")
    a.loadx("rV", "rNgh", "rS")       # inner stride
    a.addi("rS", "rS", 1)
    a.loadx("rT", "rDep", "rV")       # depth[v] (indirect)
    a.cmplti("rC", "rT", 0)
    a.bez("rC", "maybe_sibling")
    a.storex("rDn", "rDep", "rV")     # first visit: set depth
    a.storex("rSu", "rSig", "rV")     # inherit path count
    a.storex("rV", "rWl", "rTail")
    a.addi("rTail", "rTail", 1)
    a.jmp("bcskip")
    a.label("maybe_sibling")
    a.cmpeq("rC", "rT", "rDn")        # another shortest path to v?
    a.bez("rC", "bcskip")
    a.loadx("rT2", "rSig", "rV")
    a.add("rT2", "rT2", "rSu")
    a.storex("rT2", "rSig", "rV")     # sigma[v] += sigma[u]
    a.label("bcskip")
    a.cmplt("rC", "rS", "rE")
    a.bnz("rC", "inner")
    a.jmp("outer")
    a.label("done")
    a.halt()
    return a.build()


def _ref_bc_seed(offsets, neighbors, source):
    """Host-side Brandes forward phase up to a representative frontier."""
    num_nodes = len(offsets) - 1
    depth = np.full(num_nodes, -1, dtype=np.int64)
    sigma = np.zeros(num_nodes, dtype=np.int64)
    depth[source] = 0
    sigma[source] = 1
    worklist = [source]
    idx = 0
    level_start = 0
    frontier = [source]
    while idx < len(worklist):
        if idx == level_start:
            frontier = worklist[level_start:]
            if len(frontier) >= 64:
                # This level is representative: the guest processes it.
                return depth, sigma, np.array(frontier, dtype=np.int64)
            level_start = len(worklist)
        u = worklist[idx]
        idx += 1
        du = depth[u]
        for j in range(offsets[u], offsets[u + 1]):
            v = int(neighbors[j])
            if depth[v] < 0:
                depth[v] = du + 1
                sigma[v] = sigma[u]
                worklist.append(v)
            elif depth[v] == du + 1:
                sigma[v] += sigma[u]
    return depth, sigma, np.array(frontier, dtype=np.int64)


def _ref_bc(offsets, neighbors, depth_init, sigma_init, frontier):
    depth = list(depth_init)
    sigma = list(sigma_init)
    worklist = list(frontier)
    idx = 0
    while idx < len(worklist):
        u = worklist[idx]
        idx += 1
        du1 = depth[u] + 1
        su = sigma[u]
        for j in range(offsets[u], offsets[u + 1]):
            v = int(neighbors[j])
            if depth[v] < 0:
                depth[v] = du1
                sigma[v] = su
                worklist.append(v)
            elif depth[v] == du1:
                sigma[v] += su
    return depth, sigma
