"""The hpc-db workloads (paper Section 5): Camel, Graph500, HJ2, HJ8,
Kangaroo, NAS-CG, NAS-IS, and RandomAccess.

These are the database / HPC kernels used by the Vector Runahead line of
work.  Where the original source is not available offline, the kernel is
reconstructed from its published description (see DESIGN.md):

* **Camel** -- the paper's Figure 1 pattern verbatim:
  ``C[hash(B[hash(A[i])])]++`` (two levels of hashed indirection).
* **Graph500** -- top-down BFS on a Graph500 Kronecker graph (the paper's
  Algorithm 1); reuses the GAP BFS kernel on the KR input.
* **HJ2 / HJ8** -- hash-join probe with two / eight hash probes per key.
* **Kangaroo** -- two-table cuckoo-style probe with a displacement hop
  (miss in table 1 -> rehash into table 2).
* **NAS-CG** -- the sparse matrix-vector inner product ``sum +=
  a[j] * x[col[j]]``.
* **NAS-IS** -- integer-sort bucket counting ``count[key[i]]++``.
* **RandomAccess** -- HPCC GUPS: ``table[ran[i] & mask] ^= ran[i]``.
"""

from __future__ import annotations

import numpy as np

from ..isa.assembler import Assembler
from ..isa.instructions import hash64
from .base import BuiltWorkload, Workload
from .gap import Bfs


class Camel(Workload):
    """Figure 1: two-level hashed indirect histogram update."""

    name = "camel"
    domain = "hpc-db"

    def __init__(self, num_keys=1 << 16, log2_table=18, seed=12345):
        super().__init__(num_keys=num_keys, log2_table=log2_table, seed=seed)
        self.num_keys = num_keys
        self.log2_table = log2_table
        self.seed = seed

    def build(self, memory_bytes=256 * 1024 * 1024, seed=None):
        seed = self.seed if seed is None else seed
        rng = np.random.default_rng(seed)
        table_size = 1 << self.log2_table
        mask = table_size - 1
        a_vals = rng.integers(0, 1 << 30, size=self.num_keys).astype(np.int64)
        b_vals = rng.integers(0, 1 << 30, size=table_size).astype(np.int64)

        mem = self._new_memory(memory_bytes)
        base_a = mem.alloc_array(a_vals, "A")
        base_b = mem.alloc_array(b_vals, "B")
        base_c = mem.alloc_array(np.zeros(table_size, dtype=np.int64), "C")

        a = Assembler("camel")
        for name, reg in [("rA", 1), ("rB", 2), ("rC", 3), ("rI", 4),
                          ("rN", 5), ("rT", 6), ("rH", 7), ("rM", 8),
                          ("rCnd", 9)]:
            a.alias(name, reg)
        a.li("rA", base_a)
        a.li("rB", base_b)
        a.li("rC", base_c)
        a.li("rI", 0)
        a.li("rN", self.num_keys)
        a.li("rM", mask)
        a.alias("rT2", 10)
        a.label("loop")
        a.loadx("rT", "rA", "rI")     # A[i]            (striding)
        a.hash("rH", "rT")            # hash: mixer + finalization chain,
        a.shri("rT2", "rH", 13)       # as the x86 kernels compute it
        a.xor("rH", "rH", "rT2")
        a.and_("rH", "rH", "rM")
        a.loadx("rT", "rB", "rH")     # B[hash(A[i])]   (indirect 1)
        a.hash("rH", "rT")
        a.shri("rT2", "rH", 13)
        a.xor("rH", "rH", "rT2")
        a.and_("rH", "rH", "rM")
        a.loadx("rT", "rC", "rH")     # C[hash(...)]    (indirect 2)
        a.addi("rT", "rT", 1)
        a.storex("rT", "rC", "rH")    # ...++
        a.addi("rI", "rI", 1)
        a.cmplt("rCnd", "rI", "rN")
        a.bnz("rCnd", "loop")
        a.halt()
        program = a.build()

        def _mix(value):
            h = hash64(value)
            return (h ^ ((h & ((1 << 64) - 1)) >> 13)) & mask

        def reference_check(final_mem):
            expect = [0] * table_size
            for value in a_vals.tolist():
                h1 = _mix(value)
                h2 = _mix(int(b_vals[h1]))
                expect[h2] += 1
            got = final_mem.read_array(base_c, table_size)
            return expect == got

        return BuiltWorkload(
            self.name, program, mem,
            metadata={"keys": self.num_keys, "table": table_size},
            reference_check=reference_check)


class Graph500(Bfs):
    """Graph500 top-down BFS step on the Kronecker input."""

    name = "graph500"
    domain = "hpc-db"
    graph_default = "KR"

    def build(self, memory_bytes=256 * 1024 * 1024, seed=12345):
        built = super().build(memory_bytes=memory_bytes, seed=seed + 500)
        built.name = "graph500"
        return built


class HashJoin(Workload):
    """Hash-join probe: each key tries ``probes`` hash functions."""

    name = "hj"
    domain = "hpc-db"
    probes = 2

    def __init__(self, num_keys=1 << 15, log2_table=19, seed=12345):
        super().__init__(num_keys=num_keys, log2_table=log2_table, seed=seed)
        self.num_keys = num_keys
        self.log2_table = log2_table
        self.seed = seed

    def build(self, memory_bytes=256 * 1024 * 1024, seed=None):
        seed = self.seed if seed is None else seed
        rng = np.random.default_rng(seed)
        table_size = 1 << self.log2_table
        mask = table_size - 1
        # Build-side: insert half the keys via their first hash.
        keys = rng.integers(1, 1 << 30, size=self.num_keys).astype(np.int64)
        table = np.zeros(table_size, dtype=np.int64)

        def _bucket(key, probe):
            h = hash64(key + probe)
            return (h ^ ((h & ((1 << 64) - 1)) >> 13)) & mask

        for key in keys[: self.num_keys // 2].tolist():
            table[_bucket(key, 0)] = key

        mem = self._new_memory(memory_bytes)
        base_keys = mem.alloc_array(keys, "keys")
        base_table = mem.alloc_array(table, "table")
        base_out = mem.alloc_array([0], "matches")

        a = Assembler(f"hj{self.probes}")
        for name, reg in [("rKeys", 1), ("rTab", 2), ("rOut", 3), ("rI", 4),
                          ("rN", 5), ("rK", 6), ("rP", 7), ("rNP", 8),
                          ("rH", 9), ("rB", 10), ("rM", 11), ("rCnd", 12),
                          ("rMatch", 13), ("rT", 14)]:
            a.alias(name, reg)
        a.li("rKeys", base_keys)
        a.li("rTab", base_table)
        a.li("rOut", base_out)
        a.li("rI", 0)
        a.li("rN", self.num_keys)
        a.li("rM", mask)
        a.li("rMatch", 0)
        a.li("rNP", self.probes)
        a.label("outer")
        a.loadx("rK", "rKeys", "rI")   # key = keys[i]  (striding)
        a.li("rP", 0)
        a.label("probe")
        a.add("rT", "rK", "rP")        # probe p: hash(key + p)
        a.hash("rH", "rT")
        a.shri("rT", "rH", 13)         # hash finalization chain
        a.xor("rH", "rH", "rT")
        a.and_("rH", "rH", "rM")
        a.loadx("rB", "rTab", "rH")    # bucket load (indirect)
        a.cmpeq("rCnd", "rB", "rK")
        a.bez("rCnd", "nohit")
        a.addi("rMatch", "rMatch", 1)
        a.label("nohit")
        a.addi("rP", "rP", 1)
        a.cmplt("rCnd", "rP", "rNP")
        a.bnz("rCnd", "probe")         # bottom-tested inner loop
        a.addi("rI", "rI", 1)
        a.cmplt("rCnd", "rI", "rN")
        a.bnz("rCnd", "outer")
        a.li("rT", 0)
        a.storex("rMatch", "rOut", "rT")
        a.halt()
        program = a.build()

        probes = self.probes

        def reference_check(final_mem):
            matches = 0
            for key in keys.tolist():
                for p in range(probes):
                    if int(table[_bucket(key, p)]) == key:
                        matches += 1
            return final_mem.read_word(base_out) == matches

        return BuiltWorkload(
            f"hj{self.probes}", program, mem,
            metadata={"keys": self.num_keys, "table": table_size,
                      "probes": self.probes},
            reference_check=reference_check)


class Hj2(HashJoin):
    name = "hj2"
    probes = 2


class Hj8(HashJoin):
    name = "hj8"
    probes = 8


class Kangaroo(Workload):
    """Cuckoo-style two-table probe with a displacement hop."""

    name = "kangaroo"
    domain = "hpc-db"

    def __init__(self, num_keys=1 << 15, log2_table=18, seed=12345):
        super().__init__(num_keys=num_keys, log2_table=log2_table, seed=seed)
        self.num_keys = num_keys
        self.log2_table = log2_table
        self.seed = seed

    def build(self, memory_bytes=256 * 1024 * 1024, seed=None):
        seed = self.seed if seed is None else seed
        rng = np.random.default_rng(seed)
        table_size = 1 << self.log2_table
        mask = table_size - 1
        keys = rng.integers(1, 1 << 30, size=self.num_keys).astype(np.int64)
        table1 = np.zeros(table_size, dtype=np.int64)
        table2 = np.zeros(table_size, dtype=np.int64)
        def _slot(value):
            h = hash64(value)
            return (h ^ ((h & ((1 << 64) - 1)) >> 13)) & mask

        for key in keys[::3].tolist():          # third of keys in table 1
            table1[_slot(key)] = key
        for key in keys[1::3].tolist():         # third in table 2
            table2[_slot(key ^ 0x5BD1E995)] = key

        mem = self._new_memory(memory_bytes)
        base_keys = mem.alloc_array(keys, "keys")
        base_t1 = mem.alloc_array(table1, "table1")
        base_t2 = mem.alloc_array(table2, "table2")
        base_out = mem.alloc_array([0], "found")

        a = Assembler("kangaroo")
        for name, reg in [("rKeys", 1), ("rT1", 2), ("rT2", 3), ("rOut", 4),
                          ("rI", 5), ("rN", 6), ("rK", 7), ("rH", 8),
                          ("rV", 9), ("rM", 10), ("rCnd", 11),
                          ("rFound", 12), ("rX", 13), ("rZero", 14)]:
            a.alias(name, reg)
        a.li("rKeys", base_keys)
        a.li("rT1", base_t1)
        a.li("rT2", base_t2)
        a.li("rOut", base_out)
        a.li("rI", 0)
        a.li("rN", self.num_keys)
        a.li("rM", mask)
        a.li("rFound", 0)
        a.li("rZero", 0)
        a.label("loop")
        a.loadx("rK", "rKeys", "rI")   # striding
        a.hash("rH", "rK")
        a.shri("rX", "rH", 13)
        a.xor("rH", "rH", "rX")
        a.and_("rH", "rH", "rM")
        a.loadx("rV", "rT1", "rH")     # first hop
        a.cmpeq("rCnd", "rV", "rK")
        a.bnz("rCnd", "hit")
        a.li("rX", 0x5BD1E995)
        a.xor("rX", "rK", "rX")
        a.hash("rH", "rX")
        a.shri("rX", "rH", 13)
        a.xor("rH", "rH", "rX")
        a.and_("rH", "rH", "rM")
        a.loadx("rV", "rT2", "rH")     # second hop (divergent path)
        a.cmpeq("rCnd", "rV", "rK")
        a.bez("rCnd", "next")
        a.label("hit")
        a.addi("rFound", "rFound", 1)
        a.label("next")
        a.addi("rI", "rI", 1)
        a.cmplt("rCnd", "rI", "rN")
        a.bnz("rCnd", "loop")
        a.storex("rFound", "rOut", "rZero")
        a.halt()
        program = a.build()

        def reference_check(final_mem):
            found = 0
            for key in keys.tolist():
                if int(table1[_slot(key)]) == key:
                    found += 1
                elif int(table2[_slot(key ^ 0x5BD1E995)]) == key:
                    found += 1
            return final_mem.read_word(base_out) == found

        return BuiltWorkload(
            self.name, program, mem,
            metadata={"keys": self.num_keys, "table": table_size},
            reference_check=reference_check)


class NasCg(Workload):
    """NAS-CG sparse matrix-vector inner product."""

    name = "nas-cg"
    domain = "hpc-db"

    def __init__(self, num_rows=1 << 14, nnz_per_row=16, log2_x=17,
                 seed=12345):
        super().__init__(num_rows=num_rows, nnz_per_row=nnz_per_row,
                         log2_x=log2_x, seed=seed)
        self.num_rows = num_rows
        self.nnz_per_row = nnz_per_row
        self.log2_x = log2_x
        self.seed = seed

    def build(self, memory_bytes=256 * 1024 * 1024, seed=None):
        seed = self.seed if seed is None else seed
        rng = np.random.default_rng(seed)
        x_size = 1 << self.log2_x
        # Row lengths vary around the mean (CG rows are not uniform).
        lengths = rng.integers(self.nnz_per_row // 2,
                               self.nnz_per_row * 3 // 2 + 1,
                               size=self.num_rows)
        offsets = np.zeros(self.num_rows + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        nnz = int(offsets[-1])
        cols = rng.integers(0, x_size, size=nnz).astype(np.int64)
        vals = rng.integers(1, 100, size=nnz).astype(np.int64)
        x = rng.integers(1, 100, size=x_size).astype(np.int64)

        mem = self._new_memory(memory_bytes)
        base_off = mem.alloc_array(offsets, "offsets")
        base_col = mem.alloc_array(cols, "cols")
        base_val = mem.alloc_array(vals, "vals")
        base_x = mem.alloc_array(x, "x")
        base_y = mem.alloc_array(np.zeros(self.num_rows, dtype=np.int64), "y")

        a = Assembler("nas-cg")
        for name, reg in [("rOff", 1), ("rCol", 2), ("rVal", 3), ("rX", 4),
                          ("rY", 5), ("rRow", 6), ("rN", 7), ("rS", 8),
                          ("rE", 9), ("rSum", 10), ("rC", 11), ("rT", 12),
                          ("rU", 13), ("rW", 14)]:
            a.alias(name, reg)
        a.li("rOff", base_off)
        a.li("rCol", base_col)
        a.li("rVal", base_val)
        a.li("rX", base_x)
        a.li("rY", base_y)
        a.li("rRow", 0)
        a.li("rN", self.num_rows)
        a.label("rowloop")
        a.loadx("rS", "rOff", "rRow")  # outer stride
        a.addi("rT", "rRow", 1)
        a.loadx("rE", "rOff", "rT")
        a.li("rSum", 0)
        a.cmplt("rC", "rS", "rE")
        a.bez("rC", "rowdone")
        a.label("inner")
        a.loadx("rU", "rCol", "rS")    # col[j]  (inner stride)
        a.loadx("rW", "rVal", "rS")    # a[j]
        a.addi("rS", "rS", 1)
        a.loadx("rT", "rX", "rU")      # x[col[j]]  (indirect)
        a.mul("rT", "rT", "rW")
        a.add("rSum", "rSum", "rT")
        a.cmplt("rC", "rS", "rE")
        a.bnz("rC", "inner")
        a.label("rowdone")
        a.storex("rSum", "rY", "rRow")
        a.addi("rRow", "rRow", 1)
        a.cmplt("rC", "rRow", "rN")
        a.bnz("rC", "rowloop")
        a.halt()
        program = a.build()
        num_rows = self.num_rows

        def reference_check(final_mem):
            expect = []
            for row in range(num_rows):
                total = 0
                for j in range(int(offsets[row]), int(offsets[row + 1])):
                    total += int(vals[j]) * int(x[cols[j]])
                expect.append(total)
            got = final_mem.read_array(base_y, num_rows)
            return expect == got

        return BuiltWorkload(
            self.name, program, mem,
            metadata={"rows": self.num_rows, "nnz": nnz},
            reference_check=reference_check)


class NasIs(Workload):
    """NAS-IS bucket counting: count[key[i]]++ (simple indirection --
    the pattern IMP handles well)."""

    name = "nas-is"
    domain = "hpc-db"

    def __init__(self, num_keys=1 << 16, log2_buckets=17, seed=12345):
        super().__init__(num_keys=num_keys, log2_buckets=log2_buckets,
                         seed=seed)
        self.num_keys = num_keys
        self.log2_buckets = log2_buckets
        self.seed = seed

    def build(self, memory_bytes=256 * 1024 * 1024, seed=None):
        seed = self.seed if seed is None else seed
        rng = np.random.default_rng(seed)
        buckets = 1 << self.log2_buckets
        keys = rng.integers(0, 1 << 30, size=self.num_keys).astype(np.int64)

        mem = self._new_memory(memory_bytes)
        base_keys = mem.alloc_array(keys, "keys")
        base_cnt = mem.alloc_array(np.zeros(buckets, dtype=np.int64),
                                   "count")

        a = Assembler("nas-is")
        for name, reg in [("rKeys", 1), ("rCnt", 2), ("rI", 3), ("rN", 4),
                          ("rK", 5), ("rT", 6), ("rC", 7)]:
            a.alias(name, reg)
        a.alias("rM", 8)
        a.li("rKeys", base_keys)
        a.li("rCnt", base_cnt)
        a.li("rI", 0)
        a.li("rN", self.num_keys)
        a.li("rM", buckets - 1)
        a.label("loop")
        a.loadx("rK", "rKeys", "rI")   # striding index load
        a.shri("rK", "rK", 5)          # bucket extraction (key >> shift)
        a.and_("rK", "rK", "rM")
        a.loadx("rT", "rCnt", "rK")    # count[bucket]  (indirect)
        a.addi("rT", "rT", 1)
        a.storex("rT", "rCnt", "rK")
        a.addi("rI", "rI", 1)
        a.cmplt("rC", "rI", "rN")
        a.bnz("rC", "loop")
        a.halt()
        program = a.build()

        def reference_check(final_mem):
            bucket_ids = (keys >> 5) & (buckets - 1)
            expect = np.bincount(bucket_ids, minlength=buckets)
            got = final_mem.read_array(base_cnt, buckets)
            return expect.tolist() == got

        return BuiltWorkload(
            self.name, program, mem,
            metadata={"keys": self.num_keys, "buckets": buckets},
            reference_check=reference_check)


class RandomAccess(Workload):
    """HPCC GUPS: table[ran[i] & mask] ^= ran[i]."""

    name = "randomaccess"
    domain = "hpc-db"

    def __init__(self, num_updates=1 << 16, log2_table=20, seed=12345):
        super().__init__(num_updates=num_updates, log2_table=log2_table,
                         seed=seed)
        self.num_updates = num_updates
        self.log2_table = log2_table
        self.seed = seed

    def build(self, memory_bytes=256 * 1024 * 1024, seed=None):
        seed = self.seed if seed is None else seed
        rng = np.random.default_rng(seed)
        table_size = 1 << self.log2_table
        mask = table_size - 1
        ran = rng.integers(1, 1 << 50, size=self.num_updates).astype(np.int64)
        table_init = np.arange(table_size, dtype=np.int64)

        mem = self._new_memory(memory_bytes)
        base_ran = mem.alloc_array(ran, "ran")
        base_table = mem.alloc_array(table_init, "table")

        a = Assembler("randomaccess")
        for name, reg in [("rRan", 1), ("rTab", 2), ("rI", 3), ("rN", 4),
                          ("rR", 5), ("rH", 6), ("rT", 7), ("rM", 8),
                          ("rC", 9)]:
            a.alias(name, reg)
        a.li("rRan", base_ran)
        a.li("rTab", base_table)
        a.li("rI", 0)
        a.li("rN", self.num_updates)
        a.li("rM", mask)
        a.alias("rT2", 10)
        a.label("loop")
        a.loadx("rR", "rRan", "rI")    # ran[i]    (striding)
        a.shli("rT2", "rR", 7)         # GUPS index mixing (dependent ALU
        a.xor("rH", "rR", "rT2")       # chain before the table access)
        a.shri("rT2", "rH", 9)
        a.xor("rH", "rH", "rT2")
        a.and_("rH", "rH", "rM")
        a.loadx("rT", "rTab", "rH")    # table[h]  (indirect)
        a.xor("rT", "rT", "rR")
        a.storex("rT", "rTab", "rH")
        a.addi("rI", "rI", 1)
        a.cmplt("rC", "rI", "rN")
        a.bnz("rC", "loop")
        a.halt()
        program = a.build()

        _mask64 = (1 << 64) - 1

        def _index(value):
            mixed = value ^ ((value << 7) & _mask64)
            if mixed >= 1 << 63:
                mixed -= 1 << 64
            mixed ^= (mixed & _mask64) >> 9
            return mixed & mask

        def reference_check(final_mem):
            expect = table_init.copy()
            for value in ran.tolist():
                expect[_index(value)] ^= value
            got = final_mem.read_array(base_table, table_size)
            return expect.tolist() == got

        return BuiltWorkload(
            self.name, program, mem,
            metadata={"updates": self.num_updates, "table": table_size},
            reference_check=reference_check)
