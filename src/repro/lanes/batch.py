"""LaneBatch: N independent sims advanced in lockstep by one loop.

Each lane owns a full ``(core, hierarchy, engine)`` triple built through
the existing :func:`~repro.harness.runner.build_sim` seam, so a lane
computes exactly what a serial :func:`~repro.harness.runner.run_spec`
call would.  The batch loop slices every live lane forward by ``step``
committed instructions per outer iteration via
:meth:`OoOCore.advance`, which only ever pauses between whole cycles --
interleaving is therefore invisible to the model and metrics stay
bit-identical (the PR-2 fast-forward machinery keeps jumping inside a
slice, because the fast-forward guard tests the run limit, not the
slice stop).

Construction is where a batch beats N serial runs: specs that differ
only in technique share one built workload.  The first lane to need a
``(workload, params, seed, inputs, memory_bytes)`` template builds it;
later lanes clone it (program and metadata are immutable after build,
so a clone is one flat copy of the guest-memory word list instead of a
full rebuild -- for graph workloads that skips graph generation, CSR
layout and the zero-fill of a multi-hundred-MB image).  The last user
of a template takes ownership of the pristine original, so nothing is
copied that doesn't have to be.

A lane that raises (model bug, sanitizer assertion) is marked failed
and detached; the other lanes' metrics are unaffected.  The caller
(:class:`~repro.lanes.executor.BatchExecutor`) routes failed lanes
through the executor's normal retry path.
"""

from __future__ import annotations

import gc
import json
import time
from collections import deque

from ..harness.runner import build_sim, build_spec_workload, collect_metrics
from ..isa.machine import GuestMemory
from ..isa.instructions import WORD_BYTES
from ..workloads.base import BuiltWorkload

#: Committed instructions per lane per outer scheduler iteration.  Small
#: enough that lanes interleave visibly, large enough that the outer
#: loop's bookkeeping is noise against the per-cycle work inside.
DEFAULT_STEP = 2_000


def template_key(spec):
    """Build identity of a spec's workload: everything except technique.

    Two specs with equal keys build byte-identical ``BuiltWorkload``
    instances (the build is deterministic in workload, params, inputs,
    seed and guest-memory size), so one can be cloned from the other.
    """
    return (spec.workload,
            json.dumps(spec.params, sort_keys=True, default=list),
            json.dumps(spec.inputs, sort_keys=True, default=list),
            spec.seed,
            spec.config.memsys.guest_memory_bytes)


def clone_built(built):
    """Fresh, independently mutable copy of a built workload.

    The program and metadata never change after build; only guest memory
    is written during simulation, so a clone is a flat copy of the word
    list -- no data generation.  Builds only write through the bump
    allocator, so everything above the allocation high-water mark is
    still zero in a pristine template; for the typical mostly-empty
    image, zero-filling and copying just the used prefix beats copying
    tens of millions of zero slots.
    """
    src = built.memory
    mem = GuestMemory.__new__(GuestMemory)
    mem.size_bytes = src.size_bytes
    mem.num_words = src.num_words
    high_water = (src._next_free + WORD_BYTES - 1) // WORD_BYTES
    if high_water * 3 < src.num_words:
        words = [0] * src.num_words
        words[:high_water] = src.words[:high_water]
        mem.words = words
    else:
        mem.words = src.words.copy()
    mem._next_free = src._next_free
    return BuiltWorkload(built.name, built.program, mem,
                         metadata=dict(built.metadata),
                         reference_check=built.reference_check)


class TemplateStore:
    """Reference-counted cache of built workloads for one batch.

    ``reserve()`` counts how many specs will use each template;
    ``checkout()`` builds on first use, clones for middle users, and
    hands the pristine original to the last user (templates are never
    simulated directly, so the original stays clean until then).
    """

    def __init__(self):
        self._templates = {}
        self._remaining = {}

    def reserve(self, specs):
        for spec in specs:
            key = template_key(spec)
            self._remaining[key] = self._remaining.get(key, 0) + 1

    def checkout(self, spec):
        key = template_key(spec)
        remaining = self._remaining.get(key, 1)
        template = self._templates.get(key)
        if template is None:
            template = build_spec_workload(spec)
            if remaining > 1:
                self._templates[key] = template
        self._remaining[key] = remaining - 1
        if remaining <= 1:
            self._templates.pop(key, None)
            return template
        return clone_built(template)


class Lane:
    """One sim instance inside a batch, with its own clock and status."""

    __slots__ = ("index", "spec", "built", "core", "status", "wall_s",
                 "metrics", "error")

    def __init__(self, index, spec):
        self.index = index            # position in the batch's spec list
        self.spec = spec
        self.built = None
        self.core = None
        self.status = "pending"       # pending -> running -> done | failed
        self.wall_s = 0.0             # this lane's own build + sim seconds
        self.metrics = None
        self.error = None

    @property
    def live(self):
        return self.status == "running"


class LaneBatch:
    """Advance up to ``lanes`` sims in lockstep until all specs retire.

    Per-lane clocks (``core.now``), commit counts and statuses live in
    the lanes themselves; the batch keeps them in one flat list and
    round-robins every live lane per outer iteration.  When a lane
    retires (its core hits ``max_instructions``) or fails, the next
    pending spec takes its slot.
    """

    def __init__(self, specs, lanes=8, step=DEFAULT_STEP,
                 on_lane_start=None):
        self.specs = list(specs)
        self.lanes = max(1, int(lanes))
        self.step = max(1, int(step))
        #: Test seam: called with each Lane right after construction.
        self.on_lane_start = on_lane_start
        self.templates = TemplateStore()

    def run(self, on_finish=None):
        """Run every spec; returns Lanes aligned with the input order.

        ``on_finish(lane)`` fires as each lane retires or fails --
        streaming, not batched, so callers can cache/ledger/report while
        the rest of the batch is still running.
        """
        lanes = [Lane(i, spec) for i, spec in enumerate(self.specs)]
        self.templates.reserve(self.specs)
        pending = deque(lanes)
        live = []
        perf_counter = time.perf_counter
        step = self.step
        # Cyclic GC pauses scale with the number of live objects, and a
        # batch keeps N whole guest-memory images (tens of millions of
        # list slots each) resident at once -- automatic collections run
        # mid-batch cost more than the simulation itself.  Lane teardown
        # frees everything big by refcount, so collection is deferred to
        # batch end (same discipline as the bench harness's timed runs).
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self._run_loop(pending, live, on_finish, perf_counter, step)
        finally:
            if gc_was_enabled:
                gc.enable()
                gc.collect()
        return lanes

    def _run_loop(self, pending, live, on_finish, perf_counter, step):
        while live or pending:
            # Fill free slots before each sweep over the live lanes.
            while pending and len(live) < self.lanes:
                lane = pending.popleft()
                if self._start_lane(lane):
                    live.append(lane)
                elif on_finish is not None:
                    on_finish(lane)       # failed during construction
            # One lockstep iteration: every live lane moves ``step``
            # committed instructions (or to its next failure/retirement).
            retired = False
            for lane in live:
                start = perf_counter()
                try:
                    more = lane.core.advance(step)
                except Exception as error:   # sanitizer assertion, model bug
                    lane.wall_s += perf_counter() - start
                    lane.status = "failed"
                    lane.error = error
                    retired = True
                    continue
                if not more:
                    lane.core.finish()
                    lane.metrics = collect_metrics(
                        lane.built, lane.spec.config, lane.core)
                    lane.wall_s += perf_counter() - start
                    lane.status = "done"
                    lane.core = None      # release sim + memory image
                    lane.built = None
                    retired = True
                else:
                    lane.wall_s += perf_counter() - start
            if retired:
                for lane in live:
                    if not lane.live and on_finish is not None:
                        on_finish(lane)
                live[:] = [lane for lane in live if lane.live]

    def _start_lane(self, lane):
        """Build one lane's sim (template checkout + build_sim)."""
        start = time.perf_counter()
        try:
            built = self.templates.checkout(lane.spec)
            lane.built = built
            lane.core = build_sim(built, lane.spec.config)
            lane.core.start(lane.spec.config.max_instructions)
        except Exception as error:
            lane.wall_s += time.perf_counter() - start
            lane.status = "failed"
            lane.error = error
            return False
        lane.wall_s += time.perf_counter() - start
        lane.status = "running"
        if self.on_lane_start is not None:
            self.on_lane_start(lane)
        return True
