"""BatchExecutor: the Executor contract on top of LaneBatch.

Dedup, cache lookup, resume, the ledger and the retry story are all
inherited untouched from :class:`~repro.jobs.executor.Executor`; only
the backend hook (``_run_pending``) changes -- cache misses run as one
lockstep lane batch instead of one nested event loop per job.  A lane
that fails (construction error, sanitizer assertion, model bug) goes
through the standard one-retry-in-parent path, which re-runs the spec
serially via :func:`~repro.harness.runner.run_spec` -- the reference
implementation the batch is bit-identical to.
"""

from __future__ import annotations

from ..jobs.executor import Executor
from .batch import DEFAULT_STEP, LaneBatch, template_key


class BatchExecutor(Executor):
    """Run cache misses as up to ``lanes`` lockstep in-process sims."""

    def __init__(self, lanes=8, step=DEFAULT_STEP, **kwargs):
        super().__init__(**kwargs)
        self.lanes = max(1, int(lanes))
        self.step = step

    def _run_pending(self, pending, unique, results, cached):
        ordered = self._batch_order(self._schedule(pending))
        failed = []

        def on_finish(lane):
            if lane.status == "done":
                self._finish_job(lane.spec, lane.metrics, unique, results,
                                 cached, wall_s=lane.wall_s,
                                 worker=f"lane{lane.index}", status="ok")
            else:
                failed.append(lane)

        LaneBatch(ordered, lanes=self.lanes, step=self.step).run(on_finish)
        for lane in failed:
            try:
                metrics, wall_s = self._retry_in_parent(lane.spec, lane.error)
            except Exception as failure:    # JobError: raise or report
                self._give_up(lane.spec, failure, 2, unique, results, cached)
                continue
            self._finish_job(lane.spec, metrics, unique, results, cached,
                             wall_s=wall_s, worker="parent",
                             status="retried", retries=1)

    @staticmethod
    def _batch_order(specs):
        """Group specs sharing a build template, keeping schedule order.

        Template sharing works at any distance (the store is
        reference-counted), but adjacency bounds how long each pristine
        template stays resident.  Groups keep the longest-first order of
        their first member; specs keep their order within a group.
        """
        groups = {}
        for spec in specs:
            groups.setdefault(template_key(spec), []).append(spec)
        return [spec for group in groups.values() for spec in group]
