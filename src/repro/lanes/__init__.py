"""Batch-lane lockstep simulation: step N sims per Python iteration.

A sweep is an embarrassingly parallel set of independent simulator
instances; running them one nested event loop at a time pays full
per-job construction and scheduling overhead for every spec.  This
package runs up to N instances ("lanes") inside one process with a
single Python-level scheduler loop advancing every live lane per
iteration, sharing built-workload templates between lanes that differ
only in technique, and retiring lanes independently as each hits its
instruction limit.  Metrics are bit-identical to the serial path.

:class:`LaneBatch` is the scheduler; :class:`BatchExecutor` wraps it in
the standard :class:`~repro.jobs.executor.Executor` contract (dedup,
cache, ledger, retries unchanged).
"""

from .batch import DEFAULT_STEP, Lane, LaneBatch, clone_built, template_key
from .executor import BatchExecutor

__all__ = ["BatchExecutor", "DEFAULT_STEP", "Lane", "LaneBatch",
           "clone_built", "template_key"]
