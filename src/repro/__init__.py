"""Decoupled Vector Runahead (MICRO 2023) -- a full-system reproduction.

A cycle-level out-of-order core simulator in pure Python, with the
memory hierarchy, branch prediction, baseline prefetching techniques
(stride, IMP, PRE, VR, Oracle) and the paper's contribution: the
Decoupled Vector Runahead engine.

Quick start::

    from repro import SimConfig, run_workload, make_workload

    config = SimConfig(max_instructions=20_000)
    metrics = run_workload(make_workload("bfs", graph="KR"),
                           config, technique="dvr")
    print(metrics.ipc, metrics.mlp)
"""

from .config import (ALL_TECHNIQUES, DVR_BREAKDOWN, BranchConfig, CacheConfig,
                     CoreConfig, DvrConfig, ImpConfig, MemSysConfig,
                     RunaheadConfig, SimConfig, StridePrefetcherConfig,
                     TECH_DVR, TECH_DVR_DISCOVERY, TECH_DVR_OFFLOAD, TECH_IMP,
                     TECH_OOO, TECH_ORACLE, TECH_PRE, TECH_VR, paper_config,
                     table1_rows)
from .harness import (ExperimentScale, Metrics, hmean, run_built, run_spec,
                      run_techniques, run_workload)
from .jobs import JobSpec, run_specs
from .workloads import (ALL_WORKLOADS, GAP_WORKLOADS, GRAPH_INPUTS,
                        HPCDB_WORKLOADS, benchmark_matrix, make_workload)

__version__ = "0.1.0"

__all__ = [
    "ALL_TECHNIQUES",
    "ALL_WORKLOADS",
    "BranchConfig",
    "CacheConfig",
    "CoreConfig",
    "DVR_BREAKDOWN",
    "DvrConfig",
    "ExperimentScale",
    "GAP_WORKLOADS",
    "GRAPH_INPUTS",
    "HPCDB_WORKLOADS",
    "ImpConfig",
    "JobSpec",
    "MemSysConfig",
    "Metrics",
    "RunaheadConfig",
    "SimConfig",
    "StridePrefetcherConfig",
    "TECH_DVR",
    "TECH_DVR_DISCOVERY",
    "TECH_DVR_OFFLOAD",
    "TECH_IMP",
    "TECH_OOO",
    "TECH_ORACLE",
    "TECH_PRE",
    "TECH_VR",
    "__version__",
    "benchmark_matrix",
    "hmean",
    "make_workload",
    "paper_config",
    "run_built",
    "run_spec",
    "run_specs",
    "run_techniques",
    "run_workload",
    "table1_rows",
]
