"""TAGE-lite conditional branch predictor.

A faithful-in-spirit, simplified TAGE: a bimodal base table plus several
partially-tagged tables indexed by geometrically increasing global-history
lengths.  The longest-history matching table provides the prediction;
allocation on mispredict follows the standard TAGE policy.  Sized to the
paper's 8 KB budget.

Branch *targets* need no prediction in this ISA: all branches are direct,
so a BTB would be perfect and is not modelled.
"""

from __future__ import annotations


def _fold(history, length, bits):
    """Fold ``length`` bits of history into ``bits`` bits by xor."""
    history &= (1 << length) - 1
    folded = 0
    while history:
        folded ^= history & ((1 << bits) - 1)
        history >>= bits
    return folded


class _TaggedEntry:
    __slots__ = ("tag", "counter", "useful")

    def __init__(self):
        self.tag = -1
        self.counter = 0   # signed: >=0 predicts taken
        self.useful = 0


class TagePredictor:
    def __init__(self, config):
        self.config = config
        self._bimodal = [1] * (1 << config.bimodal_bits)  # 2-bit, weak-taken=1... weak-not=1? use 0..3, init 1 (weakly not-taken)
        self._bimodal_mask = (1 << config.bimodal_bits) - 1
        self._tables = []
        self._index_bits = config.tagged_bits
        self._tag_bits = config.tag_bits
        for _ in range(config.tagged_tables):
            self._tables.append(
                [_TaggedEntry() for _ in range(1 << config.tagged_bits)])
        self._histories = tuple(config.history_lengths)
        self._ghist = 0
        self.lookups = 0
        self.mispredicts = 0

    # ------------------------------------------------------------------
    def _indices(self, pc):
        indices = []
        tags = []
        mask = (1 << self._index_bits) - 1
        tag_mask = (1 << self._tag_bits) - 1
        for table_num, hist_len in enumerate(self._histories):
            folded = _fold(self._ghist, hist_len, self._index_bits)
            indices.append((pc ^ folded ^ (pc >> (table_num + 1))) & mask)
            folded_tag = _fold(self._ghist, hist_len, self._tag_bits)
            tags.append((pc ^ (folded_tag << 1)) & tag_mask)
        return indices, tags

    def predict(self, pc):
        """Return (taken?, provider_info) for a conditional branch at pc."""
        self.lookups += 1
        indices, tags = self._indices(pc)
        provider = -1
        prediction = self._bimodal[pc & self._bimodal_mask] >= 2
        for table_num in range(len(self._tables) - 1, -1, -1):
            entry = self._tables[table_num][indices[table_num]]
            if entry.tag == tags[table_num]:
                provider = table_num
                prediction = entry.counter >= 0
                break
        return prediction, (provider, indices, tags)

    def update(self, pc, taken, prediction, info):
        """Train after the branch resolves."""
        provider, indices, tags = info
        correct = prediction == taken
        if not correct:
            self.mispredicts += 1
        # Provider update
        if provider >= 0:
            entry = self._tables[provider][indices[provider]]
            if taken:
                entry.counter = min(entry.counter + 1, 3)
            else:
                entry.counter = max(entry.counter - 1, -4)
            if correct:
                entry.useful = min(entry.useful + 1, 3)
        else:
            index = pc & self._bimodal_mask
            counter = self._bimodal[index]
            if taken:
                self._bimodal[index] = min(counter + 1, 3)
            else:
                self._bimodal[index] = max(counter - 1, 0)
        # Allocation in a longer-history table on mispredict
        if not correct and provider < len(self._tables) - 1:
            for table_num in range(provider + 1, len(self._tables)):
                entry = self._tables[table_num][indices[table_num]]
                if entry.useful == 0:
                    entry.tag = tags[table_num]
                    entry.counter = 0 if taken else -1
                    break
                entry.useful -= 1
        # History update
        self._ghist = ((self._ghist << 1) | (1 if taken else 0)) & ((1 << 64) - 1)

    @property
    def mispredict_rate(self):
        if self.lookups == 0:
            return 0.0
        return self.mispredicts / self.lookups
