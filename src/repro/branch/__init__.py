"""Branch prediction."""

from .predictor import TagePredictor

__all__ = ["TagePredictor"]
