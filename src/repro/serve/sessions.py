"""Client-session registry for the serve daemon.

A *session* is one connected client (one ``repro submit`` process, one
``ServeClient``); a *sweep* is one SUBMIT frame's worth of job specs.
Sessions own sweeps, sweeps track per-key completion, and the registry
is the single place the daemon's scheduler thread looks up "who gets
this result" and "who is still alive".  The registry itself is touched
from three kinds of threads -- ``create`` on per-connection reader
threads, ``remove``/``expired`` on the scheduler, ``snapshot`` on
whatever connection asks for STATUS -- so it synchronizes internally
(``@thread_safe``): every public method takes the registry lock, and
callers never need one.  Session/Sweep objects themselves are still
mutated only on the scheduler thread once registered.
"""

from __future__ import annotations

import time

from ..analysis.threadsan import guarded_by, make_lock, thread_safe


class Sweep:
    """One submitted sweep: its unique specs and settlement progress."""

    def __init__(self, sweep_id, session_id, specs):
        self.sweep_id = sweep_id
        self.session_id = session_id
        #: key -> JobSpec, insertion-ordered, already deduplicated.
        self.specs = {spec.key: spec for spec in specs}
        self.pending = set(self.specs)
        self.done = 0
        self.cached = 0
        self.failed = {}             # key -> error string
        self.submitted_at = time.monotonic()

    @property
    def total(self):
        return len(self.specs)

    @property
    def settled(self):
        return not self.pending

    def settle(self, key, *, ok, cached=False):
        """Mark one key finished; returns True if it was still pending."""
        if key not in self.pending:
            return False
        self.pending.discard(key)
        if ok:
            self.done += 1
            if cached:
                self.cached += 1
        return True

    def snapshot(self):
        return {"sweep": self.sweep_id, "total": self.total,
                "done": self.done, "cached": self.cached,
                "failed": len(self.failed), "pending": len(self.pending)}


class Session:
    """Daemon-side state for one connected client."""

    def __init__(self, session_id, connection, name=None):
        self.session_id = session_id
        self.connection = connection
        self.name = name or session_id
        self.opened_at = time.monotonic()
        self.last_seen = time.monotonic()
        self.alive = True
        self.sweeps = {}             # sweep_id -> Sweep (active only)
        self.sweeps_done = 0

    def active_sweeps(self):
        return [s for s in list(self.sweeps.values()) if not s.settled]

    def snapshot(self, now):
        # list() copies: snapshots are read from connection threads while
        # the scheduler thread mutates, and a size-changed dict during
        # iteration would turn a status query into a crash.
        sweeps = list(self.sweeps.values())
        return {
            "session": self.session_id,
            "client": self.name,
            "connected_s": round(now - self.opened_at, 3),
            "last_seen_s": round(now - self.last_seen, 3),
            "active_sweeps": sum(1 for s in sweeps if not s.settled),
            "sweeps_done": self.sweeps_done,
            "sweeps": [s.snapshot() for s in sweeps],
        }


@thread_safe
class SessionRegistry:
    """Allocates session/sweep ids and answers liveness/status queries."""

    def __init__(self):
        self._lock = make_lock("SessionRegistry._lock")
        self._sessions = {}          # session_id -> Session
        self._session_counter = 0
        self._sweep_counter = 0

    def __len__(self):
        with self._lock:
            return len(self._sessions)

    def create(self, connection, name=None):
        with self._lock:
            return self._register(connection, name)

    @guarded_by("_lock")
    def _register(self, connection, name):
        self._session_counter += 1
        session_id = f"s{self._session_counter:04d}"
        session = Session(session_id, connection, name=name)
        self._sessions[session_id] = session
        return session

    def next_sweep_id(self):
        with self._lock:
            self._sweep_counter += 1
            return f"w{self._sweep_counter:05d}"

    def get(self, session_id):
        with self._lock:
            return self._sessions.get(session_id)

    def remove(self, session_id):
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is not None:
            session.alive = False
        return session

    def live(self):
        with self._lock:
            sessions = list(self._sessions.values())
        return [s for s in sessions if s.alive]

    def expired(self, now, timeout):
        """Sessions silent past ``timeout`` (vanished without a FIN)."""
        with self._lock:
            sessions = list(self._sessions.values())
        return [s for s in sessions
                if s.alive and now - s.last_seen > timeout]

    def snapshot(self, now):
        with self._lock:
            sessions = list(self._sessions.values())
        return [session.snapshot(now) for session in sessions]
