"""Serve-daemon client: submit sweeps, stream results, Executor backend.

:class:`ServeClient` speaks the protocol-v3 client dialect -- dial (TLS
under HMAC, same as workers), open a ``SESSION``, ``SUBMIT`` sweeps,
consume the ``JOB_DONE`` stream until ``SWEEP_DONE``.  A heartbeat
thread keeps the session visibly alive while the client merely listens,
mirroring the worker's design, and the daemon's heartbeat echoes bound
the client's recv timeout the same way.

:class:`ServeExecutor` plugs the client in behind the standard
``Executor.run(specs) -> [Metrics]`` contract: dedup, local cache
lookups, ledger records, progress, and input-order results are the
shared code paths, so a daemon-served sweep is bit-identical to a local
one.  Results the daemon pulled from its :class:`~.store.SharedStore`
arrive flagged ``cached`` and are recorded as ledger hits (worker
``"store"``) so they can never teach the cost model a zero-second rate.
"""

from __future__ import annotations

import os
import socket
import threading
import time

from ..cluster.protocol import (CHALLENGE, GOODBYE, HEARTBEAT, JOB_DONE,
                                PROTOCOL_VERSION, ProtocolError, REJECT,
                                SESSION, SESSION_OK, SUBMIT, SWEEP_ACCEPTED,
                                SWEEP_DONE, AuthenticationError,
                                default_secret, dial)
from ..jobs.executor import Executor, JobError


class ServeRejected(RuntimeError):
    """The daemon refused the session or a sweep (salt/version/decode)."""


class ServeClient:
    """One client session against a running ``repro serve`` daemon."""

    #: Sentinel: "no secret passed, fall back to $REPRO_CLUSTER_SECRET".
    _SECRET_FROM_ENV = object()

    def __init__(self, address, *, secret=_SECRET_FROM_ENV, tls=None,
                 client_id=None, salt=None, socket_timeout=5.0,
                 server_timeout=30.0, heartbeat_interval=2.0):
        self.address = address
        if secret is ServeClient._SECRET_FROM_ENV:
            secret = default_secret()
        self.secret = secret or None
        #: Client TLSConfig; None defers to $REPRO_TLS_* (see dial()),
        #: False forces plaintext.
        self.tls = tls
        self.client_id = client_id or \
            f"{socket.gethostname()}-{os.getpid()}"
        self._salt = salt            # tests override; None = real code_salt
        self.socket_timeout = socket_timeout
        self.server_timeout = max(server_timeout, 3 * heartbeat_interval)
        self.heartbeat_interval = heartbeat_interval
        self.session_id = None
        self._connection = None
        self._stop_beat = None

    def _code_salt(self):
        if self._salt is not None:
            return self._salt
        from ..jobs.cache import code_salt
        return code_salt()

    # ------------------------------------------------------------------
    def connect(self):
        """Dial + TLS + HMAC + SESSION handshake (idempotent)."""
        if self._connection is not None:
            return self.session_id
        connection = dial(self.address, timeout=10.0, tls=self.tls,
                          secret=self.secret)
        try:
            connection.sock.settimeout(self.socket_timeout)
            connection.send(SESSION, client=self.client_id,
                            version=PROTOCOL_VERSION, salt=self._code_salt())
            reply = self._recv_bounded(connection)
        except BaseException:
            connection.close()
            raise
        if reply is None:
            connection.close()
            raise ProtocolError("daemon closed during the session handshake")
        kind = reply.get("type")
        if kind == CHALLENGE:
            connection.close()
            raise AuthenticationError(
                "daemon requires a shared secret "
                "(--secret / $REPRO_CLUSTER_SECRET)")
        if kind == REJECT:
            connection.close()
            raise ServeRejected(reply.get("reason", "no reason given"))
        if kind != SESSION_OK:
            connection.close()
            raise ProtocolError(f"expected session-ok, got {kind!r}")
        self.session_id = reply.get("session")
        self._connection = connection
        self._stop_beat = threading.Event()
        threading.Thread(target=self._heartbeat_loop, daemon=True,
                         name=f"serve-client-beat-{self.session_id}").start()
        return self.session_id

    def _heartbeat_loop(self):
        stop, connection = self._stop_beat, self._connection
        while not stop.wait(self.heartbeat_interval):
            try:
                connection.send(HEARTBEAT)
            except OSError:
                return

    def _recv_bounded(self, connection=None):
        """recv tolerating idle timeouts but not a silent/dead daemon."""
        connection = connection or self._connection
        last_frame = time.monotonic()
        while True:
            try:
                return connection.recv()
            except socket.timeout:
                quiet_s = time.monotonic() - last_frame
                if quiet_s >= self.server_timeout:
                    raise ProtocolError(
                        f"no traffic from the serve daemon for "
                        f"{quiet_s:.0f}s (dead or partitioned)") from None

    # ------------------------------------------------------------------
    def run(self, specs, on_result):
        """Submit one sweep; stream completions into ``on_result``.

        ``on_result(spec, metrics, worker=..., retries=..., wall_s=...,
        from_store=...)`` fires on this thread per completed job (the
        same threading contract as ``Coordinator.execute``).  Returns
        ``key -> (spec, error, attempts)`` for jobs the daemon gave up
        on, so the executor's parent-retry fallback stays identical to
        the cluster backend's.
        """
        from ..harness.metrics import Metrics
        self.connect()
        specs = list(specs)
        by_key = {}
        for spec in specs:
            by_key.setdefault(spec.key, spec)
        self._connection.send(
            SUBMIT, specs=[spec.to_dict() for spec in specs])
        sweep_id = None
        failed = {}
        settled = set()
        while True:
            message = self._recv_bounded()
            if message is None:
                raise ProtocolError("daemon closed mid-sweep")
            kind = message.get("type")
            if kind == HEARTBEAT:
                continue
            if kind == REJECT:
                raise ServeRejected(message.get("reason", "sweep rejected"))
            if kind == SWEEP_ACCEPTED:
                sweep_id = message.get("sweep")
                continue
            if kind == JOB_DONE:
                if sweep_id is not None and message.get("sweep") != sweep_id:
                    continue         # a stale/unrelated sweep's stream
                key = message.get("job_id")
                spec = by_key.get(key)
                if spec is None or key in settled:
                    continue
                settled.add(key)
                if message.get("ok"):
                    on_result(spec, Metrics.from_dict(message["metrics"]),
                              worker=message.get("worker") or "serve",
                              retries=message.get("retries", 0),
                              wall_s=message.get("wall_s", 0.0),
                              from_store=message.get("cached", False))
                else:
                    failed[key] = (spec,
                                   message.get("error", "daemon error"),
                                   message.get("retries", 0))
                continue
            if kind == SWEEP_DONE:
                if sweep_id is None or message.get("sweep") == sweep_id:
                    return failed
            # Unknown frame types are ignored for forward compatibility.

    def close(self):
        if self._stop_beat is not None:
            self._stop_beat.set()
        if self._connection is not None:
            try:
                self._connection.send(GOODBYE, reason="client closed")
            except OSError:
                pass
            self._connection.close()
            self._connection = None
        self.session_id = None


class ServeExecutor(Executor):
    """Run JobSpecs: dedup -> local cache -> serve daemon -> ledger."""

    def __init__(self, client, cache=None, ledger=None, timeout=None,
                 progress=None, cost_model=None, on_failure="raise",
                 resume_index=None, failure_report=None):
        super().__init__(jobs=1, cache=cache, ledger=ledger, timeout=timeout,
                         progress=progress, cost_model=cost_model,
                         on_failure=on_failure, resume_index=resume_index,
                         failure_report=failure_report)
        self.client = client

    def _run_pending(self, pending, unique, results, cached):
        def finish(spec, metrics, *, worker, retries, wall_s,
                   from_store=False):
            # A store-served result warms the local cache but ledgers
            # as a *hit* so the cost model never learns a zero-second
            # rate from it.
            self._finish_job(spec, metrics, unique, results, cached,
                             wall_s=wall_s, worker=worker,
                             status="ok" if retries == 0 else "retried",
                             retries=retries,
                             disposition="hit" if from_store else None)

        failed = self.client.run(self._schedule(pending), finish)
        # Last resort, in input order for determinism: one in-parent
        # attempt per given-up job, mirroring the cluster backend.
        for spec in pending:
            failure = failed.get(spec.key)
            if failure is None:
                continue
            _spec, error, attempts = failure
            try:
                metrics, wall_s = self._retry_in_parent(
                    spec, RuntimeError(f"serve daemon gave up after "
                                       f"{attempts} attempt(s): {error}"))
            except JobError as exhausted:
                self._give_up(spec, exhausted, attempts + 1, unique,
                              results, cached, stage="serve")
                continue
            self._finish_job(spec, metrics, unique, results, cached,
                             wall_s=wall_s, worker="parent",
                             status="retried", retries=attempts + 1)
