"""`repro serve`: an always-on sweep service over one worker fleet.

A :class:`ServeDaemon` promotes the per-sweep
:class:`~repro.cluster.coordinator.Coordinator` into a long-running
service.  The coordinator still owns the listening socket, the TLS/HMAC
handshake, and the worker registry; the daemon adds, on top of the same
event queue:

* **client sessions** -- a dialer whose first frame is ``SESSION``
  (instead of a worker's ``HELLO``) is handed to the daemon, which
  checks its protocol version and code salt (a client built from a
  different tree would submit specs the store would mis-attribute),
  registers it, and streams results back as they complete;
* **concurrent sweep multiplexing** -- every ``SUBMIT`` frame becomes a
  sweep whose jobs enter one :class:`~.fairshare.FairShareQueue`:
  round-robin across sessions, longest-expected-first within each
  (learned from the daemon's ledger);
* **cross-sweep dedup** -- a spec key that is already queued or leased
  is *joined*, not re-run: every watching (session, sweep) receives the
  one result when it lands;
* **the shared store** -- results are published to a
  :class:`~.store.SharedStore` before they are streamed, so any other
  coordinator (or this daemon after a restart) serves them as cache
  hits.

The daemon survives the cluster fault matrix unchanged (dead workers
requeue leases with backoff, stuck jobs expire, stale-salt dialers are
rejected) plus the client-side rows: a client that disconnects
mid-sweep loses only its own undelivered results -- its queued jobs are
dropped unless another session's sweep still wants them, jobs already
on a worker finish into the store, and every other session's sweep
proceeds undisturbed.

Single-writer discipline: scheduling state (``_interest``,
``_inflight``) is mutated only on the scheduler thread; reader threads
just enqueue events, exactly the coordinator's own design.  State that
*does* cross threads is explicitly synchronized: the ``_stats``
counters (bumped on reader threads and the scheduler, read by STATUS
replies) live under the daemon lock, and the session registry and
fair-share queue are internally locked ``@thread_safe`` containers.
"""

from __future__ import annotations

import queue as queue_module
import sys
import threading
import time

from ..cluster.coordinator import Coordinator
from ..cluster.protocol import (GOODBYE, HEARTBEAT, JOB, JOB_DONE,
                                PROTOCOL_VERSION, ProtocolError, REJECT,
                                SESSION_OK, SUBMIT, SWEEP_ACCEPTED,
                                SWEEP_DONE)
from ..analysis.threadsan import make_lock
from ..cluster.scheduler import cost_model_for, longest_first
from ..jobs.ledger import NullLedger
from .fairshare import FairShareQueue, ServeJob
from .sessions import SessionRegistry, Sweep


class ServeDaemon:
    """Own the fleet; serve sweep submissions from many clients."""

    def __init__(self, host="127.0.0.1", port=0, *, store=None, ledger=None,
                 secret=Coordinator._SECRET_FROM_ENV, tls=None,
                 job_timeout=None, heartbeat_timeout=15.0,
                 session_timeout=30.0, retry_base=0.25, retry_cap=5.0,
                 max_attempts=3, worker_grace=60.0, poll_interval=0.05,
                 heartbeat_interval=2.0, quiet=False):
        self.coordinator = Coordinator(
            host=host, port=port, job_timeout=job_timeout,
            heartbeat_timeout=heartbeat_timeout, retry_base=retry_base,
            retry_cap=retry_cap, max_attempts=max_attempts,
            worker_grace=worker_grace, poll_interval=poll_interval,
            secret=secret, tls=tls)
        self.coordinator.client_handler = self._client_session
        self.coordinator.status_extra = self._status_extra
        #: SharedStore (or any get/put cache); None disables result reuse.
        self.store = store
        #: Daemon-side ledger: feeds the cost model and audits the fleet.
        self.ledger = ledger if ledger is not None else NullLedger()
        self.session_timeout = max(session_timeout, 3 * heartbeat_interval)
        self.heartbeat_interval = heartbeat_interval
        self.quiet = quiet
        self.registry = SessionRegistry()
        self.queue = FairShareQueue()
        self._interest = {}          # key -> [(session_id, sweep_id), ...]
        self._inflight = {}          # key -> ServeJob (queued or leased)
        self._cost_model = None
        self._cost_model_loaded = False
        #: Guards _stats: counters are bumped from per-connection reader
        #: threads and the scheduler, and read by STATUS replies.
        self._lock = make_lock("ServeDaemon._lock")
        self._stats = {"jobs_done": 0, "jobs_failed": 0, "store_hits": 0,
                       "sweeps_done": 0, "sessions_served": 0}
        self._started_at = None
        self._closing = False
        self._stopped = threading.Event()
        self._scheduler = None

    # -- lifecycle -----------------------------------------------------
    @property
    def address(self):
        return self.coordinator.address

    def start(self, workers=0, lanes=0):
        """Bind, start the scheduler, optionally spawn loopback workers.

        ``lanes`` > 1 spawns batch-lane workers: each holds that many
        concurrent leases and runs them as one lockstep
        :class:`~repro.lanes.batch.LaneBatch`.
        """
        self.coordinator.start()
        self._started_at = time.monotonic()
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="serve-scheduler", daemon=True)
        self._scheduler.start()
        if workers:
            extra = ("--lanes", str(lanes)) if lanes else ()
            self.coordinator.spawn_local_workers(workers, extra_args=extra)
            self.coordinator.wait_for_workers(1)
        return self.coordinator.host, self.coordinator.port

    def close(self):
        if self._closing:
            return
        self._closing = True
        for session in self.registry.live():
            session.connection.close()
        self.coordinator.close()
        if self._scheduler is not None:
            self._scheduler.join(timeout=5)
        self._stopped.set()

    def serve_forever(self):
        """Block until :meth:`close` (for the `repro serve` CLI)."""
        self._stopped.wait()

    def _log(self, text):
        if not self.quiet:
            print(f"[serve] {text}", file=sys.stderr, flush=True)

    # -- client connections (per-connection reader threads) ------------
    def _client_session(self, connection, frame):
        """Own a client connection; runs on its accept thread."""
        from ..jobs.cache import code_salt
        expected = code_salt()
        if frame.get("version") != PROTOCOL_VERSION:
            reason = (f"protocol version mismatch (daemon "
                      f"{PROTOCOL_VERSION}, client {frame.get('version')})")
        elif frame.get("salt") != expected:
            reason = (f"code salt mismatch (daemon {expected}, client "
                      f"{frame.get('salt')}): update the client's tree")
        else:
            reason = None
        if reason is not None:
            self._log(f"rejecting client {frame.get('client')}: {reason}")
            try:
                connection.send(REJECT, reason=reason)
            except OSError:
                pass
            connection.close()
            return
        session = self.registry.create(connection, name=frame.get("client"))
        with self._lock:
            self._stats["sessions_served"] += 1
        try:
            connection.send(SESSION_OK, session=session.session_id,
                            version=PROTOCOL_VERSION,
                            daemon=self.coordinator.address)
        except OSError:
            self._events().put(("client-gone", session, "session-ok failed"))
            return
        self._log(f"session {session.session_id} opened "
                  f"({session.name} @ {connection.peer})")
        while True:
            try:
                message = connection.recv()
            except (OSError, ProtocolError) as error:
                self._events().put(("client-gone", session, repr(error)))
                return
            if message is None:
                self._events().put(("client-gone", session, "disconnected"))
                return
            kind = message.get("type")
            session.last_seen = time.monotonic()
            if kind == SUBMIT:
                self._events().put(("submit", session, message))
            elif kind == HEARTBEAT:
                try:
                    connection.send(HEARTBEAT)
                except OSError:
                    pass             # death surfaces via recv shortly
            elif kind == GOODBYE:
                self._events().put(("client-gone", session, "goodbye"))
                return
            # Unknown types only refresh last_seen (forward compat).

    def _events(self):
        return self.coordinator._events

    # -- scheduler thread ----------------------------------------------
    def _scheduler_loop(self):
        coordinator = self.coordinator
        last_beat = 0.0
        last_live = time.monotonic()
        while not self._closing:
            now = time.monotonic()
            for worker, reason in coordinator._expired_workers(now):
                worker.killing = True
                worker.connection.close()    # reader thread emits "dead"
                self._log(f"disconnecting worker {worker.label}: {reason}")
            for session in self.registry.expired(now, self.session_timeout):
                session.connection.close()   # reader emits "client-gone"
                self._log(f"session {session.session_id} silent for "
                          f"{self.session_timeout:.0f}s; disconnecting")
            self._dispatch(now)
            if coordinator.live_workers():
                last_live = now
            elif len(self.queue) and \
                    now - last_live > coordinator.worker_grace:
                self._fail_all_queued(
                    f"no live workers for {coordinator.worker_grace:.0f}s")
            if now - last_beat >= self.heartbeat_interval:
                last_beat = now
                for session in self.registry.live():
                    try:
                        session.connection.send(HEARTBEAT)
                    except OSError:
                        self._events().put(
                            ("client-gone", session, "heartbeat failed"))
            try:
                kind, subject, payload = self._events().get(
                    timeout=coordinator.poll_interval)
            except queue_module.Empty:
                continue
            try:
                if kind == "join":
                    self._log(f"worker {subject.label} joined "
                              f"(fleet={len(coordinator.live_workers())})")
                elif kind == "result":
                    self._on_result(subject, payload)
                elif kind in ("dead", "left"):
                    self._on_worker_gone(subject, kind, payload)
                elif kind == "submit":
                    self._on_submit(subject, payload)
                elif kind == "client-gone":
                    self._on_client_gone(subject, payload)
            except Exception as error:
                # A bug in one event must not take the scheduler thread
                # (and with it every session) down; log and keep serving.
                self._log(f"error handling {kind!r} event: {error!r}")

    def _dispatch(self, now):
        """Lease the fair-share queue's next jobs onto free worker lanes.

        Breadth-first across workers, like the per-sweep coordinator:
        one job per worker per pass until every lane is full or the
        queue runs dry.
        """
        leased = True
        while leased:
            leased = False
            for worker in self.coordinator.live_workers():
                if worker.killing or len(worker.jobs) >= worker.lanes:
                    continue
                job = self.queue.next_job(now)
                if job is None:
                    return
                try:
                    worker.connection.send(JOB, job_id=job.key,
                                           spec=job.spec.to_dict())
                except OSError as error:
                    self.queue.add(job, front=True)
                    worker.killing = True
                    worker.connection.close()
                    self._events().put(("dead", worker,
                                        f"send failed: {error}"))
                    continue
                worker.jobs[job.key] = job
                worker.deadline = (now + self.coordinator.job_timeout
                                   if self.coordinator.job_timeout else None)
                leased = True

    # -- sweep submission ----------------------------------------------
    def _cost_model_lazy(self):
        if not self._cost_model_loaded:
            self._cost_model = cost_model_for(self.ledger)
            self._cost_model_loaded = True
        return self._cost_model

    def _on_submit(self, session, message):
        from ..jobs.spec import JobSpec
        if not session.alive:
            return
        try:
            raw = message.get("specs") or []
            specs = [JobSpec.from_dict(item) for item in raw]
        except Exception as error:
            try:
                session.connection.send(
                    REJECT, reason=f"undecodable sweep: {error!r}")
            except OSError:
                pass
            return
        unique = {}
        for spec in specs:
            unique.setdefault(spec.key, spec)
        ordered = longest_first(list(unique.values()),
                                self._cost_model_lazy())
        sweep = Sweep(self.registry.next_sweep_id(), session.session_id,
                      ordered)
        session.sweeps[sweep.sweep_id] = sweep
        try:
            session.connection.send(SWEEP_ACCEPTED, sweep=sweep.sweep_id,
                                    jobs=sweep.total, submitted=len(raw))
        except OSError:
            self._events().put(("client-gone", session, "accept failed"))
            return
        self._log(f"sweep {sweep.sweep_id}: {sweep.total} job(s) from "
                  f"session {session.session_id}")
        watcher = (session.session_id, sweep.sweep_id)
        for key, spec in sweep.specs.items():
            metrics = self.store.get(spec) if self.store else None
            if metrics is not None:
                with self._lock:
                    self._stats["store_hits"] += 1
                sweep.settle(key, ok=True, cached=True)
                self._send_job_done(session, sweep, key, ok=True,
                                    metrics=metrics, cached=True,
                                    worker="store", wall_s=0.0, retries=0)
                continue
            if key in self._inflight:
                # setdefault: a leased job can outlive its last watcher
                # (the submitter vanished) with its interest entry gone.
                self._interest.setdefault(key, []).append(watcher)
            else:
                job = ServeJob(spec, session.session_id)
                self._inflight[key] = job
                self._interest[key] = [watcher]
                self.queue.add(job)
        if sweep.settled:
            self._finish_sweep(session, sweep)

    # -- results -------------------------------------------------------
    def _on_result(self, worker, payload):
        key = payload.get("job_id")
        job = worker.jobs.pop(key, None)
        timeout = self.coordinator.job_timeout
        worker.deadline = (time.monotonic() + timeout
                           if worker.jobs and timeout else None)
        worker.done += 1
        if job is None or self._inflight.get(key) is not job:
            return                   # stale result from a reassigned lease
        if payload.get("ok"):
            from ..harness.metrics import Metrics
            metrics = Metrics.from_dict(payload["metrics"])
            wall_s = payload.get("wall_s", 0.0)
            if self.store is not None:
                self.store.put(job.spec, metrics)
            self.ledger.record(job.spec, cache="miss", worker=worker.label,
                               wall_s=wall_s, metrics=metrics,
                               retries=job.attempts)
            with self._lock:
                self._stats["jobs_done"] += 1
            del self._inflight[key]
            self._deliver(key, ok=True, metrics=metrics, cached=False,
                          worker=worker.label, wall_s=wall_s,
                          retries=job.attempts)
        else:
            self._settle_failure(job,
                                 payload.get("error", "worker error"))

    def _on_worker_gone(self, worker, kind, payload):
        coordinator = self.coordinator
        with coordinator._lock:
            worker.alive = False
            if worker in coordinator._workers:
                coordinator._workers.remove(worker)
        worker.connection.close()
        lost = list(worker.jobs.values())
        worker.jobs.clear()
        worker.deadline = None
        self._log(f"worker {worker.label} {kind}: {payload} "
                  f"(fleet={len(coordinator.live_workers())})")
        for job in lost:
            if self._inflight.get(job.key) is job:
                self._settle_failure(
                    job, f"worker {worker.label} {kind}: {payload}")

    def _live_watchers(self, key):
        """Interest entries whose session is still connected."""
        watchers = []
        for session_id, sweep_id in self._interest.get(key, ()):
            session = self.registry.get(session_id)
            if session is not None and session.alive:
                watchers.append((session_id, sweep_id))
        return watchers

    def _settle_failure(self, job, error):
        """A lease attempt failed: back off + requeue, or give up."""
        coordinator = self.coordinator
        job.attempts += 1
        job.last_error = error
        watchers = self._live_watchers(job.key)
        if not watchers:
            # Every interested client is gone; retrying would burn the
            # fleet on a result nobody will read (and the store only
            # wants successes).
            self._inflight.pop(job.key, None)
            self._interest.pop(job.key, None)
            return
        if job.attempts >= coordinator.max_attempts:
            with self._lock:
                self._stats["jobs_failed"] += 1
            self._inflight.pop(job.key, None)
            self._deliver(job.key, ok=False, error=str(error),
                          retries=job.attempts)
        else:
            backoff = min(coordinator.retry_cap,
                          coordinator.retry_base * (2 ** (job.attempts - 1)))
            job.not_before = time.monotonic() + backoff
            # Ownership may have moved if the original submitter left.
            job.session_id = watchers[0][0]
            self.queue.add(job)

    def _fail_all_queued(self, reason):
        for job in self.queue.drain():
            with self._lock:
                self._stats["jobs_failed"] += 1
            self._inflight.pop(job.key, None)
            self._deliver(job.key, ok=False, error=reason,
                          retries=job.attempts)

    def _deliver(self, key, *, ok, metrics=None, error=None, cached=False,
                 worker=None, wall_s=0.0, retries=0):
        """Stream one settled key to every watching (session, sweep)."""
        for session_id, sweep_id in self._interest.pop(key, ()):
            session = self.registry.get(session_id)
            if session is None or not session.alive:
                continue
            sweep = session.sweeps.get(sweep_id)
            if sweep is None or not sweep.settle(key, ok=ok, cached=cached):
                continue
            if not ok:
                sweep.failed[key] = str(error)
            self._send_job_done(session, sweep, key, ok=ok, metrics=metrics,
                                error=error, cached=cached, worker=worker,
                                wall_s=wall_s, retries=retries)
            if sweep.settled:
                self._finish_sweep(session, sweep)

    def _send_job_done(self, session, sweep, key, *, ok, metrics=None,
                       error=None, cached=False, worker=None, wall_s=0.0,
                       retries=0):
        fields = {"sweep": sweep.sweep_id, "job_id": key, "ok": ok,
                  "cached": cached, "worker": worker, "wall_s": wall_s,
                  "retries": retries}
        if ok:
            fields["metrics"] = metrics.to_dict()
        else:
            fields["error"] = str(error)
        try:
            session.connection.send(JOB_DONE, **fields)
        except OSError:
            self._events().put(("client-gone", session, "job-done failed"))

    def _finish_sweep(self, session, sweep):
        with self._lock:
            self._stats["sweeps_done"] += 1
        session.sweeps_done += 1
        session.sweeps.pop(sweep.sweep_id, None)
        try:
            session.connection.send(
                SWEEP_DONE, sweep=sweep.sweep_id, total=sweep.total,
                done=sweep.done, cached=sweep.cached,
                failed=dict(sweep.failed))
        except OSError:
            self._events().put(("client-gone", session, "sweep-done failed"))
        self._log(f"sweep {sweep.sweep_id} settled: {sweep.done}/"
                  f"{sweep.total} ok ({sweep.cached} from store, "
                  f"{len(sweep.failed)} failed)")

    # -- client departure ----------------------------------------------
    def _on_client_gone(self, session, reason):
        if self.registry.get(session.session_id) is None:
            return                   # duplicate event
        self.registry.remove(session.session_id)
        session.connection.close()
        self._log(f"session {session.session_id} gone ({reason}); "
                  f"{self.queue.queued_for(session.session_id)} queued "
                  f"job(s) affected")
        # Queued jobs owned by the departed session: hand each to the
        # first surviving watcher, or drop it if nobody else wants the
        # key.  Leased jobs (already on a worker) are left to finish --
        # their results still land in the shared store.
        for job in self.queue.drop_session(session.session_id):
            watchers = self._live_watchers(job.key)
            if watchers:
                self._interest[job.key] = watchers
                job.session_id = watchers[0][0]
                self.queue.add(job)
            else:
                self._interest.pop(job.key, None)
                self._inflight.pop(job.key, None)
        # Scrub the departed session from interest lists on jobs it
        # merely watched (owned by others, or leased).
        for key in list(self._interest):
            kept = [w for w in self._interest[key]
                    if w[0] != session.session_id]
            if kept:
                self._interest[key] = kept
            else:
                self._interest.pop(key)
                # A leased job keeps running (the store wants the
                # result); a queued one belongs to another session's
                # queue only if someone watched it, so nothing to drop.

    # -- introspection -------------------------------------------------
    def _status_extra(self):
        """Daemon fields merged into STATUS replies (cluster status CLI)."""
        now = time.monotonic()
        live = self.coordinator.live_workers()
        info = {
            "uptime_s": round(now - (self._started_at or now), 3),
            "protocol": PROTOCOL_VERSION,
            "tls": self.coordinator.tls is not None,
            "fleet": len(live),
            "active_jobs": sum(len(w.jobs) for w in live),
            "queued_jobs": len(self.queue),
            "sessions": self.registry.snapshot(now),
        }
        with self._lock:
            info.update(self._stats)
        if self.store is not None:
            info["store"] = {"hits": self.store.hits,
                             "misses": self.store.misses}
        return {"daemon": info}
