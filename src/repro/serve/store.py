"""Shared content-addressed result store (S3/NFS-style local-dir backend).

A :class:`SharedStore` is the cross-coordinator sibling of
:class:`~repro.jobs.cache.ResultCache`: the same content addressing
(spec key + code salt), the same per-entry sha256 checksum over the
canonical metrics JSON, the same corrupt-entry-degrades-to-miss policy
-- but with a bucket-style layout designed to live on a path *every*
coordinator can reach (an NFS mount, a FUSE-mounted object bucket):

    <root>/v1/<salt>/<key[:2]>/<key>.json

The two-hex-character shard directory keeps any one directory small
(the S3 prefix idiom), which matters once millions of sweep points
accumulate; ``v1`` versions the layout itself.  Entries are immutable
-- a key's bytes are fully determined by its content hash -- so readers
never need coordination, and writers only need atomic publication
(temp file + rename) plus the shared/exclusive generation lock from
:mod:`repro.jobs.cache` to stay safe against pruning.

Because a restarted ``repro serve`` daemon reopens the same root, cache
hits survive daemon restarts; because independent coordinators point at
the same root, one client's sweep warms every other client's.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings

from ..analysis.threadsan import make_lock, thread_safe
from ..jobs.cache import (code_salt, generation_lock, metrics_checksum)

_ENV_STORE = "REPRO_STORE_DIR"
_LAYOUT = "v1"


def default_store_dir():
    """``$REPRO_STORE_DIR``, or ``None`` -- there is no implicit store."""
    return os.environ.get(_ENV_STORE) or None


@thread_safe
class SharedStore:
    """Content-addressed ``JobSpec -> Metrics`` store on a shared path.

    Filesystem entries are immutable so readers need no coordination,
    but the session hit/miss counters are bumped on whichever thread
    calls ``get``/``put`` (the serve daemon's scheduler) and read by
    STATUS replies on connection threads -- they live under a counter
    lock.
    """

    def __init__(self, root, salt=None):
        self.root = root
        self.salt = salt or code_salt()
        self.generation_dir = os.path.join(self.root, _LAYOUT, self.salt)
        self._counter_lock = make_lock("SharedStore._counter_lock")
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    def _path(self, key):
        return os.path.join(self.generation_dir, key[:2], f"{key}.json")

    def _lock_root(self):
        return os.path.join(self.root, _LAYOUT)

    # ------------------------------------------------------------------
    def _reject(self, key, reason):
        """Corrupt entry: count, warn, drop the bytes, miss."""
        with self._counter_lock:
            self.corrupt += 1
            self.misses += 1
        warnings.warn(f"shared-store entry {key[:8]} is corrupt ({reason}); "
                      f"treating as a miss", RuntimeWarning, stacklevel=3)
        try:
            os.unlink(self._path(key))
        except OSError:
            pass                 # concurrent eviction, read-only mount
        return None

    def get(self, spec):
        """Stored :class:`Metrics` for ``spec``, or ``None``.

        Same defect policy as the local cache: undecodable JSON, a
        missing/mismatching checksum, or an unrebuildable payload all
        degrade to a miss -- never an exception, never wrong metrics.
        """
        from ..harness.metrics import Metrics
        key = spec.key
        try:
            with open(self._path(key)) as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            with self._counter_lock:
                self.misses += 1
            return None
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            return self._reject(key, "undecodable JSON")
        if not isinstance(payload, dict) or "metrics" not in payload:
            return self._reject(key, "no metrics payload")
        recorded = payload.get("sha256")
        actual = metrics_checksum(payload["metrics"])
        if recorded != actual:
            return self._reject(
                key, "checksum mismatch" if recorded else "no checksum")
        try:
            metrics = Metrics.from_dict(payload["metrics"])
        except Exception as error:
            return self._reject(key, f"schema mismatch: {error!r}")
        with self._counter_lock:
            self.hits += 1
        return metrics

    def put(self, spec, metrics):
        """Publish ``metrics`` atomically under the shared lock.

        Entries are immutable, so a concurrent writer publishing the
        same key writes identical bytes and the rename race is benign.
        """
        key = spec.key
        shard_dir = os.path.dirname(self._path(key))
        os.makedirs(shard_dir, exist_ok=True)
        metrics_dict = metrics.to_dict()
        payload = {"spec": spec.to_dict(), "metrics": metrics_dict,
                   "sha256": metrics_checksum(metrics_dict)}
        with generation_lock(self._lock_root()):
            fd, tmp_path = tempfile.mkstemp(dir=shard_dir, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(payload, handle)
                os.replace(tmp_path, self._path(key))
            except BaseException:
                if os.path.exists(tmp_path):
                    os.unlink(tmp_path)
                raise

    # ------------------------------------------------------------------
    def stats(self):
        """Per-generation entry/byte counts plus session hit accounting."""
        layout_root = self._lock_root()
        generations = {}
        if os.path.isdir(layout_root):
            for salt in sorted(os.listdir(layout_root)):
                gen_dir = os.path.join(layout_root, salt)
                if not os.path.isdir(gen_dir):
                    continue
                entries = 0
                total = 0
                for dirpath, _dirnames, filenames in os.walk(gen_dir):
                    for name in filenames:
                        if not name.endswith(".json"):
                            continue
                        entries += 1
                        try:
                            total += os.path.getsize(
                                os.path.join(dirpath, name))
                        except OSError:
                            pass
                generations[salt] = {"entries": entries, "bytes": total}
        return {
            "store_dir": self.root,
            "current_salt": self.salt,
            "generations": generations,
            "session_hits": self.hits,
            "session_misses": self.misses,
            "session_corrupt": self.corrupt,
        }

    def prune(self):
        """Drop stale generations (salt != current), under the lock."""
        layout_root = self._lock_root()
        removed = 0
        if not os.path.isdir(layout_root):
            return removed
        with generation_lock(layout_root, exclusive=True):
            for salt in os.listdir(layout_root):
                gen_dir = os.path.join(layout_root, salt)
                if salt == self.salt or not os.path.isdir(gen_dir):
                    continue
                for dirpath, _dirnames, filenames in os.walk(gen_dir,
                                                             topdown=False):
                    for filename in filenames:
                        os.unlink(os.path.join(dirpath, filename))
                        removed += 1
                    os.rmdir(dirpath)
        return removed


class CacheStack:
    """Layered cache: fast local :class:`ResultCache` over a shared store.

    ``get`` consults layers in order and *backfills* upper layers on a
    lower-layer hit (the second lookup is local); ``put`` publishes to
    every layer, so a sweep run against a stack warms both the machine's
    own cache and the fleet-wide store.  Quacks like a single cache for
    :class:`~repro.jobs.executor.Executor`.
    """

    def __init__(self, *layers):
        self.layers = [layer for layer in layers if layer is not None]
        self.hits = 0
        self.misses = 0

    def get(self, spec):
        for depth, layer in enumerate(self.layers):
            metrics = layer.get(spec)
            if metrics is not None:
                self.hits += 1
                for upper in self.layers[:depth]:
                    upper.put(spec, metrics)
                return metrics
        self.misses += 1
        return None

    def put(self, spec, metrics):
        for layer in self.layers:
            layer.put(spec, metrics)

    def stats(self):
        """Stack-level hit accounting plus every tier's own stats dict."""
        return {
            "layers": [layer.stats() for layer in self.layers],
            "session_hits": self.hits,
            "session_misses": self.misses,
        }
