"""Always-on sweep service: daemon, fair-share scheduling, shared store.

``repro.serve`` turns the per-sweep cluster coordinator into a
long-running service (``repro serve``) that owns the worker fleet and
serves sweep submissions from many concurrent clients (``repro
submit``) over the protocol-v3 framed-TCP API -- TLS under the HMAC
handshake, round-robin fair-share across client sessions with
longest-expected-first within each, cross-sweep dedup of identical
specs, and a content-addressed :class:`SharedStore` that every
coordinator (and every daemon restart) reads and writes, so cache hits
are fleet-wide instead of per-process.
"""

from .client import ServeClient, ServeExecutor, ServeRejected
from .daemon import ServeDaemon
from .fairshare import FairShareQueue, ServeJob
from .sessions import Session, SessionRegistry, Sweep
from .store import CacheStack, SharedStore, default_store_dir

__all__ = [
    "CacheStack",
    "FairShareQueue",
    "ServeClient",
    "ServeDaemon",
    "ServeExecutor",
    "ServeJob",
    "ServeRejected",
    "Session",
    "SessionRegistry",
    "SharedStore",
    "Sweep",
    "default_store_dir",
]
