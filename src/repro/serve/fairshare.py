"""Fair-share job queue: round-robin across sessions, longest-first within.

The serve daemon multiplexes many clients' sweeps over one worker
fleet.  Scheduling is two-level:

* **Across sessions** -- strict round-robin.  Each time a worker goes
  idle the queue offers the *next* session's best job, so a client that
  submits a 10,000-point sweep cannot starve one that submits ten
  points; both make proportional progress.
* **Within a session** -- longest-expected-first.  Sweeps are sorted by
  the ledger-learned :class:`~repro.cluster.costmodel.CostModel` at
  submission time (the same LPT heuristic the per-sweep backends use),
  so each session's own tail latency stays minimal.

Jobs carry the retry/backoff state the coordinator's per-sweep ``_Job``
records carry (``attempts``, ``not_before``); a backoff-gated job is
skipped, not blocking -- the session's next eligible job (or the next
session) runs instead.
"""

from __future__ import annotations

from collections import OrderedDict, deque

from ..analysis.threadsan import make_lock, thread_safe


class ServeJob:
    """One queued simulation, owned by a session, watched by sweeps."""

    __slots__ = ("spec", "session_id", "attempts", "not_before",
                 "last_error")

    def __init__(self, spec, session_id):
        self.spec = spec
        self.session_id = session_id
        self.attempts = 0            # completed lease attempts that failed
        self.not_before = 0.0        # backoff gate (monotonic seconds)
        self.last_error = None

    @property
    def key(self):
        return self.spec.key


@thread_safe
class FairShareQueue:
    """Round-robin-across-sessions queue of :class:`ServeJob` records.

    Mutation happens on the daemon's scheduler thread, but ``__len__``
    and the per-session counts feed STATUS replies built on connection
    threads, so the queue synchronizes internally (``@thread_safe``).
    """

    def __init__(self):
        # session_id -> deque of ServeJob, in within-session priority
        # order.  OrderedDict preserves session arrival order; the
        # rotation cursor walks it circularly.
        self._lock = make_lock("FairShareQueue._lock")
        self._queues = OrderedDict()
        self._cursor = 0             # rotation position among live sessions

    def __len__(self):
        with self._lock:
            return sum(len(q) for q in self._queues.values())

    def queued_for(self, session_id):
        with self._lock:
            return len(self._queues.get(session_id, ()))

    def sessions(self):
        with self._lock:
            return [sid for sid, q in self._queues.items() if q]

    # ------------------------------------------------------------------
    def add(self, job, *, front=False):
        """Queue ``job`` under its session (``front`` for requeues)."""
        with self._lock:
            queue = self._queues.get(job.session_id)
            if queue is None:
                queue = self._queues[job.session_id] = deque()
            if front:
                queue.appendleft(job)
            else:
                queue.append(job)

    def next_job(self, now):
        """Pop the next dispatchable job, or ``None``.

        Walks sessions round-robin starting at the rotation cursor; for
        each, the first job whose backoff gate has passed is taken and
        the cursor advances past that session, so consecutive calls
        spread leases across sessions even when every session has work.
        """
        with self._lock:
            session_ids = list(self._queues.keys())
            if not session_ids:
                return None
            count = len(session_ids)
            for step in range(count):
                index = (self._cursor + step) % count
                queue = self._queues[session_ids[index]]
                for position, job in enumerate(queue):
                    if job.not_before <= now:
                        del queue[position]
                        self._cursor = (index + 1) % count
                        return job
            return None

    def drain(self):
        """Remove and return every queued job (fleet-gone failure path)."""
        with self._lock:
            jobs = [job for queue in self._queues.values() for job in queue]
            self._queues.clear()
            self._cursor = 0
            return jobs

    def drop_session(self, session_id):
        """Remove a session's queued jobs; returns them (for interest
        reassignment -- a job another session still wants must survive
        its owner's disconnect)."""
        with self._lock:
            queue = self._queues.pop(session_id, None)
            self._cursor = 0         # cursor indexes a changed list; reset
            return list(queue) if queue else []
