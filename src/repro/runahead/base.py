"""Runahead engine interface shared by PRE, VR, DVR and the Oracle."""

from __future__ import annotations


class RunaheadEngine:
    """Hook interface the :class:`~repro.uarch.core.OoOCore` drives.

    Subclasses override whichever hooks they need; the defaults are all
    no-ops, so an engine only models what it cares about.
    """

    name = "base"

    def on_dispatch(self, dyn, core):
        """Observe one main-thread instruction at dispatch (program order)."""

    def on_rob_stall(self, now, head):
        """Called every cycle dispatch is blocked by a full ROB whose head
        is an incomplete load (the classic runahead trigger)."""

    def tick(self, now, ports):
        """Consume spare issue slots at cycle ``now``."""

    def blocks_dispatch(self, now):
        return False

    def blocks_commit(self, now):
        return False

    # -- Quiescence contract (event-driven fast-forward) ----------------
    #
    # When the core finds itself unable to writeback, issue, dispatch or
    # commit, it asks the engine whether per-cycle ``tick`` calls can be
    # elided until the next scheduled event.  An engine reporting
    # ``quiescent(now) == True`` promises that, until ``next_event(now)``
    # (or the core's own next event, whichever is earlier):
    #
    # * ``tick`` is a no-op (no issued work, no mutated statistics), and
    # * ``blocks_dispatch``/``blocks_commit`` keep returning the same
    #   value they return at ``now``.
    #
    # ``next_event`` returns the earliest future cycle at which the
    # engine needs to run again, or ``None`` when only core events
    # (writebacks, fetch redirect, MSHR fills) can wake it.

    def quiescent(self, now):
        return True

    def next_event(self, now):
        return None

    def stats(self):
        return {}
