"""Runahead engine interface shared by PRE, VR, DVR and the Oracle."""

from __future__ import annotations


class RunaheadEngine:
    """Hook interface the :class:`~repro.uarch.core.OoOCore` drives.

    Subclasses override whichever hooks they need; the defaults are all
    no-ops, so an engine only models what it cares about.
    """

    name = "base"

    def on_dispatch(self, dyn, core):
        """Observe one main-thread instruction at dispatch (program order)."""

    def on_rob_stall(self, now, head):
        """Called every cycle dispatch is blocked by a full ROB whose head
        is an incomplete load (the classic runahead trigger)."""

    def tick(self, now, ports):
        """Consume spare issue slots at cycle ``now``."""

    def blocks_dispatch(self, now):
        return False

    def blocks_commit(self, now):
        return False

    def stats(self):
        return {}
