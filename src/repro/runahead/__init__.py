"""Baseline runahead techniques: PRE, VR, and the Oracle bound."""

from .base import RunaheadEngine
from .oracle import OracleEngine
from .pre import PreEngine
from .vr import VrEngine

__all__ = ["OracleEngine", "PreEngine", "RunaheadEngine", "VrEngine"]
