"""Oracle prefetching: the paper's hypothetical upper bound.

"A hypothetical technique that knows all memory accesses in advance, and
prefetches them at the appropriate point in time to avoid stalling."  We
model it as every demand load hitting in the L1-D (the core's
``perfect_memory`` mode); the core still pays branch mispredictions,
issue-width and functional-unit limits, so the Oracle is not an IPC=width
machine -- exactly the bound the paper compares DVR against.
"""

from __future__ import annotations

from .base import RunaheadEngine


class OracleEngine(RunaheadEngine):
    name = "oracle"

    def stats(self):
        return {}
