"""Precise Runahead Execution (Naithani et al., HPCA 2020).

Triggered by a full-ROB stall with a long-latency load at the ROB head.
During the runahead interval (until that load's data returns) the core's
front-end pre-executes the *future* instruction stream -- beyond the
dispatch frontier -- issuing prefetches for loads whose address operands
are available.  Classic runahead INV semantics apply: a load that misses
marks its destination invalid (the data will not return within the
interval), so loads *dependent* on a missing load cannot prefetch.  That
is exactly the first-level-of-indirection limitation the paper leans on.

PRE does not flush the pipeline on exit (no re-fill penalty) and recycles
resources, which we model by leaving the main thread's state untouched --
only fetch/dispatch is occupied during the interval.
"""

from __future__ import annotations

from ..core.subthread import _safe_alu
from ..isa.instructions import Op
from ..memsys.cache import LINE_SHIFT, SRC_PRE
from .base import RunaheadEngine

_INVALID = object()


class PreEngine(RunaheadEngine):
    name = "pre"

    def __init__(self, sim_config, program, guest_memory, hierarchy):
        super().__init__()
        self.config = sim_config.runahead
        self.program = program
        self.mem = guest_memory
        self.hierarchy = hierarchy
        self.active = False
        self._exit_cycle = 0
        self._budget = 0
        self._regs = None          # walker registers (value or _INVALID)
        self._pc = 0
        self.intervals = 0
        self.instructions_walked = 0
        self.prefetches = 0

    # ------------------------------------------------------------------
    def on_rob_stall(self, now, head):
        if self.active or not head.issued:
            return
        remaining = head.complete_cycle - now
        if remaining < self.config.long_latency_threshold:
            return
        core = self._core
        self.active = True
        self.intervals += 1
        self._exit_cycle = head.complete_cycle
        self._budget = self.config.pre_max_instructions
        self._regs = list(core.regs)
        self._pc = core.pc

    def on_dispatch(self, dyn, core):
        self._core = core

    def attach(self, core):
        self._core = core

    def blocks_dispatch(self, now):
        # The front-end delivers runahead instructions during the interval.
        return self.active

    def quiescent(self, now):
        # An active walker consumes front-end slots every cycle.  When
        # idle, the trigger (on_rob_stall) is monotone over a stall span:
        # the head load's remaining latency only shrinks, so a span whose
        # first cycle did not enter runahead never will.
        return not self.active

    def tick(self, now, ports):
        if not self.active:
            return
        if now >= self._exit_cycle or self._budget <= 0:
            self.active = False
            return
        # The front-end supplies up to `width` future instructions/cycle.
        steps = min(ports.width, self._budget)
        for _ in range(steps):
            if not self._walk_one(now):
                self.active = False
                return
            self._budget -= 1

    # ------------------------------------------------------------------
    def _walk_one(self, now):
        ins = self.program.instructions[self._pc]
        self.instructions_walked += 1
        op = ins.op
        regs = self._regs
        if op == Op.HALT:
            return False
        if op == Op.JMP:
            self._pc = ins.target
            return True
        if ins.is_cond_branch:
            value = regs[ins.rs1]
            if value is _INVALID:
                # Unknown direction: backward-taken / forward-not-taken.
                taken = ins.target <= ins.pc
            else:
                taken = (value != 0) if op == Op.BNZ else (value == 0)
            self._pc = ins.target if taken else self._pc + 1
            return True
        if ins.is_store:
            self._pc += 1
            return True
        if ins.is_load:
            self._load(ins, now)
            self._pc += 1
            return True
        # ALU
        valid = all(regs[r] is not _INVALID for r in ins.srcs)
        if ins.rd >= 0:
            if valid:
                a = regs[ins.srcs[0]] if ins.srcs else 0
                b = regs[ins.srcs[1]] if len(ins.srcs) > 1 else 0
                regs[ins.rd] = _safe_alu(ins, a, b)
            else:
                regs[ins.rd] = _INVALID
        self._pc += 1
        return True

    def _load(self, ins, now):
        regs = self._regs
        base = regs[ins.rs1]
        if base is _INVALID:
            if ins.rd >= 0:
                regs[ins.rd] = _INVALID
            return
        if ins.op == Op.LOADX:
            index = regs[ins.rs2]
            if index is _INVALID:
                if ins.rd >= 0:
                    regs[ins.rd] = _INVALID
                return
            addr = base + index * ins.imm
        else:
            addr = base + ins.imm
        if not 0 <= addr < self.mem.size_bytes:
            if ins.rd >= 0:
                regs[ins.rd] = _INVALID
            return
        line = self.hierarchy.l1d.peek(addr >> LINE_SHIFT)
        if line is not None and line.ready_at <= now:
            # Hit: the value is available to the runahead walker.
            if ins.rd >= 0:
                regs[ins.rd] = self.mem.words[addr >> 3]
            return
        # Miss (or in flight): start the prefetch, destination invalid.
        if self.hierarchy.prefetch(addr, now, SRC_PRE):
            self.prefetches += 1
        if ins.rd >= 0:
            regs[ins.rd] = _INVALID

    def stats(self):
        return {
            "pre_intervals": self.intervals,
            "pre_instructions_walked": self.instructions_walked,
            "pre_prefetches": self.prefetches,
        }
