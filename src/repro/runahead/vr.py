"""Vector Runahead (Naithani et al., ISCA 2021).

Triggered -- like all prior runahead -- by a full-ROB stall with a
long-latency load at the ROB head.  The core then enters runahead mode:
fetch/dispatch is taken over, and when a confident striding load is
encountered the chain from it is speculatively vectorized (64 lanes in
our setup, matching VR's MSHR-saturating goal) and followed with
first-lane control flow: lanes whose branches diverge from lane 0 are
invalidated.  There is no Discovery Mode, so no loop-bound information --
VR over-fetches past short loops -- and *delayed termination*: runahead
only ends when the whole vectorized chain has generated its accesses,
stalling commit even after the blocking load has returned (the paper
measures 7.1% of execution time lost to this on average).

Implementation: reuses the SIMT interpreter from ``repro.core.subthread``
with ``FLOW_FIRST_LANE``, but runs it *coupled* -- dispatch and commit
are blocked while it is active.
"""

from __future__ import annotations

from ..core.stride_detector import StrideDetector
from ..core.subthread import FLOW_FIRST_LANE, SubthreadStats, VectorSubthread
from ..memsys.cache import SRC_VR
from .base import RunaheadEngine


class VrEngine(RunaheadEngine):
    name = "vr"

    def __init__(self, sim_config, program, guest_memory, hierarchy):
        super().__init__()
        self.config = sim_config.runahead
        self.dvr_config = sim_config.dvr
        self.detector = StrideDetector(sim_config.dvr)
        self.subthread_stats = SubthreadStats()
        self.subthread = VectorSubthread(
            program, guest_memory, hierarchy, sim_config.core,
            sim_config.dvr, source=SRC_VR, flow=FLOW_FIRST_LANE,
            stats=self.subthread_stats)
        self.subthread.done = True
        self._last_stride = None   # (pc, stride, last_addr)
        self._regs_snapshot = None
        self.intervals = 0
        self.delayed_termination_cycles = 0
        self._head = None
        self._head_returned_at = -1
        self._spawn_failed_at = -1  # cycle of the last failed spawn attempt

    # ------------------------------------------------------------------
    def on_dispatch(self, dyn, core):
        ins = dyn.ins
        if ins.is_load:
            self.detector.observe(ins.pc, dyn.mem_addr)
            if self.detector.is_confident(ins.pc):
                self._last_stride = (ins.pc, dyn.mem_addr)
                self._regs_snapshot = list(core.regs)

    def on_rob_stall(self, now, head):
        if not self.subthread.done or not head.issued:
            return
        if head.complete_cycle - now < self.config.long_latency_threshold:
            return
        if self._last_stride is None:
            return
        pc, last_addr = self._last_stride
        entry = self.detector.get(pc)
        if entry is None or entry.stride == 0:
            return
        if self.subthread.spawn(pc, entry.stride, last_addr,
                                self._regs_snapshot,
                                self.config.vr_lanes,
                                flr_pc=-1, terminate_at_stride=True):
            self.intervals += 1
            self._head = head
            self._head_returned_at = -1
        else:
            # Failed spawns (VRAT exhaustion) still mutate subthread stats
            # and will re-fire every stall cycle: the engine must report
            # itself non-quiescent so fast-forward cannot elide them.
            self._spawn_failed_at = now

    def tick(self, now, ports):
        if self.subthread.done:
            return
        self.subthread.step(now, ports)
        if self.subthread.done:
            return
        # Delayed termination: the blocking load has returned but runahead
        # keeps the pipeline until the accesses of the chain instruction in
        # flight have all been *generated* (issued).  Deeper levels whose
        # addresses are not yet computable are abandoned -- the paper bounds
        # this stall at ~7-12% of execution time, which rules out waiting
        # for whole multi-level chains to complete.
        if self._head.completed:
            self.delayed_termination_cycles += 1
            if self._head_returned_at < 0:
                self._head_returned_at = now
            grace_over = (now - self._head_returned_at >
                          self.config.vr_termination_grace)
            if self.subthread._phase in ("wait", "fetch") or grace_over:
                self.subthread._terminate()

    def blocks_dispatch(self, now):
        return not self.subthread.done

    def blocks_commit(self, now):
        return not self.subthread.done

    def quiescent(self, now):
        if self.subthread.done:
            # A spawn that failed this cycle re-fires on every subsequent
            # stall cycle; everything else only changes at a dispatch.
            return self._spawn_failed_at != now
        # While runahead is in flight, tick() does per-cycle work unless
        # the subthread is parked waiting on a fill *and* the blocking
        # load is still outstanding (head completion is a writeback event;
        # afterwards delayed-termination accounting runs every cycle).
        return self.subthread.quiescent(now) and not self._head.completed

    def next_event(self, now):
        if self.subthread.done:
            return None
        return self.subthread.next_event(now)

    def stats(self):
        sub = self.subthread_stats
        return {
            "vr_intervals": self.intervals,
            "vr_instructions": sub.instructions,
            "vr_lane_loads": sub.lane_loads_issued,
            "vr_lanes_spawned": sub.lanes_spawned,
            "vr_timeouts": sub.timeouts,
            "vr_divergences": sub.divergences,
            "vr_delayed_termination_cycles": self.delayed_termination_cycles,
        }
