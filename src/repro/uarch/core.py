"""Cycle-level out-of-order core model.

Timing-first, correct-path simulation: instructions execute functionally
(in program order) at dispatch, so architectural state is always correct;
the timing model tracks operand readiness, issue-width and FU-port
contention, memory latency through the hierarchy, and in-order commit.
Mispredicted conditional branches stall fetch until the branch resolves
plus a front-end redirect penalty of ``frontend_stages`` cycles.

Runahead engines (PRE / VR / DVR) attach via a small hook interface:

* ``on_dispatch(dyn, core)``   -- observe the main thread's instruction
  stream (stride detection, Discovery Mode).
* ``on_rob_stall(now, head)``  -- called every cycle dispatch is blocked
  by a full ROB (the classic runahead trigger).
* ``tick(now, ports)``         -- consume spare issue slots.
* ``blocks_dispatch/blocks_commit`` -- runahead modes that occupy the
  front-end or delay termination.
* ``quiescent(now)/next_event(now)`` -- the quiescence contract used by
  event-driven fast-forwarding (see :meth:`OoOCore.run`): a quiescent
  engine promises its ``tick`` is a no-op and its blocking predicates
  are constant until ``next_event``.

Event-driven fast-forwarding: when a cycle ends with nothing in flight
that could retire, wake, issue or dispatch next cycle -- ready queue and
retry lists empty, ROB head (if any) incomplete, dispatch structurally
blocked, engine quiescent -- the simulator jumps ``now`` straight to the
next scheduled event (writeback-heap head, fetch redirect, earliest MSHR
fill, engine wake-up) and bulk-attributes the skipped span into the same
statistics the cycle-by-cycle loop would have accumulated.  Metrics are
bit-identical with the feature on or off (``SimConfig.fast_forward``).
"""

from __future__ import annotations

import heapq

from ..isa.instructions import Op
from ..isa.machine import execute
from ..branch.predictor import TagePredictor
from .dynins import DynIns
from .scheduler import IssuePorts


class SimulationLimitError(Exception):
    """The cycle safety limit was hit (almost certainly a model deadlock)."""


class NullEngine:
    """Default no-op runahead engine."""

    name = "none"

    def on_dispatch(self, dyn, core):
        pass

    def on_rob_stall(self, now, head):
        pass

    def tick(self, now, ports):
        pass

    def blocks_dispatch(self, now):
        return False

    def blocks_commit(self, now):
        return False

    def quiescent(self, now):
        return True

    def next_event(self, now):
        return None

    def stats(self):
        return {}


class CoreStats:
    def __init__(self):
        self.cycles = 0
        self.committed = 0
        self.dispatched = 0
        self.rob_full_cycles = 0          # dispatch blocked, ROB full
        self.rob_full_mem_cycles = 0      # ...with an incomplete load at head
        self.commit_blocked_runahead = 0  # delayed-termination stalls (VR)
        self.fast_forward_cycles = 0      # cycles skipped by event jumps
        self.fast_forward_spans = 0       # number of event jumps taken
        self.halted = False
        self.branch_lookups = 0
        self.branch_mispredicts = 0
        # CPI stack: why each cycle's commit slot group was (not) used.
        self.cycle_breakdown = {
            "base": 0,       # committed at least one instruction
            "memory": 0,     # ROB head is a load waiting for data
            "execute": 0,    # ROB head waiting on a non-load FU
            "frontend": 0,   # ROB empty (mispredict redirect / fetch dry)
            "runahead": 0,   # commit blocked by a runahead engine
        }

    def cpi_stack(self):
        """Per-component cycles-per-instruction (Sniper-style CPI stack)."""
        if self.committed == 0:
            return {}
        return {name: count / self.committed
                for name, count in self.cycle_breakdown.items()}

    @property
    def ipc(self):
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def rob_full_fraction(self):
        return self.rob_full_cycles / self.cycles if self.cycles else 0.0


class OoOCore:
    def __init__(self, program, guest_memory, config, hierarchy,
                 engine=None, perfect_memory=False, trace=None,
                 sanitizer=None):
        self.program = program
        self.mem = guest_memory
        self.config = config
        self.core_cfg = config.core
        self.hierarchy = hierarchy
        self.engine = engine or NullEngine()
        self.perfect_memory = perfect_memory
        self.trace = trace
        self.sanitizer = sanitizer      # repro.analysis.sanitize, or None
        self.predictor = TagePredictor(config.branch)
        self.ports = IssuePorts(config.core)
        self.stats = CoreStats()

        self.regs = [0] * 32            # architectural state @ dispatch frontier
        self.pc = 0
        self.now = 0
        self._seq = 0
        self._rob = []                  # FIFO list of DynIns (popped from front lazily)
        self._rob_head = 0
        self._iq_count = 0
        self._lq_count = 0
        self._sq_count = 0
        self._ready = []                # heap of (seq, DynIns)
        self._fu_retry = []             # FU-port-blocked, ascending seq
        self._mshr_retry = []           # loads refused by a full MSHR file
        self._writebacks = []           # heap of (complete_cycle, seq, DynIns)
        self._waiting_branch = None     # mispredicted branch pending resolve
        self._fetch_resume = 0
        self._producer_table = [None] * 32
        self._program_done = False
        self._l1_latency = config.memsys.l1d.latency
        # Armed by start(); defaults let advance() work without it.
        self._limit = config.max_instructions
        self._max_cycles = self._limit * 3000 + 2_000_000

    # ------------------------------------------------------------------
    def run(self, max_instructions=None):
        """Simulate to completion; equivalent to start + advance + finish."""
        self.start(max_instructions)
        self.advance()
        return self.finish()

    def start(self, max_instructions=None):
        """Arm a run: pin the commit limit and the cycle safety budget.

        Splitting ``run()`` into ``start``/``advance``/``finish`` lets an
        external scheduler (the batch-lane executor) interleave many cores
        without changing what any one core computes: ``advance`` only ever
        pauses between whole cycles, so slicing is invisible to the model.
        """
        self._limit = max_instructions or self.config.max_instructions
        self._max_cycles = self._limit * 3000 + 2_000_000
        return self

    @property
    def finished(self):
        stats = self.stats
        return stats.halted or stats.committed >= self._limit

    def advance(self, instructions=None):
        """Run until ``instructions`` more commit (None = to completion).

        Returns True while the run has more to do.  The fast-forward guard
        tests the *run* limit, not the slice stop, so sliced execution is
        bit-identical to an unsliced run -- including the fast-forward
        span/cycle counters.
        """
        stats = self.stats
        limit = self._limit
        if instructions is None:
            stop = limit
        else:
            stop = stats.committed + instructions
            if stop > limit:
                stop = limit
        max_cycles = self._max_cycles
        fast_forward = self.config.fast_forward
        # Hot loop: every per-cycle callee is hoisted to a local once.
        ports = self.ports
        writeback = self._writeback
        commit = self._commit
        issue = self._issue
        dispatch = self._dispatch
        engine_tick = self.engine.tick
        hierarchy_tick = self.hierarchy.tick
        new_cycle = ports.new_cycle
        quiescent = self._quiescent
        while stats.committed < stop and not stats.halted:
            now = self.now + 1
            self.now = now
            if now > max_cycles:
                raise SimulationLimitError(
                    f"no forward progress: {stats.committed} committed "
                    f"after {now} cycles")
            writeback()
            commit()
            new_cycle()
            issue()
            engine_tick(now, ports)
            dispatch()
            hierarchy_tick(now)
            # The run-ending cycle (HALT committed / limit reached) is
            # quiescent with no events left; the loop exit handles it.
            if fast_forward and stats.committed < limit \
                    and not stats.halted and quiescent(now):
                self._fast_forward(now, max_cycles)
        return not (stats.halted or stats.committed >= limit)

    def finish(self):
        """Seal per-run totals into stats (idempotent) and return them."""
        stats = self.stats
        stats.cycles = self.now
        stats.branch_lookups = self.predictor.lookups
        stats.branch_mispredicts = self.predictor.mispredicts
        return stats

    # ------------------------------------------------------------------
    # Event-driven fast-forwarding
    # ------------------------------------------------------------------
    def _quiescent(self, now):
        """True when no core state can change before the next event.

        Checked at the end of a fully-simulated cycle.  Requires: nothing
        awaiting issue (ready heap, FU retries, MSHR retries all empty),
        commit blocked on an incomplete ROB head (or an empty ROB),
        a quiescent engine, and dispatch structurally blocked for a
        reason that only an event can clear (fetch redirect in the
        future, mispredicted branch pending, program drained, ROB/queue
        back-pressure -- all released by writebacks -- or an engine that
        occupies the front-end).
        """
        if self._ready or self._fu_retry or self._mshr_retry:
            return False
        rob, head_index = self._rob, self._rob_head
        if head_index < len(rob) and rob[head_index].completed:
            return False            # commit makes progress next cycle
        if not self.engine.quiescent(now):
            return False
        if self._program_done or self._waiting_branch is not None:
            return True
        if now + 1 < self._fetch_resume:
            return True             # redirect penalty; event scheduled
        cfg = self.core_cfg
        if len(rob) - head_index >= cfg.rob_size:
            return True             # ROB full; released by writeback
        if self._iq_count >= cfg.issue_queue_size:
            return True             # IQ entries free only at issue<-wakeup
        ins = self.program.instructions[self.pc]
        if ins.is_load and self._lq_count >= cfg.load_queue_size:
            return True             # LQ entries free at load writeback
        if ins.is_store and self._sq_count >= cfg.store_queue_size:
            return True             # SQ entries free at commit
        if self.engine.blocks_dispatch(now):
            return True             # constant while quiescent (contract)
        return False                # dispatch can make progress: no skip

    def _fast_forward(self, now, max_cycles):
        """Jump ``self.now`` to just before the next event, attributing
        the skipped span exactly as the per-cycle loop would have."""
        heap = self._writebacks
        target = heap[0][0] if heap else None
        if self._waiting_branch is None and now < self._fetch_resume:
            if target is None or self._fetch_resume < target:
                target = self._fetch_resume
        wake = self.engine.next_event(now)
        if wake is not None and (target is None or wake < target):
            target = wake
        if target is None:
            # An MSHR fill wakes nothing by itself while the retry lists
            # are empty (the quiescence precondition), so fills do not
            # bound the jump -- they only serve as a deadlock fallback.
            target = self.hierarchy.mshrs.next_fill()
        if target is None:
            raise SimulationLimitError(
                f"model deadlock: quiescent with no scheduled events at "
                f"cycle {now} ({self.stats.committed} committed)")
        if target > max_cycles + 1:
            target = max_cycles + 1   # preserve the safety-limit abort
        skipped = target - 1 - now
        if skipped <= 0:
            return
        if self.sanitizer is not None:
            self.sanitizer.on_fast_forward(self, now, target)
        stats = self.stats
        stats.fast_forward_cycles += skipped
        stats.fast_forward_spans += 1
        # Bulk attribution: the per-cycle stages are all no-ops across the
        # span, so only the accounting they would have done remains.  The
        # ROB head (and therefore every attribution below) cannot change
        # until the event at ``target``.
        rob, head_index = self._rob, self._rob_head
        breakdown = stats.cycle_breakdown
        if head_index >= len(rob):
            breakdown["frontend"] += skipped
        else:
            head = rob[head_index]
            if head.ins.is_load:
                breakdown["memory"] += skipped
            else:
                breakdown["execute"] += skipped
            if len(rob) - head_index >= self.core_cfg.rob_size:
                stats.rob_full_cycles += skipped
                if head.ins.is_load:
                    # head incomplete by _quiescent precondition; the
                    # engine's on_rob_stall is a proven no-op over the
                    # span (trigger monotonicity / quiescence contract).
                    stats.rob_full_mem_cycles += skipped
        self.now = target - 1

    # ------------------------------------------------------------------
    def _writeback(self):
        now = self.now
        heap = self._writebacks
        if not heap or heap[0][0] > now:
            return
        heappop = heapq.heappop
        heappush = heapq.heappush
        ready = self._ready
        while heap and heap[0][0] <= now:
            _, _, dyn = heappop(heap)
            dyn.completed = True
            if dyn.ins.is_load:
                # LQ entries recycle once the data is back (commit does not
                # need them; keeps the LQ from binding before the ROB).
                self._lq_count -= 1
            for dep in dyn.dependents:
                dep.pending -= 1
                if dep.pending == 0 and not dep.issued:
                    heappush(ready, (dep.seq, dep))
            dyn.dependents = []
            if dyn is self._waiting_branch:
                self._waiting_branch = None
                self._fetch_resume = now + self.core_cfg.frontend_stages

    def _commit(self):
        # Hoisted like _issue/_writeback: stats/engine/config lookups once
        # per cycle, committed totalled locally, len(rob) computed once
        # (commit never appends).
        committed = 0
        stats = self.stats
        rob = self._rob
        head = head0 = self._rob_head
        rob_len = len(rob)
        blocked_by_engine = False
        if head < rob_len:
            width = self.core_cfg.width
            now = self.now
            blocks_commit = self.engine.blocks_commit
            while committed < width and head < rob_len:
                dyn = rob[head]
                if not dyn.completed:
                    break
                if blocks_commit(now):
                    blocked_by_engine = True
                    break
                head += 1
                committed += 1
                ins = dyn.ins
                if ins.is_store:
                    self._sq_count -= 1
                if ins.op == Op.HALT:
                    stats.halted = True
                    break
            stats.committed += committed
        if blocked_by_engine and committed == 0:
            stats.commit_blocked_runahead += 1
        # CPI-stack attribution for this cycle's commit slots.
        breakdown = stats.cycle_breakdown
        if committed > 0:
            breakdown["base"] += 1
        elif blocked_by_engine:
            breakdown["runahead"] += 1
        elif head >= rob_len:
            breakdown["frontend"] += 1
        else:
            stalled = rob[head]
            if stalled.ins.is_load:
                breakdown["memory"] += 1
            else:
                breakdown["execute"] += 1
        if self.sanitizer is not None:
            self.sanitizer.on_commit(self, rob, head0, head)
        self._rob_head = head
        if head > 4096:  # compact the ROB list occasionally
            del rob[:head]
            self._rob_head = 0

    def rob_occupancy(self):
        return len(self._rob) - self._rob_head

    def rob_head_instruction(self):
        if self._rob_head < len(self._rob):
            return self._rob[self._rob_head]
        return None

    # ------------------------------------------------------------------
    def _issue(self):
        ready = self._ready
        carry = self._fu_retry
        if self._mshr_retry:
            for dyn in self._mshr_retry:
                heapq.heappush(ready, (dyn.seq, dyn))
            self._mshr_retry = []
        if not ready and not carry:
            return
        # FU-port-blocked instructions from the previous cycle live in
        # ``carry`` (already in ascending seq order from the pop sequence
        # that produced them) instead of being re-pushed through the ready
        # heap every cycle; candidates are drawn from whichever of
        # carry/heap holds the lowest seq, which reproduces the pure-heap
        # pop order exactly.
        ports = self.ports
        now = self.now
        can_issue = ports.can_issue
        claim = ports.claim
        latency = ports.latency
        heappop = heapq.heappop
        heappush = heapq.heappush
        writebacks = self._writebacks
        trace = self.trace
        retry = []
        attempts = 0
        carry_index, carry_len = 0, len(carry)
        while ports.spare_slots > 0 and attempts < 16:
            if carry_index < carry_len:
                if ready and ready[0][0] < carry[carry_index].seq:
                    _, dyn = heappop(ready)
                else:
                    dyn = carry[carry_index]
                    carry_index += 1
            elif ready:
                _, dyn = heappop(ready)
            else:
                break
            attempts += 1
            if not can_issue(dyn.fu):
                retry.append(dyn)
                continue
            if dyn.ins.is_load:
                if not self._issue_load(dyn):
                    continue  # MSHR-blocked; queued for retry
            elif dyn.ins.is_store:
                if self.perfect_memory:
                    # Symmetric oracle treatment: the line is already here,
                    # but a first touch still spends bandwidth.
                    self.hierarchy.oracle_load(dyn.mem_addr, now)
                else:
                    self.hierarchy.demand_store(dyn.mem_addr, now)
                dyn.complete_cycle = now + 1
            else:
                dyn.complete_cycle = now + latency[dyn.fu]
            claim(dyn.fu)
            dyn.issued = True
            dyn.issue_cycle = now
            self._iq_count -= 1
            if trace is not None:
                trace.on_issue(dyn, now)
            heappush(writebacks, (dyn.complete_cycle, dyn.seq, dyn))
        if carry_index < carry_len:
            retry.extend(carry[carry_index:])
        self._fu_retry = retry

    def _issue_load(self, dyn):
        if self.perfect_memory:
            dyn.complete_cycle = self.hierarchy.oracle_load(
                dyn.mem_addr, self.now)
            dyn.mem_level = "L1"
            return True
        result = self.hierarchy.demand_load(
            dyn.mem_addr, dyn.pc, dyn.value, self.now)
        if result is None:
            self._mshr_retry.append(dyn)
            return False
        dyn.complete_cycle = result.complete_cycle
        dyn.mem_level = result.level
        return True

    # ------------------------------------------------------------------
    def _dispatch(self):
        now = self.now
        engine = self.engine
        if (self._program_done or self._waiting_branch is not None
                or now < self._fetch_resume
                or engine.blocks_dispatch(now)):
            self._check_rob_stall()
            return
        # First-iteration gates, checked before the hoist block: on a
        # stall cycle (ROB or IQ full, front load/store blocked on its
        # queue) dispatch does no work, and stall cycles dominate the
        # memory-bound runs this simulator exists for -- resolving a
        # dozen locals on every one of them costs more than the loop
        # they accelerate.
        cfg = self.core_cfg
        rob = self._rob
        rob_head = self._rob_head
        if len(rob) - rob_head >= cfg.rob_size:
            self._check_rob_stall(count=True)
            return
        if self._iq_count >= cfg.issue_queue_size:
            return
        instructions = self.program.instructions
        ins = instructions[self.pc]
        if ins.is_load and self._lq_count >= cfg.load_queue_size:
            return
        if ins.is_store and self._sq_count >= cfg.store_queue_size:
            return
        # Hoisted like _issue/_writeback: config bounds, the instruction
        # list, guest state, and per-instruction callees resolve once per
        # cycle instead of once per dispatched instruction.  ``self.pc``
        # and the occupancy counters stay live on self because engine
        # hooks (on_dispatch) may read them mid-group.
        width = cfg.width
        rob_size = cfg.rob_size
        iq_size = cfg.issue_queue_size
        lq_size = cfg.load_queue_size
        sq_size = cfg.store_queue_size
        regs = self.regs
        mem = self.mem
        stats = self.stats
        producers = self._producer_table
        ready = self._ready
        heappush = heapq.heappush
        predictor = self.predictor
        on_dispatch = engine.on_dispatch
        trace = self.trace
        dispatched = 0
        while dispatched < width:
            if len(rob) - rob_head >= rob_size:
                self._check_rob_stall(count=True)
                break
            if self._iq_count >= iq_size:
                break
            ins = instructions[self.pc]
            if ins.is_load and self._lq_count >= lq_size:
                break
            if ins.is_store and self._sq_count >= sq_size:
                break
            dyn = DynIns(self._seq, ins, now)
            self._seq += 1
            # Operand dependence tracking (rename equivalent).
            for reg in ins.srcs:
                producer = producers[reg]
                if producer is not None and not producer.completed:
                    dyn.pending += 1
                    producer.dependents.append(dyn)
            # Functional execution at the dispatch frontier.
            next_pc, addr = execute(ins, regs, mem)
            dyn.mem_addr = addr
            if ins.is_load:
                dyn.value = regs[ins.rd]
                self._lq_count += 1
            elif ins.is_store:
                self._sq_count += 1
            if ins.rd >= 0:
                producers[ins.rd] = dyn
            rob.append(dyn)
            self._iq_count += 1
            stats.dispatched += 1
            dispatched += 1
            if dyn.pending == 0:
                heappush(ready, (dyn.seq, dyn))
            mispredicted = False
            if ins.is_cond_branch:
                taken = next_pc != ins.pc + 1
                dyn.taken = taken
                prediction, info = predictor.predict(ins.pc)
                predictor.update(ins.pc, taken, prediction, info)
                if prediction != taken:
                    dyn.mispredicted = True
                    self._waiting_branch = dyn
                    mispredicted = True
            on_dispatch(dyn, self)
            if trace is not None:
                trace.on_dispatch(dyn, now)
            self.pc = next_pc
            if ins.op == Op.HALT:
                self._program_done = True
                break
            if mispredicted:
                break

    def _check_rob_stall(self, count=False):
        """Account a full-ROB dispatch stall and fire the runahead trigger."""
        if not count:
            if self.rob_occupancy() < self.core_cfg.rob_size:
                return
        self.stats.rob_full_cycles += 1
        head = self.rob_head_instruction()
        if head is not None and head.ins.is_load and not head.completed:
            self.stats.rob_full_mem_cycles += 1
            self.engine.on_rob_stall(self.now, head)

    # Exposed for engines ------------------------------------------------
    @property
    def _producers(self):
        return self._producer_table
