"""Cycle-level out-of-order core model.

Timing-first, correct-path simulation: instructions execute functionally
(in program order) at dispatch, so architectural state is always correct;
the timing model tracks operand readiness, issue-width and FU-port
contention, memory latency through the hierarchy, and in-order commit.
Mispredicted conditional branches stall fetch until the branch resolves
plus a front-end redirect penalty of ``frontend_stages`` cycles.

Runahead engines (PRE / VR / DVR) attach via a small hook interface:

* ``on_dispatch(dyn, core)``   -- observe the main thread's instruction
  stream (stride detection, Discovery Mode).
* ``on_rob_stall(now, head)``  -- called every cycle dispatch is blocked
  by a full ROB (the classic runahead trigger).
* ``tick(now, ports)``         -- consume spare issue slots.
* ``blocks_dispatch/blocks_commit`` -- runahead modes that occupy the
  front-end or delay termination.
"""

from __future__ import annotations

import heapq

from ..isa.instructions import Op
from ..isa.machine import execute
from ..branch.predictor import TagePredictor
from .dynins import DynIns
from .scheduler import IssuePorts


class SimulationLimitError(Exception):
    """The cycle safety limit was hit (almost certainly a model deadlock)."""


class NullEngine:
    """Default no-op runahead engine."""

    name = "none"

    def on_dispatch(self, dyn, core):
        pass

    def on_rob_stall(self, now, head):
        pass

    def tick(self, now, ports):
        pass

    def blocks_dispatch(self, now):
        return False

    def blocks_commit(self, now):
        return False

    def stats(self):
        return {}


class CoreStats:
    def __init__(self):
        self.cycles = 0
        self.committed = 0
        self.dispatched = 0
        self.rob_full_cycles = 0          # dispatch blocked, ROB full
        self.rob_full_mem_cycles = 0      # ...with an incomplete load at head
        self.commit_blocked_runahead = 0  # delayed-termination stalls (VR)
        self.halted = False
        self.branch_lookups = 0
        self.branch_mispredicts = 0
        # CPI stack: why each cycle's commit slot group was (not) used.
        self.cycle_breakdown = {
            "base": 0,       # committed at least one instruction
            "memory": 0,     # ROB head is a load waiting for data
            "execute": 0,    # ROB head waiting on a non-load FU
            "frontend": 0,   # ROB empty (mispredict redirect / fetch dry)
            "runahead": 0,   # commit blocked by a runahead engine
        }

    def cpi_stack(self):
        """Per-component cycles-per-instruction (Sniper-style CPI stack)."""
        if self.committed == 0:
            return {}
        return {name: count / self.committed
                for name, count in self.cycle_breakdown.items()}

    @property
    def ipc(self):
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def rob_full_fraction(self):
        return self.rob_full_cycles / self.cycles if self.cycles else 0.0


class OoOCore:
    def __init__(self, program, guest_memory, config, hierarchy,
                 engine=None, perfect_memory=False, trace=None):
        self.program = program
        self.mem = guest_memory
        self.config = config
        self.core_cfg = config.core
        self.hierarchy = hierarchy
        self.engine = engine or NullEngine()
        self.perfect_memory = perfect_memory
        self.trace = trace
        self.predictor = TagePredictor(config.branch)
        self.ports = IssuePorts(config.core)
        self.stats = CoreStats()

        self.regs = [0] * 32            # architectural state @ dispatch frontier
        self.pc = 0
        self.now = 0
        self._seq = 0
        self._rob = []                  # FIFO list of DynIns (popped from front lazily)
        self._rob_head = 0
        self._iq_count = 0
        self._lq_count = 0
        self._sq_count = 0
        self._ready = []                # heap of (seq, DynIns)
        self._mshr_retry = []           # loads refused by a full MSHR file
        self._writebacks = []           # heap of (complete_cycle, seq, DynIns)
        self._waiting_branch = None     # mispredicted branch pending resolve
        self._fetch_resume = 0
        self._producer_table = [None] * 32
        self._program_done = False
        self._l1_latency = config.memsys.l1d.latency

    # ------------------------------------------------------------------
    def run(self, max_instructions=None):
        limit = max_instructions or self.config.max_instructions
        max_cycles = limit * 3000 + 2_000_000
        while self.stats.committed < limit and not self.stats.halted:
            self.now += 1
            if self.now > max_cycles:
                raise SimulationLimitError(
                    f"no forward progress: {self.stats.committed} committed "
                    f"after {self.now} cycles")
            self._writeback()
            self._commit()
            self.ports.new_cycle()
            self._issue()
            self.engine.tick(self.now, self.ports)
            self._dispatch()
            self.hierarchy.tick(self.now)
        self.stats.cycles = self.now
        self.stats.branch_lookups = self.predictor.lookups
        self.stats.branch_mispredicts = self.predictor.mispredicts
        return self.stats

    # ------------------------------------------------------------------
    def _writeback(self):
        now = self.now
        heap = self._writebacks
        while heap and heap[0][0] <= now:
            _, _, dyn = heapq.heappop(heap)
            dyn.completed = True
            if dyn.ins.is_load:
                # LQ entries recycle once the data is back (commit does not
                # need them; keeps the LQ from binding before the ROB).
                self._lq_count -= 1
            for dep in dyn.dependents:
                dep.pending -= 1
                if dep.pending == 0 and not dep.issued:
                    heapq.heappush(self._ready, (dep.seq, dep))
            dyn.dependents = []
            if dyn is self._waiting_branch:
                self._waiting_branch = None
                self._fetch_resume = now + self.core_cfg.frontend_stages

    def _commit(self):
        committed = 0
        width = self.core_cfg.width
        rob, head = self._rob, self._rob_head
        blocked_by_engine = False
        while committed < width and head < len(rob):
            dyn = rob[head]
            if not dyn.completed:
                break
            if self.engine.blocks_commit(self.now):
                blocked_by_engine = True
                break
            head += 1
            committed += 1
            self.stats.committed += 1
            if dyn.ins.is_store:
                self._sq_count -= 1
            if dyn.ins.op == Op.HALT:
                self.stats.halted = True
                break
        if blocked_by_engine and committed == 0:
            self.stats.commit_blocked_runahead += 1
        # CPI-stack attribution for this cycle's commit slots.
        breakdown = self.stats.cycle_breakdown
        if committed > 0:
            breakdown["base"] += 1
        elif blocked_by_engine:
            breakdown["runahead"] += 1
        elif head >= len(rob):
            breakdown["frontend"] += 1
        else:
            stalled = rob[head]
            if stalled.ins.is_load:
                breakdown["memory"] += 1
            else:
                breakdown["execute"] += 1
        self._rob_head = head
        if head > 4096:  # compact the ROB list occasionally
            del rob[:head]
            self._rob_head = 0

    def rob_occupancy(self):
        return len(self._rob) - self._rob_head

    def rob_head_instruction(self):
        if self._rob_head < len(self._rob):
            return self._rob[self._rob_head]
        return None

    # ------------------------------------------------------------------
    def _issue(self):
        ports = self.ports
        ready = self._ready
        if self._mshr_retry:
            for dyn in self._mshr_retry:
                heapq.heappush(ready, (dyn.seq, dyn))
            self._mshr_retry = []
        retry = []
        attempts = 0
        while ready and ports.spare_slots > 0 and attempts < 16:
            attempts += 1
            _, dyn = heapq.heappop(ready)
            if not ports.can_issue(dyn.fu):
                retry.append(dyn)
                continue
            if dyn.ins.is_load:
                if not self._issue_load(dyn):
                    continue  # MSHR-blocked; queued for retry
            elif dyn.ins.is_store:
                if self.perfect_memory:
                    # Symmetric oracle treatment: the line is already here,
                    # but a first touch still spends bandwidth.
                    self.hierarchy.oracle_load(dyn.mem_addr, self.now)
                else:
                    self.hierarchy.demand_store(dyn.mem_addr, self.now)
                dyn.complete_cycle = self.now + 1
            else:
                dyn.complete_cycle = self.now + ports.latency[dyn.fu]
            ports.claim(dyn.fu)
            dyn.issued = True
            dyn.issue_cycle = self.now
            self._iq_count -= 1
            if self.trace is not None:
                self.trace.on_issue(dyn, self.now)
            heapq.heappush(self._writebacks,
                           (dyn.complete_cycle, dyn.seq, dyn))
        for dyn in retry:
            heapq.heappush(ready, (dyn.seq, dyn))

    def _issue_load(self, dyn):
        if self.perfect_memory:
            dyn.complete_cycle = self.hierarchy.oracle_load(
                dyn.mem_addr, self.now)
            dyn.mem_level = "L1"
            return True
        result = self.hierarchy.demand_load(
            dyn.mem_addr, dyn.pc, dyn.value, self.now)
        if result is None:
            self._mshr_retry.append(dyn)
            return False
        dyn.complete_cycle = result.complete_cycle
        dyn.mem_level = result.level
        return True

    # ------------------------------------------------------------------
    def _dispatch(self):
        if (self._program_done or self._waiting_branch is not None
                or self.now < self._fetch_resume
                or self.engine.blocks_dispatch(self.now)):
            self._check_rob_stall()
            return
        cfg = self.core_cfg
        dispatched = 0
        while dispatched < cfg.width:
            if self.rob_occupancy() >= cfg.rob_size:
                self._check_rob_stall(count=True)
                break
            if self._iq_count >= cfg.issue_queue_size:
                break
            ins = self.program.instructions[self.pc]
            if ins.is_load and self._lq_count >= cfg.load_queue_size:
                break
            if ins.is_store and self._sq_count >= cfg.store_queue_size:
                break
            dyn = DynIns(self._seq, ins, self.now)
            self._seq += 1
            # Operand dependence tracking (rename equivalent).
            producers = self._producers
            for reg in ins.srcs:
                producer = producers[reg]
                if producer is not None and not producer.completed:
                    dyn.pending += 1
                    producer.dependents.append(dyn)
            # Functional execution at the dispatch frontier.
            next_pc, addr = execute(ins, self.regs, self.mem)
            dyn.mem_addr = addr
            if ins.is_load:
                dyn.value = self.regs[ins.rd]
                self._lq_count += 1
            elif ins.is_store:
                self._sq_count += 1
            if ins.rd >= 0:
                producers[ins.rd] = dyn
            self._rob.append(dyn)
            self._iq_count += 1
            self.stats.dispatched += 1
            dispatched += 1
            if dyn.pending == 0:
                heapq.heappush(self._ready, (dyn.seq, dyn))
            mispredicted = False
            if ins.is_cond_branch:
                taken = next_pc != ins.pc + 1
                dyn.taken = taken
                prediction, info = self.predictor.predict(ins.pc)
                self.predictor.update(ins.pc, taken, prediction, info)
                if prediction != taken:
                    dyn.mispredicted = True
                    self._waiting_branch = dyn
                    mispredicted = True
            self.engine.on_dispatch(dyn, self)
            if self.trace is not None:
                self.trace.on_dispatch(dyn, self.now)
            self.pc = next_pc
            if ins.op == Op.HALT:
                self._program_done = True
                break
            if mispredicted:
                break

    def _check_rob_stall(self, count=False):
        """Account a full-ROB dispatch stall and fire the runahead trigger."""
        if not count:
            if self.rob_occupancy() < self.core_cfg.rob_size:
                return
        self.stats.rob_full_cycles += 1
        head = self.rob_head_instruction()
        if head is not None and head.ins.is_load and not head.completed:
            self.stats.rob_full_mem_cycles += 1
            self.engine.on_rob_stall(self.now, head)

    # Exposed for engines ------------------------------------------------
    @property
    def _producers(self):
        return self._producer_table
