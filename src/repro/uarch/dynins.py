"""Dynamic (in-flight) instruction record for the timing model."""

from __future__ import annotations

from ..isa.instructions import Op

# Functional-unit classes
FU_ALU = "alu"
FU_MUL = "mul"
FU_DIV = "div"
FU_MEM = "mem"

_FU_FOR_OP = {}
for _op in (Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR,
            Op.ADDI, Op.ANDI, Op.SHLI, Op.SHRI, Op.LI, Op.MOV,
            Op.CMPLT, Op.CMPLE, Op.CMPEQ, Op.CMPNE, Op.CMPLTI, Op.CMPEQI,
            Op.BNZ, Op.BEZ, Op.JMP, Op.NOP, Op.HALT):
    _FU_FOR_OP[_op] = FU_ALU
for _op in (Op.MUL, Op.MULI, Op.HASH):
    _FU_FOR_OP[_op] = FU_MUL
_FU_FOR_OP[Op.DIV] = FU_DIV
for _op in (Op.LOAD, Op.LOADX, Op.STORE, Op.STOREX):
    _FU_FOR_OP[_op] = FU_MEM


def fu_class(op):
    return _FU_FOR_OP[op]


class DynIns:
    """One in-flight dynamic instruction."""

    __slots__ = ("seq", "ins", "pc", "mem_addr", "value",
                 "dispatch_cycle", "issue_cycle", "complete_cycle",
                 "issued", "completed", "pending", "dependents",
                 "fu", "mispredicted", "taken", "mem_level")

    def __init__(self, seq, ins, dispatch_cycle):
        self.seq = seq
        self.ins = ins
        self.pc = ins.pc
        self.mem_addr = -1
        self.value = 0              # load result (for prefetcher training)
        self.dispatch_cycle = dispatch_cycle
        self.issue_cycle = -1
        self.complete_cycle = -1
        self.issued = False
        self.completed = False
        self.pending = 0            # outstanding source operands
        self.dependents = []        # DynIns waiting on our destination
        self.fu = fu_class(ins.op)
        self.mispredicted = False
        self.taken = False
        self.mem_level = None       # cache level a load hit in

    def __repr__(self):
        state = "C" if self.completed else ("I" if self.issued else "W")
        return f"<#{self.seq} pc={self.pc} {self.ins.name} {state}>"
