"""Issue bandwidth and functional-unit port accounting.

One :class:`IssuePorts` instance is reset each cycle.  The main thread
claims slots first; whatever is left over ("spare slots") is offered to
the runahead engines, matching the paper's rule that a vector-runahead
subthread instruction issues "whenever there is no instruction ready from
the main thread for the same execution port".
"""

from __future__ import annotations

from .dynins import FU_ALU, FU_DIV, FU_MEM, FU_MUL


class IssuePorts:
    def __init__(self, core_config):
        self.width = core_config.width
        self.capacity = {
            FU_ALU: core_config.int_alu.count,
            FU_MUL: core_config.int_mul.count,
            FU_DIV: core_config.int_div.count,
            FU_MEM: core_config.mem_ports,
        }
        self.latency = {
            FU_ALU: core_config.int_alu.latency,
            FU_MUL: core_config.int_mul.latency,
            FU_DIV: core_config.int_div.latency,
            FU_MEM: 0,  # memory latency comes from the hierarchy
        }
        self._used = {FU_ALU: 0, FU_MUL: 0, FU_DIV: 0, FU_MEM: 0}
        self._issued = 0

    def new_cycle(self):
        used = self._used
        used[FU_ALU] = 0
        used[FU_MUL] = 0
        used[FU_DIV] = 0
        used[FU_MEM] = 0
        self._issued = 0

    def can_issue(self, fu):
        return (self._issued < self.width and
                self._used[fu] < self.capacity[fu])

    def claim(self, fu):
        self._used[fu] += 1
        self._issued += 1

    @property
    def spare_slots(self):
        return self.width - self._issued

    def spare_fu(self, fu):
        return self.capacity[fu] - self._used[fu]
