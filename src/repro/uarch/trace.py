"""Pipeline tracing: per-instruction event timestamps and a textual
pipeline diagram, for debugging and for *seeing* the techniques work
(e.g. main-thread loads turning from DRAM-latency into L1 hits once the
DVR subthread is warm).
"""

from __future__ import annotations


class TraceEntry:
    __slots__ = ("seq", "pc", "name", "dispatch", "issue", "complete",
                 "mem_level", "mispredicted")

    def __init__(self, seq, pc, name, dispatch):
        self.seq = seq
        self.pc = pc
        self.name = name
        self.dispatch = dispatch
        self.issue = -1
        self.complete = -1
        self.mem_level = None
        self.mispredicted = False


class PipelineTrace:
    """Records the first ``limit`` dynamic instructions' pipeline events.

    Attach via ``OoOCore(..., trace=PipelineTrace(200))``; render with
    :meth:`render`.
    """

    def __init__(self, limit=200, skip=0):
        self.limit = limit
        self.skip = skip
        self.entries = []

    def want(self, seq):
        return self.skip <= seq < self.skip + self.limit

    def on_dispatch(self, dyn, now):
        if self.want(dyn.seq):
            self.entries.append(
                TraceEntry(dyn.seq, dyn.pc, dyn.ins.name, now))

    def on_issue(self, dyn, now):
        if self.want(dyn.seq) and self.entries:
            entry = self._find(dyn.seq)
            if entry is not None:
                entry.issue = now
                entry.complete = dyn.complete_cycle
                entry.mem_level = dyn.mem_level
                entry.mispredicted = dyn.mispredicted

    def _find(self, seq):
        index = seq - self.skip
        if 0 <= index < len(self.entries):
            return self.entries[index]
        return None

    def render(self, max_rows=None):
        """A compact waterfall: one line per instruction with dispatch /
        issue / complete cycles and memory hit level."""
        lines = [f"{'seq':>5s} {'pc':>4s} {'op':8s} {'disp':>8s} "
                 f"{'issue':>8s} {'done':>8s}  notes"]
        for entry in self.entries[:max_rows or len(self.entries)]:
            notes = []
            if entry.mem_level:
                notes.append(entry.mem_level)
            if entry.mispredicted:
                notes.append("MISPRED")
            lines.append(
                f"{entry.seq:5d} {entry.pc:4d} {entry.name:8s} "
                f"{entry.dispatch:8d} "
                f"{entry.issue if entry.issue >= 0 else '-':>8} "
                f"{entry.complete if entry.complete >= 0 else '-':>8}  "
                f"{' '.join(notes)}")
        return "\n".join(lines)

    def load_latencies(self):
        """(seq, level, issue->complete latency) for every traced load."""
        return [(entry.seq, entry.mem_level, entry.complete - entry.issue)
                for entry in self.entries
                if entry.mem_level is not None and entry.issue >= 0]
