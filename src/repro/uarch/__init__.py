"""Out-of-order core microarchitecture model."""

from .core import CoreStats, NullEngine, OoOCore, SimulationLimitError
from .trace import PipelineTrace, TraceEntry
from .dynins import DynIns, FU_ALU, FU_DIV, FU_MEM, FU_MUL, fu_class
from .scheduler import IssuePorts

__all__ = [
    "CoreStats",
    "PipelineTrace",
    "TraceEntry",
    "DynIns",
    "FU_ALU",
    "FU_DIV",
    "FU_MEM",
    "FU_MUL",
    "IssuePorts",
    "NullEngine",
    "OoOCore",
    "SimulationLimitError",
    "fu_class",
]
