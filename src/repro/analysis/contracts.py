"""Engine quiescence-contract check (runtime reflection half).

The event-driven fast-forward (PR 2) is only sound if every engine
honours the quiescence contract documented on
:class:`repro.runahead.base.RunaheadEngine`: ``quiescent(now)`` promises
``tick`` is a no-op and the blocking predicates are constant until
``next_event(now)``.  The AST rule ``engine-quiescence`` flags source
files where an engine class overrides ``tick``/``blocks_*`` without
revisiting ``quiescent``; this module complements it by reflecting over
the *live* classes -- catching engines registered outside the lint
path, wrong signatures, or non-callable attributes.
"""

from __future__ import annotations

import inspect

from .linter import Finding

#: (self, now) -- the signature both contract methods must accept.
_CONTRACT_METHODS = ("quiescent", "next_event")


def engine_classes():
    """Every engine class the simulator can drive.

    ``RunaheadEngine`` subclasses are discovered transitively; the two
    duck-typed engines (``NullEngine``, ``DvrEngine``) are added
    explicitly because they do not inherit the base.
    """
    from ..core.dvr import DvrEngine
    from ..runahead.base import RunaheadEngine
    from ..uarch.core import NullEngine

    classes = [RunaheadEngine, NullEngine, DvrEngine]
    stack = [RunaheadEngine]
    while stack:
        for sub in stack.pop().__subclasses__():
            if sub not in classes:
                classes.append(sub)
                stack.append(sub)
    return classes


def _check_signature(cls, name):
    """None if ``cls.<name>`` is callable as ``method(self, now)``."""
    method = getattr(cls, name, None)
    if method is None:
        return f"{cls.__name__}.{name} is missing"
    if not callable(method):
        return f"{cls.__name__}.{name} is not callable"
    try:
        signature = inspect.signature(method)
    except (TypeError, ValueError):
        return None     # builtins without introspectable signatures
    try:
        # Unbound function: (self, now).
        signature.bind(object(), 0)
    except TypeError:
        return (f"{cls.__name__}.{name}{signature} does not accept "
                f"(self, now)")
    return None


def check_engine_contracts():
    """Reflect over live engine classes; returns schema Findings."""
    findings = []
    for cls in engine_classes():
        try:
            path = inspect.getsourcefile(cls) or "<unknown>"
            _, line = inspect.getsourcelines(cls)
        except (OSError, TypeError):
            path, line = "<unknown>", 1
        for name in _CONTRACT_METHODS:
            problem = _check_signature(cls, name)
            if problem:
                findings.append(Finding(
                    rule="engine-contract", path=path, line=line, col=0,
                    message=problem + " (quiescence contract, see "
                            "RunaheadEngine)"))
        # An engine that overrides tick() must also revisit quiescent():
        # the base's unconditional ``return True`` would let fast-forward
        # elide the new per-cycle work.  Mirrors the AST rule, but works
        # on classes assembled dynamically.  The base itself (tick is a
        # documented no-op there) is exempt.
        if cls.__name__ == "RunaheadEngine":
            continue
        overrides_tick = "tick" in vars(cls)
        overrides_quiescent = any(
            "quiescent" in vars(klass)
            for klass in cls.__mro__
            if klass is not object and klass.__name__ != "RunaheadEngine")
        if overrides_tick and not overrides_quiescent:
            findings.append(Finding(
                rule="engine-contract", path=path, line=line, col=0,
                message=f"{cls.__name__} overrides tick() but inherits "
                        f"quiescent() from the base (which claims "
                        f"unconditional quiescence); fast-forward could "
                        f"elide its work"))
    return findings
